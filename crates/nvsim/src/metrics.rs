//! Hierarchical metrics registry.
//!
//! Components publish named counters, gauges and histograms under
//! dotted paths (`l2.vd0.putx_version_checks`, `omc.0.buffer_occupancy`).
//! A [`Registry`] is an ordered name → value map, so its tree dump is
//! deterministic, two registries [`Registry::merge`] cheaply (the
//! parallel engine folds per-worker registries this way), and exporters
//! walk it without knowing any component's shape.
//!
//! Values come in two forms:
//!
//! * *recorded* — a component writes finished totals at harvest time
//!   (`set_counter`, `set_gauge`, `record_hist`); zero hot-path cost.
//! * *live cells* — a [`CounterCell`] is a shared `u64` the component
//!   bumps on its hot path; the registry reads it at dump/snapshot
//!   time. Bumping is one unsynchronized cell increment.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::rc::Rc;

/// A log2-bucketed histogram of `u64` samples.
///
/// Bucket *i* counts samples whose value has bit-length *i* (bucket 0 =
/// value 0, bucket 1 = value 1, bucket 2 = 2..=3, ...). Cheap to record,
/// merges by bucket addition, and good enough to localize latency and
/// occupancy distributions across orders of magnitude.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Hist {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Hist {
    fn default() -> Self {
        Self {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Hist {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[(64 - v.leading_zeros()) as usize] += 1;
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// `(lower_bound, count)` for each non-empty log2 bucket.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (if i == 0 { 0 } else { 1u64 << (i - 1) }, c))
    }

    /// Adds another histogram into this one.
    pub fn merge(&mut self, other: &Hist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

/// A shared live counter cell (see module docs).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CounterCell(Rc<Cell<u64>>);

impl CounterCell {
    /// Increments by one.
    #[inline]
    pub fn bump(&self) {
        self.0.set(self.0.get() + 1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.set(self.0.get() + n);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.get()
    }
}

/// One metric value.
#[derive(Clone, PartialEq, Debug)]
pub enum MetricValue {
    /// A monotonically-accumulated count; merges by addition.
    Counter(u64),
    /// A point-in-time level (occupancy, size); merges by maximum.
    Gauge(f64),
    /// A sample distribution; merges by bucket addition. Boxed: a
    /// `Hist` is ~0.5 KiB and would otherwise dominate the enum size.
    Histogram(Box<Hist>),
}

/// The hierarchical registry: dotted name → metric, ordered.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Registry {
    map: BTreeMap<String, MetricValue>,
    cells: Vec<(String, CounterCell)>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets counter `name` to `v` (overwrites).
    pub fn set_counter(&mut self, name: &str, v: u64) {
        self.map.insert(name.to_string(), MetricValue::Counter(v));
    }

    /// Adds `v` to counter `name` (creates it at 0).
    pub fn add_counter(&mut self, name: &str, v: u64) {
        match self
            .map
            .entry(name.to_string())
            .or_insert(MetricValue::Counter(0))
        {
            MetricValue::Counter(c) => *c += v,
            other => panic!("metric {name:?} is not a counter: {other:?}"),
        }
    }

    /// Sets gauge `name` to `v`.
    pub fn set_gauge(&mut self, name: &str, v: f64) {
        self.map.insert(name.to_string(), MetricValue::Gauge(v));
    }

    /// Stores histogram `name`.
    pub fn record_hist(&mut self, name: &str, h: Hist) {
        self.map
            .insert(name.to_string(), MetricValue::Histogram(Box::new(h)));
    }

    /// Registers and returns a live counter cell under `name`. The
    /// cell's value is folded into the registry by [`Registry::freeze`]
    /// (and therefore by dump/merge, which freeze first).
    pub fn cell(&mut self, name: &str) -> CounterCell {
        let c = CounterCell::default();
        self.cells.push((name.to_string(), c.clone()));
        c
    }

    /// Folds every live cell's current value into the recorded map and
    /// drops the cell registrations.
    pub fn freeze(&mut self) {
        for (name, cell) in std::mem::take(&mut self.cells) {
            self.add_counter(&name, cell.get());
        }
    }

    /// Reads a recorded metric.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.map.get(name)
    }

    /// Reads a recorded counter's value (None if absent or not a
    /// counter).
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.map.get(name) {
            Some(MetricValue::Counter(c)) => Some(*c),
            _ => None,
        }
    }

    /// Number of recorded metrics.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether nothing is recorded.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates `(name, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> + '_ {
        self.map.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Merges `other` into this registry: counters add, gauges keep the
    /// maximum, histograms add buckets. Both sides' live cells are
    /// frozen first so no value is lost.
    pub fn merge(&mut self, other: &Registry) {
        self.freeze();
        let mut other = other.clone();
        other.freeze();
        for (name, v) in other.map {
            match (self.map.get_mut(&name), v) {
                (None, v) => {
                    self.map.insert(name, v);
                }
                (Some(MetricValue::Counter(a)), MetricValue::Counter(b)) => *a += b,
                (Some(MetricValue::Gauge(a)), MetricValue::Gauge(b)) => *a = a.max(b),
                (Some(MetricValue::Histogram(a)), MetricValue::Histogram(b)) => a.merge(&b),
                (Some(a), b) => panic!("metric {name:?} kind mismatch: {a:?} vs {b:?}"),
            }
        }
    }

    /// Renders the registry as an indented tree, one leaf per line,
    /// grouped by dotted-path segments. Deterministic: depends only on
    /// the recorded names and values.
    ///
    /// ```text
    /// omc
    ///   0
    ///     buffer_occupancy      12
    ///     versions_received     840
    /// ```
    pub fn dump_tree(&self) -> String {
        let mut frozen = self.clone();
        frozen.freeze();
        let mut out = String::new();
        let mut prev: Vec<&str> = Vec::new();
        for (name, v) in frozen.map.iter() {
            let parts: Vec<&str> = name.split('.').collect();
            let (dirs, leaf) = parts.split_at(parts.len() - 1);
            let mut common = 0;
            while common < dirs.len() && prev.get(common) == Some(&dirs[common]) {
                common += 1;
            }
            for (depth, d) in dirs.iter().enumerate().skip(common) {
                let _ = writeln!(out, "{}{}", "  ".repeat(depth), d);
            }
            let pad = "  ".repeat(dirs.len());
            match v {
                MetricValue::Counter(c) => {
                    let _ = writeln!(out, "{pad}{} {c}", leaf[0]);
                }
                MetricValue::Gauge(g) => {
                    let _ = writeln!(out, "{pad}{} {g:.3}", leaf[0]);
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(
                        out,
                        "{pad}{} count={} sum={} max={} mean={:.2}",
                        leaf[0],
                        h.count(),
                        h.sum(),
                        h.max(),
                        h.mean()
                    );
                }
            }
            prev = dirs.to_vec();
        }
        out
    }

    /// Freezes the registry and returns a thread-portable snapshot.
    pub fn into_frozen(mut self) -> FrozenRegistry {
        self.freeze();
        FrozenRegistry(self.map)
    }

    /// Rebuilds a registry (with no live cells) from a snapshot.
    pub fn from_frozen(f: FrozenRegistry) -> Self {
        Self {
            map: f.0,
            cells: Vec::new(),
        }
    }
}

/// A frozen, thread-portable registry snapshot: the recorded name →
/// value map with every live cell already folded in. [`Registry`]
/// itself is not `Send` (live [`CounterCell`]s are `Rc`-shared), so
/// sharded-replay workers ship one of these back to the merge thread
/// and the caller rehydrates with [`Registry::from_frozen`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FrozenRegistry(BTreeMap<String, MetricValue>);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_cells_accumulate() {
        let mut r = Registry::new();
        r.add_counter("a.x", 2);
        r.add_counter("a.x", 3);
        let cell = r.cell("a.y");
        cell.bump();
        cell.add(4);
        assert_eq!(cell.get(), 5);
        r.freeze();
        assert_eq!(r.counter("a.x"), Some(5));
        assert_eq!(r.counter("a.y"), Some(5));
    }

    #[test]
    fn dump_is_deterministic_regardless_of_insertion_order() {
        let mut a = Registry::new();
        a.set_counter("omc.1.flushes", 3);
        a.set_counter("omc.0.flushes", 2);
        a.set_gauge("omc.0.occupancy", 0.5);
        a.set_counter("sys.epochs", 9);

        let mut b = Registry::new();
        b.set_counter("sys.epochs", 9);
        b.set_gauge("omc.0.occupancy", 0.5);
        b.set_counter("omc.0.flushes", 2);
        b.set_counter("omc.1.flushes", 3);

        assert_eq!(a.dump_tree(), b.dump_tree());
        let dump = a.dump_tree();
        assert!(dump.contains("omc\n  0\n    flushes 2"), "tree:\n{dump}");
        let omc_pos = dump.find("omc").unwrap();
        let sys_pos = dump.find("sys").unwrap();
        assert!(omc_pos < sys_pos, "name-ordered");
    }

    #[test]
    fn merge_adds_counters_maxes_gauges_and_sums_hists() {
        let mut a = Registry::new();
        a.set_counter("c", 1);
        a.set_gauge("g", 2.0);
        let mut h1 = Hist::new();
        h1.record(3);
        a.record_hist("h", h1);

        let mut b = Registry::new();
        b.set_counter("c", 10);
        b.set_counter("only_b", 7);
        b.set_gauge("g", 1.5);
        let mut h2 = Hist::new();
        h2.record(5);
        h2.record(100);
        b.record_hist("h", h2);

        a.merge(&b);
        assert_eq!(a.counter("c"), Some(11));
        assert_eq!(a.counter("only_b"), Some(7));
        assert!(matches!(a.get("g"), Some(MetricValue::Gauge(g)) if *g == 2.0));
        match a.get("h") {
            Some(MetricValue::Histogram(h)) => {
                assert_eq!(h.count(), 3);
                assert_eq!(h.sum(), 108);
                assert_eq!(h.max(), 100);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn hist_buckets_are_log2() {
        let mut h = Hist::new();
        for v in [0, 1, 2, 3, 4, 7, 8, 1024] {
            h.record(v);
        }
        let buckets: Vec<(u64, u64)> = h.buckets().collect();
        assert_eq!(
            buckets,
            vec![(0, 1), (1, 1), (2, 2), (4, 2), (8, 1), (1024, 1)]
        );
        assert_eq!(h.max(), 1024);
        assert_eq!(h.count(), 8);
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn kind_confusion_panics() {
        let mut r = Registry::new();
        r.set_gauge("x", 1.0);
        r.add_counter("x", 1);
    }
}
