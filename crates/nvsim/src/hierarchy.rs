//! A complete, non-versioned 3-level MESI hierarchy.
//!
//! This is the cache system the five *baseline* schemes run on: private
//! L1-Ds, one shared inclusive L2 per Versioned Domain (L2 cluster), and a
//! distributed **non-inclusive** LLC with a sparse directory — the
//! organization the paper assumes for modern multicores (§II-D).
//!
//! The hierarchy is purely functional + timing: it knows nothing about
//! persistence. Instead every access returns the latency it took plus a
//! list of [`HierarchyEvent`]s (stores committed, dirty write-backs with
//! their reason, epoch triggers). A scheme in `nvbaselines` interprets the
//! events — generating log writes, flushing write sets, walking tags —
//! and charges any persistence stalls on top.
//!
//! NVOverlay does **not** use this type; its versioned hierarchy (with the
//! modified eviction behaviour of §IV) lives in the `nvoverlay` crate and
//! shares only the low-level building blocks.

use crate::addr::{Addr, CoreId, LineAddr, Token, VdId};
use crate::cache::CacheArray;
use crate::clock::Cycle;
use crate::config::SimConfig;
use crate::dram::Dram;
use crate::memsys::MemOp;
use crate::mesi::{MesiState, Permission};
use crate::noc::{MsgKind, Noc};
use crate::stats::{AccessCounters, EvictReason};
use std::sync::Arc;

/// An epoch number as tracked by the *baseline* hierarchy.
///
/// Baselines use a monotonically increasing 64-bit epoch; the 16-bit
/// wrap-around OID machinery is specific to NVOverlay and lives there.
pub type EpochId = u64;

/// Per-line L1 metadata.
#[derive(Clone, Copy, Debug)]
struct L1Line {
    state: MesiState,
    token: Token,
    /// Epoch of the last store to this line (for first-write detection).
    oid: EpochId,
}

/// Per-line L2 metadata.
#[derive(Clone, Copy, Debug)]
struct L2Line {
    state: MesiState,
    token: Token,
    oid: EpochId,
}

/// Per-line LLC metadata (non-inclusive victim cache).
#[derive(Clone, Copy, Debug)]
struct LlcLine {
    dirty: bool,
    token: Token,
    oid: EpochId,
}

/// Something the hierarchy did that a persistence scheme may care about.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HierarchyEvent {
    /// A store retired. `first_in_epoch` is true when this is the first
    /// store to the line in the current epoch (undo-logging trigger).
    StoreCommitted {
        /// The line written.
        line: LineAddr,
        /// The line's content before the store (undo-log pre-image).
        old_token: Token,
        /// Epoch of the previous store to the line.
        old_oid: EpochId,
        /// Epoch the store happened in.
        new_oid: EpochId,
        /// Whether this is the first store to the line this epoch.
        first_in_epoch: bool,
    },
    /// A dirty line left an L2 (downward): capacity eviction or coherence
    /// downgrade. PiCL-L2-style schemes persist on this event.
    L2Writeback {
        /// The VD whose L2 wrote back.
        vd: VdId,
        /// The line written back.
        line: LineAddr,
        /// Newest content.
        token: Token,
        /// Epoch of the last store.
        oid: EpochId,
        /// Why it left.
        reason: EvictReason,
    },
    /// A dirty line left the LLC toward memory. LLC-based schemes (PiCL)
    /// persist on this event; the hierarchy has already updated the DRAM
    /// working copy.
    LlcWriteback {
        /// The line written back.
        line: LineAddr,
        /// Newest content.
        token: Token,
        /// Epoch of the last store.
        oid: EpochId,
        /// Why it left.
        reason: EvictReason,
    },
    /// A VD crossed the configured store budget for one epoch; the scheme
    /// should advance epochs per its own policy.
    EpochTrigger {
        /// The VD whose budget expired.
        vd: VdId,
    },
}

/// A dirty line surfaced by a flush/drain/walk helper.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DirtyLine {
    /// The line.
    pub line: LineAddr,
    /// Its newest content.
    pub token: Token,
    /// Epoch of its last store.
    pub oid: EpochId,
}

/// The baseline MESI hierarchy.
pub struct Hierarchy {
    cfg: Arc<SimConfig>,
    l1s: Vec<CacheArray<L1Line>>,
    l2s: Vec<CacheArray<L2Line>>,
    llc: Vec<CacheArray<LlcLine>>,
    dir: crate::directory::Directory,
    noc: Noc,
    dram: Dram,
    vd_epoch: Vec<EpochId>,
    store_counts: Vec<u64>,
    counters: AccessCounters,
    events: Vec<HierarchyEvent>,
}

impl Hierarchy {
    /// Builds a hierarchy from a validated configuration.
    ///
    /// # Panics
    /// Panics if `cfg` does not validate.
    pub fn new(cfg: &SimConfig) -> Self {
        Self::new_shared(Arc::new(cfg.clone()))
    }

    /// Builds a hierarchy sharing an already-wrapped configuration —
    /// matrix sweeps hand every cell the same `Arc` instead of cloning
    /// the config per hierarchy.
    ///
    /// # Panics
    /// Panics if `cfg` does not validate.
    pub fn new_shared(cfg: Arc<SimConfig>) -> Self {
        cfg.validate().expect("invalid SimConfig");
        let vds = cfg.vd_count() as usize;
        let slices = cfg.llc_slices as u64;
        let slice_sets = cfg.llc_slice_bytes() / (crate::addr::LINE_BYTES * cfg.llc.ways as u64);
        Self {
            l1s: (0..cfg.cores as usize)
                .map(|_| CacheArray::from_params(&cfg.l1))
                .collect(),
            l2s: (0..vds).map(|_| CacheArray::from_params(&cfg.l2)).collect(),
            llc: (0..slices)
                .map(|_| CacheArray::with_stride(slice_sets, cfg.llc.ways, slices))
                .collect(),
            dir: crate::directory::Directory::new(),
            noc: Noc::new(cfg.noc_hop_latency),
            dram: Dram::new(cfg.dram_latency, cfg.dram_oid_superblock_lines),
            vd_epoch: vec![1; vds],
            store_counts: vec![0; vds],
            counters: AccessCounters::default(),
            events: Vec::new(),
            cfg,
        }
    }

    /// The shared configuration handle (for constructing sibling
    /// components without another clone).
    pub fn config_shared(&self) -> &Arc<SimConfig> {
        &self.cfg
    }

    /// The configuration in force.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The VD a core belongs to.
    pub fn vd_of(&self, core: CoreId) -> VdId {
        VdId(core.0 / self.cfg.cores_per_vd)
    }

    fn slice_of(&self, line: LineAddr) -> usize {
        (line.raw() % self.cfg.llc_slices as u64) as usize
    }

    fn local_cores(&self, vd: VdId) -> std::ops::Range<u16> {
        let base = vd.0 * self.cfg.cores_per_vd;
        base..base + self.cfg.cores_per_vd
    }

    /// Current epoch of a VD.
    pub fn epoch(&self, vd: VdId) -> EpochId {
        self.vd_epoch[vd.index()]
    }

    /// Advances one VD's epoch and resets its store budget.
    pub fn advance_epoch(&mut self, vd: VdId) {
        self.vd_epoch[vd.index()] += 1;
        self.store_counts[vd.index()] = 0;
    }

    /// Advances all VDs to a common next epoch (global-epoch schemes).
    pub fn advance_all_epochs(&mut self) {
        let next = self.vd_epoch.iter().copied().max().unwrap_or(0) + 1;
        for e in &mut self.vd_epoch {
            *e = next;
        }
        for c in &mut self.store_counts {
            *c = 0;
        }
    }

    /// Access counters (hits per level, etc.).
    pub fn counters(&self) -> &AccessCounters {
        &self.counters
    }

    /// The NoC model (for traffic reports).
    pub fn noc(&self) -> &Noc {
        &self.noc
    }

    /// The DRAM working memory.
    pub fn dram(&self) -> &Dram {
        &self.dram
    }

    /// Mutable access to the DRAM working memory.
    pub fn dram_mut(&mut self) -> &mut Dram {
        &mut self.dram
    }

    /// Events produced by the most recent [`Hierarchy::access`].
    pub fn events(&self) -> &[HierarchyEvent] {
        &self.events
    }

    /// Performs one access and returns `(latency, value)` — the value
    /// loaded (for loads) or stored (for stores), letting callers verify
    /// read coherence end-to-end. Inspect [`Hierarchy::events`]
    /// afterwards for persistence-relevant events.
    pub fn access(&mut self, core: CoreId, op: MemOp, addr: Addr, token: Token) -> (Cycle, Token) {
        self.events.clear();
        let line = addr.line();
        let vd = self.vd_of(core);
        let perm = match op {
            MemOp::Load => Permission::Read,
            MemOp::Store => Permission::Write,
        };
        match op {
            MemOp::Load => self.counters.loads += 1,
            MemOp::Store => self.counters.stores += 1,
        }

        let mut lat = self.cfg.l1.latency;

        if self.cfg.replay_fast_path {
            // L1 hit with sufficient permission: single-probe fast path.
            // The one `get_mut` probe both classifies the hit and yields
            // the mutable slot a store needs — the reference path probes
            // twice (`get` + `commit_store`'s `peek_mut`). Everything
            // observable (counters, LRU promotion, events, store budget)
            // is identical to the reference path below.
            let epoch = self.vd_epoch[vd.index()];
            if let Some(l) = self.l1s[core.index()].get_mut(line) {
                if perm.satisfied_by(l.state) {
                    self.counters.l1_hits += 1;
                    if op == MemOp::Store {
                        debug_assert!(l.state.is_writable(), "store commit requires M/E");
                        let old_token = l.token;
                        let old_oid = l.oid;
                        l.token = token;
                        l.oid = epoch;
                        l.state = MesiState::M;
                        self.events.push(HierarchyEvent::StoreCommitted {
                            line,
                            old_token,
                            old_oid,
                            new_oid: epoch,
                            first_in_epoch: old_oid != epoch,
                        });
                        let sc = &mut self.store_counts[vd.index()];
                        *sc += 1;
                        if *sc >= self.cfg.epoch_size_stores {
                            *sc = 0;
                            self.events.push(HierarchyEvent::EpochTrigger { vd });
                        }
                        return (lat, token);
                    }
                    return (lat, l.token);
                }
            }
        } else {
            // Reference path: L1 hit with sufficient permission.
            let l1_hit = self.l1s[core.index()].get(line).map(|l| (l.state, l.token));
            if let Some((state, value)) = l1_hit {
                if perm.satisfied_by(state) {
                    self.counters.l1_hits += 1;
                    if op == MemOp::Store {
                        self.commit_store(core, vd, line, token);
                        return (lat, token);
                    }
                    return (lat, value);
                }
            }
        }

        // L1 miss (or upgrade). Go to the L2.
        lat += self.cfg.l2.latency;
        lat += self.ensure_l2(vd, line, perm);

        // Intra-VD: resolve sibling L1 copies. After a load-resolve,
        // siblings retain S copies: the new fill must then also be S
        // (granting E beside a live sharer would let a later store skip
        // the sibling invalidation).
        let (sib_lat, sibling_retains) = self.resolve_sibling_l1s(core, vd, line, op);
        lat += sib_lat;

        // Fill or upgrade the L1.
        let l2_meta = *self.l2s[vd.index()]
            .peek(line)
            .expect("L2 must hold the line after ensure_l2 (inclusion)");
        let fill_state = match op {
            MemOp::Load if sibling_retains => MesiState::S,
            MemOp::Load => match l2_meta.state {
                MesiState::M | MesiState::E => MesiState::E,
                // The L2 keeps the dirty Owned copy; L1s read it Shared.
                MesiState::S | MesiState::O => MesiState::S,
                MesiState::I => unreachable!("ensure_l2 grants at least S"),
            },
            MemOp::Store => MesiState::E,
        };
        // Fill and (for stores) retire in one pass: the commit mutates the
        // line the fill just placed, so no second probe is needed. Commit
        // effects and the victim writeback touch different lines and
        // disjoint event streams, so applying the commit to the stack copy
        // before the insert is observationally identical to the reference
        // fill-then-commit sequence.
        let epoch = self.vd_epoch[vd.index()];
        match self.l1s[core.index()].peek_mut(line) {
            Some(l) => {
                l.state = fill_state;
                l.token = l2_meta.token;
                l.oid = l2_meta.oid;
                if op == MemOp::Store {
                    Self::commit_store_line(
                        l,
                        vd,
                        line,
                        token,
                        epoch,
                        self.cfg.epoch_size_stores,
                        &mut self.store_counts[vd.index()],
                        &mut self.events,
                    );
                }
            }
            None => {
                let mut meta = L1Line {
                    state: fill_state,
                    token: l2_meta.token,
                    oid: l2_meta.oid,
                };
                if op == MemOp::Store {
                    Self::commit_store_line(
                        &mut meta,
                        vd,
                        line,
                        token,
                        epoch,
                        self.cfg.epoch_size_stores,
                        &mut self.store_counts[vd.index()],
                        &mut self.events,
                    );
                }
                let victim = self.l1s[core.index()].insert(line, meta);
                if let Some((vline, vmeta)) = victim {
                    self.l1_writeback(vd, vline, vmeta);
                }
            }
        }

        if op == MemOp::Store {
            return (lat, token);
        }
        (lat, l2_meta.token)
    }

    /// Retires a store into an L1 line that already has write permission.
    fn commit_store(&mut self, core: CoreId, vd: VdId, line: LineAddr, token: Token) {
        let epoch = self.vd_epoch[vd.index()];
        let l = self.l1s[core.index()]
            .peek_mut(line)
            .expect("store commit requires a resident L1 line");
        Self::commit_store_line(
            l,
            vd,
            line,
            token,
            epoch,
            self.cfg.epoch_size_stores,
            &mut self.store_counts[vd.index()],
            &mut self.events,
        );
    }

    /// The store-retire body, operating on an already-located L1 slot so
    /// callers holding the line's `&mut` (the fill path) commit without a
    /// second probe. Borrows only fields disjoint from the L1 arrays.
    #[allow(clippy::too_many_arguments)]
    fn commit_store_line(
        l: &mut L1Line,
        vd: VdId,
        line: LineAddr,
        token: Token,
        epoch: EpochId,
        epoch_size_stores: u64,
        sc: &mut u64,
        events: &mut Vec<HierarchyEvent>,
    ) {
        debug_assert!(l.state.is_writable(), "store commit requires M/E");
        let old_token = l.token;
        let old_oid = l.oid;
        l.token = token;
        l.oid = epoch;
        l.state = MesiState::M;
        events.push(HierarchyEvent::StoreCommitted {
            line,
            old_token,
            old_oid,
            new_oid: epoch,
            first_in_epoch: old_oid != epoch,
        });
        *sc += 1;
        if *sc >= epoch_size_stores {
            *sc = 0;
            events.push(HierarchyEvent::EpochTrigger { vd });
        }
    }

    /// Handles a dirty/clean line evicted from an L1: fold it into the L2
    /// (which must hold the line, by inclusion).
    fn l1_writeback(&mut self, vd: VdId, line: LineAddr, meta: L1Line) {
        if meta.state.is_dirty() {
            let l2 = self.l2s[vd.index()]
                .peek_mut(line)
                .expect("inclusion: L2 must hold every L1 line");
            l2.token = meta.token;
            l2.oid = meta.oid;
            l2.state = MesiState::M;
        }
    }

    /// Invalidates or downgrades sibling L1 copies within the VD, folding
    /// dirty data into the L2. Returns extra latency plus whether any
    /// sibling retains a (Shared) copy afterwards — loads downgrade
    /// siblings in place, stores invalidate them.
    fn resolve_sibling_l1s(
        &mut self,
        core: CoreId,
        vd: VdId,
        line: LineAddr,
        op: MemOp,
    ) -> (Cycle, bool) {
        let mut lat = 0;
        let mut retains = false;
        for c in self.local_cores(vd) {
            if c == core.0 {
                continue;
            }
            let ci = c as usize;
            match op {
                MemOp::Store => {
                    let Some(meta) = self.l1s[ci].remove(line) else {
                        continue;
                    };
                    lat += self.cfg.l1.latency;
                    self.l1_writeback(vd, line, meta);
                }
                MemOp::Load => {
                    let Some(l) = self.l1s[ci].peek_mut(line) else {
                        continue;
                    };
                    lat += self.cfg.l1.latency;
                    retains = true;
                    let meta = *l;
                    if meta.state.is_dirty() {
                        self.l1_writeback(vd, line, meta);
                        let l = self.l1s[ci].peek_mut(line).expect("probed present");
                        l.state = MesiState::S;
                    } else {
                        l.state = MesiState::S;
                    }
                }
            }
        }
        (lat, retains)
    }

    /// Ensures the VD's L2 holds `line` with permission `perm`. Returns
    /// extra latency beyond the L2 lookup already charged.
    fn ensure_l2(&mut self, vd: VdId, line: LineAddr, perm: Permission) -> Cycle {
        if let Some(l2) = self.l2s[vd.index()].get(line) {
            if perm.satisfied_by(l2.state) {
                self.counters.l2_hits += 1;
                return 0;
            }
        }
        // Inter-VD transaction through the directory at the LLC.
        let mut lat = self.cfg.llc.latency;
        lat += match perm {
            Permission::Read => self.noc.send(MsgKind::GetS),
            Permission::Write => self.noc.send(MsgKind::GetX),
        };

        let (token, oid, state, got_dirty_data) = match perm {
            Permission::Write => self.dir_getx(vd, line, &mut lat),
            Permission::Read => self.dir_gets(vd, line, &mut lat),
        };

        // Install into the L2 (upgrade in place or fill).
        match self.l2s[vd.index()].peek_mut(line) {
            Some(l) => {
                l.state = state;
                if got_dirty_data {
                    l.token = token;
                    l.oid = oid;
                }
            }
            None => {
                let victim = self.l2s[vd.index()].insert(line, L2Line { state, token, oid });
                if let Some((vline, vmeta)) = victim {
                    self.evict_l2_line(vd, vline, vmeta, EvictReason::CapacityMiss);
                }
            }
        }
        lat
    }

    /// Directory GETX: acquire exclusive ownership for `vd`.
    /// Returns (token, oid, new L2 state, whether data is dirty w.r.t. memory).
    fn dir_getx(
        &mut self,
        vd: VdId,
        line: LineAddr,
        lat: &mut Cycle,
    ) -> (Token, EpochId, MesiState, bool) {
        let entry = self.dir.entry(line).copied();
        if let Some(e) = entry {
            if let Some(owner) = e.owner() {
                if owner != vd.0 {
                    // Forward invalidation to the owner; data moves
                    // cache-to-cache (ownership transfer, no LLC write).
                    // Under MOESI the Owned line may have plain sharers
                    // too — invalidate them alongside.
                    for sh in e.sharers_except(vd.0) {
                        if sh == owner {
                            continue;
                        }
                        *lat += self.noc.send(MsgKind::FwdGetX);
                        self.noc.send(MsgKind::InvAck);
                        self.invalidate_vd_clean(VdId(sh), line);
                        self.dir.remove_node(line, sh);
                    }
                    *lat += self.noc.send(MsgKind::FwdGetX);
                    *lat += self.cfg.l2.latency;
                    let (token, oid, dirty) = self.strip_vd(VdId(owner), line);
                    *lat += self.noc.send(MsgKind::CacheToCache);
                    self.dir.remove_node(line, owner);
                    self.dir.set_owner(line, vd.0);
                    // Drop any LLC copy. It can be dirty: a sole-fetcher
                    // GETS leaves a dirty LLC line behind while granting E,
                    // and the E owner may have silently upgraded to M. The
                    // requester's copy must then stay dirty w.r.t. memory.
                    let s = self.slice_of(line);
                    let llc_dirty = self.llc[s].remove(line).is_some_and(|m| m.dirty);
                    return (token, oid, MesiState::M, dirty || llc_dirty);
                }
                // We already own it. Under MOESI this is the O→M upgrade:
                // invalidate the other sharers, then write freely.
                for sh in e.sharers_except(vd.0) {
                    *lat += self.noc.send(MsgKind::FwdGetX);
                    self.noc.send(MsgKind::InvAck);
                    self.invalidate_vd_clean(VdId(sh), line);
                    self.dir.remove_node(line, sh);
                }
                self.dir.set_owner(line, vd.0);
                let l2 = self.l2s[vd.index()].peek(line).expect("owner holds line");
                let dirty = l2.state.is_dirty();
                let st = if dirty { MesiState::M } else { MesiState::E };
                return (l2.token, l2.oid, st, dirty);
            }
            // Shared: invalidate every other sharer (clean by MESI).
            for s in e.sharers_except(vd.0) {
                *lat += self.noc.send(MsgKind::FwdGetX);
                self.noc.send(MsgKind::InvAck);
                self.invalidate_vd_clean(VdId(s), line);
                self.dir.remove_node(line, s);
            }
            // Data source: our own S copy, the LLC, or DRAM.
            let own = self.l2s[vd.index()].peek(line).copied();
            let s = self.slice_of(line);
            let llc_copy = self.llc[s].remove(line);
            let (token, oid, dirty) = if let Some(c) = llc_copy {
                self.counters.llc_hits += 1;
                (c.token, c.oid, c.dirty)
            } else if let Some(o) = own {
                (o.token, o.oid, false)
            } else {
                *lat += self.dram.latency();
                self.counters.mem_fetches += 1;
                let t = self.dram.read(line);
                let oid = self.dram.oid(line).map(u64::from).unwrap_or(0);
                (t, oid, false)
            };
            self.dir.remove_node(line, vd.0); // clear own S membership
            self.dir.set_owner(line, vd.0);
            let st = if dirty { MesiState::M } else { MesiState::E };
            return (token, oid, st, dirty);
        }
        // Nobody caches it: LLC then DRAM.
        let s = self.slice_of(line);
        let llc_copy = self.llc[s].remove(line);
        let (token, oid, dirty) = if let Some(c) = llc_copy {
            self.counters.llc_hits += 1;
            (c.token, c.oid, c.dirty)
        } else {
            *lat += self.dram.latency();
            self.counters.mem_fetches += 1;
            let t = self.dram.read(line);
            let oid = self.dram.oid(line).map(u64::from).unwrap_or(0);
            (t, oid, false)
        };
        self.dir.set_owner(line, vd.0);
        let st = if dirty { MesiState::M } else { MesiState::E };
        (token, oid, st, dirty)
    }

    /// Directory GETS: acquire a readable copy for `vd`.
    fn dir_gets(
        &mut self,
        vd: VdId,
        line: LineAddr,
        lat: &mut Cycle,
    ) -> (Token, EpochId, MesiState, bool) {
        let entry = self.dir.entry(line).copied();
        if let Some(e) = entry {
            if let Some(owner) = e.owner() {
                debug_assert_ne!(owner, vd.0, "self-owned lines hit in ensure_l2");
                *lat += self.noc.send(MsgKind::FwdGetS);
                *lat += self.cfg.l2.latency;
                if self.cfg.protocol == crate::config::Protocol::Moesi {
                    // MOESI: the owner keeps its dirty data Owned in place
                    // and supplies it cache-to-cache — no LLC write, no
                    // write-back event.
                    let (token, oid) = self.downgrade_vd_moesi(VdId(owner), line);
                    *lat += self.noc.send(MsgKind::CacheToCache);
                    self.dir.add_sharer_keep_owner(line, vd.0);
                    return (token, oid, MesiState::S, false);
                }
                // MESI: forward downgrade; dirty data is written to the LLC.
                let (token, oid, dirty) = self.downgrade_vd(VdId(owner), line);
                *lat += self.noc.send(MsgKind::Data);
                if dirty {
                    self.llc_install(
                        line,
                        LlcLine {
                            dirty: true,
                            token,
                            oid,
                        },
                        EvictReason::CapacityMiss,
                    );
                    self.events.push(HierarchyEvent::L2Writeback {
                        vd: VdId(owner),
                        line,
                        token,
                        oid,
                        reason: EvictReason::CoherenceDowngrade,
                    });
                }
                self.dir.downgrade_owner(line);
                self.dir.add_sharer(line, vd.0);
                return (token, oid, MesiState::S, false);
            }
            // Shared already: LLC or DRAM supplies data.
            let s = self.slice_of(line);
            let (token, oid) = if let Some(c) = self.llc[s].get(line) {
                self.counters.llc_hits += 1;
                (c.token, c.oid)
            } else {
                *lat += self.dram.latency();
                self.counters.mem_fetches += 1;
                let t = self.dram.read(line);
                let oid = self.dram.oid(line).map(u64::from).unwrap_or(0);
                (t, oid)
            };
            self.dir.add_sharer(line, vd.0);
            return (token, oid, MesiState::S, false);
        }
        // Sole fetcher gets Exclusive (MESI).
        let s = self.slice_of(line);
        let (token, oid, dirty) = if let Some(c) = self.llc[s].get(line) {
            self.counters.llc_hits += 1;
            (c.token, c.oid, c.dirty)
        } else {
            *lat += self.dram.latency();
            self.counters.mem_fetches += 1;
            let t = self.dram.read(line);
            let oid = self.dram.oid(line).map(u64::from).unwrap_or(0);
            (t, oid, false)
        };
        self.dir.set_owner(line, vd.0);
        // A dirty LLC copy stays in the LLC (it still backs memory); the
        // fetcher's copy is clean-exclusive relative to the LLC.
        let _ = dirty;
        (token, oid, MesiState::E, false)
    }

    /// Removes all copies of `line` from `vd` (L1s + L2), returning the
    /// newest token/oid and whether it was dirty.
    fn strip_vd(&mut self, vd: VdId, line: LineAddr) -> (Token, EpochId, bool) {
        let l2meta = self.l2s[vd.index()]
            .remove(line)
            .expect("directory says the VD caches the line");
        let mut token = l2meta.token;
        let mut oid = l2meta.oid;
        let mut dirty = l2meta.state.is_dirty();
        for c in self.local_cores(vd) {
            if let Some(m) = self.l1s[c as usize].remove(line) {
                if m.state.is_dirty() {
                    token = m.token;
                    oid = m.oid;
                    dirty = true;
                }
            }
        }
        (token, oid, dirty)
    }

    /// Downgrades all copies of `line` in `vd` to S, returning the newest
    /// token/oid and whether any copy was dirty.
    fn downgrade_vd(&mut self, vd: VdId, line: LineAddr) -> (Token, EpochId, bool) {
        let mut token;
        let mut oid;
        let mut dirty;
        {
            let l2 = self.l2s[vd.index()]
                .peek_mut(line)
                .expect("directory says the VD caches the line");
            token = l2.token;
            oid = l2.oid;
            dirty = l2.state.is_dirty();
            l2.state = MesiState::S;
        }
        for c in self.local_cores(vd) {
            if let Some(m) = self.l1s[c as usize].peek_mut(line) {
                if m.state.is_dirty() {
                    token = m.token;
                    oid = m.oid;
                    dirty = true;
                }
                m.state = MesiState::S;
            }
        }
        if dirty {
            // Fold the newest data into the L2 copy (now S, clean: the
            // data is about to be deposited in the LLC).
            let l2 = self.l2s[vd.index()].peek_mut(line).expect("still resident");
            l2.token = token;
            l2.oid = oid;
        }
        (token, oid, dirty)
    }

    /// MOESI downgrade: folds the newest data into the L2 as Owned (the
    /// owner keeps write-back responsibility); L1 copies drop to S.
    /// Returns the newest token/oid.
    fn downgrade_vd_moesi(&mut self, vd: VdId, line: LineAddr) -> (Token, EpochId) {
        let (mut token, mut oid);
        {
            let l2 = self.l2s[vd.index()]
                .peek_mut(line)
                .expect("directory says the VD caches the line");
            token = l2.token;
            oid = l2.oid;
        }
        let mut dirty = false;
        for c in self.local_cores(vd) {
            if let Some(m) = self.l1s[c as usize].peek_mut(line) {
                if m.state.is_dirty() {
                    token = m.token;
                    oid = m.oid;
                    dirty = true;
                }
                m.state = MesiState::S;
                m.token = token;
            }
        }
        let l2 = self.l2s[vd.index()].peek_mut(line).expect("resident");
        if dirty || l2.state.is_dirty() {
            l2.state = MesiState::O;
        } else {
            l2.state = MesiState::S;
        }
        l2.token = token;
        l2.oid = oid;
        (token, oid)
    }

    /// Invalidates a clean shared copy in `vd`.
    fn invalidate_vd_clean(&mut self, vd: VdId, line: LineAddr) {
        self.l2s[vd.index()].remove(line);
        for c in self.local_cores(vd) {
            self.l1s[c as usize].remove(line);
        }
    }

    /// Evicts a line from an L2 (with inclusion handling) into the LLC.
    fn evict_l2_line(&mut self, vd: VdId, line: LineAddr, meta: L2Line, reason: EvictReason) {
        let mut token = meta.token;
        let mut oid = meta.oid;
        let mut dirty = meta.state.is_dirty();
        // Inclusion: pull back (and invalidate) any L1 copies.
        for c in self.local_cores(vd) {
            if let Some(m) = self.l1s[c as usize].remove(line) {
                if m.state.is_dirty() {
                    token = m.token;
                    oid = m.oid;
                    dirty = true;
                }
            }
        }
        self.dir.remove_node(line, vd.0);
        self.noc.send(MsgKind::PutX);
        self.llc_install(line, LlcLine { dirty, token, oid }, reason);
        if dirty {
            self.events.push(HierarchyEvent::L2Writeback {
                vd,
                line,
                token,
                oid,
                reason,
            });
        }
    }

    /// Installs (or refreshes) a line in its LLC slice; handles the LLC
    /// victim, writing dirty victims to DRAM.
    fn llc_install(&mut self, line: LineAddr, meta: LlcLine, victim_reason: EvictReason) {
        let s = self.slice_of(line);
        if let Some(existing) = self.llc[s].peek_mut(line) {
            if meta.dirty {
                *existing = meta;
            }
            return;
        }
        if let Some((vline, vmeta)) = self.llc[s].insert(line, meta) {
            if vmeta.dirty {
                self.dram.write(vline, vmeta.token);
                self.events.push(HierarchyEvent::LlcWriteback {
                    line: vline,
                    token: vmeta.token,
                    oid: vmeta.oid,
                    reason: victim_reason,
                });
            }
        }
    }

    // ---- Scheme-facing maintenance operations -------------------------

    /// All dirty LLC lines matching `pred` (tag-walk read phase).
    pub fn dirty_llc_lines(
        &self,
        mut pred: impl FnMut(LineAddr, EpochId) -> bool,
    ) -> Vec<DirtyLine> {
        let mut out = Vec::new();
        for slice in &self.llc {
            for (l, m) in slice.iter() {
                if m.dirty && pred(l, m.oid) {
                    out.push(DirtyLine {
                        line: l,
                        token: m.token,
                        oid: m.oid,
                    });
                }
            }
        }
        out
    }

    /// Marks an LLC line clean after the scheme persisted it (walker
    /// write-back downgrade). Also refreshes the DRAM working copy so that
    /// clean-copy semantics stay exact.
    pub fn clean_llc_line(&mut self, line: LineAddr) {
        let s = self.slice_of(line);
        if let Some(m) = self.llc[s].peek_mut(line) {
            if m.dirty {
                m.dirty = false;
                let t = m.token;
                self.dram.write(line, t);
            }
        }
    }

    /// All dirty lines of `vd`'s L2 matching `pred` (L2 tag walk). The L1s
    /// are probed so the newest data is reported.
    pub fn dirty_l2_lines(
        &self,
        vd: VdId,
        mut pred: impl FnMut(LineAddr, EpochId) -> bool,
    ) -> Vec<DirtyLine> {
        let mut out = Vec::new();
        for (l, m) in self.l2s[vd.index()].iter() {
            let mut token = m.token;
            let mut oid = m.oid;
            let mut dirty = m.state.is_dirty();
            for c in self.local_cores(vd) {
                if let Some(lm) = self.l1s[c as usize].peek(l) {
                    if lm.state.is_dirty() {
                        token = lm.token;
                        oid = lm.oid;
                        dirty = true;
                    }
                }
            }
            if dirty && pred(l, oid) {
                out.push(DirtyLine {
                    line: l,
                    token,
                    oid,
                });
            }
        }
        out
    }

    /// Marks an L2 line (and its L1 copies) clean after the scheme
    /// persisted it, refreshing the DRAM working copy and reconciling any
    /// stale LLC copy (a dirty LLC copy can survive an E-grant fetch that
    /// was later silently upgraded; the VD's data is authoritative).
    pub fn clean_l2_line(&mut self, vd: VdId, line: LineAddr) {
        let mut newest: Option<(Token, EpochId)> = None;
        if let Some(m) = self.l2s[vd.index()].peek_mut(line) {
            if m.state.is_dirty() {
                m.state = if m.state == MesiState::O {
                    MesiState::S
                } else {
                    MesiState::E
                };
                newest = Some((m.token, m.oid));
            }
        }
        for c in self.local_cores(vd) {
            if let Some(m) = self.l1s[c as usize].peek_mut(line) {
                if m.state.is_dirty() {
                    m.state = MesiState::E;
                    newest = Some((m.token, m.oid));
                }
            }
        }
        if let Some((t, oid)) = newest {
            // Fold newest into L2 so later evictions stay consistent.
            if let Some(m) = self.l2s[vd.index()].peek_mut(line) {
                m.token = t;
                m.oid = oid;
            }
            let s = self.slice_of(line);
            if let Some(m) = self.llc[s].peek_mut(line) {
                m.token = t;
                m.oid = oid;
                m.dirty = false;
            }
            self.dram.write(line, t);
        }
    }

    /// `clwb`-style flush of one line: cleans every cached copy, folds
    /// the newest content into every remaining copy and the DRAM home,
    /// and returns the newest content plus whether any copy was dirty.
    /// Used by the software schemes' barrier flushes.
    ///
    /// Folding matters: downgrading a dirty L1 copy to clean without
    /// pushing its data into the L2 would let a later silent clean
    /// eviction drop the newest value.
    pub fn clwb(&mut self, line: LineAddr) -> (Token, bool) {
        let mut token = self.dram.peek(line);
        let mut dirty = false;
        let s = self.slice_of(line);
        let llc_holds = match self.llc[s].peek(line) {
            Some(m) => {
                if m.dirty {
                    token = m.token;
                    dirty = true;
                }
                true
            }
            None => false,
        };
        // The discovery scan records which caches hold the line (typical
        // flushes touch one VD) so the clean pass below probes only those
        // instead of re-scanning the whole machine. Machines wider than
        // the mask clean by full re-scan.
        let masked = self.l2s.len() <= 128 && self.l1s.len() <= 128;
        let mut l2_mask: u128 = 0;
        let mut l1_mask: u128 = 0;
        for (i, l2) in self.l2s.iter().enumerate() {
            if let Some(m) = l2.peek(line) {
                if masked {
                    l2_mask |= 1 << i;
                }
                if m.state.is_dirty() {
                    token = m.token;
                    dirty = true;
                }
            }
        }
        for (i, l1) in self.l1s.iter().enumerate() {
            if let Some(m) = l1.peek(line) {
                if masked {
                    l1_mask |= 1 << i;
                }
                if m.state.is_dirty() {
                    token = m.token;
                    dirty = true;
                }
            }
        }
        // Clean every copy and fold the newest data into all of them.
        if llc_holds {
            let m = self.llc[s].peek_mut(line).expect("probed above");
            m.dirty = false;
            m.token = token;
        }
        let clean_l2 = |l2: &mut CacheArray<L2Line>| {
            if let Some(m) = l2.peek_mut(line) {
                if m.state.is_dirty() {
                    // Owned copies stay shared after cleaning.
                    m.state = if m.state == MesiState::O {
                        MesiState::S
                    } else {
                        MesiState::E
                    };
                }
                m.token = token;
            }
        };
        let clean_l1 = |l1: &mut CacheArray<L1Line>| {
            if let Some(m) = l1.peek_mut(line) {
                if m.state.is_dirty() {
                    m.state = MesiState::E;
                }
                m.token = token;
            }
        };
        if masked {
            while l2_mask != 0 {
                let i = l2_mask.trailing_zeros() as usize;
                l2_mask &= l2_mask - 1;
                clean_l2(&mut self.l2s[i]);
            }
            while l1_mask != 0 {
                let i = l1_mask.trailing_zeros() as usize;
                l1_mask &= l1_mask - 1;
                clean_l1(&mut self.l1s[i]);
            }
        } else {
            self.l2s.iter_mut().for_each(clean_l2);
            self.l1s.iter_mut().for_each(clean_l1);
        }
        if dirty {
            self.dram.write(line, token);
        }
        (token, dirty)
    }

    /// Flushes every dirty line in the hierarchy to DRAM and returns them
    /// (newest copy each). Used at the end of a run.
    pub fn drain_dirty(&mut self) -> Vec<DirtyLine> {
        let mut out: Vec<DirtyLine> = Vec::new();
        // L1 dirty lines fold into L2s first.
        for core in 0..self.l1s.len() {
            let vd = VdId(core as u16 / self.cfg.cores_per_vd);
            let dirty: Vec<LineAddr> = self.l1s[core].lines_where(|_, m| m.state.is_dirty());
            for l in dirty {
                let meta = *self.l1s[core].peek(l).expect("listed");
                self.l1_writeback(vd, l, meta);
                let m = self.l1s[core].peek_mut(l).expect("listed");
                m.state = MesiState::E;
            }
        }
        // L2 dirty lines. Any LLC copy of the same line is reconciled:
        // the owning VD's data is authoritative (a stale dirty LLC copy
        // can survive an E-grant fetch that was silently upgraded).
        for vdix in 0..self.l2s.len() {
            let dirty: Vec<LineAddr> = self.l2s[vdix].lines_where(|_, m| m.state.is_dirty());
            for l in dirty {
                let m = self.l2s[vdix].peek_mut(l).expect("listed");
                m.state = if m.state == MesiState::O {
                    MesiState::S
                } else {
                    MesiState::E
                };
                let (t, oid) = (m.token, m.oid);
                let s = self.slice_of(l);
                if let Some(c) = self.llc[s].peek_mut(l) {
                    c.token = t;
                    c.oid = oid;
                    c.dirty = false;
                }
                self.dram.write(l, t);
                out.push(DirtyLine {
                    line: l,
                    token: t,
                    oid,
                });
            }
        }
        // Remaining LLC dirty lines.
        for s in 0..self.llc.len() {
            let dirty: Vec<LineAddr> = self.llc[s].lines_where(|_, m| m.dirty);
            for l in dirty {
                let m = self.llc[s].peek_mut(l).expect("listed");
                m.dirty = false;
                let (t, oid) = (m.token, m.oid);
                self.dram.write(l, t);
                out.push(DirtyLine {
                    line: l,
                    token: t,
                    oid,
                });
            }
        }
        out
    }

    /// Debug: human-readable state of every copy of `line`.
    pub fn debug_line_state(&self, line: LineAddr) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (i, l1) in self.l1s.iter().enumerate() {
            if let Some(m) = l1.peek(line) {
                let _ = write!(out, "L1[{}]:{}/e{}/t{} ", i, m.state, m.oid, m.token);
            }
        }
        for (i, l2) in self.l2s.iter().enumerate() {
            if let Some(m) = l2.peek(line) {
                let _ = write!(out, "L2[{}]:{}/e{}/t{} ", i, m.state, m.oid, m.token);
            }
        }
        let s = self.slice_of(line);
        if let Some(m) = self.llc[s].peek(line) {
            let _ = write!(
                out,
                "LLC:{}/e{}/t{} ",
                if m.dirty { "D" } else { "C" },
                m.oid,
                m.token
            );
        }
        if let Some(e) = self.dir.entry(line) {
            let _ = write!(
                out,
                "dir[own={:?},sh={:?}] ",
                e.owner(),
                e.sharers().collect::<Vec<_>>()
            );
        }
        let _ = write!(out, "dram:t{}", self.dram.peek(line));
        out
    }

    /// The newest visible content of a line anywhere in the system
    /// (verification helper).
    pub fn newest_token(&self, line: LineAddr) -> Token {
        for l1 in &self.l1s {
            if let Some(m) = l1.peek(line) {
                if m.state.is_dirty() {
                    return m.token;
                }
            }
        }
        for l2 in &self.l2s {
            if let Some(m) = l2.peek(line) {
                if m.state.is_dirty() {
                    return m.token;
                }
            }
        }
        let s = self.slice_of(line);
        if let Some(m) = self.llc[s].peek(line) {
            if m.dirty {
                return m.token;
            }
        }
        // Clean copies equal memory.
        self.dram.peek(line)
    }

    /// Installs a cross-island line at its DRAM home during a sharded
    /// replay barrier (see [`crate::shard`]). Returns `true` if the
    /// token was written. If any cache level still holds the line, the
    /// island's own copy is authoritative and the import is skipped —
    /// keeping the island's coherence lattice untouched is what lets
    /// each island evolve exactly as its local trace dictates.
    pub fn import_line(&mut self, line: LineAddr, token: Token) -> bool {
        if self.l1s.iter().any(|c| c.peek(line).is_some())
            || self.l2s.iter().any(|c| c.peek(line).is_some())
            || self.llc[self.slice_of(line)].peek(line).is_some()
        {
            return false;
        }
        self.dram.write(line, token);
        true
    }

    /// Batched [`Hierarchy::import_line`] over one window's sorted
    /// exchange run: one pass, own-island entries skipped inline,
    /// applied deposits mirrored into `golden`. Amortizes the per-line
    /// call dispatch of the sharded barrier's import phase.
    pub fn import_lines(
        &mut self,
        entries: &[crate::shard::ExchangeEntry],
        island: u16,
        golden: &mut crate::fastmap::FastMap<LineAddr, Token>,
    ) -> u64 {
        let mut applied = 0;
        for e in entries {
            if e.src == island {
                continue;
            }
            if self.l1s.iter().any(|c| c.peek(e.line).is_some())
                || self.l2s.iter().any(|c| c.peek(e.line).is_some())
                || self.llc[self.slice_of(e.line)].peek(e.line).is_some()
            {
                continue;
            }
            self.dram.write(e.line, e.token);
            golden.insert(e.line, e.token);
            applied += 1;
        }
        applied
    }
}

impl std::fmt::Debug for Hierarchy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hierarchy")
            .field("cores", &self.cfg.cores)
            .field("vds", &self.cfg.vd_count())
            .field("loads", &self.counters.loads)
            .field("stores", &self.counters.stores)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> SimConfig {
        SimConfig::builder()
            .cores(4, 2)
            .l1(1024, 2, 4) // 8 sets
            .l2(4096, 4, 8) // 16 sets
            .llc(16 * 1024, 4, 30, 2) // 2 slices, 32 sets each
            .epoch_size_stores(1_000_000)
            .build()
            .unwrap()
    }

    fn addr(line: u64) -> Addr {
        Addr::new(line * 64)
    }

    #[test]
    fn load_miss_then_hit() {
        let mut h = Hierarchy::new(&small_cfg());
        let (lat1, _) = h.access(CoreId(0), MemOp::Load, addr(1), 0);
        assert!(lat1 > h.config().l1.latency, "first access misses");
        assert_eq!(h.counters().mem_fetches, 1);
        let (lat2, v) = h.access(CoreId(0), MemOp::Load, addr(1), 0);
        assert_eq!(v, 0, "unwritten line loads zero");
        assert_eq!(lat2, h.config().l1.latency, "second access hits L1");
        assert_eq!(h.counters().l1_hits, 1);
    }

    #[test]
    fn store_then_remote_load_transfers_newest_data() {
        let mut h = Hierarchy::new(&small_cfg());
        h.access(CoreId(0), MemOp::Store, addr(5), 77);
        // Core 2 is in the other VD.
        h.access(CoreId(2), MemOp::Load, addr(5), 0);
        // The downgrade deposited dirty data into the LLC and produced a
        // writeback event.
        assert!(h.events().iter().any(|e| matches!(
            e,
            HierarchyEvent::L2Writeback {
                reason: EvictReason::CoherenceDowngrade,
                token: 77,
                ..
            }
        )));
        assert_eq!(h.newest_token(LineAddr::new(5)), 77);
        // Both VDs can now read it cheaply, and see the stored value.
        let (lat, v) = h.access(CoreId(0), MemOp::Load, addr(5), 0);
        assert_eq!(lat, h.config().l1.latency);
        assert_eq!(v, 77);
    }

    #[test]
    fn remote_store_invalidates_and_moves_ownership() {
        let mut h = Hierarchy::new(&small_cfg());
        h.access(CoreId(0), MemOp::Store, addr(9), 1);
        h.access(CoreId(2), MemOp::Store, addr(9), 2);
        assert_eq!(h.newest_token(LineAddr::new(9)), 2);
        // Core 0 must re-fetch (its copy was invalidated) and sees the
        // remote store's value.
        let (lat, v) = h.access(CoreId(0), MemOp::Load, addr(9), 0);
        assert!(lat > h.config().l1.latency);
        assert_eq!(v, 2);
        assert_eq!(h.newest_token(LineAddr::new(9)), 2);
    }

    #[test]
    fn sibling_l1_store_transfer_within_vd() {
        let mut h = Hierarchy::new(&small_cfg());
        h.access(CoreId(0), MemOp::Store, addr(3), 10);
        // Core 1 shares VD 0; its store must see/replace core 0's copy.
        h.access(CoreId(1), MemOp::Store, addr(3), 11);
        assert_eq!(h.newest_token(LineAddr::new(3)), 11);
        // Core 0's copy was invalidated.
        let (lat, v) = h.access(CoreId(0), MemOp::Load, addr(3), 0);
        assert!(lat > h.config().l1.latency, "sibling invalidated the copy");
        assert_eq!(v, 11);
        assert_eq!(h.newest_token(LineAddr::new(3)), 11);
    }

    #[test]
    fn store_commit_events_track_first_write_per_epoch() {
        let mut h = Hierarchy::new(&small_cfg());
        h.access(CoreId(0), MemOp::Store, addr(7), 1);
        assert!(h.events().iter().any(|e| matches!(
            e,
            HierarchyEvent::StoreCommitted {
                first_in_epoch: true,
                ..
            }
        )));
        h.access(CoreId(0), MemOp::Store, addr(7), 2);
        assert!(h.events().iter().any(|e| matches!(
            e,
            HierarchyEvent::StoreCommitted {
                first_in_epoch: false,
                old_token: 1,
                ..
            }
        )));
        // New epoch: first write again.
        h.advance_epoch(VdId(0));
        h.access(CoreId(0), MemOp::Store, addr(7), 3);
        assert!(h.events().iter().any(|e| matches!(
            e,
            HierarchyEvent::StoreCommitted {
                first_in_epoch: true,
                old_token: 2,
                ..
            }
        )));
    }

    #[test]
    fn epoch_trigger_fires_on_store_budget() {
        let cfg = SimConfig::builder()
            .cores(4, 2)
            .l1(1024, 2, 4)
            .l2(4096, 4, 8)
            .llc(16 * 1024, 4, 30, 2)
            .epoch_size_stores(3)
            .build()
            .unwrap();
        let mut h = Hierarchy::new(&cfg);
        let mut triggers = 0;
        for i in 0..6 {
            h.access(CoreId(0), MemOp::Store, addr(i), i + 1);
            triggers += h
                .events()
                .iter()
                .filter(|e| matches!(e, HierarchyEvent::EpochTrigger { .. }))
                .count();
        }
        assert_eq!(triggers, 2);
    }

    #[test]
    fn capacity_evictions_cascade_to_dram() {
        let cfg = small_cfg();
        let mut h = Hierarchy::new(&cfg);
        // Write far more lines than LLC capacity (16KB = 256 lines).
        let total = 2_000u64;
        for i in 0..total {
            h.access(CoreId(0), MemOp::Store, addr(i), i + 1);
        }
        let _ = h.drain_dirty();
        for i in 0..total {
            assert_eq!(
                h.newest_token(LineAddr::new(i)),
                i + 1,
                "line {i} lost its data in the eviction cascade"
            );
        }
        assert!(h.dram().writes() > 0, "dirty LLC victims reached DRAM");
    }

    #[test]
    fn clwb_cleans_and_returns_newest() {
        let mut h = Hierarchy::new(&small_cfg());
        h.access(CoreId(0), MemOp::Store, addr(4), 99);
        let (tok, dirty) = h.clwb(LineAddr::new(4));
        assert_eq!(tok, 99);
        assert!(dirty);
        assert_eq!(h.dram().peek(LineAddr::new(4)), 99);
        let (_, dirty2) = h.clwb(LineAddr::new(4));
        assert!(!dirty2, "second clwb finds the line clean");
        // The copy is still cached: hit at L1 latency with the value.
        let (lat, v) = h.access(CoreId(0), MemOp::Load, addr(4), 0);
        assert_eq!(lat, h.config().l1.latency);
        assert_eq!(v, 99);
    }

    #[test]
    fn drain_returns_every_dirty_line_once() {
        let mut h = Hierarchy::new(&small_cfg());
        for i in 0..10u64 {
            h.access(CoreId((i % 4) as u16), MemOp::Store, addr(i), 100 + i);
        }
        let drained = h.drain_dirty();
        let mut lines: Vec<u64> = drained.iter().map(|d| d.line.raw()).collect();
        lines.sort_unstable();
        let before = lines.len();
        lines.dedup();
        assert_eq!(lines.len(), before, "no line drained twice");
        assert_eq!(lines.len(), 10);
        for d in &drained {
            assert_eq!(h.dram().peek(d.line), d.token);
        }
        assert!(h.drain_dirty().is_empty(), "second drain finds nothing");
    }

    #[test]
    fn l2_tag_walk_sees_l1_newest_data() {
        let mut h = Hierarchy::new(&small_cfg());
        h.access(CoreId(0), MemOp::Store, addr(2), 5);
        let dirty = h.dirty_l2_lines(VdId(0), |_, _| true);
        assert_eq!(dirty.len(), 1);
        assert_eq!(dirty[0].token, 5, "walker must see the L1's newer data");
        h.clean_l2_line(VdId(0), LineAddr::new(2));
        assert!(h.dirty_l2_lines(VdId(0), |_, _| true).is_empty());
        assert_eq!(h.dram().peek(LineAddr::new(2)), 5);
    }

    #[test]
    fn llc_tag_walk_filters_by_epoch() {
        let mut h = Hierarchy::new(&small_cfg());
        h.access(CoreId(0), MemOp::Store, addr(11), 1);
        // Downgrade to push dirty data into the LLC.
        h.access(CoreId(2), MemOp::Load, addr(11), 0);
        h.advance_epoch(VdId(0));
        h.access(CoreId(0), MemOp::Store, addr(12), 2);
        h.access(CoreId(2), MemOp::Load, addr(12), 0);
        let old = h.dirty_llc_lines(|_, oid| oid < 2);
        assert_eq!(old.len(), 1);
        assert_eq!(old[0].line, LineAddr::new(11));
        h.clean_llc_line(old[0].line);
        assert!(h.dirty_llc_lines(|_, oid| oid < 2).is_empty());
    }

    #[test]
    fn many_threads_functional_correctness() {
        // Random-ish mixed traffic across 4 cores; final tokens must match
        // a simple sequential model of the same access order.
        let mut h = Hierarchy::new(&small_cfg());
        let mut model = std::collections::HashMap::new();
        let mut tok = 1u64;
        for i in 0..4000u64 {
            let core = CoreId((i % 4) as u16);
            let line = (i * 7 + i / 13) % 97;
            if i % 3 == 0 {
                h.access(core, MemOp::Load, addr(line), 0);
            } else {
                h.access(core, MemOp::Store, addr(line), tok);
                model.insert(line, tok);
                tok += 1;
            }
        }
        for (line, expect) in model {
            assert_eq!(h.newest_token(LineAddr::new(line)), expect, "line {line}");
        }
    }
}
