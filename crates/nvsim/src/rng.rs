//! Deterministic pseudo-random number generation with no external crates.
//!
//! The build environment has no access to the crates registry, so the
//! whole workspace (workload generators, differential tests, perf
//! harness) draws randomness from this xoshiro256++ generator seeded via
//! SplitMix64. Sequences are stable across platforms and releases: traces
//! generated from a seed are part of the experiment definition
//! (EXPERIMENTS.md), so the generator must never change observable output
//! for a given seed.

use std::ops::Range;

/// A deterministic xoshiro256++ PRNG seeded through SplitMix64.
///
/// ```
/// use nvsim::rng::Rng64;
///
/// let mut a = Rng64::seed_from_u64(7);
/// let mut b = Rng64::seed_from_u64(7);
/// assert_eq!(a.gen_u64(), b.gen_u64());
/// let x: usize = a.gen_range(0..10);
/// assert!(x < 10);
/// ```
#[derive(Clone, Debug)]
pub struct Rng64 {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng64 {
    /// Creates a generator whose full 256-bit state is expanded from
    /// `seed` with SplitMix64 (the expansion recommended by the xoshiro
    /// authors; avoids the all-zero state for every seed).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Alias for [`Rng64::next_u64`] matching the call shape of the
    /// previous external-crate API (`rng.gen::<u64>()`).
    #[inline]
    pub fn gen_u64(&mut self) -> u64 {
        self.next_u64()
    }

    /// A uniform value in `[range.start, range.end)`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range<T: UniformInt>(&mut self, range: Range<T>) -> T {
        let (lo, hi) = (range.start.as_u64(), range.end.as_u64());
        assert!(lo < hi, "gen_range called with an empty range");
        // Modulo reduction: the bias over a 64-bit draw is negligible for
        // simulation-sized spans and keeps the sequence trivially stable.
        T::from_u64(lo + self.next_u64() % (hi - lo))
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        // Compare against the top 53 bits mapped into [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

/// Integer types [`Rng64::gen_range`] can sample uniformly.
pub trait UniformInt: Copy {
    /// Widens to `u64` (all supported types are unsigned-representable).
    fn as_u64(self) -> u64;
    /// Narrows from `u64` (the value is guaranteed in range).
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            #[inline]
            fn as_u64(self) -> u64 {
                self as u64
            }
            #[inline]
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequences_are_deterministic_per_seed() {
        let mut a = Rng64::seed_from_u64(0xC0FFEE);
        let mut b = Rng64::seed_from_u64(0xC0FFEE);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng64::seed_from_u64(0xC0FFEF);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = Rng64::seed_from_u64(0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..64 {
            seen.insert(r.next_u64());
        }
        assert!(seen.len() > 60, "outputs vary from the zero seed");
    }

    #[test]
    fn gen_range_stays_in_bounds_for_every_width() {
        let mut r = Rng64::seed_from_u64(1);
        for _ in 0..1000 {
            let a: u16 = r.gen_range(3..17);
            assert!((3..17).contains(&a));
            let b: usize = r.gen_range(0..5);
            assert!(b < 5);
            let c: u64 = r.gen_range(1_000_000..1_000_010);
            assert!((1_000_000..1_000_010).contains(&c));
        }
    }

    #[test]
    fn gen_range_covers_small_spans() {
        let mut r = Rng64::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 8 values drawn");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = Rng64::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "~25%: {hits}");
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Rng64::seed_from_u64(0).gen_range(5u64..5);
    }
}
