//! A generic set-associative cache array with LRU replacement.
//!
//! The array stores per-line user metadata `T` (coherence state, OID tag,
//! content token, sharer bits — whatever the level needs). It is used for
//! L1s, L2s, LLC slices, PiCL's version-tagged LLC and NVOverlay's OMC
//! buffer alike.
//!
//! Layout is structure-of-arrays: tags, LRU stamps and metadata live in
//! three parallel flat vectors indexed by `set * ways + slot`. The probe
//! loop — by far the hottest code in replay — scans only the compact tag
//! vector; metadata is touched once, after the hit slot is known. Slot
//! ordering (push-at-end, `swap_remove` on evict) is bit-identical to the
//! old vec-of-vecs layout because iteration order feeds downstream event
//! and NVM write ordering.

use crate::addr::LineAddr;
use crate::config::CacheParams;

/// A set-associative array mapping [`LineAddr`] → `T` with LRU replacement.
///
/// ```
/// use nvsim::cache::CacheArray;
/// use nvsim::addr::LineAddr;
///
/// let mut c: CacheArray<u32> = CacheArray::new(2, 2);
/// assert!(c.insert(LineAddr::new(0), 10).is_none());
/// assert!(c.insert(LineAddr::new(2), 20).is_none()); // same set (2 sets)
/// // Third distinct line in set 0 evicts the LRU entry (line 0).
/// let victim = c.insert(LineAddr::new(4), 30).unwrap();
/// assert_eq!(victim.0, LineAddr::new(0));
/// assert_eq!(victim.1, 10);
/// ```
#[derive(Clone, Debug)]
pub struct CacheArray<T> {
    /// Tags, `sets * ways` long; slots `0..set_len[s]` of each set are live.
    tags: Vec<LineAddr>,
    /// LRU stamps, parallel to `tags`.
    lru: Vec<u64>,
    /// Per-line metadata, parallel to `tags`. `Some` exactly on live slots.
    metas: Vec<Option<T>>,
    /// Live slot count per set.
    set_len: Vec<u32>,
    set_mask: u64,
    index_stride: u64,
    ways: usize,
    tick: u64,
}

impl<T> CacheArray<T> {
    /// Creates an array with `sets` sets of `ways` ways.
    ///
    /// # Panics
    /// Panics if `sets` is not a power of two or `ways` is zero.
    pub fn new(sets: u64, ways: u32) -> Self {
        Self::with_stride(sets, ways, 1)
    }

    /// Like [`CacheArray::new`], but set indices are computed from
    /// `line / index_stride`. Sliced caches (LLC) pass the slice count as
    /// the stride so that consecutive lines in one slice map to
    /// consecutive sets.
    ///
    /// # Panics
    /// Panics if `sets` is not a power of two, or `ways`/`index_stride` is
    /// zero.
    pub fn with_stride(sets: u64, ways: u32, index_stride: u64) -> Self {
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(ways > 0, "associativity must be positive");
        assert!(index_stride > 0, "index stride must be positive");
        let slots = (sets * ways as u64) as usize;
        Self {
            tags: vec![LineAddr::new(0); slots],
            lru: vec![0; slots],
            metas: (0..slots).map(|_| None).collect(),
            set_len: vec![0; sets as usize],
            set_mask: sets - 1,
            index_stride,
            ways: ways as usize,
            tick: 0,
        }
    }

    /// Creates an array from one cache level's parameters.
    pub fn from_params(p: &CacheParams) -> Self {
        Self::new(p.sets(), p.ways)
    }

    #[inline]
    fn set_of(&self, line: LineAddr) -> usize {
        ((line.raw() / self.index_stride) & self.set_mask) as usize
    }

    /// Finds the flat slot index of `line`, scanning only the live tag
    /// prefix of its set.
    #[inline]
    fn probe(&self, line: LineAddr) -> Option<usize> {
        let s = self.set_of(line);
        let base = s * self.ways;
        let len = self.set_len[s] as usize;
        self.tags[base..base + len]
            .iter()
            .position(|&t| t == line)
            .map(|i| base + i)
    }

    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Looks up a line without touching LRU state.
    pub fn peek(&self, line: LineAddr) -> Option<&T> {
        let i = self.probe(line)?;
        self.metas[i].as_ref()
    }

    /// Looks up a line, promoting it to MRU on hit.
    pub fn get(&mut self, line: LineAddr) -> Option<&T> {
        self.get_mut(line).map(|m| &*m)
    }

    /// Mutable lookup, promoting the line to MRU on hit. Misses consume
    /// no LRU tick, so a miss-heavy probe stream cannot skew the victim
    /// ordering of later inserts.
    pub fn get_mut(&mut self, line: LineAddr) -> Option<&mut T> {
        let i = self.probe(line)?;
        self.tick += 1;
        self.lru[i] = self.tick;
        self.metas[i].as_mut()
    }

    /// Mutable lookup without LRU promotion (for coherence/walker probes
    /// that must not perturb replacement, paper §IV-C "tag walker runs
    /// opportunistically").
    pub fn peek_mut(&mut self, line: LineAddr) -> Option<&mut T> {
        let i = self.probe(line)?;
        self.metas[i].as_mut()
    }

    /// Whether the line is resident.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.probe(line).is_some()
    }

    /// Inserts a line as MRU, returning the evicted LRU victim if the set
    /// was full.
    ///
    /// # Panics
    /// Panics if the line is already resident (update in place via
    /// [`CacheArray::get_mut`] instead).
    pub fn insert(&mut self, line: LineAddr, meta: T) -> Option<(LineAddr, T)> {
        let tick = self.next_tick();
        let s = self.set_of(line);
        let base = s * self.ways;
        let len = self.set_len[s] as usize;
        // One pass over the set: duplicate detection and LRU-victim
        // selection together (ties keep the earliest slot, matching a
        // `min_by_key` scan).
        let mut victim_idx = 0;
        let mut victim_lru = u64::MAX;
        for i in 0..len {
            assert!(
                self.tags[base + i] != line,
                "line {line} already resident; update in place instead"
            );
            if self.lru[base + i] < victim_lru {
                victim_lru = self.lru[base + i];
                victim_idx = i;
            }
        }
        if len == self.ways {
            // swap_remove(victim_idx) then push: the last slot's entry
            // moves into the victim slot and the new line lands at the
            // end — exactly the old vec-of-vecs ordering.
            let last = len - 1;
            let v_line = self.tags[base + victim_idx];
            let v_meta = self.metas[base + victim_idx].take();
            self.tags[base + victim_idx] = self.tags[base + last];
            self.lru[base + victim_idx] = self.lru[base + last];
            self.metas[base + victim_idx] = self.metas[base + last].take();
            self.tags[base + last] = line;
            self.lru[base + last] = tick;
            self.metas[base + last] = Some(meta);
            Some((v_line, v_meta.expect("live slot has metadata")))
        } else {
            self.tags[base + len] = line;
            self.lru[base + len] = tick;
            self.metas[base + len] = Some(meta);
            self.set_len[s] = (len + 1) as u32;
            None
        }
    }

    /// Removes a line, returning its metadata.
    pub fn remove(&mut self, line: LineAddr) -> Option<T> {
        let i = self.probe(line)?;
        let s = self.set_of(line);
        let base = s * self.ways;
        let last = base + self.set_len[s] as usize - 1;
        let meta = self.metas[i].take();
        // swap_remove: the last live slot fills the hole.
        if i != last {
            self.tags[i] = self.tags[last];
            self.lru[i] = self.lru[last];
            self.metas[i] = self.metas[last].take();
        }
        self.set_len[s] -= 1;
        meta
    }

    /// The LRU victim the next insert into `line`'s set would evict, if the
    /// set is currently full.
    pub fn would_evict(&self, line: LineAddr) -> Option<LineAddr> {
        let s = self.set_of(line);
        let base = s * self.ways;
        let len = self.set_len[s] as usize;
        if len == self.ways {
            (0..len)
                .min_by_key(|&i| self.lru[base + i])
                .map(|i| self.tags[base + i])
        } else {
            None
        }
    }

    /// Iterates all resident lines (tag-walk order: set by set).
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, &T)> {
        self.set_len.iter().enumerate().flat_map(move |(s, &len)| {
            let base = s * self.ways;
            (base..base + len as usize)
                .map(move |i| (self.tags[i], self.metas[i].as_ref().expect("live slot")))
        })
    }

    /// Mutable iteration over all resident lines.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (LineAddr, &mut T)> {
        let ways = self.ways;
        let tags = &self.tags;
        let set_len = &self.set_len;
        self.metas.iter_mut().enumerate().filter_map(move |(i, m)| {
            let s = i / ways;
            let slot = i % ways;
            if slot < set_len[s] as usize {
                Some((tags[i], m.as_mut().expect("live slot")))
            } else {
                None
            }
        })
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.set_len.iter().map(|&l| l as usize).sum()
    }

    /// Whether the array holds no lines.
    pub fn is_empty(&self) -> bool {
        self.set_len.iter().all(|&l| l == 0)
    }

    /// Total capacity in lines.
    pub fn capacity(&self) -> usize {
        self.set_len.len() * self.ways
    }

    /// Collects the addresses of lines matching a predicate (borrow-friendly
    /// helper for tag walkers that must mutate while scanning).
    pub fn lines_where(&self, mut pred: impl FnMut(LineAddr, &T) -> bool) -> Vec<LineAddr> {
        self.iter()
            .filter(|(l, m)| pred(*l, m))
            .map(|(l, _)| l)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    #[test]
    fn hit_and_miss() {
        let mut c: CacheArray<u8> = CacheArray::new(4, 2);
        assert!(c.insert(line(5), 1).is_none());
        assert_eq!(c.get(line(5)), Some(&1));
        assert_eq!(c.get(line(9)), None);
        assert!(c.contains(line(5)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c: CacheArray<u8> = CacheArray::new(1, 2);
        c.insert(line(1), 1);
        c.insert(line(2), 2);
        // Touch 1 so 2 becomes LRU.
        c.get(line(1));
        let (v, m) = c.insert(line(3), 3).expect("set full");
        assert_eq!(v, line(2));
        assert_eq!(m, 2);
    }

    #[test]
    fn peek_does_not_promote() {
        let mut c: CacheArray<u8> = CacheArray::new(1, 2);
        c.insert(line(1), 1);
        c.insert(line(2), 2);
        // Peek at 1: without promotion it stays LRU.
        assert_eq!(c.peek(line(1)), Some(&1));
        let (v, _) = c.insert(line(3), 3).unwrap();
        assert_eq!(v, line(1));
    }

    #[test]
    fn remove_frees_the_slot() {
        let mut c: CacheArray<u8> = CacheArray::new(1, 1);
        c.insert(line(1), 1);
        assert_eq!(c.remove(line(1)), Some(1));
        assert_eq!(c.remove(line(1)), None);
        assert!(c.insert(line(2), 2).is_none());
    }

    #[test]
    fn would_evict_predicts_the_victim() {
        let mut c: CacheArray<u8> = CacheArray::new(1, 2);
        assert_eq!(c.would_evict(line(0)), None);
        c.insert(line(1), 1);
        assert_eq!(c.would_evict(line(0)), None);
        c.insert(line(2), 2);
        assert_eq!(c.would_evict(line(0)), Some(line(1)));
        let (v, _) = c.insert(line(3), 3).unwrap();
        assert_eq!(v, line(1));
    }

    #[test]
    fn stride_separates_slice_indexing() {
        // 2 sets, stride 4: lines 0,4 map to set 0/1 respectively.
        let mut c: CacheArray<u8> = CacheArray::with_stride(2, 1, 4);
        c.insert(line(0), 0);
        assert!(
            c.insert(line(4), 1).is_none(),
            "different sets under stride"
        );
        // line 8 shares set 0 with line 0 (8/4 = 2, even).
        let (v, _) = c.insert(line(8), 2).unwrap();
        assert_eq!(v, line(0));
    }

    #[test]
    fn iter_covers_everything() {
        let mut c: CacheArray<u8> = CacheArray::new(4, 2);
        for i in 0..6 {
            c.insert(line(i), i as u8);
        }
        let mut got: Vec<u64> = c.iter().map(|(l, _)| l.raw()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(c.capacity(), 8);
    }

    #[test]
    fn iter_order_matches_slot_order_after_eviction() {
        // The SoA layout must reproduce the swap_remove-then-push slot
        // ordering exactly: evicting slot 0 of a full 3-way set moves the
        // last entry into slot 0 and appends the new line at the end.
        let mut c: CacheArray<u8> = CacheArray::new(1, 3);
        c.insert(line(1), 1);
        c.insert(line(2), 2);
        c.insert(line(3), 3);
        let (v, _) = c.insert(line(4), 4).unwrap();
        assert_eq!(v, line(1), "slot 0 was LRU");
        let order: Vec<u64> = c.iter().map(|(l, _)| l.raw()).collect();
        assert_eq!(order, vec![3, 2, 4], "swap_remove ordering preserved");
    }

    #[test]
    fn remove_uses_swap_remove_ordering() {
        let mut c: CacheArray<u8> = CacheArray::new(1, 4);
        for i in 1..=4 {
            c.insert(line(i), i as u8);
        }
        assert_eq!(c.remove(line(2)), Some(2));
        let order: Vec<u64> = c.iter().map(|(l, _)| l.raw()).collect();
        assert_eq!(order, vec![1, 4, 3]);
    }

    #[test]
    fn iter_mut_visits_live_slots_only() {
        let mut c: CacheArray<u8> = CacheArray::new(2, 2);
        c.insert(line(0), 10);
        c.insert(line(1), 11);
        c.insert(line(2), 12);
        c.remove(line(0));
        for (_, m) in c.iter_mut() {
            *m += 1;
        }
        let mut got: Vec<(u64, u8)> = c.iter().map(|(l, m)| (l.raw(), *m)).collect();
        got.sort_unstable();
        assert_eq!(got, vec![(1, 12), (2, 13)]);
    }

    #[test]
    fn lines_where_filters() {
        let mut c: CacheArray<u8> = CacheArray::new(2, 4);
        for i in 0..6 {
            c.insert(line(i), i as u8);
        }
        let odd = c.lines_where(|_, m| m % 2 == 1);
        assert_eq!(odd.len(), 3);
    }

    #[test]
    #[should_panic(expected = "already resident")]
    fn double_insert_panics() {
        let mut c: CacheArray<u8> = CacheArray::new(1, 2);
        c.insert(line(1), 1);
        c.insert(line(1), 2);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_panics() {
        let _: CacheArray<u8> = CacheArray::new(3, 1);
    }
}
