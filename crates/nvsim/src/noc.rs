//! Interconnect (NoC) latency model and message accounting.
//!
//! The paper assumes a "Generic Network" (Fig 2) connecting VDs, LLC slices
//! and memory controllers. We model it as a fixed per-hop latency crossbar:
//! one hop from an L2 to an LLC slice / directory, one hop from the
//! directory to another VD, one hop down to a memory controller. Message
//! counts are kept per kind so experiments can report coherence traffic.

use crate::clock::Cycle;
use std::fmt;

/// Coherence / data message kinds, for traffic accounting.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MsgKind {
    /// Read request to the directory.
    GetS,
    /// Write (ownership) request to the directory.
    GetX,
    /// Dirty write-back from a cache.
    PutX,
    /// Directory-forwarded downgrade to an owner (paper's DIR-GETS).
    FwdGetS,
    /// Directory-forwarded invalidation to an owner (paper's DIR-GETX).
    FwdGetX,
    /// Invalidation acknowledgement.
    InvAck,
    /// Data response.
    Data,
    /// Direct cache-to-cache transfer (the §IV-A3 optimization).
    CacheToCache,
    /// Version eviction to the OMC over the LLC-bypass path (§IV-A2).
    OmcEvict,
    /// Epoch synchronization traffic (min-ver reports, context dumps).
    EpochSync,
}

impl MsgKind {
    /// All kinds, in reporting order.
    pub const ALL: [MsgKind; 10] = [
        MsgKind::GetS,
        MsgKind::GetX,
        MsgKind::PutX,
        MsgKind::FwdGetS,
        MsgKind::FwdGetX,
        MsgKind::InvAck,
        MsgKind::Data,
        MsgKind::CacheToCache,
        MsgKind::OmcEvict,
        MsgKind::EpochSync,
    ];

    fn idx(self) -> usize {
        match self {
            MsgKind::GetS => 0,
            MsgKind::GetX => 1,
            MsgKind::PutX => 2,
            MsgKind::FwdGetS => 3,
            MsgKind::FwdGetX => 4,
            MsgKind::InvAck => 5,
            MsgKind::Data => 6,
            MsgKind::CacheToCache => 7,
            MsgKind::OmcEvict => 8,
            MsgKind::EpochSync => 9,
        }
    }
}

impl fmt::Display for MsgKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MsgKind::GetS => "GETS",
            MsgKind::GetX => "GETX",
            MsgKind::PutX => "PUTX",
            MsgKind::FwdGetS => "DIR-GETS",
            MsgKind::FwdGetX => "DIR-GETX",
            MsgKind::InvAck => "INV-ACK",
            MsgKind::Data => "DATA",
            MsgKind::CacheToCache => "C2C",
            MsgKind::OmcEvict => "OMC-EVICT",
            MsgKind::EpochSync => "EPOCH-SYNC",
        };
        f.write_str(s)
    }
}

/// Fixed-hop-latency interconnect with per-kind message counters.
#[derive(Clone, Debug)]
pub struct Noc {
    hop_latency: Cycle,
    counts: [u64; 10],
}

impl Noc {
    /// Creates a NoC with the given one-way hop latency.
    pub fn new(hop_latency: Cycle) -> Self {
        Self {
            hop_latency,
            counts: [0; 10],
        }
    }

    /// One-way hop latency.
    pub fn hop_latency(&self) -> Cycle {
        self.hop_latency
    }

    /// Records a message and returns the one-hop latency it incurs.
    #[inline]
    pub fn send(&mut self, kind: MsgKind) -> Cycle {
        self.counts[kind.idx()] += 1;
        self.hop_latency
    }

    /// Records a message crossing `hops` hops.
    #[inline]
    pub fn send_hops(&mut self, kind: MsgKind, hops: u32) -> Cycle {
        self.counts[kind.idx()] += 1;
        self.hop_latency * hops as Cycle
    }

    /// Messages sent of `kind`.
    pub fn count(&self, kind: MsgKind) -> u64 {
        self.counts[kind.idx()]
    }

    /// Total messages sent.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_counts_and_charges_latency() {
        let mut n = Noc::new(4);
        assert_eq!(n.send(MsgKind::GetS), 4);
        assert_eq!(n.send_hops(MsgKind::Data, 2), 8);
        assert_eq!(n.count(MsgKind::GetS), 1);
        assert_eq!(n.count(MsgKind::Data), 1);
        assert_eq!(n.count(MsgKind::GetX), 0);
        assert_eq!(n.total(), 2);
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(MsgKind::FwdGetS.to_string(), "DIR-GETS");
        assert_eq!(MsgKind::FwdGetX.to_string(), "DIR-GETX");
    }
}
