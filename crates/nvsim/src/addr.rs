//! Strongly-typed addresses and identifiers.
//!
//! The simulator models a 48-bit physical address space (as the paper does:
//! "NVOverlay uses the 48-bit physical address as table index"). Addresses
//! come in three granularities, each its own newtype so they cannot be
//! confused:
//!
//! * [`Addr`] — a byte address.
//! * [`LineAddr`] — a 64-byte cache-line address (`Addr >> 6`).
//! * [`PageAddr`] — a 4-KiB page address (`Addr >> 12`).

use std::fmt;

/// Bytes per cache line (fixed at 64 throughout the paper).
pub const LINE_BYTES: u64 = 64;
/// log2 of [`LINE_BYTES`].
pub const LINE_SHIFT: u32 = 6;
/// Bytes per page.
pub const PAGE_BYTES: u64 = 4096;
/// log2 of [`PAGE_BYTES`].
pub const PAGE_SHIFT: u32 = 12;
/// Cache lines per 4-KiB page.
pub const LINES_PER_PAGE: u64 = PAGE_BYTES / LINE_BYTES;
/// Width of the modeled physical address space in bits.
pub const PHYS_ADDR_BITS: u32 = 48;

/// A byte-granularity physical address.
///
/// ```
/// use nvsim::addr::Addr;
/// let a = Addr::new(0x1234);
/// assert_eq!(a.line().page().raw(), 0x1);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// Creates a byte address.
    ///
    /// # Panics
    /// Panics if the address does not fit in the 48-bit physical space.
    #[inline]
    pub fn new(raw: u64) -> Self {
        assert!(
            raw < (1u64 << PHYS_ADDR_BITS),
            "address {raw:#x} exceeds the 48-bit physical space"
        );
        Addr(raw)
    }

    /// The raw byte address.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The cache line containing this byte.
    #[inline]
    pub fn line(self) -> LineAddr {
        LineAddr(self.0 >> LINE_SHIFT)
    }

    /// The page containing this byte.
    #[inline]
    pub fn page(self) -> PageAddr {
        PageAddr(self.0 >> PAGE_SHIFT)
    }

    /// Byte offset within the containing cache line.
    #[inline]
    pub fn line_offset(self) -> u64 {
        self.0 & (LINE_BYTES - 1)
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({:#x})", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<LineAddr> for Addr {
    fn from(l: LineAddr) -> Self {
        Addr(l.0 << LINE_SHIFT)
    }
}

/// A 64-byte cache-line address.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address from its raw line number (byte address >> 6).
    #[inline]
    pub fn new(raw: u64) -> Self {
        assert!(
            raw < (1u64 << (PHYS_ADDR_BITS - LINE_SHIFT)),
            "line address {raw:#x} exceeds the physical space"
        );
        LineAddr(raw)
    }

    /// The raw line number.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// First byte of the line.
    #[inline]
    pub fn base(self) -> Addr {
        Addr(self.0 << LINE_SHIFT)
    }

    /// The page containing this line.
    #[inline]
    pub fn page(self) -> PageAddr {
        PageAddr(self.0 >> (PAGE_SHIFT - LINE_SHIFT))
    }

    /// Index of this line within its page (0..64).
    #[inline]
    pub fn index_in_page(self) -> usize {
        (self.0 & (LINES_PER_PAGE - 1)) as usize
    }
}

impl fmt::Debug for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LineAddr({:#x})", self.0)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

/// A 4-KiB page address.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageAddr(u64);

impl PageAddr {
    /// Creates a page address from its raw page number (byte address >> 12).
    #[inline]
    pub fn new(raw: u64) -> Self {
        assert!(
            raw < (1u64 << (PHYS_ADDR_BITS - PAGE_SHIFT)),
            "page address {raw:#x} exceeds the physical space"
        );
        PageAddr(raw)
    }

    /// The raw page number.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// First byte of the page.
    #[inline]
    pub fn base(self) -> Addr {
        Addr(self.0 << PAGE_SHIFT)
    }

    /// The `idx`-th line of the page.
    ///
    /// # Panics
    /// Panics if `idx >= 64`.
    #[inline]
    pub fn line(self, idx: usize) -> LineAddr {
        assert!(
            idx < LINES_PER_PAGE as usize,
            "line index {idx} out of page"
        );
        LineAddr((self.0 << (PAGE_SHIFT - LINE_SHIFT)) | idx as u64)
    }
}

impl fmt::Debug for PageAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PageAddr({:#x})", self.0)
    }
}

impl fmt::Display for PageAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{:#x}", self.0)
    }
}

/// Identifies a simulated core (0-based).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct CoreId(pub u16);

impl CoreId {
    /// The core's index, usable directly for `Vec` indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// Identifies a Versioned Domain — a set of cores sharing an inclusive L2.
///
/// In the paper's Fig. 2, two cores plus their shared L2 form one VD. With
/// the baseline (non-versioned) hierarchy this is simply "an L2 cluster".
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct VdId(pub u16);

impl VdId {
    /// The VD's index, usable directly for `Vec` indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VdId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vd{}", self.0)
    }
}

/// Identifies a logical workload thread. Threads map 1:1 onto cores.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ThreadId(pub u16);

impl ThreadId {
    /// The thread's index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A line's 64-bit *content token*.
///
/// Instead of carrying 64 bytes of payload per line, the simulator carries
/// one unique token per store. Snapshot correctness (crash recovery,
/// time-travel reads) is verified by token equality; byte accounting still
/// charges the full 64 bytes per line. See DESIGN.md §2.
pub type Token = u64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_round_trips_through_line_and_page() {
        let a = Addr::new(0xdead_beef);
        assert_eq!(a.line().base().raw(), 0xdead_beef & !(LINE_BYTES - 1));
        assert_eq!(a.page().base().raw(), 0xdead_beef & !(PAGE_BYTES - 1));
        assert_eq!(a.line_offset(), 0xdead_beef & 63);
    }

    #[test]
    fn line_index_in_page_covers_all_slots() {
        let p = PageAddr::new(7);
        for i in 0..LINES_PER_PAGE as usize {
            let l = p.line(i);
            assert_eq!(l.page(), p);
            assert_eq!(l.index_in_page(), i);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds the 48-bit")]
    fn addr_rejects_out_of_space() {
        let _ = Addr::new(1u64 << PHYS_ADDR_BITS);
    }

    #[test]
    #[should_panic(expected = "out of page")]
    fn page_line_rejects_large_index() {
        let _ = PageAddr::new(0).line(64);
    }

    #[test]
    fn line_from_addr_conversion() {
        let l = LineAddr::new(42);
        let a: Addr = l.into();
        assert_eq!(a.raw(), 42 * LINE_BYTES);
        assert_eq!(a.line(), l);
    }

    #[test]
    fn display_formats_are_nonempty() {
        assert_eq!(format!("{}", CoreId(3)), "core3");
        assert_eq!(format!("{}", VdId(1)), "vd1");
        assert_eq!(format!("{}", ThreadId(9)), "t9");
        assert_eq!(format!("{}", LineAddr::new(0x10)), "L0x10");
        assert_eq!(format!("{}", PageAddr::new(0x10)), "P0x10");
        assert_eq!(format!("{:?}", Addr::new(0)), "Addr(0x0)");
    }
}
