//! Trace (de)serialization — a compact binary format so generated
//! workloads can be saved once and replayed across schemes, machines and
//! tools (`nvo trace-gen` / `nvo run --trace`).
//!
//! Format (little-endian):
//!
//! ```text
//! magic  "NVTR"            4 bytes
//! version u16              currently 1
//! threads u16
//! per thread:
//!   count  u64
//!   events count times:
//!     kind u8              0 = load, 1 = store, 2 = epoch mark
//!     addr u64             (loads/stores only)
//!     token u64            (stores only)
//! ```

use crate::addr::{Addr, ThreadId};
use crate::memsys::MemOp;
use crate::trace::{Trace, TraceBuilder, TraceEvent};
use std::fmt;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"NVTR";
const VERSION: u16 = 1;

/// Errors from reading a trace file.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not start with the `NVTR` magic.
    BadMagic,
    /// The format version is not supported.
    BadVersion(u16),
    /// An event record has an unknown kind byte.
    BadEventKind(u8),
    /// The file declares zero threads.
    NoThreads,
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace i/o failed: {e}"),
            TraceIoError::BadMagic => f.write_str("not a trace file (bad magic)"),
            TraceIoError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceIoError::BadEventKind(k) => write!(f, "unknown event kind {k}"),
            TraceIoError::NoThreads => f.write_str("trace declares zero threads"),
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceIoError {
    fn from(e: io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

/// Writes a trace to `w`. A mutable reference works as the writer.
///
/// # Errors
/// Propagates I/O errors from `w`.
pub fn write_trace<W: Write>(trace: &Trace, mut w: W) -> Result<(), TraceIoError> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(trace.thread_count() as u16).to_le_bytes())?;
    for t in 0..trace.thread_count() {
        let events = trace.thread(ThreadId(t as u16));
        w.write_all(&(events.len() as u64).to_le_bytes())?;
        for e in events {
            match e {
                TraceEvent::Access { op, addr, token } => {
                    let kind: u8 = match op {
                        MemOp::Load => 0,
                        MemOp::Store => 1,
                    };
                    w.write_all(&[kind])?;
                    w.write_all(&addr.raw().to_le_bytes())?;
                    if *op == MemOp::Store {
                        w.write_all(&token.to_le_bytes())?;
                    }
                }
                TraceEvent::EpochMark => w.write_all(&[2u8])?,
            }
        }
    }
    Ok(())
}

fn read_u16<R: Read>(r: &mut R) -> Result<u16, TraceIoError> {
    let mut b = [0u8; 2];
    r.read_exact(&mut b)?;
    Ok(u16::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, TraceIoError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Reads a trace from `r`.
///
/// # Errors
/// Returns [`TraceIoError`] on malformed input or I/O failure.
pub fn read_trace<R: Read>(mut r: R) -> Result<Trace, TraceIoError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(TraceIoError::BadMagic);
    }
    let version = read_u16(&mut r)?;
    if version != VERSION {
        return Err(TraceIoError::BadVersion(version));
    }
    let threads = read_u16(&mut r)? as usize;
    if threads == 0 {
        return Err(TraceIoError::NoThreads);
    }
    let mut tb = TraceBuilder::new(threads);
    for t in 0..threads {
        let tid = ThreadId(t as u16);
        let count = read_u64(&mut r)?;
        for _ in 0..count {
            let mut kind = [0u8; 1];
            r.read_exact(&mut kind)?;
            match kind[0] {
                0 => {
                    let addr = read_u64(&mut r)?;
                    tb.load(tid, Addr::new(addr));
                }
                1 => {
                    let addr = read_u64(&mut r)?;
                    let token = read_u64(&mut r)?;
                    tb.store_with_token(tid, Addr::new(addr), token);
                }
                2 => {
                    tb.epoch_mark(tid);
                }
                k => return Err(TraceIoError::BadEventKind(k)),
            }
        }
    }
    Ok(tb.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut tb = TraceBuilder::new(3);
        tb.store(ThreadId(0), Addr::new(0x40));
        tb.load(ThreadId(1), Addr::new(0x80));
        tb.epoch_mark(ThreadId(1));
        tb.store(ThreadId(2), Addr::new(0xC0));
        tb.load(ThreadId(0), Addr::new(0x40));
        tb.build()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let t = sample();
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(back.thread_count(), t.thread_count());
        for i in 0..t.thread_count() {
            assert_eq!(
                back.thread(ThreadId(i as u16)),
                t.thread(ThreadId(i as u16)),
                "thread {i}"
            );
        }
        assert_eq!(back.store_count(), t.store_count());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = read_trace(&b"XXXX\x01\x00\x01\x00"[..]).unwrap_err();
        assert!(matches!(err, TraceIoError::BadMagic));
    }

    #[test]
    fn bad_version_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"NVTR");
        buf.extend_from_slice(&9u16.to_le_bytes());
        buf.extend_from_slice(&1u16.to_le_bytes());
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert!(matches!(err, TraceIoError::BadVersion(9)));
    }

    #[test]
    fn truncated_input_is_an_io_error() {
        let t = sample();
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert!(matches!(err, TraceIoError::Io(_)), "{err}");
    }

    #[test]
    fn zero_threads_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"NVTR");
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&0u16.to_le_bytes());
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert!(matches!(err, TraceIoError::NoThreads));
    }
}
