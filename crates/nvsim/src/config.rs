//! Simulation configuration (the paper's Table II) and its builder.

use crate::addr::LINE_BYTES;
use crate::clock::Cycle;
use std::fmt;

/// The coherence protocol variant the hierarchies run.
///
/// The paper states NVOverlay "does not modify the baseline protocol" and
/// extends to "mainstream derivations such as MOESI" (§IV, §IV-E); both
/// are implemented.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Protocol {
    /// Directory-based MESI (the paper's baseline).
    #[default]
    Mesi,
    /// MOESI: external downgrades leave dirty data Owned in place instead
    /// of depositing it in the LLC.
    Moesi,
}

/// Parameters of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheParams {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// Access latency in cycles.
    pub latency: Cycle,
}

impl CacheParams {
    /// Number of sets implied by size, line size and associativity.
    pub fn sets(&self) -> u64 {
        self.size_bytes / (LINE_BYTES * self.ways as u64)
    }

    /// Number of lines this cache can hold.
    pub fn lines(&self) -> u64 {
        self.size_bytes / LINE_BYTES
    }
}

/// Errors produced by [`SimConfigBuilder::build`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// A cache's geometry is not realizable (zero sets, non-power-of-two
    /// sets, or capacity not divisible by line × ways).
    BadCacheGeometry {
        /// Which cache level was misconfigured.
        level: &'static str,
    },
    /// `cores` is zero or not divisible by `cores_per_vd`.
    BadTopology,
    /// A latency, bank count, queue depth or epoch size is zero.
    ZeroParameter {
        /// Which parameter was zero.
        name: &'static str,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::BadCacheGeometry { level } => {
                write!(f, "cache geometry for {level} is not realizable")
            }
            ConfigError::BadTopology => {
                write!(
                    f,
                    "core count must be positive and divisible by cores per VD"
                )
            }
            ConfigError::ZeroParameter { name } => {
                write!(f, "parameter {name} must be positive")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Full simulated-system configuration.
///
/// Defaults reproduce the paper's Table II:
///
/// | Component | Configuration |
/// |---|---|
/// | Processor | 16 cores @ 3 GHz |
/// | L1-D | 32 KB, 64 B lines, 8-way, 4 cycles |
/// | L2 | 256 KB, 64 B lines, 8-way, 8 cycles |
/// | Shared LLC | 32 MB, 64 B lines, 16-way, 30 cycles |
/// | DRAM | 4 controllers, ~50 ns |
/// | NVDIMM | 16 banks, 133 ns write latency |
///
/// Construct via [`SimConfig::default`] or [`SimConfig::builder`].
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Number of cores (= workload threads).
    pub cores: u16,
    /// Cores sharing one inclusive L2 (one Versioned Domain).
    pub cores_per_vd: u16,
    /// Private L1-D parameters.
    pub l1: CacheParams,
    /// Per-VD shared L2 parameters.
    pub l2: CacheParams,
    /// LLC parameters (aggregate over all slices).
    pub llc: CacheParams,
    /// Number of address-interleaved LLC slices.
    pub llc_slices: u16,
    /// One-way NoC hop latency added to every inter-VD / LLC transaction.
    pub noc_hop_latency: Cycle,
    /// DRAM access latency (cycles).
    pub dram_latency: Cycle,
    /// Number of DRAM controllers (address-interleaved).
    pub dram_controllers: u16,
    /// Number of NVM banks.
    pub nvm_banks: u16,
    /// NVM write occupancy per 64-byte line (cycles). 133 ns @ 3 GHz ≈ 400.
    pub nvm_write_latency: Cycle,
    /// NVM read latency (cycles).
    pub nvm_read_latency: Cycle,
    /// Maximum per-bank queueing delay before enqueuers must stall
    /// (backpressure window), expressed in write slots.
    pub nvm_queue_depth: u32,
    /// Stores per VD before the epoch auto-advances. The paper uses 1 M
    /// store uops at full scale; the default is scaled to the suite's
    /// default trace sizes (see EXPERIMENTS.md).
    pub epoch_size_stores: u64,
    /// Core frequency in GHz (for converting cycles to wall time).
    pub freq_ghz: f64,
    /// Width of NVM bandwidth time-series buckets (cycles).
    pub bandwidth_bucket_cycles: Cycle,
    /// OID tagging granularity in DRAM, in lines per shared tag
    /// (1 = per-line, 4 = the paper's "super block" option, §V-F).
    pub dram_oid_superblock_lines: u32,
    /// Coherence protocol variant.
    pub protocol: Protocol,
    /// Enables the single-probe L1-hit fast path in the hierarchies.
    /// Statistically invisible — identical stats, metrics and event
    /// streams either way; the flag exists so differential tests can pin
    /// the fast path against the reference path.
    pub replay_fast_path: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            cores: 16,
            cores_per_vd: 2,
            l1: CacheParams {
                size_bytes: 32 * 1024,
                ways: 8,
                latency: 4,
            },
            l2: CacheParams {
                size_bytes: 256 * 1024,
                ways: 8,
                latency: 8,
            },
            llc: CacheParams {
                size_bytes: 32 * 1024 * 1024,
                ways: 16,
                latency: 30,
            },
            llc_slices: 4,
            noc_hop_latency: 4,
            dram_latency: 150,
            dram_controllers: 4,
            nvm_banks: 16,
            nvm_write_latency: 400,
            nvm_read_latency: 200,
            nvm_queue_depth: 8,
            epoch_size_stores: 20_000,
            freq_ghz: 3.0,
            bandwidth_bucket_cycles: 100_000,
            dram_oid_superblock_lines: 1,
            protocol: Protocol::Mesi,
            replay_fast_path: true,
        }
    }
}

impl SimConfig {
    /// Starts building a configuration from the Table II defaults.
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder {
            cfg: SimConfig::default(),
        }
    }

    /// Number of Versioned Domains (L2 clusters).
    pub fn vd_count(&self) -> u16 {
        self.cores / self.cores_per_vd
    }

    /// Capacity of one LLC slice in bytes.
    pub fn llc_slice_bytes(&self) -> u64 {
        self.llc.size_bytes / self.llc_slices as u64
    }

    /// The configuration of one replay island: the slice of this
    /// machine owned by a single Versioned Domain. The island keeps the
    /// VD's cores, L1s and L2 exactly, and takes a proportional share of
    /// the shared back end (LLC slices, DRAM controllers, NVM banks).
    /// `epoch_size_stores` and `bandwidth_bucket_cycles` are unchanged so
    /// the per-VD epoch cadence and the bandwidth-series bucket width —
    /// which merged series must agree on — are preserved.
    ///
    /// If the proportional LLC share does not divide into a power-of-two
    /// set count, the island keeps the aggregate LLC geometry instead
    /// (capacity fidelity is a modeling choice; validity is not).
    pub fn island_config(&self) -> SimConfig {
        let islands = self.vd_count().max(1);
        let mut c = self.clone();
        c.cores = self.cores_per_vd;
        c.llc_slices = (self.llc_slices / islands).max(1);
        let min_llc = LINE_BYTES * c.llc.ways as u64 * c.llc_slices as u64;
        c.llc.size_bytes = (self.llc.size_bytes / islands as u64).max(min_llc);
        c.nvm_banks = (self.nvm_banks / islands).max(1);
        c.dram_controllers = (self.dram_controllers / islands).max(1);
        if c.validate().is_err() {
            c.llc = self.llc;
            c.llc_slices = self.llc_slices;
        }
        debug_assert!(c.validate().is_ok(), "island config must stay valid");
        c
    }

    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns a [`ConfigError`] describing the first violated constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.cores == 0
            || self.cores_per_vd == 0
            || !self.cores.is_multiple_of(self.cores_per_vd)
        {
            return Err(ConfigError::BadTopology);
        }
        for (level, p, slices) in [
            ("L1", &self.l1, 1u64),
            ("L2", &self.l2, 1u64),
            ("LLC", &self.llc, self.llc_slices as u64),
        ] {
            if p.ways == 0 || slices == 0 {
                return Err(ConfigError::BadCacheGeometry { level });
            }
            let per_slice = p.size_bytes / slices;
            let denom = LINE_BYTES * p.ways as u64;
            if per_slice == 0 || per_slice % denom != 0 {
                return Err(ConfigError::BadCacheGeometry { level });
            }
            let sets = per_slice / denom;
            if !sets.is_power_of_two() {
                return Err(ConfigError::BadCacheGeometry { level });
            }
        }
        for (name, v) in [
            ("l1.latency", self.l1.latency),
            ("l2.latency", self.l2.latency),
            ("llc.latency", self.llc.latency),
            ("dram_latency", self.dram_latency),
            ("nvm_write_latency", self.nvm_write_latency),
            ("nvm_read_latency", self.nvm_read_latency),
            ("epoch_size_stores", self.epoch_size_stores),
            ("bandwidth_bucket_cycles", self.bandwidth_bucket_cycles),
            ("nvm_banks", self.nvm_banks as u64),
            ("nvm_queue_depth", self.nvm_queue_depth as u64),
            ("dram_controllers", self.dram_controllers as u64),
            ("llc_slices", self.llc_slices as u64),
            (
                "dram_oid_superblock_lines",
                self.dram_oid_superblock_lines as u64,
            ),
        ] {
            if v == 0 {
                return Err(ConfigError::ZeroParameter { name });
            }
        }
        Ok(())
    }
}

/// Chained builder for [`SimConfig`].
///
/// ```
/// use nvsim::config::SimConfig;
/// let cfg = SimConfig::builder()
///     .cores(8, 2)
///     .epoch_size_stores(5_000)
///     .build()
///     .expect("valid config");
/// assert_eq!(cfg.vd_count(), 4);
/// ```
#[derive(Clone, Debug)]
pub struct SimConfigBuilder {
    cfg: SimConfig,
}

impl SimConfigBuilder {
    /// Sets core count and cores per Versioned Domain.
    pub fn cores(mut self, cores: u16, cores_per_vd: u16) -> Self {
        self.cfg.cores = cores;
        self.cfg.cores_per_vd = cores_per_vd;
        self
    }

    /// Sets L1-D parameters.
    pub fn l1(mut self, size_bytes: u64, ways: u32, latency: Cycle) -> Self {
        self.cfg.l1 = CacheParams {
            size_bytes,
            ways,
            latency,
        };
        self
    }

    /// Sets L2 parameters.
    pub fn l2(mut self, size_bytes: u64, ways: u32, latency: Cycle) -> Self {
        self.cfg.l2 = CacheParams {
            size_bytes,
            ways,
            latency,
        };
        self
    }

    /// Sets LLC parameters (aggregate size) and slice count.
    pub fn llc(mut self, size_bytes: u64, ways: u32, latency: Cycle, slices: u16) -> Self {
        self.cfg.llc = CacheParams {
            size_bytes,
            ways,
            latency,
        };
        self.cfg.llc_slices = slices;
        self
    }

    /// Sets NVM device parameters.
    pub fn nvm(mut self, banks: u16, write_latency: Cycle, read_latency: Cycle) -> Self {
        self.cfg.nvm_banks = banks;
        self.cfg.nvm_write_latency = write_latency;
        self.cfg.nvm_read_latency = read_latency;
        self
    }

    /// Sets the per-bank backpressure window.
    pub fn nvm_queue_depth(mut self, depth: u32) -> Self {
        self.cfg.nvm_queue_depth = depth;
        self
    }

    /// Sets the automatic epoch length in stores per VD.
    pub fn epoch_size_stores(mut self, stores: u64) -> Self {
        self.cfg.epoch_size_stores = stores;
        self
    }

    /// Sets the NVM bandwidth time-series bucket width.
    pub fn bandwidth_bucket_cycles(mut self, cycles: Cycle) -> Self {
        self.cfg.bandwidth_bucket_cycles = cycles;
        self
    }

    /// Sets DRAM OID tagging granularity (lines per shared tag).
    pub fn dram_oid_superblock_lines(mut self, lines: u32) -> Self {
        self.cfg.dram_oid_superblock_lines = lines;
        self
    }

    /// Sets the coherence protocol variant.
    pub fn protocol(mut self, protocol: Protocol) -> Self {
        self.cfg.protocol = protocol;
        self
    }

    /// Enables or disables the L1-hit fast path (on by default). Turning
    /// it off forces every access through the reference full-protocol
    /// path; results are identical either way.
    pub fn replay_fast_path(mut self, enabled: bool) -> Self {
        self.cfg.replay_fast_path = enabled;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    /// Returns a [`ConfigError`] if any constraint is violated.
    pub fn build(self) -> Result<SimConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_table_ii() {
        let cfg = SimConfig::default();
        cfg.validate().expect("default must validate");
        assert_eq!(cfg.cores, 16);
        assert_eq!(cfg.vd_count(), 8);
        assert_eq!(cfg.l1.sets(), 64);
        assert_eq!(cfg.l2.sets(), 512);
        assert_eq!(cfg.llc.lines(), 512 * 1024);
        assert_eq!(cfg.nvm_banks, 16);
    }

    #[test]
    fn builder_round_trip() {
        let cfg = SimConfig::builder()
            .cores(4, 2)
            .l1(16 * 1024, 4, 3)
            .epoch_size_stores(1000)
            .build()
            .unwrap();
        assert_eq!(cfg.cores, 4);
        assert_eq!(cfg.vd_count(), 2);
        assert_eq!(cfg.l1.sets(), 64);
        assert_eq!(cfg.epoch_size_stores, 1000);
    }

    #[test]
    fn bad_topology_is_rejected() {
        let err = SimConfig::builder().cores(10, 4).build().unwrap_err();
        assert_eq!(err, ConfigError::BadTopology);
    }

    #[test]
    fn non_power_of_two_sets_rejected() {
        let err = SimConfig::builder()
            .l1(3 * 1024, 8, 4) // 6 sets
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::BadCacheGeometry { level: "L1" }));
    }

    #[test]
    fn zero_epoch_rejected() {
        let err = SimConfig::builder()
            .epoch_size_stores(0)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            ConfigError::ZeroParameter {
                name: "epoch_size_stores"
            }
        ));
    }

    #[test]
    fn error_display_is_informative() {
        let e = ConfigError::BadCacheGeometry { level: "L2" };
        assert!(e.to_string().contains("L2"));
    }
}
