//! The MESI coherence state lattice.
//!
//! The paper assumes directory-based MESI as the baseline protocol
//! (§IV: "We assume directory-based MESI as the baseline protocol") and
//! emphasises that NVOverlay does not modify the state machine. The same
//! state enum is therefore shared by the baseline hierarchy in this crate
//! and the versioned hierarchy in the `nvoverlay` crate.

use std::fmt;

/// A MESI / MOESI coherence state.
///
/// The `O` (Owned) state only occurs when the hierarchy runs the MOESI
/// protocol variant ([`crate::config::Protocol::Moesi`]): a dirty copy
/// that other caches share — the owner supplies data and remains
/// responsible for the eventual write-back, so downgrades avoid touching
/// the LLC/memory (the paper's §IV-E protocol-compatibility claim).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum MesiState {
    /// Modified: this cache holds the only, dirty copy.
    M,
    /// Owned (MOESI only): dirty, but shared — this cache owns the
    /// write-back responsibility.
    O,
    /// Exclusive: this cache holds the only, clean copy.
    E,
    /// Shared: possibly one of several clean copies.
    S,
    /// Invalid: not present.
    #[default]
    I,
}

impl MesiState {
    /// Whether a store may complete locally in this state.
    #[inline]
    pub fn is_writable(self) -> bool {
        matches!(self, MesiState::M | MesiState::E)
    }

    /// Whether this copy owns the write-back responsibility (M, E or O).
    #[inline]
    pub fn is_ownerlike(self) -> bool {
        matches!(self, MesiState::M | MesiState::E | MesiState::O)
    }

    /// Whether a load may complete locally in this state.
    #[inline]
    pub fn is_readable(self) -> bool {
        !matches!(self, MesiState::I)
    }

    /// Whether this state implies the copy differs from memory.
    ///
    /// In MESI only `M` lines are dirty; `S`/`E` are clean (paper §IV-A:
    /// "M state lines are dirty, while S and E state are clean"). MOESI
    /// adds `O`, which is dirty *and* shared.
    #[inline]
    pub fn is_dirty(self) -> bool {
        matches!(self, MesiState::M | MesiState::O)
    }

    /// The state after an external downgrade (another sharer wants to
    /// read) under plain MESI: everything readable becomes `S`.
    #[inline]
    pub fn downgraded(self) -> MesiState {
        match self {
            MesiState::M | MesiState::O | MesiState::E | MesiState::S => MesiState::S,
            MesiState::I => MesiState::I,
        }
    }

    /// The state after an external downgrade under MOESI: dirty copies
    /// keep their data-supply/write-back responsibility as `O`.
    #[inline]
    pub fn downgraded_moesi(self) -> MesiState {
        match self {
            MesiState::M | MesiState::O => MesiState::O,
            MesiState::E | MesiState::S => MesiState::S,
            MesiState::I => MesiState::I,
        }
    }
}

impl fmt::Display for MesiState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MesiState::M => "M",
            MesiState::O => "O",
            MesiState::E => "E",
            MesiState::S => "S",
            MesiState::I => "I",
        };
        f.write_str(s)
    }
}

/// The kind of permission an access needs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Permission {
    /// Read permission (any of M/E/S suffices).
    Read,
    /// Write permission (M or E required).
    Write,
}

impl Permission {
    /// Whether `state` satisfies this permission.
    #[inline]
    pub fn satisfied_by(self, state: MesiState) -> bool {
        match self {
            Permission::Read => state.is_readable(),
            Permission::Write => state.is_writable(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writable_states_are_m_and_e() {
        assert!(MesiState::M.is_writable());
        assert!(MesiState::E.is_writable());
        assert!(!MesiState::S.is_writable());
        assert!(!MesiState::I.is_writable());
    }

    #[test]
    fn only_m_and_o_are_dirty() {
        assert!(MesiState::M.is_dirty());
        assert!(MesiState::O.is_dirty());
        for s in [MesiState::E, MesiState::S, MesiState::I] {
            assert!(!s.is_dirty());
        }
    }

    #[test]
    fn o_is_readable_not_writable() {
        assert!(MesiState::O.is_readable());
        assert!(!MesiState::O.is_writable());
        assert!(MesiState::O.is_ownerlike());
        assert!(!MesiState::S.is_ownerlike());
    }

    #[test]
    fn downgrade_lattice() {
        assert_eq!(MesiState::M.downgraded(), MesiState::S);
        assert_eq!(MesiState::E.downgraded(), MesiState::S);
        assert_eq!(MesiState::S.downgraded(), MesiState::S);
        assert_eq!(MesiState::I.downgraded(), MesiState::I);
        assert_eq!(MesiState::M.downgraded_moesi(), MesiState::O);
        assert_eq!(MesiState::O.downgraded_moesi(), MesiState::O);
        assert_eq!(MesiState::E.downgraded_moesi(), MesiState::S);
    }

    #[test]
    fn permission_satisfaction() {
        assert!(Permission::Read.satisfied_by(MesiState::S));
        assert!(!Permission::Write.satisfied_by(MesiState::S));
        assert!(Permission::Write.satisfied_by(MesiState::E));
        assert!(!Permission::Read.satisfied_by(MesiState::I));
    }

    #[test]
    fn display_is_single_letter() {
        assert_eq!(MesiState::M.to_string(), "M");
        assert_eq!(MesiState::I.to_string(), "I");
    }
}
