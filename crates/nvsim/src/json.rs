//! A minimal hand-rolled JSON reader/writer helper.
//!
//! The suite has a zero-external-dependency policy, but several crates
//! emit JSON that must be *parseable*: the nvbench exporters round-trip
//! every document through this parser before trusting it, and the
//! persistent snapshot store (`nvstore`) reads its versioned manifests
//! with it. The parser accepts the full JSON grammar (objects, arrays,
//! strings with escapes, numbers, bools, null) and preserves object key
//! order, which keeps determinism checks straightforward.

use std::fmt;

/// A parsed JSON value. Objects keep their key order.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`; exact for integers up to 2^53).
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source key order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up `key` in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array items; `None` for other variants.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The string content; `None` for other variants.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number; `None` for other variants.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as u64 (rounded); `None` for other variants.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().map(|n| n as u64)
    }

    /// The boolean; `None` for other variants.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// A parse error with byte offset context.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset at which parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses `input` as a single JSON document (trailing whitespace OK).
///
/// # Errors
/// [`JsonError`] on malformed input or trailing garbage.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

/// Escapes `s` for embedding in a JSON string literal (no quotes added).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {word}")))
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are not paired here; the
                            // exporters never emit them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("-12.5e1").unwrap(), JsonValue::Number(-125.0));
        assert_eq!(
            parse("\"a\\nb\\u0041\"").unwrap(),
            JsonValue::String("a\nbA".into())
        );
    }

    #[test]
    fn parses_nested_structures_in_order() {
        let v = parse("{\"b\": [1, {\"x\": false}], \"a\": null}").unwrap();
        let JsonValue::Object(pairs) = &v else {
            panic!("not an object")
        };
        assert_eq!(pairs[0].0, "b");
        assert_eq!(pairs[1].0, "a");
        let arr = v.get("b").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].get("x").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"open").is_err());
    }

    #[test]
    fn escape_round_trips() {
        let s = "quote \" slash \\ newline \n tab \t bell \u{7}";
        let doc = format!("\"{}\"", escape(s));
        assert_eq!(parse(&doc).unwrap().as_str(), Some(s));
    }
}
