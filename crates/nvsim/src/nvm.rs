//! NVDIMM device model.
//!
//! Models the paper's Table II NVM: 16 banks, 133 ns write occupancy per
//! 64-byte line. Each bank is busy for the duration of a write; writes to a
//! busy bank queue behind it. A bounded per-bank queue produces
//! *backpressure*: when the queue window is exceeded, the enqueuer must
//! stall until a slot frees. This is what lets bursty schemes (PiCL's
//! epoch-boundary tag walks, software epoch flushes) lose performance while
//! schemes that spread writes out (NVOverlay) do not — the effect behind
//! Fig 11 and Fig 17.
//!
//! Byte accounting is decomposed by [`NvmWriteKind`] and fed into a
//! [`BandwidthSeries`] for Fig 17.

use crate::clock::Cycle;
use crate::fastmap::FastMap;
use crate::fault::{FaultPlane, PersistPayload};
use crate::metrics::{Hist, Registry};
use crate::nvtrace::{EventKind, TraceScope, Track};
use crate::stats::{BandwidthSeries, NvmBytes, NvmWriteKind};

/// Endurance summary — NVM cells wear out after a bounded number of
/// Program/Erase cycles (§II-B), so write distribution matters as much as
/// write volume.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WearReport {
    /// Distinct data keys (≈ lines) ever written.
    pub unique_keys: u64,
    /// Total data writes.
    pub total_writes: u64,
    /// Writes to the single hottest key (worst-case wear).
    pub max_key_writes: u64,
    /// Mean writes per written key.
    pub mean_key_writes: f64,
}

/// Result of enqueuing one NVM write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WriteTicket {
    /// Earliest time the enqueuer may proceed. Asynchronous (background)
    /// writers stall only until this time; it exceeds the enqueue time only
    /// under backpressure.
    pub accept_time: Cycle,
    /// Time at which the write is durable. Synchronous writers (persistence
    /// barriers) stall until this time.
    pub completion: Cycle,
}

impl WriteTicket {
    /// Backpressure stall implied for an asynchronous writer entering at
    /// `now`.
    pub fn backpressure_stall(&self, now: Cycle) -> Cycle {
        self.accept_time.saturating_sub(now)
    }

    /// Full persistence stall implied for a synchronous writer entering at
    /// `now`.
    pub fn sync_stall(&self, now: Cycle) -> Cycle {
        self.completion.saturating_sub(now)
    }
}

/// A banked NVM device.
#[derive(Clone, Debug)]
pub struct Nvm {
    bank_busy_until: Vec<Cycle>,
    write_latency: Cycle,
    read_latency: Cycle,
    queue_window: Cycle,
    stats: NvmBytes,
    series: BandwidthSeries,
    reads: u64,
    wear: FastMap<u64, u64>,
    /// Queueing delay (start − enqueue) of each accepted write.
    queue_delay: Hist,
    /// Persistence-order shadow journal, when fault exploration is on.
    plane: Option<Box<FaultPlane>>,
}

impl Nvm {
    /// Creates an NVM with `banks` banks, per-line write occupancy
    /// `write_latency`, read latency `read_latency`, a backpressure window
    /// of `queue_depth` writes per bank, and bandwidth buckets of
    /// `bucket_cycles`.
    ///
    /// # Panics
    /// Panics if `banks`, `write_latency` or `bucket_cycles` is zero.
    pub fn new(
        banks: u16,
        write_latency: Cycle,
        read_latency: Cycle,
        queue_depth: u32,
        bucket_cycles: Cycle,
    ) -> Self {
        assert!(banks > 0, "NVM needs at least one bank");
        assert!(write_latency > 0, "write latency must be positive");
        Self {
            bank_busy_until: vec![0; banks as usize],
            write_latency,
            read_latency,
            queue_window: queue_depth as Cycle * write_latency,
            stats: NvmBytes::new(),
            series: BandwidthSeries::new(bucket_cycles),
            reads: 0,
            wear: FastMap::new(),
            queue_delay: Hist::new(),
            plane: None,
        }
    }

    /// Attaches a fresh [`FaultPlane`]: from now on every accepted write
    /// is journaled for crash-cut reconstruction.
    pub fn enable_fault_plane(&mut self) {
        self.plane = Some(Box::new(FaultPlane::new()));
    }

    /// The shadow journal, if fault exploration is on.
    pub fn fault_plane(&self) -> Option<&FaultPlane> {
        self.plane.as_deref()
    }

    /// Detaches and returns the shadow journal.
    pub fn take_fault_plane(&mut self) -> Option<FaultPlane> {
        self.plane.take().map(|b| *b)
    }

    /// Attaches the logical persistent effect to the most recent write.
    /// No-op unless a fault plane is enabled.
    pub fn annotate_last(&mut self, payload: PersistPayload) {
        if let Some(p) = &mut self.plane {
            p.annotate_last(payload);
        }
    }

    fn bank_of(&self, key: u64) -> usize {
        // Multiplicative hash spreads sequential line addresses over banks.
        (key.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) as usize % self.bank_busy_until.len()
    }

    /// Occupancy charged for a write of `bytes` bytes (proportional to the
    /// per-line latency, minimum one cycle).
    fn occupancy(&self, bytes: u64) -> Cycle {
        ((self.write_latency * bytes).div_ceil(64)).max(1)
    }

    /// Enqueues a write of `bytes` bytes keyed by `key` (bank selector,
    /// typically the line address) at time `now`.
    pub fn write(&mut self, now: Cycle, key: u64, kind: NvmWriteKind, bytes: u64) -> WriteTicket {
        let bank = self.bank_of(key);
        let busy = self.bank_busy_until[bank];
        // Backpressure: the enqueuer may not run further ahead of the bank
        // than the queue window.
        let accept_time = busy.saturating_sub(self.queue_window).max(now);
        let start = busy.max(accept_time);
        let completion = start + self.occupancy(bytes);
        self.bank_busy_until[bank] = completion;
        self.stats.record(kind, bytes);
        self.series.record(completion, bytes);
        self.queue_delay.record(start.saturating_sub(now));
        TraceScope::new(Track::NvmBank(bank as u16)).emit(
            EventKind::NvmBankBusy,
            start,
            completion - start,
            bytes,
        );
        if kind == NvmWriteKind::Data {
            *self.wear.or_default(key) += 1;
        }
        if let Some(p) = &mut self.plane {
            p.record(key, kind, bytes, now, completion);
        }
        WriteTicket {
            accept_time,
            completion,
        }
    }

    /// Enqueues a write behind a persistence fence: it is not issued
    /// before every previously accepted write is durable, so its
    /// completion orders after all of them. Used for ordering-critical
    /// updates such as the recoverable-epoch root pointer — a crash cut
    /// that retains the fenced write retains everything it depends on.
    pub fn write_fenced(
        &mut self,
        now: Cycle,
        key: u64,
        kind: NvmWriteKind,
        bytes: u64,
    ) -> WriteTicket {
        let fence = self.persist_horizon().max(now);
        self.write(fence, key, kind, bytes)
    }

    /// Reads a line; returns the completion time.
    pub fn read(&mut self, now: Cycle, _key: u64) -> Cycle {
        self.reads += 1;
        now + self.read_latency
    }

    /// Time at which every accepted write is durable.
    pub fn persist_horizon(&self) -> Cycle {
        self.bank_busy_until.iter().copied().max().unwrap_or(0)
    }

    /// Byte/write accounting by purpose.
    pub fn stats(&self) -> &NvmBytes {
        &self.stats
    }

    /// Bandwidth time series.
    pub fn bandwidth(&self) -> &BandwidthSeries {
        &self.series
    }

    /// Total reads served.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Per-line write occupancy (cycles).
    pub fn write_latency(&self) -> Cycle {
        self.write_latency
    }

    /// Read latency (cycles).
    pub fn read_latency(&self) -> Cycle {
        self.read_latency
    }

    /// Publishes the device's metrics under `prefix` (e.g. `nvm`).
    pub fn metrics_into(&self, reg: &mut Registry, prefix: &str) {
        for kind in NvmWriteKind::ALL {
            reg.set_counter(&format!("{prefix}.bytes.{kind}"), self.stats.bytes(kind));
            reg.set_counter(&format!("{prefix}.writes.{kind}"), self.stats.writes(kind));
        }
        reg.set_counter(&format!("{prefix}.reads"), self.reads);
        reg.set_gauge(
            &format!("{prefix}.persist_horizon"),
            self.persist_horizon() as f64,
        );
        reg.record_hist(&format!("{prefix}.queue_delay"), self.queue_delay.clone());
        let wear = self.wear_report();
        reg.set_counter(&format!("{prefix}.wear.unique_lines"), wear.unique_keys);
        reg.set_counter(
            &format!("{prefix}.wear.max_line_writes"),
            wear.max_key_writes,
        );
    }

    /// Endurance summary over all data writes so far.
    pub fn wear_report(&self) -> WearReport {
        let unique = self.wear.len() as u64;
        let total: u64 = self.wear.values().sum();
        WearReport {
            unique_keys: unique,
            total_writes: total,
            max_key_writes: self.wear.values().copied().max().unwrap_or(0),
            mean_key_writes: if unique == 0 {
                0.0
            } else {
                total as f64 / unique as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nvm() -> Nvm {
        // 1 bank to make serialization observable.
        Nvm::new(1, 400, 200, 2, 100_000)
    }

    #[test]
    fn single_bank_serializes_writes() {
        let mut n = nvm();
        let t1 = n.write(0, 1, NvmWriteKind::Data, 64);
        assert_eq!(t1.accept_time, 0);
        assert_eq!(t1.completion, 400);
        let t2 = n.write(0, 2, NvmWriteKind::Data, 64);
        assert_eq!(t2.completion, 800, "second write queues behind the first");
        assert_eq!(t2.accept_time, 0, "within the queue window");
    }

    #[test]
    fn backpressure_kicks_in_past_queue_window() {
        let mut n = nvm(); // window = 2 * 400 = 800
        n.write(0, 1, NvmWriteKind::Data, 64); // busy until 400
        n.write(0, 2, NvmWriteKind::Data, 64); // busy until 800
        n.write(0, 3, NvmWriteKind::Data, 64); // busy until 1200
        let t = n.write(0, 4, NvmWriteKind::Data, 64);
        // Bank busy until 1200; enqueuer must wait until 1200 - 800 = 400.
        assert_eq!(t.accept_time, 400);
        assert_eq!(t.backpressure_stall(0), 400);
        assert_eq!(t.completion, 1600);
        assert_eq!(t.sync_stall(0), 1600);
    }

    #[test]
    fn small_writes_use_proportional_occupancy() {
        let mut n = nvm();
        let t = n.write(0, 1, NvmWriteKind::MapMetadata, 8);
        assert_eq!(t.completion, 50, "8/64 of 400 cycles");
        let t2 = n.write(0, 2, NvmWriteKind::Log, 72);
        assert_eq!(t2.completion, 50 + 450, "72/64 of 400 cycles, ceil");
    }

    #[test]
    fn idle_bank_resets_queueing() {
        let mut n = nvm();
        n.write(0, 1, NvmWriteKind::Data, 64);
        let t = n.write(10_000, 2, NvmWriteKind::Data, 64);
        assert_eq!(t.accept_time, 10_000);
        assert_eq!(t.completion, 10_400);
    }

    #[test]
    fn stats_and_series_accumulate() {
        let mut n = nvm();
        n.write(0, 1, NvmWriteKind::Data, 64);
        n.write(0, 2, NvmWriteKind::Log, 72);
        assert_eq!(n.stats().total_bytes(), 136);
        assert_eq!(n.stats().bytes(NvmWriteKind::Log), 72);
        assert_eq!(n.bandwidth().buckets().iter().sum::<u64>(), 136);
        assert_eq!(n.persist_horizon(), 850);
    }

    #[test]
    fn multiple_banks_spread_load() {
        let mut n = Nvm::new(16, 400, 200, 8, 100_000);
        let mut max_completion = 0;
        for k in 0..16u64 {
            let t = n.write(0, k, NvmWriteKind::Data, 64);
            max_completion = max_completion.max(t.completion);
        }
        // With 16 banks and a spreading hash, 16 writes should not fully
        // serialize (16 * 400 = 6400).
        assert!(
            max_completion < 6400,
            "expected parallelism across banks, horizon {max_completion}"
        );
    }

    #[test]
    fn wear_report_tracks_hot_keys() {
        let mut n = nvm();
        for _ in 0..5 {
            n.write(0, 7, NvmWriteKind::Data, 64);
        }
        n.write(0, 8, NvmWriteKind::Data, 64);
        n.write(0, 9, NvmWriteKind::Log, 72); // logs do not wear data keys
        let w = n.wear_report();
        assert_eq!(w.unique_keys, 2);
        assert_eq!(w.total_writes, 6);
        assert_eq!(w.max_key_writes, 5);
        assert!((w.mean_key_writes - 3.0).abs() < 1e-9);
    }

    #[test]
    fn fenced_write_completes_after_every_prior_write() {
        let mut n = Nvm::new(4, 400, 200, 8, 100_000);
        let mut latest = 0;
        for k in 0..8u64 {
            latest = latest.max(n.write(0, k, NvmWriteKind::Data, 64).completion);
        }
        let t = n.write_fenced(0, 0xFEED, NvmWriteKind::MapMetadata, 8);
        assert!(
            t.completion > latest,
            "fenced write must order after the horizon ({} <= {latest})",
            t.completion
        );
    }

    #[test]
    fn fault_plane_journals_writes_when_enabled() {
        let mut n = nvm();
        n.write(0, 1, NvmWriteKind::Data, 64); // before enabling: not journaled
        n.enable_fault_plane();
        n.write(500, 2, NvmWriteKind::Log, 72);
        n.annotate_last(crate::fault::PersistPayload::EpochCommit { epoch: 3 });
        let p = n.take_fault_plane().expect("plane was enabled");
        assert_eq!(p.len(), 1);
        assert_eq!(p.records()[0].kind, NvmWriteKind::Log);
        assert_eq!(
            p.records()[0].payload,
            Some(crate::fault::PersistPayload::EpochCommit { epoch: 3 })
        );
        assert!(n.fault_plane().is_none(), "plane detached");
    }

    #[test]
    fn reads_count_and_complete() {
        let mut n = nvm();
        assert_eq!(n.read(100, 5), 300);
        assert_eq!(n.reads(), 1);
    }
}
