//! Persistence-order shadow model for the NVM device.
//!
//! The timing model in [`crate::nvm`] answers *when* a write becomes
//! durable; this module answers *what is durable if we crash now*. Every
//! write enqueued on the device enters a volatile **in-flight window**:
//! the set of accepted writes whose completion time lies beyond a crash
//! instant. Real devices drain their queues in completion order, so a
//! crash durably retains only a **prefix-closed subset** of that window
//! (ordered by completion time, the device's `persist_horizon` order),
//! with at most one **torn** write on the boundary — partially written,
//! detectably corrupt.
//!
//! A [`FaultPlane`] attached to an [`crate::nvm::Nvm`] records every
//! write as a [`WriteRecord`]. Writers annotate records with the logical
//! *persistent effect* the write carries ([`PersistPayload`]): a version
//! landing in an overlay page, a chunk of Master Mapping Table entries,
//! the 8-byte `rec-epoch` root update, a context dump, an undo-log
//! entry. A crash-site explorer (the `nvchaos` crate) replays the
//! journal up to a [`CrashCut`] to reconstruct exactly the durable state
//! an adversarial power cut would leave behind, then runs recovery
//! against it.
//!
//! The model is purely additive: with no fault plane attached the device
//! pays one branch per write and records nothing.

use crate::addr::{LineAddr, Token};
use crate::clock::Cycle;
use crate::rng::Rng64;
use crate::stats::NvmWriteKind;

/// The logical persistent effect carried by one NVM write, attached by
/// the component that issued it. Reconstruction replays surviving
/// payloads in issue order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PersistPayload {
    /// A version written into an overlay data page (NVOverlay): once
    /// durable, `line` has content `token` in snapshot `epoch`.
    Version {
        /// The line the version belongs to.
        line: LineAddr,
        /// The 64-byte content stand-in.
        token: Token,
        /// The absolute epoch that captured the version.
        epoch: u64,
    },
    /// One 256-byte metadata chunk of a Master Mapping Table merge:
    /// up to 32 encoded 8-byte mapping entries (see
    /// `nvoverlay::mnm::table::encode_loc`). A torn chunk retains a
    /// prefix of its entries.
    MasterChunk {
        /// `(line, encoded mapping word)` pairs carried by the chunk.
        entries: Vec<(LineAddr, u64)>,
    },
    /// The master OMC's atomic `rec-epoch` root pointer update.
    RecEpochRoot {
        /// The new recoverable epoch.
        epoch: u64,
    },
    /// A processor context dump at an epoch boundary.
    Context {
        /// The versioned domain dumping its context.
        vd: u16,
        /// The epoch that just ended.
        epoch: u64,
        /// The context blob stand-in.
        blob: Token,
    },
    /// An undo-log entry (software logging baselines): before `line` is
    /// overwritten in `epoch`, its pre-image `prev` is logged.
    UndoLog {
        /// The line about to be overwritten.
        line: LineAddr,
        /// The pre-image (0 = never written).
        prev: Token,
        /// The epoch the entry belongs to.
        epoch: u64,
    },
    /// An in-place home-location data write (software logging
    /// baselines' epoch-boundary flush).
    DataHome {
        /// The line flushed home.
        line: LineAddr,
        /// The content written.
        token: Token,
        /// The epoch being committed.
        epoch: u64,
    },
    /// A durable epoch-commit marker: once durable, `epoch`'s flush is
    /// complete and its undo log is dead.
    EpochCommit {
        /// The committed epoch.
        epoch: u64,
    },
}

/// One NVM write as seen by the shadow model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WriteRecord {
    /// Issue-order id (index into the journal).
    pub id: u64,
    /// The bank-selector key the write used.
    pub key: u64,
    /// Accounting kind.
    pub kind: NvmWriteKind,
    /// Bytes written.
    pub bytes: u64,
    /// Time the write was enqueued.
    pub enqueue: Cycle,
    /// Time the write becomes durable.
    pub completion: Cycle,
    /// The logical effect, if the writer annotated one.
    pub payload: Option<PersistPayload>,
}

/// The shadow journal: every write the device accepted, in issue order,
/// with completion times and logical payloads.
#[derive(Clone, Debug, Default)]
pub struct FaultPlane {
    log: Vec<WriteRecord>,
}

impl FaultPlane {
    /// An empty journal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one accepted write (called by the device).
    pub fn record(
        &mut self,
        key: u64,
        kind: NvmWriteKind,
        bytes: u64,
        enqueue: Cycle,
        completion: Cycle,
    ) {
        let id = self.log.len() as u64;
        self.log.push(WriteRecord {
            id,
            key,
            kind,
            bytes,
            enqueue,
            completion,
            payload: None,
        });
    }

    /// Attaches the logical payload to the most recently recorded write.
    /// No-op on an empty journal.
    pub fn annotate_last(&mut self, payload: PersistPayload) {
        if let Some(rec) = self.log.last_mut() {
            rec.payload = Some(payload);
        }
    }

    /// The journal, in issue order (`records()[i].id == i`).
    pub fn records(&self) -> &[WriteRecord] {
        &self.log
    }

    /// Number of writes recorded.
    pub fn len(&self) -> usize {
        self.log.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.log.is_empty()
    }

    /// The in-flight window at crash site `site` (the crash happens as
    /// write `site` is being issued; `site == len()` means a crash after
    /// the last issue): ids of writes issued before the crash whose
    /// completion lies beyond it, sorted by `(completion, id)` — the
    /// order the device drains them, i.e. `persist_horizon` order.
    ///
    /// # Panics
    /// Panics if `site > len()`.
    pub fn in_flight_at(&self, site: usize) -> Vec<u64> {
        assert!(site <= self.log.len(), "site beyond the journal");
        let crash_time = self.crash_time(site);
        let mut window: Vec<u64> = self.log[..site]
            .iter()
            .filter(|r| r.completion > crash_time)
            .map(|r| r.id)
            .collect();
        window.sort_by_key(|&id| (self.log[id as usize].completion, id));
        window
    }

    /// The simulated instant of a crash at `site`: the enqueue time of
    /// the write being issued (or of the last write, for an end crash).
    pub fn crash_time(&self, site: usize) -> Cycle {
        if site < self.log.len() {
            self.log[site].enqueue
        } else {
            self.log.last().map_or(0, |r| r.enqueue)
        }
    }

    /// Draws a crash cut at `site`: a seeded prefix of the in-flight
    /// window (in completion order) survives; with probability `torn_p`
    /// the first non-surviving write is torn rather than cleanly lost.
    ///
    /// # Panics
    /// Panics if `site > len()`.
    pub fn crash_cut(&self, site: usize, rng: &mut Rng64, torn_p: f64) -> CrashCut {
        let window = self.in_flight_at(site);
        let durable = rng.gen_range(0..window.len() as u64 + 1) as usize;
        let mut lost: Vec<u64> = window[durable..].to_vec();
        let torn = if !lost.is_empty() && rng.gen_bool(torn_p) {
            Some(lost.remove(0))
        } else {
            None
        };
        lost.sort_unstable();
        CrashCut {
            site,
            crash_time: self.crash_time(site),
            lost,
            torn,
        }
    }

    /// A deterministic cut: exactly the first `durable` in-flight writes
    /// (completion order) survive, the rest are lost, optionally tearing
    /// the first lost write. Used by tests and directed exploration.
    ///
    /// # Panics
    /// Panics if `site > len()`.
    pub fn cut_with_durable_prefix(
        &self,
        site: usize,
        durable: usize,
        tear_boundary: bool,
    ) -> CrashCut {
        let window = self.in_flight_at(site);
        let durable = durable.min(window.len());
        let mut lost: Vec<u64> = window[durable..].to_vec();
        let torn = if tear_boundary && !lost.is_empty() {
            Some(lost.remove(0))
        } else {
            None
        };
        lost.sort_unstable();
        CrashCut {
            site,
            crash_time: self.crash_time(site),
            lost,
            torn,
        }
    }
}

/// The durable outcome of a crash: writes issued before `site` survive
/// unless listed in `lost` (cleanly absent) or marked `torn` (partially
/// written, detectably corrupt); writes from `site` on never happened.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CrashCut {
    /// The write being issued when the crash hit (itself not durable).
    pub site: usize,
    /// The simulated crash instant.
    pub crash_time: Cycle,
    /// Ids of accepted-but-not-retained writes (sorted ascending).
    pub lost: Vec<u64>,
    /// The torn write on the durability boundary, if any.
    pub torn: Option<u64>,
}

impl CrashCut {
    /// Whether write `id` is fully durable under this cut.
    pub fn survives(&self, id: u64) -> bool {
        id < self.site as u64 && self.torn != Some(id) && self.lost.binary_search(&id).is_err()
    }

    /// Whether write `id` is the torn write.
    pub fn is_torn(&self, id: u64) -> bool {
        self.torn == Some(id)
    }

    /// Accepted writes that did not survive (lost + torn).
    pub fn dropped_count(&self) -> usize {
        self.lost.len() + usize::from(self.torn.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nvm::Nvm;

    fn plane_with_writes(specs: &[(Cycle, u64)]) -> (Nvm, FaultPlane) {
        // 1 bank, 400-cycle occupancy: writes serialize on the bank.
        let mut n = Nvm::new(1, 400, 200, 8, 100_000);
        n.enable_fault_plane();
        for &(t, key) in specs {
            n.write(t, key, NvmWriteKind::Data, 64);
        }
        let p = n.take_fault_plane().expect("plane enabled");
        (n, p)
    }

    #[test]
    fn journal_records_every_write_in_issue_order() {
        let (_, p) = plane_with_writes(&[(0, 1), (0, 2), (10, 3)]);
        assert_eq!(p.len(), 3);
        for (i, r) in p.records().iter().enumerate() {
            assert_eq!(r.id, i as u64);
        }
        assert_eq!(p.records()[0].completion, 400);
        assert_eq!(p.records()[1].completion, 800, "queued behind the first");
    }

    #[test]
    fn accepted_write_past_the_horizon_is_not_durable_after_a_crash() {
        // Satellite: a write *accepted* before the crash but whose
        // completion lies past the crash instant sits in the in-flight
        // window and may be dropped entirely.
        let (_, p) = plane_with_writes(&[(0, 1), (0, 2), (10, 3)]);
        // Crash while issuing write 2 (enqueue time 10). Both earlier
        // writes were accepted at time 0 but complete at 400 and 800 —
        // past the crash instant — so both are in flight.
        assert_eq!(p.in_flight_at(2), vec![0, 1]);
        let cut = p.cut_with_durable_prefix(2, 0, false);
        assert!(!cut.survives(0), "accepted but past the horizon: dropped");
        assert!(!cut.survives(1));
        assert!(!cut.survives(2), "the crashing write never happened");
    }

    #[test]
    fn completed_writes_are_always_durable() {
        let mut n = Nvm::new(1, 400, 200, 8, 100_000);
        n.enable_fault_plane();
        n.write(0, 1, NvmWriteKind::Data, 64); // completes at 400
        n.write(1000, 2, NvmWriteKind::Data, 64); // enqueued at 1000
        let p = n.take_fault_plane().unwrap();
        // Crash while issuing write 1 (t=1000): write 0 completed at 400
        // and is out of the window — durable under every cut.
        assert!(p.in_flight_at(1).is_empty());
        let cut = p.cut_with_durable_prefix(1, 0, false);
        assert!(cut.survives(0));
        assert!(!cut.survives(1));
    }

    #[test]
    fn cuts_are_prefix_closed_in_completion_order() {
        // 4 banks: completions interleave out of issue order.
        let mut n = Nvm::new(4, 400, 200, 8, 100_000);
        n.enable_fault_plane();
        for k in 0..32u64 {
            n.write(k * 3, k, NvmWriteKind::Data, 64);
        }
        let p = n.take_fault_plane().unwrap();
        let mut rng = Rng64::seed_from_u64(42);
        for site in [5usize, 13, 20, 31, 32] {
            for _ in 0..16 {
                let cut = p.crash_cut(site, &mut rng, 0.5);
                let window = p.in_flight_at(site);
                // If a window write survives, every window write with an
                // earlier (completion, id) must survive or be torn-free
                // earlier in the drain order — i.e. survivors form a
                // prefix of the drain order.
                let survivors: Vec<bool> = window.iter().map(|&id| cut.survives(id)).collect();
                let first_dead = survivors.iter().position(|s| !s).unwrap_or(survivors.len());
                assert!(
                    survivors[first_dead..].iter().all(|s| !s),
                    "site {site}: durable subset is not prefix-closed"
                );
                // The torn write, if any, sits exactly on the boundary.
                if let Some(t) = cut.torn {
                    assert_eq!(window.get(first_dead), Some(&t));
                }
            }
        }
    }

    #[test]
    fn annotations_attach_to_the_latest_write() {
        let mut p = FaultPlane::new();
        p.record(1, NvmWriteKind::Data, 64, 0, 400);
        p.annotate_last(PersistPayload::Version {
            line: LineAddr::new(7),
            token: 99,
            epoch: 3,
        });
        p.record(2, NvmWriteKind::MapMetadata, 8, 0, 450);
        p.annotate_last(PersistPayload::RecEpochRoot { epoch: 3 });
        assert_eq!(
            p.records()[0].payload,
            Some(PersistPayload::Version {
                line: LineAddr::new(7),
                token: 99,
                epoch: 3
            })
        );
        assert_eq!(
            p.records()[1].payload,
            Some(PersistPayload::RecEpochRoot { epoch: 3 })
        );
    }

    #[test]
    fn crash_cut_is_deterministic_per_seed() {
        let (_, p) = plane_with_writes(&[(0, 1), (0, 2), (0, 3), (5, 4)]);
        let a = p.crash_cut(3, &mut Rng64::seed_from_u64(7), 0.3);
        let b = p.crash_cut(3, &mut Rng64::seed_from_u64(7), 0.3);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "beyond the journal")]
    fn site_past_the_journal_is_rejected() {
        let (_, p) = plane_with_writes(&[(0, 1)]);
        let _ = p.in_flight_at(2);
    }
}
