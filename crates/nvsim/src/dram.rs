//! DRAM working-memory model.
//!
//! Holds the working copy of every line (as a content token) plus, for
//! NVOverlay, the per-line OID tags the paper stores "in the ECC banks"
//! (§IV-A4). The OID store supports the §V-F *super block* option where one
//! tag is shared by a block of consecutive lines and only grows
//! monotonically ("The existing OID is only updated if the incoming OID is
//! larger").

use crate::addr::{LineAddr, Token};
use crate::clock::Cycle;
use crate::fastmap::FastMap;

/// DRAM device: constant-latency, token-addressable working memory.
#[derive(Clone, Debug)]
pub struct Dram {
    latency: Cycle,
    contents: FastMap<LineAddr, Token>,
    oid_tags: FastMap<u64, u16>,
    superblock_lines: u64,
    reads: u64,
    writes: u64,
}

impl Dram {
    /// Creates a DRAM with the given access latency and OID super-block
    /// granularity (1 = per-line tags).
    ///
    /// # Panics
    /// Panics if `superblock_lines` is zero.
    pub fn new(latency: Cycle, superblock_lines: u32) -> Self {
        assert!(superblock_lines > 0, "super-block size must be positive");
        Self {
            latency,
            contents: FastMap::new(),
            oid_tags: FastMap::new(),
            superblock_lines: superblock_lines as u64,
            reads: 0,
            writes: 0,
        }
    }

    /// Access latency in cycles.
    pub fn latency(&self) -> Cycle {
        self.latency
    }

    /// Reads the working copy of a line. Unwritten lines read as token 0
    /// (zero-filled memory).
    pub fn read(&mut self, line: LineAddr) -> Token {
        self.reads += 1;
        *self.contents.get(&line).unwrap_or(&0)
    }

    /// Writes the working copy of a line.
    pub fn write(&mut self, line: LineAddr, token: Token) {
        self.writes += 1;
        self.contents.insert(line, token);
    }

    /// Reads a line without counting an access (verification helper).
    pub fn peek(&self, line: LineAddr) -> Token {
        *self.contents.get(&line).unwrap_or(&0)
    }

    fn tag_key(&self, line: LineAddr) -> u64 {
        line.raw() / self.superblock_lines
    }

    /// The OID tag covering `line`, if ever set.
    pub fn oid(&self, line: LineAddr) -> Option<u16> {
        self.oid_tags.get(&self.tag_key(line)).copied()
    }

    /// Updates the OID tag covering `line`.
    ///
    /// With super-blocks larger than one line the tag only moves forward:
    /// `cmp_newer(incoming, existing)` decides (the caller supplies epoch
    /// comparison so wrap-around rules stay in one place).
    pub fn update_oid(&mut self, line: LineAddr, oid: u16, cmp_newer: impl Fn(u16, u16) -> bool) {
        let key = self.tag_key(line);
        match self.oid_tags.get_mut(&key) {
            Some(existing) => {
                if self.superblock_lines == 1 || cmp_newer(oid, *existing) {
                    *existing = oid;
                }
            }
            None => {
                self.oid_tags.insert(key, oid);
            }
        }
    }

    /// Number of distinct OID tags stored (DRAM tagging overhead metric).
    pub fn oid_tag_count(&self) -> usize {
        self.oid_tags.len()
    }

    /// Rewrites every stored OID tag matching `pred` to `replacement`.
    ///
    /// Used by NVOverlay's §IV-D wrap-around protocol: when epochs enter a
    /// recycled 16-bit group, stale DRAM tags from that group's previous
    /// generation are scrubbed to the flip boundary so they can never read
    /// as "from the future".
    pub fn scrub_oids(&mut self, mut pred: impl FnMut(u16) -> bool, replacement: u16) {
        for v in self.oid_tags.values_mut() {
            if pred(*v) {
                *v = replacement;
            }
        }
    }

    /// Total reads served.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Total writes served.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Iterates the current working image (line → token).
    pub fn image(&self) -> impl Iterator<Item = (LineAddr, Token)> + '_ {
        self.contents.iter().map(|(l, t)| (*l, *t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    #[test]
    fn read_write_round_trip() {
        let mut d = Dram::new(150, 1);
        assert_eq!(d.read(line(1)), 0, "unwritten memory reads as zero");
        d.write(line(1), 42);
        assert_eq!(d.read(line(1)), 42);
        assert_eq!(d.reads(), 2);
        assert_eq!(d.writes(), 1);
    }

    #[test]
    fn per_line_oid_tags_overwrite_freely() {
        let mut d = Dram::new(150, 1);
        d.update_oid(line(0), 10, |a, b| a > b);
        d.update_oid(line(0), 5, |a, b| a > b);
        // Granularity 1: always overwritten (each line has its own tag).
        assert_eq!(d.oid(line(0)), Some(5));
    }

    #[test]
    fn superblock_tags_only_grow() {
        let mut d = Dram::new(150, 4);
        d.update_oid(line(0), 10, |a, b| a > b);
        d.update_oid(line(3), 5, |a, b| a > b); // same super block, older
        assert_eq!(d.oid(line(1)), Some(10), "older OID must not regress tag");
        d.update_oid(line(2), 12, |a, b| a > b);
        assert_eq!(d.oid(line(0)), Some(12));
        assert_eq!(d.oid_tag_count(), 1);
        d.update_oid(line(4), 1, |a, b| a > b); // next super block
        assert_eq!(d.oid_tag_count(), 2);
    }

    #[test]
    fn scrub_rewrites_matching_tags() {
        let mut d = Dram::new(150, 1);
        d.update_oid(line(0), 40_000, |a, b| a > b);
        d.update_oid(line(1), 10, |a, b| a > b);
        d.scrub_oids(|t| t >= 32_768, 32_768);
        assert_eq!(d.oid(line(0)), Some(32_768));
        assert_eq!(d.oid(line(1)), Some(10));
    }

    #[test]
    fn image_lists_written_lines() {
        let mut d = Dram::new(150, 1);
        d.write(line(8), 100);
        d.write(line(9), 200);
        let mut img: Vec<_> = d.image().collect();
        img.sort_by_key(|(l, _)| l.raw());
        assert_eq!(img, vec![(line(8), 100), (line(9), 200)]);
    }
}
