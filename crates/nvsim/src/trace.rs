//! Memory access traces.
//!
//! Workloads (the `nvworkloads` crate) produce a [`Trace`]: one event
//! stream per logical thread. The [`crate::memsys::Runner`] interleaves the
//! streams deterministically by per-core clock and feeds them to a
//! [`crate::memsys::MemorySystem`].
//!
//! Stores carry a unique [`Token`] standing in for the 64 bytes they would
//! write; snapshot correctness is verified by token equality (DESIGN.md §2).

use crate::addr::{Addr, ThreadId, Token};
use crate::memsys::MemOp;

/// One event in a thread's stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A memory access. `token` is the stored content for
    /// [`MemOp::Store`]; it is ignored for loads.
    Access {
        /// Load or store.
        op: MemOp,
        /// Byte address accessed.
        addr: Addr,
        /// Content token written (stores only).
        token: Token,
    },
    /// The thread requests an epoch boundary for its Versioned Domain
    /// (models the paper's user-initiated epochs in the time-travel
    /// debugging scenario, Fig 17b).
    EpochMark,
}

/// A complete multi-threaded trace.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    threads: Vec<Vec<TraceEvent>>,
}

impl Trace {
    /// Number of thread streams.
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// The event stream of one thread.
    ///
    /// # Panics
    /// Panics if `thread` is out of range.
    pub fn thread(&self, thread: ThreadId) -> &[TraceEvent] {
        &self.threads[thread.index()]
    }

    /// Total accesses (loads + stores) across all threads.
    pub fn access_count(&self) -> u64 {
        self.threads
            .iter()
            .flatten()
            .filter(|e| matches!(e, TraceEvent::Access { .. }))
            .count() as u64
    }

    /// Total stores across all threads.
    pub fn store_count(&self) -> u64 {
        self.threads
            .iter()
            .flatten()
            .filter(|e| {
                matches!(
                    e,
                    TraceEvent::Access {
                        op: MemOp::Store,
                        ..
                    }
                )
            })
            .count() as u64
    }

    /// Number of distinct lines touched (footprint).
    pub fn line_footprint(&self) -> u64 {
        let mut lines: Vec<u64> = self
            .threads
            .iter()
            .flatten()
            .filter_map(|e| match e {
                TraceEvent::Access { addr, .. } => Some(addr.line().raw()),
                TraceEvent::EpochMark => None,
            })
            .collect();
        lines.sort_unstable();
        lines.dedup();
        lines.len() as u64
    }

    /// Number of distinct lines written (write working set).
    pub fn write_footprint(&self) -> u64 {
        let mut lines: Vec<u64> = self
            .threads
            .iter()
            .flatten()
            .filter_map(|e| match e {
                TraceEvent::Access {
                    op: MemOp::Store,
                    addr,
                    ..
                } => Some(addr.line().raw()),
                _ => None,
            })
            .collect();
        lines.sort_unstable();
        lines.dedup();
        lines.len() as u64
    }
}

/// Incremental [`Trace`] builder handing out unique store tokens.
///
/// ```
/// use nvsim::trace::TraceBuilder;
/// use nvsim::addr::{Addr, ThreadId};
///
/// let mut b = TraceBuilder::new(2);
/// b.store(ThreadId(0), Addr::new(0x40));
/// b.load(ThreadId(1), Addr::new(0x40));
/// let t = b.build();
/// assert_eq!(t.access_count(), 2);
/// assert_eq!(t.store_count(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct TraceBuilder {
    threads: Vec<Vec<TraceEvent>>,
    next_token: Token,
}

impl TraceBuilder {
    /// Creates a builder for `threads` thread streams.
    ///
    /// # Panics
    /// Panics if `threads` is zero.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "a trace needs at least one thread");
        Self {
            threads: vec![Vec::new(); threads],
            // Token 0 is reserved for "never written" (zero-filled memory).
            next_token: 1,
        }
    }

    /// Appends a load.
    pub fn load(&mut self, thread: ThreadId, addr: Addr) -> &mut Self {
        self.threads[thread.index()].push(TraceEvent::Access {
            op: MemOp::Load,
            addr,
            token: 0,
        });
        self
    }

    /// Appends a store with a fresh unique token; returns the token.
    pub fn store(&mut self, thread: ThreadId, addr: Addr) -> Token {
        let token = self.next_token;
        self.next_token += 1;
        self.threads[thread.index()].push(TraceEvent::Access {
            op: MemOp::Store,
            addr,
            token,
        });
        token
    }

    /// Appends a store with an explicit token (trace deserialization;
    /// keeps the builder's counter ahead so later [`TraceBuilder::store`]
    /// calls stay unique).
    pub fn store_with_token(&mut self, thread: ThreadId, addr: Addr, token: Token) {
        self.next_token = self.next_token.max(token + 1);
        self.threads[thread.index()].push(TraceEvent::Access {
            op: MemOp::Store,
            addr,
            token,
        });
    }

    /// Appends an explicit epoch boundary request.
    pub fn epoch_mark(&mut self, thread: ThreadId) -> &mut Self {
        self.threads[thread.index()].push(TraceEvent::EpochMark);
        self
    }

    /// Events currently recorded for `thread`.
    pub fn thread_len(&self, thread: ThreadId) -> usize {
        self.threads[thread.index()].len()
    }

    /// Finalizes the trace.
    pub fn build(self) -> Trace {
        Trace {
            threads: self.threads,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_are_unique_and_nonzero() {
        let mut b = TraceBuilder::new(1);
        let t1 = b.store(ThreadId(0), Addr::new(0));
        let t2 = b.store(ThreadId(0), Addr::new(64));
        assert_ne!(t1, 0);
        assert_ne!(t1, t2);
    }

    #[test]
    fn footprints_count_distinct_lines() {
        let mut b = TraceBuilder::new(2);
        b.store(ThreadId(0), Addr::new(0));
        b.store(ThreadId(0), Addr::new(8)); // same line
        b.store(ThreadId(1), Addr::new(64));
        b.load(ThreadId(1), Addr::new(128));
        let t = b.build();
        assert_eq!(t.line_footprint(), 3);
        assert_eq!(t.write_footprint(), 2);
        assert_eq!(t.access_count(), 4);
        assert_eq!(t.store_count(), 3);
    }

    #[test]
    fn epoch_marks_are_recorded_but_not_accesses() {
        let mut b = TraceBuilder::new(1);
        b.epoch_mark(ThreadId(0));
        b.store(ThreadId(0), Addr::new(0));
        let t = b.build();
        assert_eq!(t.thread(ThreadId(0)).len(), 2);
        assert_eq!(t.access_count(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = TraceBuilder::new(0);
    }
}
