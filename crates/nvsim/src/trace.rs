//! Memory access traces.
//!
//! Workloads (the `nvworkloads` crate) produce a [`Trace`]: one event
//! stream per logical thread. The [`crate::memsys::Runner`] interleaves the
//! streams deterministically by per-core clock and feeds them to a
//! [`crate::memsys::MemorySystem`].
//!
//! Stores carry a unique [`Token`] standing in for the 64 bytes they would
//! write; snapshot correctness is verified by token equality (DESIGN.md §2).

use crate::addr::{Addr, ThreadId, Token};
use crate::memsys::MemOp;

/// One event in a thread's stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A memory access. `token` is the stored content for
    /// [`MemOp::Store`]; it is ignored for loads.
    Access {
        /// Load or store.
        op: MemOp,
        /// Byte address accessed.
        addr: Addr,
        /// Content token written (stores only).
        token: Token,
    },
    /// The thread requests an epoch boundary for its Versioned Domain
    /// (models the paper's user-initiated epochs in the time-travel
    /// debugging scenario, Fig 17b).
    EpochMark,
}

/// A complete multi-threaded trace.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    threads: Vec<Vec<TraceEvent>>,
}

impl Trace {
    /// Number of thread streams.
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// The event stream of one thread.
    ///
    /// # Panics
    /// Panics if `thread` is out of range.
    pub fn thread(&self, thread: ThreadId) -> &[TraceEvent] {
        &self.threads[thread.index()]
    }

    /// Total accesses (loads + stores) across all threads.
    pub fn access_count(&self) -> u64 {
        self.threads
            .iter()
            .flatten()
            .filter(|e| matches!(e, TraceEvent::Access { .. }))
            .count() as u64
    }

    /// Total stores across all threads.
    pub fn store_count(&self) -> u64 {
        self.threads
            .iter()
            .flatten()
            .filter(|e| {
                matches!(
                    e,
                    TraceEvent::Access {
                        op: MemOp::Store,
                        ..
                    }
                )
            })
            .count() as u64
    }

    /// Number of distinct lines touched (footprint).
    pub fn line_footprint(&self) -> u64 {
        let mut lines: Vec<u64> = self
            .threads
            .iter()
            .flatten()
            .filter_map(|e| match e {
                TraceEvent::Access { addr, .. } => Some(addr.line().raw()),
                TraceEvent::EpochMark => None,
            })
            .collect();
        lines.sort_unstable();
        lines.dedup();
        lines.len() as u64
    }

    /// Number of distinct lines written (write working set).
    pub fn write_footprint(&self) -> u64 {
        let mut lines: Vec<u64> = self
            .threads
            .iter()
            .flatten()
            .filter_map(|e| match e {
                TraceEvent::Access {
                    op: MemOp::Store,
                    addr,
                    ..
                } => Some(addr.line().raw()),
                _ => None,
            })
            .collect();
        lines.sort_unstable();
        lines.dedup();
        lines.len() as u64
    }
}

/// Incremental [`Trace`] builder handing out unique store tokens.
///
/// ```
/// use nvsim::trace::TraceBuilder;
/// use nvsim::addr::{Addr, ThreadId};
///
/// let mut b = TraceBuilder::new(2);
/// b.store(ThreadId(0), Addr::new(0x40));
/// b.load(ThreadId(1), Addr::new(0x40));
/// let t = b.build();
/// assert_eq!(t.access_count(), 2);
/// assert_eq!(t.store_count(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct TraceBuilder {
    threads: Vec<Vec<TraceEvent>>,
    next_token: Token,
}

impl TraceBuilder {
    /// Creates a builder for `threads` thread streams.
    ///
    /// # Panics
    /// Panics if `threads` is zero.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "a trace needs at least one thread");
        Self {
            threads: vec![Vec::new(); threads],
            // Token 0 is reserved for "never written" (zero-filled memory).
            next_token: 1,
        }
    }

    /// Appends a load.
    pub fn load(&mut self, thread: ThreadId, addr: Addr) -> &mut Self {
        self.threads[thread.index()].push(TraceEvent::Access {
            op: MemOp::Load,
            addr,
            token: 0,
        });
        self
    }

    /// Appends a store with a fresh unique token; returns the token.
    pub fn store(&mut self, thread: ThreadId, addr: Addr) -> Token {
        let token = self.next_token;
        self.next_token += 1;
        self.threads[thread.index()].push(TraceEvent::Access {
            op: MemOp::Store,
            addr,
            token,
        });
        token
    }

    /// Appends a store with an explicit token (trace deserialization;
    /// keeps the builder's counter ahead so later [`TraceBuilder::store`]
    /// calls stay unique).
    pub fn store_with_token(&mut self, thread: ThreadId, addr: Addr, token: Token) {
        self.next_token = self.next_token.max(token + 1);
        self.threads[thread.index()].push(TraceEvent::Access {
            op: MemOp::Store,
            addr,
            token,
        });
    }

    /// Appends an explicit epoch boundary request.
    pub fn epoch_mark(&mut self, thread: ThreadId) -> &mut Self {
        self.threads[thread.index()].push(TraceEvent::EpochMark);
        self
    }

    /// Events currently recorded for `thread`.
    pub fn thread_len(&self, thread: ThreadId) -> usize {
        self.threads[thread.index()].len()
    }

    /// Finalizes the trace.
    pub fn build(self) -> Trace {
        Trace {
            threads: self.threads,
        }
    }
}

// -------------------------------------------------------------------
// Packed encoding
// -------------------------------------------------------------------

const KIND_LOAD: u64 = 0;
const KIND_STORE: u64 = 1;
const KIND_MARK: u64 = 2;
const KIND_BITS: u64 = 2;
const KIND_MASK: u64 = (1 << KIND_BITS) - 1;

/// One fixed-width trace event: `w0 = (addr << 2) | kind`, `w1 = token`.
///
/// 16 bytes per event instead of the 32-byte `TraceEvent` enum variant,
/// and — more importantly — stored in one flat contiguous vector per
/// trace, so the replay loop streams through memory instead of chasing
/// per-thread `Vec` spines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PackedEvent {
    w0: u64,
    w1: u64,
}

impl PackedEvent {
    /// Packs one event.
    ///
    /// # Panics
    /// Panics if an access address needs more than 62 bits.
    pub fn encode(e: &TraceEvent) -> Self {
        match *e {
            TraceEvent::Access { op, addr, token } => {
                let raw = addr.raw();
                assert!(raw < (1 << 62), "address {raw:#x} exceeds 62 bits");
                let kind = match op {
                    MemOp::Load => KIND_LOAD,
                    MemOp::Store => KIND_STORE,
                };
                Self {
                    w0: (raw << KIND_BITS) | kind,
                    w1: token,
                }
            }
            TraceEvent::EpochMark => Self {
                w0: KIND_MARK,
                w1: 0,
            },
        }
    }

    /// Whether this is an epoch mark.
    #[inline]
    pub fn is_mark(self) -> bool {
        self.w0 & KIND_MASK == KIND_MARK
    }

    /// The access operation.
    ///
    /// # Panics
    /// Debug-panics on an epoch mark.
    #[inline]
    pub fn op(self) -> MemOp {
        debug_assert!(!self.is_mark());
        if self.w0 & KIND_MASK == KIND_STORE {
            MemOp::Store
        } else {
            MemOp::Load
        }
    }

    /// The byte address accessed (accesses only).
    #[inline]
    pub fn addr(self) -> Addr {
        debug_assert!(!self.is_mark());
        Addr::new(self.w0 >> KIND_BITS)
    }

    /// The content token (stores carry it; loads carry what the original
    /// event carried, normally 0).
    #[inline]
    pub fn token(self) -> Token {
        self.w1
    }

    /// Unpacks back into the builder/IO representation.
    pub fn decode(self) -> TraceEvent {
        if self.is_mark() {
            TraceEvent::EpochMark
        } else {
            TraceEvent::Access {
                op: self.op(),
                addr: self.addr(),
                token: self.token(),
            }
        }
    }
}

/// A [`Trace`] in packed fixed-width form: all threads' events in one
/// flat vector with per-thread ranges. This is the replay-side format —
/// built once per workload (see `nvbench::gen_traces`), shared via `Arc`
/// across every scheme of a sweep. [`Trace`] stays the builder/IO format;
/// conversion is lossless both ways.
#[derive(Clone, Debug, Default)]
pub struct PackedTrace {
    events: Vec<PackedEvent>,
    /// Per-thread `(offset, len)` into `events`.
    ranges: Vec<(usize, usize)>,
    accesses: u64,
    stores: u64,
}

impl PackedTrace {
    /// Packs a trace.
    ///
    /// # Panics
    /// Panics if any address needs more than 62 bits.
    pub fn from_trace(t: &Trace) -> Self {
        let total: usize = t.threads.iter().map(Vec::len).sum();
        let mut events = Vec::with_capacity(total);
        let mut ranges = Vec::with_capacity(t.threads.len());
        let (mut accesses, mut stores) = (0u64, 0u64);
        for thread in &t.threads {
            let offset = events.len();
            for e in thread {
                match e {
                    TraceEvent::Access { op, .. } => {
                        accesses += 1;
                        if *op == MemOp::Store {
                            stores += 1;
                        }
                    }
                    TraceEvent::EpochMark => {}
                }
                events.push(PackedEvent::encode(e));
            }
            ranges.push((offset, thread.len()));
        }
        Self {
            events,
            ranges,
            accesses,
            stores,
        }
    }

    /// Unpacks into the builder/IO representation (lossless).
    pub fn to_trace(&self) -> Trace {
        Trace {
            threads: self
                .ranges
                .iter()
                .map(|&(off, len)| {
                    self.events[off..off + len]
                        .iter()
                        .map(|e| e.decode())
                        .collect()
                })
                .collect(),
        }
    }

    /// Number of thread streams.
    pub fn thread_count(&self) -> usize {
        self.ranges.len()
    }

    /// The packed event stream of one thread.
    ///
    /// # Panics
    /// Panics if `thread` is out of range.
    #[inline]
    pub fn thread(&self, thread: ThreadId) -> &[PackedEvent] {
        let (off, len) = self.ranges[thread.index()];
        &self.events[off..off + len]
    }

    /// Builds a packed trace directly from borrowed per-thread packed
    /// streams, copying each stream verbatim. Used by the sharded-replay
    /// planner to materialize one contiguous trace segment per island
    /// (the island's threads only, in island-local order).
    pub fn from_thread_streams(streams: &[&[PackedEvent]]) -> Self {
        let total: usize = streams.iter().map(|s| s.len()).sum();
        let mut events = Vec::with_capacity(total);
        let mut ranges = Vec::with_capacity(streams.len());
        let (mut accesses, mut stores) = (0u64, 0u64);
        for stream in streams {
            let offset = events.len();
            for e in *stream {
                if !e.is_mark() {
                    accesses += 1;
                    if e.op() == MemOp::Store {
                        stores += 1;
                    }
                }
            }
            events.extend_from_slice(stream);
            ranges.push((offset, stream.len()));
        }
        Self {
            events,
            ranges,
            accesses,
            stores,
        }
    }

    /// A cheap content fingerprint (FNV-1a over every event word and the
    /// thread-range table). Two traces with the same fingerprint, event
    /// count, and store count are treated as identical by the sharded
    /// plan cache; the fold is order-sensitive, so any reordering or
    /// edit of the stream changes it.
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut fold = |w: u64| {
            for shift in [0, 32] {
                h ^= (w >> shift) & 0xffff_ffff;
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        for &(off, len) in &self.ranges {
            fold(off as u64);
            fold(len as u64);
        }
        for e in &self.events {
            fold(e.w0);
            fold(e.w1);
        }
        h
    }

    /// Total accesses (loads + stores) across all threads.
    pub fn access_count(&self) -> u64 {
        self.accesses
    }

    /// Total stores across all threads.
    pub fn store_count(&self) -> u64 {
        self.stores
    }
}

impl From<&Trace> for PackedTrace {
    fn from(t: &Trace) -> Self {
        Self::from_trace(t)
    }
}

impl Trace {
    /// Packs this trace for replay (see [`PackedTrace`]).
    pub fn to_packed(&self) -> PackedTrace {
        PackedTrace::from_trace(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_are_unique_and_nonzero() {
        let mut b = TraceBuilder::new(1);
        let t1 = b.store(ThreadId(0), Addr::new(0));
        let t2 = b.store(ThreadId(0), Addr::new(64));
        assert_ne!(t1, 0);
        assert_ne!(t1, t2);
    }

    #[test]
    fn footprints_count_distinct_lines() {
        let mut b = TraceBuilder::new(2);
        b.store(ThreadId(0), Addr::new(0));
        b.store(ThreadId(0), Addr::new(8)); // same line
        b.store(ThreadId(1), Addr::new(64));
        b.load(ThreadId(1), Addr::new(128));
        let t = b.build();
        assert_eq!(t.line_footprint(), 3);
        assert_eq!(t.write_footprint(), 2);
        assert_eq!(t.access_count(), 4);
        assert_eq!(t.store_count(), 3);
    }

    #[test]
    fn epoch_marks_are_recorded_but_not_accesses() {
        let mut b = TraceBuilder::new(1);
        b.epoch_mark(ThreadId(0));
        b.store(ThreadId(0), Addr::new(0));
        let t = b.build();
        assert_eq!(t.thread(ThreadId(0)).len(), 2);
        assert_eq!(t.access_count(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = TraceBuilder::new(0);
    }

    #[test]
    fn packed_round_trip_is_lossless() {
        let mut b = TraceBuilder::new(3);
        b.store(ThreadId(0), Addr::new(0x1234));
        b.load(ThreadId(1), Addr::new(0xFFFF_FFFF_0040));
        b.epoch_mark(ThreadId(1));
        b.store_with_token(ThreadId(2), Addr::new(64), 999);
        b.load(ThreadId(0), Addr::new(0));
        let t = b.build();
        let packed = t.to_packed();
        assert_eq!(packed.thread_count(), 3);
        assert_eq!(packed.access_count(), t.access_count());
        assert_eq!(packed.store_count(), t.store_count());
        let back = packed.to_trace();
        for th in 0..3 {
            assert_eq!(
                back.thread(ThreadId(th)),
                t.thread(ThreadId(th)),
                "thread {th} round trip"
            );
        }
    }

    #[test]
    fn packed_event_fields_decode() {
        let e = TraceEvent::Access {
            op: MemOp::Store,
            addr: Addr::new(0x40),
            token: 7,
        };
        let p = PackedEvent::encode(&e);
        assert!(!p.is_mark());
        assert_eq!(p.op(), MemOp::Store);
        assert_eq!(p.addr(), Addr::new(0x40));
        assert_eq!(p.token(), 7);
        assert_eq!(p.decode(), e);
        let m = PackedEvent::encode(&TraceEvent::EpochMark);
        assert!(m.is_mark());
        assert_eq!(m.decode(), TraceEvent::EpochMark);
    }

    #[test]
    fn widest_physical_address_survives_packing() {
        // `Addr` is capped at the 48-bit physical space, comfortably
        // inside the 62 address bits the packed word keeps — the widest
        // legal address must round-trip exactly.
        let addr = Addr::new((1u64 << 48) - 64);
        let e = TraceEvent::Access {
            op: MemOp::Store,
            addr,
            token: 7,
        };
        let p = PackedEvent::encode(&e);
        assert_eq!(p.addr(), addr);
        assert_eq!(p.decode(), e);
    }
}
