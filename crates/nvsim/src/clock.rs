//! Cycle accounting.
//!
//! Every timing quantity in the simulator is a [`Cycle`] count at the core
//! clock (3 GHz in the paper's Table II). Each core owns a [`CoreClock`];
//! the run loop in [`crate::memsys`] always advances the globally smallest
//! clock next, which makes the interleaving deterministic.

/// A point in simulated time, in core cycles.
pub type Cycle = u64;

/// Per-core logical clock.
///
/// ```
/// use nvsim::clock::CoreClock;
/// let mut c = CoreClock::new();
/// c.advance(10);
/// c.stall(5);
/// assert_eq!(c.now(), 15);
/// assert_eq!(c.stall_cycles(), 5);
/// ```
#[derive(Clone, Debug, Default)]
pub struct CoreClock {
    now: Cycle,
    stall: Cycle,
}

impl CoreClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current time.
    #[inline]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Advances time by `cycles` of useful work (access latency).
    #[inline]
    pub fn advance(&mut self, cycles: Cycle) {
        self.now += cycles;
    }

    /// Advances time by `cycles` of *stall* (persistence barrier, queue
    /// backpressure). Stall cycles are additionally accumulated so the
    /// overhead of a scheme can be reported separately.
    #[inline]
    pub fn stall(&mut self, cycles: Cycle) {
        self.now += cycles;
        self.stall += cycles;
    }

    /// Moves the clock forward to `t` if `t` is in the future, counting the
    /// jump as stall time. Returns the cycles actually stalled.
    #[inline]
    pub fn stall_until(&mut self, t: Cycle) -> Cycle {
        if t > self.now {
            let d = t - self.now;
            self.stall(d);
            d
        } else {
            0
        }
    }

    /// Total cycles spent stalled so far.
    #[inline]
    pub fn stall_cycles(&self) -> Cycle {
        self.stall
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_and_stall_accumulate() {
        let mut c = CoreClock::new();
        c.advance(100);
        c.stall(20);
        c.advance(1);
        assert_eq!(c.now(), 121);
        assert_eq!(c.stall_cycles(), 20);
    }

    #[test]
    fn stall_until_ignores_past_times() {
        let mut c = CoreClock::new();
        c.advance(50);
        assert_eq!(c.stall_until(30), 0);
        assert_eq!(c.now(), 50);
        assert_eq!(c.stall_until(80), 30);
        assert_eq!(c.now(), 80);
        assert_eq!(c.stall_cycles(), 30);
    }
}
