//! `nvprof` — stall attribution for island-sharded replay.
//!
//! [`crate::memsys::Runner::run_packed_sharded_prof`] threads a
//! [`ShardProfile`] through the sharded replay loop: every island
//! accumulates one [`WindowCell`] per barrier window (thread-local
//! monotonic accumulators — islands are owned by exactly one worker, so
//! the cells need no synchronization), every worker accumulates its
//! rendezvous wait, and the caller accounts the final merge. The profile
//! answers the question the scaling curve alone cannot: where did a
//! sharded run's wall-time go — compute, barrier waits, exchange
//! application, epoch (Lamport) sync, shard-plan construction, or the
//! island merge?
//!
//! ## Two strictly separated kinds of data
//!
//! * **Structural counters** — event counts, import tallies, simulated
//!   arrival clocks, epoch-sync stall cycles, exchange sizes. These are
//!   derived from the shard plan and the simulation alone, so they are
//!   **byte-identical across runs and across worker counts** (pinned by
//!   `nvbench/tests/profile_determinism.rs` and the CI cmp matrix).
//! * **Wall-clock fields** (`*_ns`) — monotonic host time. Real on every
//!   run, never compared for identity.
//!
//! Straggler analysis uses *simulated* arrival clocks, so the
//! critical-path island of every window is itself deterministic: the
//! diagnosis ("island 3 gates 7 of 12 windows") reproduces even though
//! the host timings around it do not.

use crate::clock::Cycle;

/// The attribution buckets sharded replay wall-time decomposes into.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProfBucket {
    /// Island window replay (including sub-machine construction and the
    /// final persistence drain — simulated work).
    Compute,
    /// Time parked at the two-phase epoch-barrier rendezvous.
    BarrierWait,
    /// Applying the canonical cross-island exchange map.
    ExchangeApply,
    /// Lamport epoch sync (`raise_epoch_floor`) at the barrier.
    EpochSync,
    /// Deriving (or fetching from the memo) the shard plan: stream
    /// cutting, island trace pre-splitting, exchange-arena construction,
    /// and the rendezvous cadence. Serial, caller-side work — near zero
    /// on a plan-cache hit.
    PlanBuild,
    /// Packaging island outcomes (including sub-machine teardown) and
    /// folding them into the merged report (stats/metrics/golden
    /// merges, ascending island order).
    Merge,
}

impl ProfBucket {
    /// All buckets, display order.
    pub const ALL: [ProfBucket; 6] = [
        ProfBucket::Compute,
        ProfBucket::BarrierWait,
        ProfBucket::ExchangeApply,
        ProfBucket::EpochSync,
        ProfBucket::PlanBuild,
        ProfBucket::Merge,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            ProfBucket::Compute => "compute",
            ProfBucket::BarrierWait => "barrier-wait",
            ProfBucket::ExchangeApply => "exchange-apply",
            ProfBucket::EpochSync => "epoch-sync",
            ProfBucket::PlanBuild => "plan-build",
            ProfBucket::Merge => "merge",
        }
    }
}

/// One island's accounting for one barrier window.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WindowCell {
    // --- structural (deterministic) ---
    /// Trace events replayed by the island in this window.
    pub events: u64,
    /// The island's simulated clock on barrier arrival.
    pub arrive_clock: Cycle,
    /// The globally aligned clock after the rendezvous (`max` over all
    /// islands' arrivals — identical for every island of the window).
    pub aligned_clock: Cycle,
    /// The Lamport epoch floor the barrier raised this island to.
    pub epoch_floor: u64,
    /// Simulated stall cycles `raise_epoch_floor` charged at this
    /// barrier.
    pub sync_stall_cycles: Cycle,
    /// Exchange entries imported into this island (deposit applied).
    pub imports_applied: u64,
    /// Exchange entries skipped (own writes, or a newer cached copy).
    pub imports_skipped: u64,
    // --- wall-clock (host time, never identity-compared) ---
    /// Host nanoseconds replaying the window.
    pub compute_ns: u64,
    /// Host nanoseconds applying the exchange map.
    pub exchange_ns: u64,
    /// Host nanoseconds in `raise_epoch_floor`.
    pub sync_ns: u64,
}

/// One island's full profile: a [`WindowCell`] per window plus the
/// island's bracketing phases.
#[derive(Clone, Debug, Default)]
pub struct IslandProfile {
    /// The island (ascending, = VD index).
    pub island: usize,
    /// Per-window accounting, window order.
    pub cells: Vec<WindowCell>,
    /// Host nanoseconds building the island sub-machine.
    pub setup_ns: u64,
    /// Host nanoseconds in the final `MemorySystem::finish` drain
    /// (simulated work — attributed to the compute bucket).
    pub finish_ns: u64,
    /// Host nanoseconds packaging the island outcome (stats clone,
    /// metrics freeze, sub-machine teardown — attributed to the merge
    /// bucket).
    pub package_ns: u64,
    /// The island's final simulated clock.
    pub final_clock: Cycle,
}

impl IslandProfile {
    /// Sum of a wall field over all windows.
    fn sum_ns(&self, f: impl Fn(&WindowCell) -> u64) -> u64 {
        self.cells.iter().map(f).sum()
    }
}

/// One worker thread's accounting (wall-clock only: which OS thread ran
/// which island is an execution detail, not part of the deterministic
/// schedule).
///
/// The four phase counters are *contiguous laps* of one running clock:
/// each boundary reads the monotonic clock once and charges the segment
/// since the previous boundary, so the laps tile the worker's lifetime
/// and loop overhead lands in the adjacent phase instead of escaping
/// attribution.
#[derive(Clone, Copy, Debug, Default)]
pub struct WorkerProfile {
    /// Worker index.
    pub worker: usize,
    /// Host nanoseconds replaying windows (island setup, event replay,
    /// clock publication, and the final persistence drain).
    pub compute_ns: u64,
    /// Host nanoseconds parked at barrier rendezvous (both phases).
    pub barrier_ns: u64,
    /// Host nanoseconds in post-barrier sync (exchange application plus
    /// the epoch-sync share the island cells break out).
    pub exchange_ns: u64,
    /// Host nanoseconds packaging island outcomes (stats clone, metrics
    /// freeze, sub-machine teardown).
    pub package_ns: u64,
    /// Host nanoseconds from worker start to worker exit.
    pub elapsed_ns: u64,
}

/// The complete profile of one sharded replay.
#[derive(Clone, Debug, Default)]
pub struct ShardProfile {
    /// Islands in the plan.
    pub islands: usize,
    /// Barrier windows rendezvoused.
    pub windows: usize,
    /// Worker threads used (wall-clock context; not structural).
    pub workers: usize,
    /// The plan's per-thread window store budget.
    pub window_stores: u64,
    /// Rendezvous windows in the plan's coalesced cadence (structural;
    /// ≤ `windows`, and the final window always rendezvouses).
    pub rendezvous_windows: u64,
    /// Exchange-run size per window (structural, from the plan).
    pub exchange_entries: Vec<u64>,
    /// Per-island profiles, ascending island order.
    pub island_profiles: Vec<IslandProfile>,
    /// Per-worker profiles, worker order.
    pub worker_profiles: Vec<WorkerProfile>,
    /// Host nanoseconds merging island outcomes on the calling thread.
    pub merge_ns: u64,
    /// Host nanoseconds deriving (or memo-fetching) the shard plan on
    /// the calling thread; zero when the caller timed plan construction
    /// separately or reused a pre-built plan.
    pub plan_build_ns: u64,
    /// Host nanoseconds for the whole sharded replay call.
    pub total_ns: u64,
}

impl ShardProfile {
    /// The critical-path (straggler) island of window `w`: the latest
    /// simulated arrival, ties to the lowest island. Deterministic.
    ///
    /// # Panics
    /// Panics if `w` is out of range or the profile has no islands.
    pub fn straggler(&self, w: usize) -> usize {
        let mut best = 0usize;
        let mut best_clock = 0u64;
        for ip in &self.island_profiles {
            let c = ip.cells[w].arrive_clock;
            if c > best_clock {
                best_clock = c;
                best = ip.island;
            }
        }
        best
    }

    /// The straggler island of every window, window order.
    pub fn stragglers(&self) -> Vec<usize> {
        (0..self.windows).map(|w| self.straggler(w)).collect()
    }

    /// Per island: windows in which it was the straggler.
    pub fn straggler_counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.islands];
        for w in 0..self.windows {
            counts[self.straggler(w)] += 1;
        }
        counts
    }

    /// "Who waited on whom", aggregated over the run, in simulated
    /// cycles: per island, (`waited`, `blamed`) — cycles it spent
    /// waiting for stragglers, and cycles every *other* island spent
    /// waiting while it was the window's critical path. Deterministic.
    pub fn wait_blame_cycles(&self) -> Vec<(u64, u64)> {
        let mut out = vec![(0u64, 0u64); self.islands];
        for w in 0..self.windows {
            let s = self.straggler(w);
            for ip in &self.island_profiles {
                let cell = &ip.cells[w];
                let wait = cell.aligned_clock.saturating_sub(cell.arrive_clock);
                out[ip.island].0 += wait;
                if ip.island != s {
                    out[s].1 += wait;
                }
            }
        }
        out
    }

    /// Total wall nanoseconds charged to each bucket
    /// ([`ProfBucket::ALL`] order).
    ///
    /// Sourced from the workers' contiguous lap counters (which tile
    /// each worker's lifetime) plus the caller-side merge; the island
    /// cells refine the workers' exchange laps into their epoch-sync
    /// share. The island cells' other wall fields are per-island detail
    /// and deliberately not double-counted here.
    pub fn bucket_ns(&self) -> [u64; 6] {
        let mut b = [0u64; 6];
        for wp in &self.worker_profiles {
            b[0] += wp.compute_ns;
            b[1] += wp.barrier_ns;
            b[2] += wp.exchange_ns;
            b[5] += wp.package_ns;
        }
        let sync: u64 = self
            .island_profiles
            .iter()
            .map(|ip| ip.sum_ns(|c| c.sync_ns))
            .sum();
        let sync = sync.min(b[2]);
        b[2] -= sync;
        b[3] += sync;
        b[4] += self.plan_build_ns;
        b[5] += self.merge_ns;
        b
    }

    /// The wall-time the buckets are attributed against: the sum of all
    /// worker-thread lifetimes plus the caller-side plan build and merge.
    pub fn accountable_ns(&self) -> u64 {
        self.worker_profiles
            .iter()
            .map(|w| w.elapsed_ns)
            .sum::<u64>()
            + self.plan_build_ns
            + self.merge_ns
    }

    /// Fraction of accountable wall-time the six buckets explain
    /// (the acceptance gate asks for ≥ 0.95).
    pub fn attributed_fraction(&self) -> f64 {
        let acc = self.accountable_ns();
        if acc == 0 {
            return 1.0;
        }
        (self.bucket_ns().iter().sum::<u64>() as f64 / acc as f64).min(1.0)
    }

    /// The measured serial fraction of the *work* (Amdahl's `s`): the
    /// caller-side plan build and merge over all work buckets.
    /// Per-island packaging runs concurrently on the workers and so
    /// counts as parallel work in the denominator only. Barrier wait is
    /// excluded on both sides — it is idleness caused by imbalance, not
    /// work, and the imbalance is reported separately.
    pub fn serial_fraction(&self) -> f64 {
        let b = self.bucket_ns();
        let work = b[0] + b[2] + b[3] + b[4] + b[5];
        if work == 0 {
            0.0
        } else {
            (self.plan_build_ns + self.merge_ns) as f64 / work as f64
        }
    }

    /// Window imbalance in permille, from simulated clocks: `1000 ×
    /// Σ_w max_i(window cycles) / Σ_w mean_i(window cycles)`. 1000 means
    /// perfectly balanced windows; 2000 means the critical island does
    /// twice the mean. Integer so the structural export stays exact.
    pub fn imbalance_permille(&self) -> u64 {
        if self.islands == 0 || self.windows == 0 {
            return 1000;
        }
        let mut sum_max = 0u128;
        let mut sum_all = 0u128;
        for w in 0..self.windows {
            let mut mx = 0u64;
            let mut total = 0u128;
            for ip in &self.island_profiles {
                let start = if w == 0 {
                    0
                } else {
                    ip.cells[w - 1].aligned_clock
                };
                let cycles = ip.cells[w].arrive_clock.saturating_sub(start);
                mx = mx.max(cycles);
                total += cycles as u128;
            }
            sum_max += mx as u128;
            sum_all += total;
        }
        if sum_all == 0 {
            return 1000;
        }
        // mean per window = sum_all / islands; imbalance = sum_max/mean.
        ((sum_max * self.islands as u128 * 1000) / sum_all) as u64
    }

    /// Amdahl-style predicted speedup at `k` shards from the measured
    /// serial fraction: `1 / (s + (1 - s) / min(k, islands))`. The
    /// imbalance factor ([`ShardProfile::imbalance_permille`]) bounds
    /// the parallel term further when `k` reaches the island count; it
    /// is reported alongside rather than folded in (DESIGN.md §8f).
    pub fn predicted_speedup(&self, k: usize) -> f64 {
        let s = self.serial_fraction();
        let keff = k.clamp(1, self.island_cap()) as f64;
        1.0 / (s + (1.0 - s) / keff)
    }

    /// The worker count past which the Amdahl model clamps: islands are
    /// the unit of parallelism, so `predicted_speedup(k)` is flat for
    /// every `k` above this. Exporters report the cap explicitly so two
    /// clamped predictions are not mistaken for a measured plateau.
    pub fn island_cap(&self) -> usize {
        self.islands.max(1)
    }

    /// Whether `predicted_speedup(k)` was clamped at the island cap.
    pub fn speedup_clamped(&self, k: usize) -> bool {
        k > self.island_cap()
    }

    /// Structural totals per island, ascending: `(events,
    /// imports_applied, imports_skipped, sync_stall_cycles)`.
    pub fn island_totals(&self) -> Vec<(u64, u64, u64, u64)> {
        self.island_profiles
            .iter()
            .map(|ip| {
                (
                    ip.cells.iter().map(|c| c.events).sum(),
                    ip.cells.iter().map(|c| c.imports_applied).sum(),
                    ip.cells.iter().map(|c| c.imports_skipped).sum(),
                    ip.cells.iter().map(|c| c.sync_stall_cycles).sum(),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 2 islands × 2 windows: island 1 is always the straggler.
    fn sample() -> ShardProfile {
        let cell = |arrive, aligned, events| WindowCell {
            events,
            arrive_clock: arrive,
            aligned_clock: aligned,
            ..Default::default()
        };
        ShardProfile {
            islands: 2,
            windows: 2,
            workers: 2,
            window_stores: 4,
            rendezvous_windows: 2,
            exchange_entries: vec![3, 1],
            island_profiles: vec![
                IslandProfile {
                    island: 0,
                    cells: vec![cell(60, 100, 10), cell(160, 200, 10)],
                    ..Default::default()
                },
                IslandProfile {
                    island: 1,
                    cells: vec![cell(100, 100, 30), cell(200, 200, 30)],
                    ..Default::default()
                },
            ],
            worker_profiles: vec![WorkerProfile::default(); 2],
            merge_ns: 0,
            plan_build_ns: 0,
            total_ns: 0,
        }
    }

    #[test]
    fn straggler_is_latest_arrival() {
        let p = sample();
        assert_eq!(p.stragglers(), vec![1, 1]);
        assert_eq!(p.straggler_counts(), vec![0, 2]);
    }

    #[test]
    fn wait_blame_is_symmetric() {
        let p = sample();
        let wb = p.wait_blame_cycles();
        // Island 0 waited 40 cycles per window; island 1 never waited
        // and is blamed for island 0's 80 total cycles of waiting.
        assert_eq!(wb[0], (80, 0));
        assert_eq!(wb[1], (0, 80));
    }

    #[test]
    fn imbalance_reflects_uneven_windows() {
        let p = sample();
        // Window cycles: island 0 runs 60 then 60; island 1 runs 100
        // then 100. max sum = 200, mean sum = 160 -> 1250 permille.
        assert_eq!(p.imbalance_permille(), 1250);
    }

    #[test]
    fn amdahl_model_degenerates_sanely() {
        let mut p = sample();
        // No wall data at all: serial fraction 0, ideal scaling up to
        // the island count, flat beyond it.
        assert_eq!(p.serial_fraction(), 0.0);
        assert!((p.predicted_speedup(2) - 2.0).abs() < 1e-12);
        assert!((p.predicted_speedup(16) - 2.0).abs() < 1e-12);
        // All-serial work: no speedup at any count.
        p.merge_ns = 1_000;
        assert!((p.serial_fraction() - 1.0).abs() < 1e-12);
        assert!((p.predicted_speedup(8) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn buckets_fold_worker_laps_and_island_sync_detail() {
        let mut p = sample();
        // Worker laps tile the worker's lifetime; the island cell's
        // sync_ns detail splits the exchange lap into its epoch-sync
        // share.
        p.worker_profiles[0].compute_ns = 110;
        p.worker_profiles[0].barrier_ns = 50;
        p.worker_profiles[0].exchange_ns = 15;
        p.worker_profiles[0].package_ns = 2;
        p.island_profiles[0].cells[0].sync_ns = 5;
        p.merge_ns = 20;
        let b = p.bucket_ns();
        assert_eq!(b, [110, 50, 10, 5, 0, 22]);
        p.worker_profiles[0].elapsed_ns = 177;
        assert_eq!(p.accountable_ns(), 197);
        assert!((p.attributed_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn plan_build_is_a_serial_bucket() {
        let mut p = sample();
        p.worker_profiles[0].compute_ns = 90;
        p.plan_build_ns = 30;
        p.merge_ns = 30;
        let b = p.bucket_ns();
        assert_eq!(b[4], 30, "plan build gets its own bucket");
        // Serial fraction counts plan build alongside merge: 60 / 150.
        assert!((p.serial_fraction() - 0.4).abs() < 1e-12);
        p.worker_profiles[0].elapsed_ns = 90;
        assert_eq!(p.accountable_ns(), 150);
        assert!((p.attributed_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn island_cap_marks_clamped_predictions() {
        let p = sample();
        assert_eq!(p.island_cap(), 2);
        assert!(!p.speedup_clamped(2));
        assert!(p.speedup_clamped(4));
        assert_eq!(p.predicted_speedup(4), p.predicted_speedup(16));
    }
}
