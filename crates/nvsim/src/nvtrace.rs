//! `nvtrace` — low-overhead structured event tracing.
//!
//! A flight recorder for the simulator: components emit compact
//! [`Event`] records (epoch advances, tag walks, store-evictions, OMC
//! flushes and backpressure, NVM bank occupancy, recovery steps) into a
//! fixed-capacity ring buffer owned by the *current thread*. Each
//! simulation runs on one thread, so the parallel experiment engine gets
//! one independent recorder per worker with no synchronization.
//!
//! ## Cost model
//!
//! * Without the `trace` cargo feature, [`TraceScope::emit`] is an empty
//!   `#[inline(always)]` function — the instrumentation sites compile
//!   out entirely and the simulator is byte-for-byte as fast as before.
//! * With the feature but no recorder installed (the default at
//!   runtime), an emit is a thread-local flag check — one branch.
//! * With a recorder installed, an emit is the branch plus a ring-buffer
//!   store; high-frequency kinds additionally honor the sampling knob
//!   ([`TraceConfig::sample_every`]).
//!
//! Harvest with [`take`]: it returns the recorded [`TraceLog`]
//! (oldest-first, with wrap/overflow accounting) and disables tracing.

use crate::clock::Cycle;
use std::cell::RefCell;
use std::fmt;

/// What happened. Kinds marked *high-frequency* are subject to the
/// sampling knob; the rest are always recorded while tracing is on.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum EventKind {
    /// A versioned domain advanced its epoch (`a` = epoch before,
    /// `b` = epoch after).
    EpochAdvance,
    /// A tag walk started (`a` = the VD's current absolute epoch).
    TagWalkStart,
    /// A tag walk finished (`a` = reported min-ver, `b` = versions
    /// handed to the OMC).
    TagWalkEnd,
    /// A store hit an immutable old version and pushed it down
    /// (`a` = line address, `b` = the version's epoch). High-frequency.
    StoreEviction,
    /// An OMC merged per-epoch tables into its master table
    /// (`a` = merged-through epoch, `b` = entries merged).
    OmcFlush,
    /// An enqueue was back-pressured by the NVM (`a` = stall cycles,
    /// `b` = line address). High-frequency.
    OmcBackpressure,
    /// An NVM bank accepted a write (`a` = occupancy cycles,
    /// `b` = bytes). High-frequency.
    NvmBankBusy,
    /// A software/baseline scheme flushed its write set at an epoch
    /// boundary (`a` = lines flushed, `b` = stall cycles).
    EpochFlush,
    /// A logging scheme emitted a log entry (`a` = line address,
    /// `b` = bytes). High-frequency.
    LogWrite,
    /// One step of crash recovery (`a` = step ordinal, `b` =
    /// step-specific count, e.g. lines reconstructed).
    RecoveryStep,
    /// A fault was injected by the chaos harness (`a` = crash-site
    /// write id, `b` = fault code: 0 = crash cut, 1 = torn write,
    /// 2 = bit flip, 3 = dropped write).
    FaultInjected,
    /// A replay island reached an epoch-barrier rendezvous (`a` =
    /// window index, `b` = the globally aligned clock after the
    /// barrier). `time` is the island's clock on arrival, so the
    /// `time..b` gap is the island's barrier wait.
    ShardBarrier,
}

impl EventKind {
    /// All kinds, in a stable order.
    pub const ALL: [EventKind; 12] = [
        EventKind::EpochAdvance,
        EventKind::TagWalkStart,
        EventKind::TagWalkEnd,
        EventKind::StoreEviction,
        EventKind::OmcFlush,
        EventKind::OmcBackpressure,
        EventKind::NvmBankBusy,
        EventKind::EpochFlush,
        EventKind::LogWrite,
        EventKind::RecoveryStep,
        EventKind::FaultInjected,
        EventKind::ShardBarrier,
    ];

    /// Stable index (array slot) of this kind.
    pub fn idx(self) -> usize {
        match self {
            EventKind::EpochAdvance => 0,
            EventKind::TagWalkStart => 1,
            EventKind::TagWalkEnd => 2,
            EventKind::StoreEviction => 3,
            EventKind::OmcFlush => 4,
            EventKind::OmcBackpressure => 5,
            EventKind::NvmBankBusy => 6,
            EventKind::EpochFlush => 7,
            EventKind::LogWrite => 8,
            EventKind::RecoveryStep => 9,
            EventKind::FaultInjected => 10,
            EventKind::ShardBarrier => 11,
        }
    }

    /// Whether this kind can fire per access/write and is therefore
    /// subject to sampling.
    pub fn high_frequency(self) -> bool {
        matches!(
            self,
            EventKind::StoreEviction
                | EventKind::OmcBackpressure
                | EventKind::NvmBankBusy
                | EventKind::LogWrite
        )
    }

    /// Stable lowercase name (used by exporters).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::EpochAdvance => "epoch-advance",
            EventKind::TagWalkStart => "tag-walk-start",
            EventKind::TagWalkEnd => "tag-walk-end",
            EventKind::StoreEviction => "store-eviction",
            EventKind::OmcFlush => "omc-flush",
            EventKind::OmcBackpressure => "omc-backpressure",
            EventKind::NvmBankBusy => "nvm-bank-busy",
            EventKind::EpochFlush => "epoch-flush",
            EventKind::LogWrite => "log-write",
            EventKind::RecoveryStep => "recovery-step",
            EventKind::FaultInjected => "fault-injected",
            EventKind::ShardBarrier => "shard-barrier",
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The component a [`TraceScope`] traces on behalf of. Encodes to a
/// compact id so [`Event`] stays small and `Copy`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Track {
    /// The whole system (events with no finer home).
    System,
    /// A versioned domain (its L2 + tag walker).
    Vd(u16),
    /// A core.
    Core(u16),
    /// An overlay memory controller.
    Omc(u16),
    /// An NVM bank.
    NvmBank(u16),
    /// The baseline scheme's software runtime.
    Scheme,
    /// The recovery procedure.
    Recovery,
    /// The fault-injection harness.
    Fault,
}

/// Bit position of the shard-lane field inside an encoded track.
pub const SHARD_SHIFT: u16 = 8;
/// Width mask of the shard-lane field (5 bits: shards 1–31; 0 means
/// "unsharded", preserving the legacy encoding bit-for-bit).
pub const SHARD_MASK: u16 = 0x1F;

/// The shard lane of an encoded track id (0 = unsharded). Sharded
/// replay stamps the emitting island's 1-based id into bits 12..8 of
/// every track (see [`set_shard`]); component indices then occupy the
/// low 8 bits.
pub fn shard_of(raw: u16) -> u16 {
    (raw >> SHARD_SHIFT) & SHARD_MASK
}

/// Display label of an encoded track id including its shard lane, e.g.
/// `shard.2/vd.0`. Falls back to the plain [`Track::label`] for
/// unsharded ids.
pub fn lane_label(raw: u16) -> String {
    let s = shard_of(raw);
    if s == 0 {
        Track::decode(raw).label()
    } else {
        format!("shard.{}/{}", s - 1, Track::decode(raw).label())
    }
}

impl Track {
    const TAG_SYSTEM: u16 = 0;
    const TAG_VD: u16 = 1;
    const TAG_CORE: u16 = 2;
    const TAG_OMC: u16 = 3;
    const TAG_BANK: u16 = 4;
    const TAG_SCHEME: u16 = 5;
    const TAG_RECOVERY: u16 = 6;
    const TAG_FAULT: u16 = 7;

    /// Packs the track into a 16-bit id (3-bit tag, 13-bit index).
    pub fn encode(self) -> u16 {
        let (tag, ix) = match self {
            Track::System => (Self::TAG_SYSTEM, 0),
            Track::Vd(i) => (Self::TAG_VD, i),
            Track::Core(i) => (Self::TAG_CORE, i),
            Track::Omc(i) => (Self::TAG_OMC, i),
            Track::NvmBank(i) => (Self::TAG_BANK, i),
            Track::Scheme => (Self::TAG_SCHEME, 0),
            Track::Recovery => (Self::TAG_RECOVERY, 0),
            Track::Fault => (Self::TAG_FAULT, 0),
        };
        (tag << 13) | (ix & 0x1FFF)
    }

    /// Reverses [`Track::encode`]. For sharded ids (see [`shard_of`])
    /// only the low 8 component-index bits are decoded.
    pub fn decode(raw: u16) -> Track {
        let ix = if shard_of(raw) == 0 {
            raw & 0x1FFF
        } else {
            raw & 0xFF
        };
        match raw >> 13 {
            Self::TAG_VD => Track::Vd(ix),
            Self::TAG_CORE => Track::Core(ix),
            Self::TAG_OMC => Track::Omc(ix),
            Self::TAG_BANK => Track::NvmBank(ix),
            Self::TAG_SCHEME => Track::Scheme,
            Self::TAG_RECOVERY => Track::Recovery,
            Self::TAG_FAULT => Track::Fault,
            _ => Track::System,
        }
    }

    /// Dotted display name, e.g. `vd.3`, `omc.0`, `system`.
    pub fn label(self) -> String {
        match self {
            Track::System => "system".into(),
            Track::Vd(i) => format!("vd.{i}"),
            Track::Core(i) => format!("core.{i}"),
            Track::Omc(i) => format!("omc.{i}"),
            Track::NvmBank(i) => format!("nvm.bank.{i}"),
            Track::Scheme => "scheme".into(),
            Track::Recovery => "recovery".into(),
            Track::Fault => "fault".into(),
        }
    }
}

impl fmt::Display for Track {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// One trace record: 32 bytes, `Copy`, no heap.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Event {
    /// Simulated time.
    pub time: Cycle,
    /// What happened.
    pub kind: EventKind,
    /// Encoded [`Track`] of the emitting component.
    pub track: u16,
    /// First kind-specific argument (see [`EventKind`] docs).
    pub a: u64,
    /// Second kind-specific argument.
    pub b: u64,
}

impl Event {
    /// The emitting component.
    pub fn track(&self) -> Track {
        Track::decode(self.track)
    }
}

/// Tracer knobs.
#[derive(Clone, Copy, Debug)]
pub struct TraceConfig {
    /// Ring capacity in events. When full, the oldest events are
    /// overwritten (flight-recorder semantics) and counted as dropped.
    pub capacity: usize,
    /// Keep 1 of every `sample_every` *high-frequency* events
    /// (see [`EventKind::high_frequency`]); 1 = keep everything.
    pub sample_every: u32,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            capacity: 1 << 20,
            sample_every: 1,
        }
    }
}

/// Fixed-capacity event ring with wrap accounting.
#[derive(Clone, Debug)]
pub struct TraceBuffer {
    cfg: TraceConfig,
    ring: Vec<Event>,
    /// Next write position.
    head: usize,
    /// Events offered to the ring (post-sampling).
    accepted: u64,
    /// Events suppressed by the sampling knob, by kind.
    sampled_out: [u64; EventKind::ALL.len()],
    /// Rolling per-kind counters driving the sampling decision.
    sample_clock: [u32; EventKind::ALL.len()],
}

impl TraceBuffer {
    /// An empty ring with the given knobs.
    ///
    /// # Panics
    /// Panics if `capacity` is zero or `sample_every` is zero.
    pub fn new(cfg: TraceConfig) -> Self {
        assert!(cfg.capacity > 0, "trace ring needs capacity");
        assert!(cfg.sample_every > 0, "sample_every must be at least 1");
        Self {
            cfg,
            ring: Vec::with_capacity(cfg.capacity.min(4096)),
            head: 0,
            accepted: 0,
            sampled_out: [0; EventKind::ALL.len()],
            sample_clock: [0; EventKind::ALL.len()],
        }
    }

    /// Records one event, honoring sampling for high-frequency kinds.
    #[inline]
    pub fn push(&mut self, ev: Event) {
        if ev.kind.high_frequency() && self.cfg.sample_every > 1 {
            let k = ev.kind.idx();
            let c = self.sample_clock[k];
            self.sample_clock[k] = if c + 1 >= self.cfg.sample_every {
                0
            } else {
                c + 1
            };
            if c != 0 {
                self.sampled_out[k] += 1;
                return;
            }
        }
        self.accepted += 1;
        if self.ring.len() < self.cfg.capacity {
            self.ring.push(ev);
            self.head = self.ring.len() % self.cfg.capacity;
        } else {
            self.ring[self.head] = ev;
            self.head = (self.head + 1) % self.cfg.capacity;
        }
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Events accepted into the ring since creation (post-sampling).
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Accepted events lost to ring wrap-around (oldest-first).
    pub fn overwritten(&self) -> u64 {
        self.accepted - self.ring.len() as u64
    }

    /// Freezes the ring into a [`TraceLog`] (events oldest-first).
    pub fn into_log(self) -> TraceLog {
        let overwritten = self.overwritten();
        let mut events = self.ring;
        // The ring wrapped: rotate so the oldest surviving event leads.
        if overwritten > 0 {
            events.rotate_left(self.head);
        }
        TraceLog {
            events,
            accepted: self.accepted,
            overwritten,
            sampled_out: self.sampled_out,
            sample_every: self.cfg.sample_every,
        }
    }
}

/// A harvested trace: events oldest-first plus loss accounting.
#[derive(Clone, Debug, Default)]
pub struct TraceLog {
    /// The surviving events, oldest first.
    pub events: Vec<Event>,
    /// Events accepted into the ring over the run (post-sampling).
    pub accepted: u64,
    /// Accepted events lost to wrap-around.
    pub overwritten: u64,
    /// Events suppressed by sampling, by [`EventKind::idx`].
    pub sampled_out: [u64; EventKind::ALL.len()],
    /// The sampling knob in force.
    pub sample_every: u32,
}

impl TraceLog {
    /// Count of surviving events of `kind`.
    pub fn count(&self, kind: EventKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }

    /// Total events suppressed by sampling.
    pub fn total_sampled_out(&self) -> u64 {
        self.sampled_out.iter().sum()
    }
}

impl TraceBuffer {
    /// The buffer's knobs.
    pub fn config(&self) -> TraceConfig {
        self.cfg
    }

    /// Appends every event of a harvested log (already sampled — no
    /// re-sampling) and folds its loss accounting into this buffer.
    /// Used to merge per-worker recorders after a sharded replay.
    pub fn absorb(&mut self, log: &TraceLog) {
        for e in &log.events {
            self.accepted += 1;
            if self.ring.len() < self.cfg.capacity {
                self.ring.push(*e);
                self.head = self.ring.len() % self.cfg.capacity;
            } else {
                self.ring[self.head] = *e;
                self.head = (self.head + 1) % self.cfg.capacity;
            }
        }
        self.accepted += log.overwritten;
        for (k, n) in log.sampled_out.iter().enumerate() {
            self.sampled_out[k] += n;
        }
    }
}

thread_local! {
    static RECORDER: RefCell<Option<TraceBuffer>> = const { RefCell::new(None) };
    static SHARD: std::cell::Cell<u16> = const { std::cell::Cell::new(0) };
}

/// Sets the current thread's shard lane: 0 = unsharded (the default),
/// `s > 0` stamps island `s - 1` into bits 12..8 of every subsequently
/// emitted track so merged exports keep distinct per-shard rows.
/// Component indices are truncated to 8 bits while a lane is active.
pub fn set_shard(s: u16) {
    SHARD.with(|c| c.set(s & SHARD_MASK));
}

/// The current thread's shard lane (see [`set_shard`]).
pub fn current_shard() -> u16 {
    SHARD.with(|c| c.get())
}

/// The installed recorder's configuration, if tracing is active on this
/// thread. Sharded replay uses this to install matching recorders on
/// its worker threads.
pub fn active_config() -> Option<TraceConfig> {
    if !is_active() {
        return None;
    }
    RECORDER.with(|r| r.borrow().as_ref().map(TraceBuffer::config))
}

/// Merges a harvested log into the current thread's recorder (no-op if
/// none is installed). Event order follows absorption order; per-kind
/// counts are what sharded differential tests pin.
pub fn absorb(log: &TraceLog) {
    RECORDER.with(|r| {
        if let Some(buf) = r.borrow_mut().as_mut() {
            buf.absorb(log);
        }
    });
}

#[cfg(feature = "trace")]
thread_local! {
    static ACTIVE: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Whether the `trace` cargo feature was compiled in. When `false`,
/// emit sites are no-ops and [`install`] records nothing.
pub const fn compiled_in() -> bool {
    cfg!(feature = "trace")
}

/// Installs a fresh recorder on the current thread and enables tracing.
/// Any previous recorder on this thread is discarded.
pub fn install(cfg: TraceConfig) {
    RECORDER.with(|r| *r.borrow_mut() = Some(TraceBuffer::new(cfg)));
    #[cfg(feature = "trace")]
    ACTIVE.with(|a| a.set(true));
}

/// Stops tracing on the current thread and returns the harvested log
/// (None if no recorder was installed).
pub fn take() -> Option<TraceLog> {
    #[cfg(feature = "trace")]
    ACTIVE.with(|a| a.set(false));
    RECORDER
        .with(|r| r.borrow_mut().take())
        .map(TraceBuffer::into_log)
}

/// Whether a recorder is installed and active on this thread. Always
/// `false` without the `trace` feature.
pub fn is_active() -> bool {
    #[cfg(feature = "trace")]
    {
        ACTIVE.with(|a| a.get())
    }
    #[cfg(not(feature = "trace"))]
    {
        false
    }
}

/// A per-component emit handle: a [`Track`] pre-encoded to its compact
/// id. Zero-sized cost to hold; copyable; methods compile out without
/// the `trace` feature.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceScope {
    track: u16,
}

impl TraceScope {
    /// A scope for `track`.
    pub fn new(track: Track) -> Self {
        Self {
            track: track.encode(),
        }
    }

    /// The scope's track.
    pub fn track(&self) -> Track {
        Track::decode(self.track)
    }

    /// Emits one event on this scope's track.
    #[cfg(feature = "trace")]
    #[inline]
    pub fn emit(&self, kind: EventKind, time: Cycle, a: u64, b: u64) {
        if !ACTIVE.with(|f| f.get()) {
            return;
        }
        // With a shard lane active, keep the tag (bits 15..13) and the
        // low 8 component-index bits, and stamp the lane into bits 12..8.
        let track = match SHARD.with(|c| c.get()) {
            0 => self.track,
            s => (self.track & 0xE000) | (self.track & 0x00FF) | (s << SHARD_SHIFT),
        };
        RECORDER.with(|r| {
            if let Some(buf) = r.borrow_mut().as_mut() {
                buf.push(Event {
                    time,
                    kind,
                    track,
                    a,
                    b,
                });
            }
        });
    }

    /// Emits one event on this scope's track (no-op: built without the
    /// `trace` feature).
    #[cfg(not(feature = "trace"))]
    #[inline(always)]
    pub fn emit(&self, _kind: EventKind, _time: Cycle, _a: u64, _b: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, time: Cycle) -> Event {
        Event {
            time,
            kind,
            track: Track::System.encode(),
            a: 0,
            b: 0,
        }
    }

    #[test]
    fn ring_keeps_everything_under_capacity() {
        let mut b = TraceBuffer::new(TraceConfig {
            capacity: 8,
            sample_every: 1,
        });
        for t in 0..5 {
            b.push(ev(EventKind::EpochAdvance, t));
        }
        assert_eq!(b.len(), 5);
        assert_eq!(b.overwritten(), 0);
        let log = b.into_log();
        let times: Vec<Cycle> = log.events.iter().map(|e| e.time).collect();
        assert_eq!(times, vec![0, 1, 2, 3, 4]);
        assert_eq!(log.accepted, 5);
        assert_eq!(log.overwritten, 0);
    }

    #[test]
    fn ring_wraps_dropping_oldest_and_accounts_exactly() {
        let mut b = TraceBuffer::new(TraceConfig {
            capacity: 4,
            sample_every: 1,
        });
        for t in 0..11 {
            b.push(ev(EventKind::OmcFlush, t));
        }
        assert_eq!(b.len(), 4);
        assert_eq!(b.accepted(), 11);
        assert_eq!(b.overwritten(), 7);
        let log = b.into_log();
        let times: Vec<Cycle> = log.events.iter().map(|e| e.time).collect();
        assert_eq!(times, vec![7, 8, 9, 10], "oldest-first after wrap");
        assert_eq!(log.overwritten, 7);
    }

    #[test]
    fn sampling_keeps_one_in_n_high_frequency_events() {
        let mut b = TraceBuffer::new(TraceConfig {
            capacity: 1024,
            sample_every: 4,
        });
        for t in 0..16 {
            b.push(ev(EventKind::StoreEviction, t));
        }
        // Low-frequency kinds are never sampled out.
        for t in 0..16 {
            b.push(ev(EventKind::EpochAdvance, t));
        }
        let log = b.into_log();
        assert_eq!(log.count(EventKind::StoreEviction), 4, "1 of every 4");
        assert_eq!(log.count(EventKind::EpochAdvance), 16);
        assert_eq!(log.sampled_out[EventKind::StoreEviction.idx()], 12);
        assert_eq!(log.total_sampled_out(), 12);
        // Sampled survivors are the 0th, 4th, 8th, 12th.
        let times: Vec<Cycle> = log
            .events
            .iter()
            .filter(|e| e.kind == EventKind::StoreEviction)
            .map(|e| e.time)
            .collect();
        assert_eq!(times, vec![0, 4, 8, 12]);
    }

    #[test]
    fn track_encoding_round_trips() {
        for t in [
            Track::System,
            Track::Vd(7),
            Track::Core(15),
            Track::Omc(1),
            Track::NvmBank(13),
            Track::Scheme,
            Track::Recovery,
            Track::Fault,
        ] {
            assert_eq!(Track::decode(t.encode()), t, "{t}");
        }
        assert_eq!(Track::Vd(3).label(), "vd.3");
        assert_eq!(Track::NvmBank(0).label(), "nvm.bank.0");
    }

    #[test]
    fn install_take_cycle_is_thread_local() {
        install(TraceConfig {
            capacity: 16,
            sample_every: 1,
        });
        let scope = TraceScope::new(Track::Vd(2));
        scope.emit(EventKind::EpochAdvance, 100, 1, 2);
        let log = take().expect("recorder was installed");
        if compiled_in() {
            assert_eq!(log.events.len(), 1);
            assert_eq!(log.events[0].track(), Track::Vd(2));
            assert_eq!(log.events[0].a, 1);
        } else {
            assert!(log.events.is_empty(), "emit is a no-op without the feature");
        }
        assert!(take().is_none(), "take clears the recorder");
        // Emitting with no recorder is harmless.
        scope.emit(EventKind::EpochAdvance, 101, 0, 0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = TraceBuffer::new(TraceConfig {
            capacity: 0,
            sample_every: 1,
        });
    }
}
