//! Island-sharded replay planning.
//!
//! A [`ShardPlan`] partitions one packed trace into per-VD **islands** —
//! each island is a complete sub-machine (the VD's cores, their private
//! L1s, the VD's L2, and a proportional slice of LLC/DRAM/NVM capacity,
//! see [`crate::config::SimConfig::island_config`]) — and cuts every
//! thread's event stream into **windows** of a fixed store budget.
//! Islands replay their windows independently; at a **rendezvous**
//! window boundary they meet at an epoch barrier, align clocks, raise
//! their epoch floor (Lamport sync across domains), and exchange the
//! lines written during the window in a canonical order.
//!
//! The plan carries three fast-path structures on top of the island/
//! window skeleton:
//!
//! - **Pre-split island traces**: each island's thread streams are
//!   copied once into a contiguous per-island [`PackedTrace`]
//!   ([`ShardPlan::island_trace`]), so a replay worker streams its own
//!   cache-friendly segment instead of indexing into the global trace.
//! - **Flat exchange arena**: all windows' exchange entries live in one
//!   vector of line-sorted runs with an offset index
//!   ([`ShardPlan::exchange`] returns the window's slice). Entries are
//!   filtered to *actual cross-island traffic*: a written line is
//!   exchanged only if some other island touches it in a later window.
//! - **Rendezvous cadence**: consecutive windows whose exchange runs are
//!   empty and whose epoch floors advance in lockstep are coalesced into
//!   a single rendezvous ([`ShardPlan::is_rendezvous`]). The cadence is
//!   a pure function of the plan — barrier *effects* happen only at
//!   rendezvous windows, whether or not workers physically wait at the
//!   silent ones.
//!
//! Everything in the plan — island membership, window cuts, exchange
//! runs, and the rendezvous cadence — is derived from the trace and the
//! machine configuration alone, **never** from runtime state. That is
//! what makes sharded replay invariant to the worker count: a plan
//! replayed by 1 worker and by 8 workers performs the same island steps
//! against the same imported data at the same rendezvous points, so
//! every statistic, metric, and trace-event count comes out
//! byte-identical (enforced by `nvbench/tests/shard_determinism.rs`).
//!
//! Plans are cheap to share and expensive to build, so
//! [`ShardPlan::cached`] memoizes them behind an `Arc` keyed by trace
//! identity and the config fields the plan depends on — a 6-scheme
//! matrix builds each workload's plan once instead of once per scheme.

use crate::addr::{LineAddr, ThreadId, Token};
use crate::config::SimConfig;
use crate::fastmap::FastMap;
use crate::memsys::MemOp;
use crate::trace::{PackedEvent, PackedTrace};
use std::sync::{Arc, Mutex};

/// One island: a VD's worth of threads plus their window cuts.
#[derive(Clone, Debug)]
pub struct IslandPlan {
    /// The VD this island models (index into the full machine).
    pub vd: u16,
    /// Global trace threads driven by this island, ascending. Local core
    /// `l` of the island machine runs `threads[l]`.
    pub threads: Vec<ThreadId>,
    /// Per local thread: cumulative end index (exclusive) of each
    /// window's event segment; `cuts[l][w]` is one past the last event
    /// of window `w`. Every row has the plan's window count, padded with
    /// the stream length once the stream is exhausted.
    pub cuts: Vec<Vec<usize>>,
}

/// One entry of a window's exchange run: the canonical last writer of a
/// line during that window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExchangeEntry {
    /// The written line.
    pub line: LineAddr,
    /// The winning token.
    pub token: Token,
    /// The island that wrote it (entries are skipped by their writer at
    /// import time).
    pub src: u16,
}

/// A deterministic sharded-replay schedule over one packed trace.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    islands: Vec<IslandPlan>,
    windows: usize,
    window_stores: u64,
    epoch_size_stores: u64,
    /// All windows' exchange entries, one line-sorted run per window.
    arena: Vec<ExchangeEntry>,
    /// `arena[offsets[w]..offsets[w + 1]]` is window `w`'s run.
    offsets: Vec<usize>,
    /// Per island, that island's thread streams copied into a contiguous
    /// trace segment (local thread `l` is `island_traces[i].thread(l)`).
    island_traces: Vec<PackedTrace>,
    /// Per window, whether islands rendezvous at its boundary. Windows
    /// with `false` are **silent**: no exchange, no epoch-floor motion,
    /// no clock alignment — replay free-runs through them.
    rendezvous: Vec<bool>,
    rendezvous_count: usize,
}

/// Cache key for [`ShardPlan::cached`]: trace identity (content
/// fingerprint plus the cheap counts) and the config fields the plan
/// reads.
#[derive(Clone, Copy, PartialEq, Eq)]
struct PlanKey {
    fingerprint: u64,
    accesses: u64,
    stores: u64,
    threads: usize,
    cores: u16,
    cores_per_vd: u16,
    epoch_size_stores: u64,
}

/// Bounded MRU memo of recently built plans (a perf sweep touches a
/// handful of workloads; 8 slots covers the whole matrix).
static PLAN_CACHE: Mutex<Vec<(PlanKey, Arc<ShardPlan>)>> = Mutex::new(Vec::new());
const PLAN_CACHE_CAP: usize = 8;

impl ShardPlan {
    /// Derives the plan for `trace` on the machine `cfg` describes.
    ///
    /// Threads map to cores 1:1 (thread *i* runs on core *i*), so island
    /// membership follows the machine's VD topology: island *v* owns the
    /// threads of cores `[v·cores_per_vd, (v+1)·cores_per_vd)`. Windows
    /// cut each thread's stream every `epoch_size_stores / cores_per_vd`
    /// stores — the per-thread share of a VD's epoch budget — so barrier
    /// cadence tracks the machine's epoch cadence.
    ///
    /// # Panics
    /// Panics if the trace has more threads than the machine has cores.
    pub fn new(trace: &PackedTrace, cfg: &SimConfig) -> Self {
        let threads = trace.thread_count();
        assert!(
            threads <= cfg.cores as usize,
            "trace has {threads} threads but the machine has {} cores",
            cfg.cores
        );
        let cpv = cfg.cores_per_vd.max(1) as usize;
        let window_stores = (cfg.epoch_size_stores / cpv as u64).max(1);

        // Cut every thread's stream after each `window_stores` stores.
        let mut islands: Vec<IslandPlan> = Vec::new();
        let mut windows = 1usize;
        for t0 in (0..threads).step_by(cpv) {
            let vd = (t0 / cpv) as u16;
            let members: Vec<ThreadId> = (t0..(t0 + cpv).min(threads))
                .map(|t| ThreadId(t as u16))
                .collect();
            let mut cuts: Vec<Vec<usize>> = Vec::with_capacity(members.len());
            for &tid in &members {
                let stream = trace.thread(tid);
                let mut row = Vec::new();
                let mut stores = 0u64;
                for (i, e) in stream.iter().enumerate() {
                    if !e.is_mark() && e.op() == MemOp::Store {
                        stores += 1;
                        if stores == window_stores {
                            row.push(i + 1);
                            stores = 0;
                        }
                    }
                }
                // The remainder (trailing loads/marks, or a short final
                // store run) always closes the last window.
                if row.last() != Some(&stream.len()) {
                    row.push(stream.len());
                }
                windows = windows.max(row.len());
                cuts.push(row);
            }
            islands.push(IslandPlan {
                vd,
                threads: members,
                cuts,
            });
        }
        // Pad every cut row to the global window count: exhausted
        // streams contribute empty segments to the remaining windows.
        for isl in &mut islands {
            for row in &mut isl.cuts {
                let end = *row.last().expect("every row has a final cut");
                row.resize(windows, end);
            }
        }

        // Pre-split: copy each island's thread streams into a contiguous
        // per-island trace segment (built once, shared with the plan).
        let island_traces: Vec<PackedTrace> = islands
            .iter()
            .map(|isl| {
                let streams: Vec<&[PackedEvent]> =
                    isl.threads.iter().map(|&t| trace.thread(t)).collect();
                PackedTrace::from_thread_streams(&streams)
            })
            .collect();

        // Last-access index: for every line, the window (plus one, so 0
        // means "never") of each island's final access to it. Decides
        // which written lines are *actual* cross-island traffic.
        let nislands = islands.len();
        let mut last_access: FastMap<u64, Vec<u32>> = FastMap::new();
        for (ii, isl) in islands.iter().enumerate() {
            for (l, &tid) in isl.threads.iter().enumerate() {
                let stream = trace.thread(tid);
                for w in 0..windows {
                    let lo = if w == 0 { 0 } else { isl.cuts[l][w - 1] };
                    let hi = isl.cuts[l][w];
                    for e in &stream[lo..hi] {
                        if !e.is_mark() {
                            let la = last_access
                                .or_insert_with(e.addr().line().raw(), || vec![0u32; nislands]);
                            la[ii] = (w + 1) as u32;
                        }
                    }
                }
            }
        }

        // Per-window structural tallies feeding the rendezvous cadence.
        let mut island_window_stores = vec![vec![0u64; windows]; nislands];
        let mut window_marks = vec![0u64; windows];

        // Per-window exchange runs, appended to one flat arena. Writers
        // are gathered in the canonical order (islands ascending, island
        // threads ascending, events in stream order); a stable sort by
        // line keeps that order within each line's group, so the *last*
        // entry of a group is the canonical winner regardless of how
        // replay interleaves. Winners are kept only if some **other**
        // island accesses the line in a later window — an import nobody
        // ever reads is pure overhead, and dropping it is deterministic
        // because the last-access index is plan-derived.
        let mut arena: Vec<ExchangeEntry> = Vec::new();
        let mut offsets: Vec<usize> = Vec::with_capacity(windows + 1);
        offsets.push(0);
        let mut run: Vec<ExchangeEntry> = Vec::new();
        for w in 0..windows {
            run.clear();
            for (ii, isl) in islands.iter().enumerate() {
                for (l, &tid) in isl.threads.iter().enumerate() {
                    let stream = trace.thread(tid);
                    let lo = if w == 0 { 0 } else { isl.cuts[l][w - 1] };
                    let hi = isl.cuts[l][w];
                    for e in &stream[lo..hi] {
                        if e.is_mark() {
                            window_marks[w] += 1;
                        } else if e.op() == MemOp::Store {
                            island_window_stores[ii][w] += 1;
                            run.push(ExchangeEntry {
                                line: e.addr().line(),
                                token: e.token(),
                                src: ii as u16,
                            });
                        }
                    }
                }
            }
            run.sort_by_key(|e| e.line.raw());
            let mut i = 0;
            while i < run.len() {
                let mut j = i + 1;
                while j < run.len() && run[j].line == run[i].line {
                    j += 1;
                }
                let winner = run[j - 1];
                let la = &last_access[&winner.line.raw()];
                let needed = la
                    .iter()
                    .enumerate()
                    .any(|(k, &lw)| k as u16 != winner.src && lw as usize > w + 1);
                if needed {
                    arena.push(winner);
                }
                i = j;
            }
            offsets.push(arena.len());
        }

        // Rendezvous cadence: window `w` is silent when the barrier
        // would move nothing — its exchange run is empty, no island
        // executes an explicit epoch mark, and every island retires the
        // same store count which is a whole number of epochs (so all
        // epoch floors advance by exactly that number of epochs and stay
        // in lockstep without a sync). The final window always
        // rendezvouses so runs end aligned and merged.
        let mut rendezvous = vec![false; windows];
        for w in 0..windows {
            if w + 1 == windows {
                rendezvous[w] = true;
                continue;
            }
            let empty_exchange = offsets[w] == offsets[w + 1];
            let s0 = island_window_stores.first().map_or(0, |v| v[w]);
            let uniform = island_window_stores.iter().all(|v| v[w] == s0);
            let whole_epochs =
                cfg.epoch_size_stores > 0 && s0.is_multiple_of(cfg.epoch_size_stores);
            rendezvous[w] = !(empty_exchange && window_marks[w] == 0 && uniform && whole_epochs);
        }
        let rendezvous_count = rendezvous.iter().filter(|&&r| r).count();

        Self {
            islands,
            windows,
            window_stores,
            epoch_size_stores: cfg.epoch_size_stores,
            arena,
            offsets,
            island_traces,
            rendezvous,
            rendezvous_count,
        }
    }

    /// Returns the memoized plan for `trace` on `cfg`, building it on a
    /// miss. Keyed by the trace's content fingerprint (plus its cheap
    /// counts) and the config fields the plan reads, so a matrix sweep
    /// that replays one workload under six schemes builds the plan once.
    /// The memo holds the [`PLAN_CACHE_CAP`] most recently used plans.
    pub fn cached(trace: &PackedTrace, cfg: &SimConfig) -> Arc<ShardPlan> {
        let key = PlanKey {
            fingerprint: trace.fingerprint(),
            accesses: trace.access_count(),
            stores: trace.store_count(),
            threads: trace.thread_count(),
            cores: cfg.cores,
            cores_per_vd: cfg.cores_per_vd,
            epoch_size_stores: cfg.epoch_size_stores,
        };
        {
            let mut cache = PLAN_CACHE.lock().expect("plan cache poisoned");
            if let Some(pos) = cache.iter().position(|(k, _)| *k == key) {
                let hit = cache.remove(pos);
                let plan = Arc::clone(&hit.1);
                cache.insert(0, hit);
                return plan;
            }
        }
        // Build outside the lock: plans take milliseconds, and parallel
        // builders of the same key just race to insert identical plans.
        let plan = Arc::new(ShardPlan::new(trace, cfg));
        let mut cache = PLAN_CACHE.lock().expect("plan cache poisoned");
        if let Some(pos) = cache.iter().position(|(k, _)| *k == key) {
            let hit = cache.remove(pos);
            let cached = Arc::clone(&hit.1);
            cache.insert(0, hit);
            return cached;
        }
        cache.insert(0, (key, Arc::clone(&plan)));
        cache.truncate(PLAN_CACHE_CAP);
        plan
    }

    /// Number of islands (= populated VDs).
    pub fn island_count(&self) -> usize {
        self.islands.len()
    }

    /// Number of barrier windows.
    pub fn window_count(&self) -> usize {
        self.windows
    }

    /// The per-thread store budget of one window.
    pub fn window_stores(&self) -> u64 {
        self.window_stores
    }

    /// The epoch store budget the cadence was derived against.
    pub fn epoch_size_stores(&self) -> u64 {
        self.epoch_size_stores
    }

    /// One island's schedule.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn island(&self, i: usize) -> &IslandPlan {
        &self.islands[i]
    }

    /// Island `i`'s pre-split contiguous trace segment: local thread `l`
    /// of the island machine streams `island_trace(i).thread(ThreadId(l))`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn island_trace(&self, i: usize) -> &PackedTrace {
        &self.island_traces[i]
    }

    /// The canonical exchange run of window `w`, ascending by line.
    ///
    /// # Panics
    /// Panics if `w` is out of range.
    pub fn exchange(&self, w: usize) -> &[ExchangeEntry] {
        &self.arena[self.offsets[w]..self.offsets[w + 1]]
    }

    /// Total exchange entries across all windows.
    pub fn exchange_total(&self) -> usize {
        self.arena.len()
    }

    /// Whether islands rendezvous at the end of window `w`. Silent
    /// windows (`false`) carry no barrier effects: replay free-runs
    /// through them and the next rendezvous covers the whole span.
    ///
    /// # Panics
    /// Panics if `w` is out of range.
    pub fn is_rendezvous(&self, w: usize) -> bool {
        self.rendezvous[w]
    }

    /// Number of rendezvous windows (≤ [`Self::window_count`]; the final
    /// window always rendezvouses).
    pub fn rendezvous_count(&self) -> usize {
        self.rendezvous_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Addr;
    use crate::rng::Rng64;
    use crate::trace::TraceBuilder;
    use std::collections::BTreeMap;

    fn cfg() -> SimConfig {
        SimConfig::builder()
            .cores(4, 2)
            .l1(1024, 2, 4)
            .l2(4096, 4, 8)
            .llc(16 * 1024, 4, 30, 2)
            .epoch_size_stores(4)
            .build()
            .unwrap()
    }

    #[test]
    fn islands_follow_vd_topology() {
        let mut b = TraceBuilder::new(4);
        for i in 0..10u64 {
            b.store(ThreadId((i % 4) as u16), Addr::new(i * 64));
        }
        let plan = ShardPlan::new(&b.build().to_packed(), &cfg());
        assert_eq!(plan.island_count(), 2);
        assert_eq!(plan.island(0).threads, vec![ThreadId(0), ThreadId(1)]);
        assert_eq!(plan.island(1).threads, vec![ThreadId(2), ThreadId(3)]);
        assert_eq!(plan.window_stores(), 2, "epoch budget split per thread");
    }

    #[test]
    fn window_cuts_cover_every_event_exactly_once() {
        let mut b = TraceBuilder::new(4);
        for i in 0..37u64 {
            let t = ThreadId((i % 3) as u16); // thread 3 stays empty
            if i % 5 == 0 {
                b.load(t, Addr::new(i * 64));
            } else {
                b.store(t, Addr::new(i * 64));
            }
        }
        let trace = b.build().to_packed();
        let plan = ShardPlan::new(&trace, &cfg());
        for ii in 0..plan.island_count() {
            let isl = plan.island(ii);
            for (l, &tid) in isl.threads.iter().enumerate() {
                let stream = trace.thread(tid);
                assert_eq!(isl.cuts[l].len(), plan.window_count());
                let mut prev = 0;
                for &c in &isl.cuts[l] {
                    assert!(c >= prev, "cuts are monotone");
                    prev = c;
                }
                assert_eq!(prev, stream.len(), "final cut closes the stream");
            }
        }
    }

    #[test]
    fn island_traces_mirror_member_streams() {
        let mut b = TraceBuilder::new(4);
        for i in 0..50u64 {
            let t = ThreadId((i % 4) as u16);
            if i % 3 == 0 {
                b.load(t, Addr::new(i * 64));
            } else {
                b.store(t, Addr::new((i % 7) * 64));
            }
        }
        let trace = b.build().to_packed();
        let plan = ShardPlan::new(&trace, &cfg());
        for ii in 0..plan.island_count() {
            let isl = plan.island(ii);
            let seg = plan.island_trace(ii);
            assert_eq!(seg.thread_count(), isl.threads.len());
            for (l, &tid) in isl.threads.iter().enumerate() {
                assert_eq!(
                    seg.thread(ThreadId(l as u16)),
                    trace.thread(tid),
                    "island {ii} local thread {l} copies global thread {tid:?} verbatim"
                );
            }
        }
    }

    #[test]
    fn exchange_picks_canonical_last_writer() {
        let mut b = TraceBuilder::new(4);
        // Same line written by threads 0 (island 0) and 2 (island 1)
        // within window 0: the higher island wins the exchange slot.
        // Thread 0 reads the line back in window 1, making it live
        // cross-island traffic (without a later foreign access the
        // filtered run would drop it — see the test below).
        let _t0 = b.store(ThreadId(0), Addr::new(0));
        let t2 = b.store(ThreadId(2), Addr::new(0));
        b.store(ThreadId(0), Addr::new(64)); // closes t0's window 0
        b.load(ThreadId(0), Addr::new(0)); // window-1 reader of line 0
        let plan = ShardPlan::new(&b.build().to_packed(), &cfg());
        assert!(plan.window_count() >= 2);
        let ex = plan.exchange(0);
        assert_eq!(ex.len(), 1, "line 64 has no later foreign reader");
        assert_eq!(ex[0].line, LineAddr::new(0));
        assert_eq!(ex[0].token, t2);
        assert_eq!(ex[0].src, 1);
    }

    #[test]
    fn exchange_drops_lines_nobody_reads_later() {
        let mut b = TraceBuilder::new(4);
        // Disjoint island-private write sets: nothing is ever accessed
        // by the other island, so every window's exchange run is empty.
        for i in 0..16u64 {
            b.store(ThreadId((i % 4) as u16), Addr::new((1 + i % 4) * 4096));
        }
        let plan = ShardPlan::new(&b.build().to_packed(), &cfg());
        for w in 0..plan.window_count() {
            assert!(plan.exchange(w).is_empty(), "window {w} run not empty");
        }
        assert_eq!(plan.exchange_total(), 0);
    }

    #[test]
    fn arena_round_trips_against_nested_reference() {
        // A seeded pseudo-random trace with real cross-island sharing;
        // the flat arena must reproduce, window for window, exactly what
        // the straightforward nested BTreeMap construction yields.
        let mut rng = Rng64::seed_from_u64(0x5EED_CAFE);
        let mut b = TraceBuilder::new(4);
        for _ in 0..600 {
            let t = ThreadId((rng.next_u64() % 4) as u16);
            let line = rng.next_u64() % 31;
            if rng.next_u64().is_multiple_of(3) {
                b.load(t, Addr::new(line * 64));
            } else {
                b.store(t, Addr::new(line * 64));
            }
        }
        let trace = b.build().to_packed();
        let c = cfg();
        let plan = ShardPlan::new(&trace, &c);

        // Reference: per-window BTreeMap with canonical-order overwrite,
        // then the same needed-by-a-later-foreign-access filter.
        let windows = plan.window_count();
        let nislands = plan.island_count();
        let mut last_access: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
        for ii in 0..nislands {
            let isl = plan.island(ii);
            for (l, &tid) in isl.threads.iter().enumerate() {
                let stream = trace.thread(tid);
                for w in 0..windows {
                    let lo = if w == 0 { 0 } else { isl.cuts[l][w - 1] };
                    for e in &stream[lo..isl.cuts[l][w]] {
                        if !e.is_mark() {
                            last_access
                                .entry(e.addr().line().raw())
                                .or_insert_with(|| vec![0; nislands])[ii] = (w + 1) as u32;
                        }
                    }
                }
            }
        }
        for w in 0..windows {
            let mut map: BTreeMap<u64, (Token, u16)> = BTreeMap::new();
            for ii in 0..nislands {
                let isl = plan.island(ii);
                for (l, &tid) in isl.threads.iter().enumerate() {
                    let stream = trace.thread(tid);
                    let lo = if w == 0 { 0 } else { isl.cuts[l][w - 1] };
                    for e in &stream[lo..isl.cuts[l][w]] {
                        if !e.is_mark() && e.op() == MemOp::Store {
                            map.insert(e.addr().line().raw(), (e.token(), ii as u16));
                        }
                    }
                }
            }
            let expect: Vec<ExchangeEntry> = map
                .into_iter()
                .filter(|&(line, (_, src))| {
                    last_access[&line]
                        .iter()
                        .enumerate()
                        .any(|(k, &lw)| k as u16 != src && lw as usize > w + 1)
                })
                .map(|(line, (token, src))| ExchangeEntry {
                    line: LineAddr::new(line),
                    token,
                    src,
                })
                .collect();
            assert_eq!(plan.exchange(w), &expect[..], "window {w} run diverges");
        }
    }

    #[test]
    fn cadence_coalesces_silent_windows() {
        // Island-disjoint full windows: every window retires the same
        // whole-epoch store count per island, has no marks, and
        // exchanges nothing — only the final window rendezvouses.
        let mut b = TraceBuilder::new(4);
        for round in 0..12u64 {
            for t in 0..4u64 {
                b.store(ThreadId(t as u16), Addr::new((t * 100 + round % 4) * 64));
            }
        }
        let plan = ShardPlan::new(&b.build().to_packed(), &cfg());
        assert!(plan.window_count() > 2);
        assert_eq!(plan.rendezvous_count(), 1, "only the final rendezvous");
        for w in 0..plan.window_count() - 1 {
            assert!(!plan.is_rendezvous(w));
        }
        assert!(plan.is_rendezvous(plan.window_count() - 1));
    }

    #[test]
    fn epoch_marks_force_rendezvous() {
        let mut b = TraceBuilder::new(4);
        for round in 0..6u64 {
            for t in 0..4u64 {
                b.store(ThreadId(t as u16), Addr::new((t * 100 + round % 4) * 64));
            }
            if round == 1 {
                // An explicit mark advances island 0's epoch outside the
                // store budget, so its floor can move: rendezvous.
                b.epoch_mark(ThreadId(0));
            }
        }
        let plan = ShardPlan::new(&b.build().to_packed(), &cfg());
        let marked: Vec<usize> = (0..plan.window_count())
            .filter(|&w| plan.is_rendezvous(w))
            .collect();
        assert!(marked.len() >= 2, "mark window plus the final window");
        assert!(plan.rendezvous_count() < plan.window_count());
    }

    #[test]
    fn plan_is_deterministic() {
        let mut b = TraceBuilder::new(4);
        for i in 0..200u64 {
            b.store(ThreadId((i % 4) as u16), Addr::new((i % 23) * 64));
        }
        let trace = b.build().to_packed();
        let c = cfg();
        let p1 = ShardPlan::new(&trace, &c);
        let p2 = ShardPlan::new(&trace, &c);
        assert_eq!(p1.window_count(), p2.window_count());
        assert_eq!(p1.rendezvous_count(), p2.rendezvous_count());
        for w in 0..p1.window_count() {
            assert_eq!(p1.exchange(w), p2.exchange(w));
            assert_eq!(p1.is_rendezvous(w), p2.is_rendezvous(w));
        }
    }

    #[test]
    fn cached_plans_are_shared_and_key_sensitive() {
        let mut b = TraceBuilder::new(4);
        for i in 0..120u64 {
            b.store(ThreadId((i % 4) as u16), Addr::new((i % 13) * 64));
        }
        let trace = b.build().to_packed();
        let c = cfg();
        let p1 = ShardPlan::cached(&trace, &c);
        let p2 = ShardPlan::cached(&trace, &c);
        assert!(Arc::ptr_eq(&p1, &p2), "same trace+config hits the memo");

        let mut b2 = TraceBuilder::new(4);
        for i in 0..120u64 {
            b2.store(ThreadId((i % 4) as u16), Addr::new((i % 17) * 64));
        }
        let other = ShardPlan::cached(&b2.build().to_packed(), &c);
        assert!(!Arc::ptr_eq(&p1, &other), "different trace misses");
        assert_eq!(p1.window_count(), ShardPlan::new(&trace, &c).window_count());
    }
}
