//! Island-sharded replay planning.
//!
//! A [`ShardPlan`] partitions one packed trace into per-VD **islands** —
//! each island is a complete sub-machine (the VD's cores, their private
//! L1s, the VD's L2, and a proportional slice of LLC/DRAM/NVM capacity,
//! see [`crate::config::SimConfig::island_config`]) — and cuts every
//! thread's event stream into **windows** of a fixed store budget.
//! Islands replay their windows independently; at the window boundary
//! they rendezvous at an epoch barrier, align clocks, raise their epoch
//! floor (Lamport sync across domains), and exchange the lines written
//! during the window in a canonical order.
//!
//! Everything in the plan — island membership, window cuts, and the
//! per-window exchange maps — is derived from the trace and the machine
//! configuration alone, **never** from runtime state. That is what makes
//! sharded replay invariant to the worker count: a plan replayed by 1
//! worker and by 8 workers performs the same island steps against the
//! same imported data at the same barrier points, so every statistic,
//! metric, and trace-event count comes out byte-identical (enforced by
//! `nvbench/tests/shard_determinism.rs`).

use crate::addr::{LineAddr, ThreadId, Token};
use crate::config::SimConfig;
use crate::memsys::MemOp;
use crate::trace::PackedTrace;
use std::collections::BTreeMap;

/// One island: a VD's worth of threads plus their window cuts.
#[derive(Clone, Debug)]
pub struct IslandPlan {
    /// The VD this island models (index into the full machine).
    pub vd: u16,
    /// Global trace threads driven by this island, ascending. Local core
    /// `l` of the island machine runs `threads[l]`.
    pub threads: Vec<ThreadId>,
    /// Per local thread: cumulative end index (exclusive) of each
    /// window's event segment; `cuts[l][w]` is one past the last event
    /// of window `w`. Every row has the plan's window count, padded with
    /// the stream length once the stream is exhausted.
    pub cuts: Vec<Vec<usize>>,
}

/// One entry of a window's exchange map: the canonical last writer of a
/// line during that window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExchangeEntry {
    /// The written line.
    pub line: LineAddr,
    /// The winning token.
    pub token: Token,
    /// The island that wrote it (entries are skipped by their writer at
    /// import time).
    pub src: u16,
}

/// A deterministic sharded-replay schedule over one packed trace.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    islands: Vec<IslandPlan>,
    windows: usize,
    window_stores: u64,
    /// Per window, the merged cross-island exchange map, ascending by
    /// line address (canonical import order).
    exchanges: Vec<Vec<ExchangeEntry>>,
}

impl ShardPlan {
    /// Derives the plan for `trace` on the machine `cfg` describes.
    ///
    /// Threads map to cores 1:1 (thread *i* runs on core *i*), so island
    /// membership follows the machine's VD topology: island *v* owns the
    /// threads of cores `[v·cores_per_vd, (v+1)·cores_per_vd)`. Windows
    /// cut each thread's stream every `epoch_size_stores / cores_per_vd`
    /// stores — the per-thread share of a VD's epoch budget — so barrier
    /// cadence tracks the machine's epoch cadence.
    ///
    /// # Panics
    /// Panics if the trace has more threads than the machine has cores.
    pub fn new(trace: &PackedTrace, cfg: &SimConfig) -> Self {
        let threads = trace.thread_count();
        assert!(
            threads <= cfg.cores as usize,
            "trace has {threads} threads but the machine has {} cores",
            cfg.cores
        );
        let cpv = cfg.cores_per_vd.max(1) as usize;
        let window_stores = (cfg.epoch_size_stores / cpv as u64).max(1);

        // Cut every thread's stream after each `window_stores` stores.
        let mut islands: Vec<IslandPlan> = Vec::new();
        let mut windows = 1usize;
        for t0 in (0..threads).step_by(cpv) {
            let vd = (t0 / cpv) as u16;
            let members: Vec<ThreadId> = (t0..(t0 + cpv).min(threads))
                .map(|t| ThreadId(t as u16))
                .collect();
            let mut cuts: Vec<Vec<usize>> = Vec::with_capacity(members.len());
            for &tid in &members {
                let stream = trace.thread(tid);
                let mut row = Vec::new();
                let mut stores = 0u64;
                for (i, e) in stream.iter().enumerate() {
                    if !e.is_mark() && e.op() == MemOp::Store {
                        stores += 1;
                        if stores == window_stores {
                            row.push(i + 1);
                            stores = 0;
                        }
                    }
                }
                // The remainder (trailing loads/marks, or a short final
                // store run) always closes the last window.
                if row.last() != Some(&stream.len()) {
                    row.push(stream.len());
                }
                windows = windows.max(row.len());
                cuts.push(row);
            }
            islands.push(IslandPlan {
                vd,
                threads: members,
                cuts,
            });
        }
        // Pad every cut row to the global window count: exhausted
        // streams contribute empty segments to the remaining windows.
        for isl in &mut islands {
            for row in &mut isl.cuts {
                let end = *row.last().expect("every row has a final cut");
                row.resize(windows, end);
            }
        }

        // Per-window exchange maps: the canonical last writer of every
        // line written in the window. Canonical order: islands ascending,
        // island threads ascending, events in stream order — later
        // writers overwrite, so the winner is the highest-ranked writer
        // in that fixed order regardless of how replay interleaves.
        let mut exchanges: Vec<Vec<ExchangeEntry>> = Vec::with_capacity(windows);
        for w in 0..windows {
            let mut map: BTreeMap<u64, (Token, u16)> = BTreeMap::new();
            for (ii, isl) in islands.iter().enumerate() {
                for (l, &tid) in isl.threads.iter().enumerate() {
                    let stream = trace.thread(tid);
                    let lo = if w == 0 { 0 } else { isl.cuts[l][w - 1] };
                    let hi = isl.cuts[l][w];
                    for e in &stream[lo..hi] {
                        if !e.is_mark() && e.op() == MemOp::Store {
                            map.insert(e.addr().line().raw(), (e.token(), ii as u16));
                        }
                    }
                }
            }
            exchanges.push(
                map.into_iter()
                    .map(|(line, (token, src))| ExchangeEntry {
                        line: LineAddr::new(line),
                        token,
                        src,
                    })
                    .collect(),
            );
        }

        Self {
            islands,
            windows,
            window_stores,
            exchanges,
        }
    }

    /// Number of islands (= populated VDs).
    pub fn island_count(&self) -> usize {
        self.islands.len()
    }

    /// Number of barrier windows.
    pub fn window_count(&self) -> usize {
        self.windows
    }

    /// The per-thread store budget of one window.
    pub fn window_stores(&self) -> u64 {
        self.window_stores
    }

    /// One island's schedule.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn island(&self, i: usize) -> &IslandPlan {
        &self.islands[i]
    }

    /// The canonical exchange map of window `w`, ascending by line.
    ///
    /// # Panics
    /// Panics if `w` is out of range.
    pub fn exchange(&self, w: usize) -> &[ExchangeEntry] {
        &self.exchanges[w]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Addr;
    use crate::trace::TraceBuilder;

    fn cfg() -> SimConfig {
        SimConfig::builder()
            .cores(4, 2)
            .l1(1024, 2, 4)
            .l2(4096, 4, 8)
            .llc(16 * 1024, 4, 30, 2)
            .epoch_size_stores(4)
            .build()
            .unwrap()
    }

    #[test]
    fn islands_follow_vd_topology() {
        let mut b = TraceBuilder::new(4);
        for i in 0..10u64 {
            b.store(ThreadId((i % 4) as u16), Addr::new(i * 64));
        }
        let plan = ShardPlan::new(&b.build().to_packed(), &cfg());
        assert_eq!(plan.island_count(), 2);
        assert_eq!(plan.island(0).threads, vec![ThreadId(0), ThreadId(1)]);
        assert_eq!(plan.island(1).threads, vec![ThreadId(2), ThreadId(3)]);
        assert_eq!(plan.window_stores(), 2, "epoch budget split per thread");
    }

    #[test]
    fn window_cuts_cover_every_event_exactly_once() {
        let mut b = TraceBuilder::new(4);
        for i in 0..37u64 {
            let t = ThreadId((i % 3) as u16); // thread 3 stays empty
            if i % 5 == 0 {
                b.load(t, Addr::new(i * 64));
            } else {
                b.store(t, Addr::new(i * 64));
            }
        }
        let trace = b.build().to_packed();
        let plan = ShardPlan::new(&trace, &cfg());
        for ii in 0..plan.island_count() {
            let isl = plan.island(ii);
            for (l, &tid) in isl.threads.iter().enumerate() {
                let stream = trace.thread(tid);
                assert_eq!(isl.cuts[l].len(), plan.window_count());
                let mut prev = 0;
                for &c in &isl.cuts[l] {
                    assert!(c >= prev, "cuts are monotone");
                    prev = c;
                }
                assert_eq!(prev, stream.len(), "final cut closes the stream");
            }
        }
    }

    #[test]
    fn exchange_picks_canonical_last_writer() {
        let mut b = TraceBuilder::new(4);
        // Same line written by threads 0 (island 0) and 2 (island 1)
        // within window 0: the higher island wins the exchange slot.
        let _t0 = b.store(ThreadId(0), Addr::new(0));
        let t2 = b.store(ThreadId(2), Addr::new(0));
        let plan = ShardPlan::new(&b.build().to_packed(), &cfg());
        let ex = plan.exchange(0);
        assert_eq!(ex.len(), 1);
        assert_eq!(ex[0].line, LineAddr::new(0));
        assert_eq!(ex[0].token, t2);
        assert_eq!(ex[0].src, 1);
    }

    #[test]
    fn plan_is_deterministic() {
        let mut b = TraceBuilder::new(4);
        for i in 0..200u64 {
            b.store(ThreadId((i % 4) as u16), Addr::new((i % 23) * 64));
        }
        let trace = b.build().to_packed();
        let c = cfg();
        let p1 = ShardPlan::new(&trace, &c);
        let p2 = ShardPlan::new(&trace, &c);
        assert_eq!(p1.window_count(), p2.window_count());
        for w in 0..p1.window_count() {
            assert_eq!(p1.exchange(w), p2.exchange(w));
        }
    }
}
