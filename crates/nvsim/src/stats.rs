//! Statistics: counters, eviction-reason decomposition, NVM byte accounting
//! and bandwidth time series.
//!
//! The paper's figures are all derived from these quantities:
//!
//! * Fig 11 — cycles (collected by the runner from per-core clocks);
//! * Fig 12 — NVM bytes by [`NvmWriteKind`];
//! * Fig 15 — [`EvictReason`] decomposition;
//! * Fig 17 — [`BandwidthSeries`].

use crate::clock::Cycle;
use std::fmt;

/// Why a dirty line was written out of the hierarchy.
///
/// Matches the decomposition of the paper's Fig 15 ("Capacity Miss",
/// "Coherence/Log", "Tag Walk"), at finer grain: the harness groups
/// [`EvictReason::CoherenceDowngrade`], [`EvictReason::CoherenceInvalidation`]
/// and [`EvictReason::LogWrite`] into the figure's "Coherence/Log" bar.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum EvictReason {
    /// Victim selected on a fill (set conflict / capacity).
    CapacityMiss,
    /// External GETS forced the owner to give up exclusivity.
    CoherenceDowngrade,
    /// External GETX invalidated the line.
    CoherenceInvalidation,
    /// NVOverlay store-eviction: an immutable old version pushed down
    /// so the store can complete in place (paper §IV-A1).
    StoreEviction,
    /// Written back by a tag walker (paper §IV-C; PiCL's ACS).
    TagWalk,
    /// Flushed synchronously at an epoch boundary (software schemes).
    EpochFlush,
    /// Final drain when the simulation finishes.
    Drain,
    /// A log entry (undo/redo) emitted by a logging scheme.
    LogWrite,
}

impl EvictReason {
    /// All reasons, for iteration and table rendering.
    pub const ALL: [EvictReason; 8] = [
        EvictReason::CapacityMiss,
        EvictReason::CoherenceDowngrade,
        EvictReason::CoherenceInvalidation,
        EvictReason::StoreEviction,
        EvictReason::TagWalk,
        EvictReason::EpochFlush,
        EvictReason::Drain,
        EvictReason::LogWrite,
    ];

    fn idx(self) -> usize {
        match self {
            EvictReason::CapacityMiss => 0,
            EvictReason::CoherenceDowngrade => 1,
            EvictReason::CoherenceInvalidation => 2,
            EvictReason::StoreEviction => 3,
            EvictReason::TagWalk => 4,
            EvictReason::EpochFlush => 5,
            EvictReason::Drain => 6,
            EvictReason::LogWrite => 7,
        }
    }
}

impl fmt::Display for EvictReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EvictReason::CapacityMiss => "capacity-miss",
            EvictReason::CoherenceDowngrade => "coherence-downgrade",
            EvictReason::CoherenceInvalidation => "coherence-invalidation",
            EvictReason::StoreEviction => "store-eviction",
            EvictReason::TagWalk => "tag-walk",
            EvictReason::EpochFlush => "epoch-flush",
            EvictReason::Drain => "drain",
            EvictReason::LogWrite => "log-write",
        };
        f.write_str(s)
    }
}

/// Counts of dirty write-outs by reason.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EvictReasons {
    counts: [u64; 8],
}

impl EvictReasons {
    /// A zeroed decomposition.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one eviction for `reason`.
    #[inline]
    pub fn record(&mut self, reason: EvictReason) {
        self.counts[reason.idx()] += 1;
    }

    /// The count for `reason`.
    #[inline]
    pub fn count(&self, reason: EvictReason) -> u64 {
        self.counts[reason.idx()]
    }

    /// Sum over all reasons.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Iterates `(reason, count)` pairs in a stable order.
    pub fn iter(&self) -> impl Iterator<Item = (EvictReason, u64)> + '_ {
        EvictReason::ALL.iter().map(move |&r| (r, self.count(r)))
    }

    /// Adds another decomposition into this one.
    pub fn merge(&mut self, other: &EvictReasons) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
    }
}

/// What a byte written to NVM was for.
///
/// Write amplification (Fig 12) is the ratio of total bytes across all kinds
/// to the unique snapshot data a scheme must persist.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum NvmWriteKind {
    /// Snapshot or working data (a 64-byte line).
    Data,
    /// An undo/redo log entry (72 bytes in the paper: 64 B data + 8 B tag).
    Log,
    /// Mapping-table metadata (radix-tree node updates, 8 B per entry).
    MapMetadata,
    /// Processor context dumped at an epoch boundary.
    Context,
}

impl NvmWriteKind {
    /// All kinds, for iteration.
    pub const ALL: [NvmWriteKind; 4] = [
        NvmWriteKind::Data,
        NvmWriteKind::Log,
        NvmWriteKind::MapMetadata,
        NvmWriteKind::Context,
    ];

    fn idx(self) -> usize {
        match self {
            NvmWriteKind::Data => 0,
            NvmWriteKind::Log => 1,
            NvmWriteKind::MapMetadata => 2,
            NvmWriteKind::Context => 3,
        }
    }
}

impl fmt::Display for NvmWriteKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NvmWriteKind::Data => "data",
            NvmWriteKind::Log => "log",
            NvmWriteKind::MapMetadata => "map-metadata",
            NvmWriteKind::Context => "context",
        };
        f.write_str(s)
    }
}

/// Bytes written to NVM, decomposed by purpose.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NvmBytes {
    bytes: [u64; 4],
    writes: [u64; 4],
}

impl NvmBytes {
    /// A zeroed accounting.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one write of `bytes` bytes of `kind`.
    #[inline]
    pub fn record(&mut self, kind: NvmWriteKind, bytes: u64) {
        self.bytes[kind.idx()] += bytes;
        self.writes[kind.idx()] += 1;
    }

    /// Bytes written for `kind`.
    #[inline]
    pub fn bytes(&self, kind: NvmWriteKind) -> u64 {
        self.bytes[kind.idx()]
    }

    /// Number of write requests for `kind`.
    #[inline]
    pub fn writes(&self, kind: NvmWriteKind) -> u64 {
        self.writes[kind.idx()]
    }

    /// Total bytes across all kinds.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Total write requests across all kinds.
    pub fn total_writes(&self) -> u64 {
        self.writes.iter().sum()
    }

    /// Adds another accounting into this one.
    pub fn merge(&mut self, other: &NvmBytes) {
        for (a, b) in self.bytes.iter_mut().zip(other.bytes.iter()) {
            *a += *b;
        }
        for (a, b) in self.writes.iter_mut().zip(other.writes.iter()) {
            *a += *b;
        }
    }
}

/// A bandwidth time series: bytes written per fixed-width cycle bucket.
///
/// Used for Fig 17. Buckets grow on demand; queries past the end read zero.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BandwidthSeries {
    bucket_cycles: Cycle,
    buckets: Vec<u64>,
}

impl BandwidthSeries {
    /// Creates a series with the given bucket width.
    ///
    /// # Panics
    /// Panics if `bucket_cycles` is zero.
    pub fn new(bucket_cycles: Cycle) -> Self {
        assert!(bucket_cycles > 0, "bucket width must be positive");
        Self {
            bucket_cycles,
            buckets: Vec::new(),
        }
    }

    /// Records `bytes` written at time `now`.
    pub fn record(&mut self, now: Cycle, bytes: u64) {
        let b = (now / self.bucket_cycles) as usize;
        if b >= self.buckets.len() {
            self.buckets.resize(b + 1, 0);
        }
        self.buckets[b] += bytes;
    }

    /// Bucket width in cycles.
    pub fn bucket_cycles(&self) -> Cycle {
        self.bucket_cycles
    }

    /// The raw buckets (bytes per bucket).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Bandwidth of bucket `i` in GB/s given a core frequency in GHz.
    ///
    /// `bytes / (bucket_cycles / freq_ghz ns)` expressed in GB/s.
    pub fn gbps(&self, i: usize, freq_ghz: f64) -> f64 {
        let bytes = *self.buckets.get(i).unwrap_or(&0) as f64;
        let ns = self.bucket_cycles as f64 / freq_ghz;
        bytes / ns // bytes per ns == GB/s
    }

    /// Resamples the series into exactly `n` buckets covering its span,
    /// distributing each input bucket's bytes proportionally over the
    /// output buckets it overlaps (no aliasing artifacts). Useful for
    /// "percent of total progress" plots (Fig 17).
    ///
    /// The result conserves the total exactly:
    /// `resample(n).iter().sum() == buckets().iter().sum()`. Per-bucket
    /// rounding quantizes the *running* total (so each output bucket is
    /// within one byte of its ideal share and the errors cannot
    /// accumulate into a drifted sum).
    pub fn resample(&self, n: usize) -> Vec<u64> {
        assert!(n > 0, "cannot resample into zero buckets");
        let mut out = vec![0f64; n];
        if self.buckets.is_empty() {
            return vec![0; n];
        }
        let scale = n as f64 / self.buckets.len() as f64;
        for (i, &b) in self.buckets.iter().enumerate() {
            let start = i as f64 * scale;
            let end = (i + 1) as f64 * scale;
            let mut lo = start;
            while lo < end - 1e-12 {
                let j = (lo.floor() as usize).min(n - 1);
                let hi = (j as f64 + 1.0).min(end);
                out[j] += b as f64 * (hi - lo) / (end - start);
                lo = hi;
            }
        }
        // Conservative quantization: round the cumulative sum and emit
        // differences, then pin the final bucket to the exact total.
        let total: u64 = self.buckets.iter().sum();
        let mut quantized = Vec::with_capacity(n);
        let mut cum = 0f64;
        let mut emitted = 0u64;
        for v in out {
            cum += v;
            let target = (cum.round() as u64).min(total).max(emitted);
            quantized.push(target - emitted);
            emitted = target;
        }
        if let Some(last) = quantized.last_mut() {
            *last += total - emitted;
        }
        quantized
    }

    /// Adds another series into this one, bucket by bucket.
    ///
    /// # Panics
    /// Panics if the bucket widths differ (merging series from runs of
    /// different configurations is a harness bug).
    pub fn merge(&mut self, other: &BandwidthSeries) {
        assert_eq!(
            self.bucket_cycles, other.bucket_cycles,
            "cannot merge bandwidth series with different bucket widths"
        );
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
    }
}

/// Per-run cache-access counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AccessCounters {
    /// Loads issued.
    pub loads: u64,
    /// Stores issued.
    pub stores: u64,
    /// Hits at the L1.
    pub l1_hits: u64,
    /// Hits at the L2 (after an L1 miss).
    pub l2_hits: u64,
    /// Hits in an LLC slice or via a cache-to-cache transfer.
    pub llc_hits: u64,
    /// Fills from DRAM/NVM.
    pub mem_fetches: u64,
}

impl AccessCounters {
    /// Total accesses.
    pub fn total(&self) -> u64 {
        self.loads + self.stores
    }

    /// Adds another counter block into this one.
    pub fn merge(&mut self, other: &AccessCounters) {
        self.loads += other.loads;
        self.stores += other.stores;
        self.l1_hits += other.l1_hits;
        self.l2_hits += other.l2_hits;
        self.llc_hits += other.llc_hits;
        self.mem_fetches += other.mem_fetches;
    }
}

/// The common statistics block every [`crate::memsys::MemorySystem`]
/// maintains and exposes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SystemStats {
    /// Cache access counters.
    pub access: AccessCounters,
    /// Dirty write-outs by reason.
    pub evictions: EvictReasons,
    /// NVM bytes/writes by purpose.
    pub nvm: NvmBytes,
    /// NVM write bandwidth over time.
    pub nvm_bandwidth: BandwidthSeries,
    /// Cycles cores spent stalled on persistence (barriers, backpressure).
    pub persist_stall_cycles: u64,
    /// Number of epochs completed (across all VDs for distributed schemes).
    pub epochs_completed: u64,
    /// Writes absorbed by a persistent buffer in front of the NVM (Fig 16).
    pub omc_buffer_hits: u64,
    /// Writes that missed that buffer (or all writes when no buffer).
    pub omc_buffer_misses: u64,
}

impl SystemStats {
    /// Creates a stats block with the given bandwidth bucket width.
    pub fn new(bandwidth_bucket_cycles: Cycle) -> Self {
        Self {
            access: AccessCounters::default(),
            evictions: EvictReasons::new(),
            nvm: NvmBytes::new(),
            nvm_bandwidth: BandwidthSeries::new(bandwidth_bucket_cycles),
            persist_stall_cycles: 0,
            epochs_completed: 0,
            omc_buffer_hits: 0,
            omc_buffer_misses: 0,
        }
    }

    /// Publishes the stats block into a metrics registry under `prefix`
    /// (the scheme-agnostic core of every system's metrics tree).
    pub fn metrics_into(&self, reg: &mut crate::metrics::Registry, prefix: &str) {
        let p = |s: &str| format!("{prefix}.{s}");
        reg.set_counter(&p("access.loads"), self.access.loads);
        reg.set_counter(&p("access.stores"), self.access.stores);
        reg.set_counter(&p("access.l1_hits"), self.access.l1_hits);
        reg.set_counter(&p("access.l2_hits"), self.access.l2_hits);
        reg.set_counter(&p("access.llc_hits"), self.access.llc_hits);
        reg.set_counter(&p("access.mem_fetches"), self.access.mem_fetches);
        for (reason, count) in self.evictions.iter() {
            reg.set_counter(&p(&format!("evictions.{reason}")), count);
        }
        for kind in NvmWriteKind::ALL {
            reg.set_counter(&p(&format!("nvm.bytes.{kind}")), self.nvm.bytes(kind));
            reg.set_counter(&p(&format!("nvm.writes.{kind}")), self.nvm.writes(kind));
        }
        reg.set_counter(&p("persist_stall_cycles"), self.persist_stall_cycles);
        reg.set_counter(&p("epochs_completed"), self.epochs_completed);
        reg.set_counter(&p("omc.buffer_hits"), self.omc_buffer_hits);
        reg.set_counter(&p("omc.buffer_misses"), self.omc_buffer_misses);
    }

    /// Aggregates another run's stats into this block (parallel-run
    /// reduction): counters add, the bandwidth series sums bucket-wise.
    pub fn merge(&mut self, other: &SystemStats) {
        self.access.merge(&other.access);
        self.evictions.merge(&other.evictions);
        self.nvm.merge(&other.nvm);
        self.nvm_bandwidth.merge(&other.nvm_bandwidth);
        self.persist_stall_cycles += other.persist_stall_cycles;
        self.epochs_completed += other.epochs_completed;
        self.omc_buffer_hits += other.omc_buffer_hits;
        self.omc_buffer_misses += other.omc_buffer_misses;
    }
}

impl Default for SystemStats {
    fn default() -> Self {
        // 100k-cycle buckets by default; experiments that need finer series
        // construct their own.
        Self::new(100_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evict_reasons_roundtrip() {
        let mut e = EvictReasons::new();
        e.record(EvictReason::TagWalk);
        e.record(EvictReason::TagWalk);
        e.record(EvictReason::CapacityMiss);
        assert_eq!(e.count(EvictReason::TagWalk), 2);
        assert_eq!(e.count(EvictReason::CapacityMiss), 1);
        assert_eq!(e.count(EvictReason::Drain), 0);
        assert_eq!(e.total(), 3);
    }

    #[test]
    fn evict_reasons_merge_adds() {
        let mut a = EvictReasons::new();
        a.record(EvictReason::LogWrite);
        let mut b = EvictReasons::new();
        b.record(EvictReason::LogWrite);
        b.record(EvictReason::EpochFlush);
        a.merge(&b);
        assert_eq!(a.count(EvictReason::LogWrite), 2);
        assert_eq!(a.count(EvictReason::EpochFlush), 1);
    }

    #[test]
    fn nvm_bytes_accumulate_by_kind() {
        let mut n = NvmBytes::new();
        n.record(NvmWriteKind::Data, 64);
        n.record(NvmWriteKind::Data, 64);
        n.record(NvmWriteKind::Log, 72);
        assert_eq!(n.bytes(NvmWriteKind::Data), 128);
        assert_eq!(n.writes(NvmWriteKind::Data), 2);
        assert_eq!(n.bytes(NvmWriteKind::Log), 72);
        assert_eq!(n.total_bytes(), 200);
        assert_eq!(n.total_writes(), 3);
    }

    #[test]
    fn bandwidth_series_buckets_and_resample() {
        let mut s = BandwidthSeries::new(100);
        s.record(0, 64);
        s.record(99, 64);
        s.record(100, 64);
        s.record(950, 64);
        assert_eq!(s.buckets(), &[128, 64, 0, 0, 0, 0, 0, 0, 0, 64]);
        let r = s.resample(5);
        assert_eq!(r.iter().sum::<u64>(), 256);
        assert_eq!(r[0], 128 + 64);
        assert_eq!(r[4], 64);
    }

    #[test]
    fn bandwidth_gbps_math() {
        let mut s = BandwidthSeries::new(3000); // 1 us at 3 GHz
        s.record(0, 1000);
        let g = s.gbps(0, 3.0);
        assert!((g - 1.0).abs() < 1e-9, "1000 B / 1000 ns = 1 GB/s, got {g}");
        assert_eq!(s.gbps(99, 3.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bandwidth_series_rejects_zero_bucket() {
        let _ = BandwidthSeries::new(0);
    }

    #[test]
    fn resample_conserves_total_bytes_exactly() {
        // Adversarial shapes: odd ratios, single bytes, long tails — the
        // per-bucket `round()` of the old implementation drifts on these.
        let mut s = BandwidthSeries::new(10);
        for i in 0..97u64 {
            s.record(i * 10, (i * 7919) % 13);
        }
        let total: u64 = s.buckets().iter().sum();
        for n in [1, 2, 3, 5, 7, 31, 64, 97, 100, 1000] {
            let r = s.resample(n);
            assert_eq!(r.len(), n);
            assert_eq!(r.iter().sum::<u64>(), total, "n={n}");
        }
        // Up- and down-sampling a tiny odd series also conserves.
        let mut t = BandwidthSeries::new(100);
        t.record(0, 1);
        t.record(100, 1);
        t.record(200, 1);
        for n in [2, 4, 7] {
            assert_eq!(t.resample(n).iter().sum::<u64>(), 3, "n={n}");
        }
    }

    #[test]
    fn bandwidth_merge_adds_and_grows() {
        let mut a = BandwidthSeries::new(100);
        a.record(0, 10);
        let mut b = BandwidthSeries::new(100);
        b.record(50, 5);
        b.record(350, 7);
        a.merge(&b);
        assert_eq!(a.buckets(), &[15, 0, 0, 7]);
    }

    #[test]
    #[should_panic(expected = "bucket widths")]
    fn bandwidth_merge_rejects_mismatched_widths() {
        let mut a = BandwidthSeries::new(100);
        a.merge(&BandwidthSeries::new(200));
    }

    #[test]
    fn nvm_bytes_and_access_counters_merge() {
        let mut a = NvmBytes::new();
        a.record(NvmWriteKind::Data, 64);
        let mut b = NvmBytes::new();
        b.record(NvmWriteKind::Data, 64);
        b.record(NvmWriteKind::Log, 72);
        a.merge(&b);
        assert_eq!(a.bytes(NvmWriteKind::Data), 128);
        assert_eq!(a.writes(NvmWriteKind::Data), 2);
        assert_eq!(a.total_writes(), 3);

        let mut x = AccessCounters {
            loads: 1,
            stores: 2,
            l1_hits: 3,
            l2_hits: 4,
            llc_hits: 5,
            mem_fetches: 6,
        };
        x.merge(&x.clone());
        assert_eq!(x.total(), 6);
        assert_eq!(x.mem_fetches, 12);
    }

    #[test]
    fn system_stats_merge_folds_every_field() {
        let mut a = SystemStats::new(100);
        a.access.loads = 5;
        a.evictions.record(EvictReason::TagWalk);
        a.nvm.record(NvmWriteKind::Data, 64);
        a.nvm_bandwidth.record(0, 64);
        a.persist_stall_cycles = 7;
        a.epochs_completed = 2;
        a.omc_buffer_hits = 1;
        let b = a.clone();
        a.merge(&b);
        assert_eq!(a.access.loads, 10);
        assert_eq!(a.evictions.count(EvictReason::TagWalk), 2);
        assert_eq!(a.nvm.total_bytes(), 128);
        assert_eq!(a.nvm_bandwidth.buckets(), &[128]);
        assert_eq!(a.persist_stall_cycles, 14);
        assert_eq!(a.epochs_completed, 4);
        assert_eq!(a.omc_buffer_hits, 2);
    }
}
