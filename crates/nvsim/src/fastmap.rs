//! Hash maps for the simulator's hot paths.
//!
//! Profiling the figure sweeps shows the simulator spends a large share
//! of its time hashing `LineAddr`/`u64` keys with SipHash through
//! `std::collections::HashMap` (directory entries, DRAM/NVM contents,
//! golden images, OMC page bookkeeping). This module provides two
//! replacements, both with **deterministic, seed-free** behavior so runs
//! stay byte-reproducible:
//!
//! * [`FastMap`] — an open-addressing (linear-probe, backward-shift
//!   delete) map specialized for small `Copy` integer-like keys. This is
//!   the choice for the hottest per-access structures.
//! * [`FastHashMap`]/[`FastHashSet`] — `std` collections with an Fx-style
//!   multiply-xor [`FastHasher`], a drop-in for call sites that need the
//!   full `HashMap` API (entry, arbitrary key types) or appear in public
//!   signatures.
//!
//! Iteration order of both depends only on the sequence of operations
//! performed, never on a random seed, so "same trace in → same stats
//! out" holds across serial and parallel drivers alike.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Fx-style streaming hasher: rotate-xor-multiply per word with a
/// SplitMix64-style finalizer for well-mixed low bits.
#[derive(Clone, Copy, Debug, Default)]
pub struct FastHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FastHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        mix(self.hash)
    }
}

/// SplitMix64 finalizer: full-avalanche mixing so the low bits a hash
/// table indexes by depend on every input bit.
#[inline]
fn mix(mut h: u64) -> u64 {
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

/// Deterministic `BuildHasher` for [`FastHasher`].
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// `std::collections::HashMap` with the Fx-style [`FastHasher`].
pub type FastHashMap<K, V> = HashMap<K, V, FastBuildHasher>;

/// `std::collections::HashSet` with the Fx-style [`FastHasher`].
pub type FastHashSet<K> = HashSet<K, FastBuildHasher>;

/// Key types [`FastMap`] can store: cheap to copy, convertible to the
/// `u64` the probe hash is computed from.
pub trait FastKey: Copy + Eq {
    /// The 64-bit value hashed for bucket selection.
    fn as_u64(self) -> u64;
}

impl FastKey for u64 {
    #[inline]
    fn as_u64(self) -> u64 {
        self
    }
}

impl FastKey for u32 {
    #[inline]
    fn as_u64(self) -> u64 {
        self as u64
    }
}

impl FastKey for crate::addr::LineAddr {
    #[inline]
    fn as_u64(self) -> u64 {
        self.raw()
    }
}

impl FastKey for crate::addr::PageAddr {
    #[inline]
    fn as_u64(self) -> u64 {
        self.raw()
    }
}

/// An open-addressing map from integer-like keys to values.
///
/// Linear probing over a power-of-two table with backward-shift deletion
/// (no tombstones), resized at 7/8 load. The probe hash is a multiply-xor
/// finalizer over the raw key — a few cycles against SipHash's dozens,
/// which is what the simulator's per-access structures need.
///
/// ```
/// use nvsim::fastmap::FastMap;
///
/// let mut m: FastMap<u64, u32> = FastMap::new();
/// assert_eq!(m.insert(7, 1), None);
/// assert_eq!(m.insert(7, 2), Some(1));
/// assert_eq!(m.get(&7), Some(&2));
/// assert_eq!(m.remove(&7), Some(2));
/// assert!(m.is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct FastMap<K: FastKey, V> {
    slots: Vec<Option<(K, V)>>,
    mask: usize,
    len: usize,
}

impl<K: FastKey, V> Default for FastMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

const MIN_CAPACITY: usize = 8;

impl<K: FastKey, V> FastMap<K, V> {
    /// An empty map (allocates the minimum table).
    pub fn new() -> Self {
        Self::with_capacity(MIN_CAPACITY)
    }

    /// An empty map sized to hold `cap` entries without resizing.
    pub fn with_capacity(cap: usize) -> Self {
        let slots = (cap.max(MIN_CAPACITY) * 8 / 7 + 1)
            .next_power_of_two()
            .max(MIN_CAPACITY);
        Self {
            slots: (0..slots).map(|_| None).collect(),
            mask: slots - 1,
            len: 0,
        }
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn bucket_of(&self, key: K) -> usize {
        mix(key.as_u64()) as usize & self.mask
    }

    /// The slot holding `key`, or the empty slot where it would go.
    #[inline]
    fn probe(&self, key: K) -> usize {
        let mut i = self.bucket_of(key);
        loop {
            match &self.slots[i] {
                Some((k, _)) if *k == key => return i,
                None => return i,
                _ => i = (i + 1) & self.mask,
            }
        }
    }

    /// A reference to the value for `key`.
    #[inline]
    pub fn get(&self, key: &K) -> Option<&V> {
        self.slots[self.probe(*key)].as_ref().map(|(_, v)| v)
    }

    /// A mutable reference to the value for `key`.
    #[inline]
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        let i = self.probe(*key);
        self.slots[i].as_mut().map(|(_, v)| v)
    }

    /// Whether `key` is present.
    #[inline]
    pub fn contains_key(&self, key: &K) -> bool {
        self.slots[self.probe(*key)].is_some()
    }

    /// Inserts `key → value`, returning the previous value if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        if (self.len + 1) * 8 > self.slots.len() * 7 {
            self.grow();
        }
        let i = self.probe(key);
        match &mut self.slots[i] {
            Some((_, v)) => Some(std::mem::replace(v, value)),
            empty @ None => {
                *empty = Some((key, value));
                self.len += 1;
                None
            }
        }
    }

    /// The value for `key`, inserting `default()` first if absent.
    pub fn or_insert_with(&mut self, key: K, default: impl FnOnce() -> V) -> &mut V {
        if (self.len + 1) * 8 > self.slots.len() * 7 {
            self.grow();
        }
        let i = self.probe(key);
        if self.slots[i].is_none() {
            self.slots[i] = Some((key, default()));
            self.len += 1;
        }
        self.slots[i].as_mut().map(|(_, v)| v).expect("just filled")
    }

    /// The value for `key`, inserting the default first if absent.
    pub fn or_default(&mut self, key: K) -> &mut V
    where
        V: Default,
    {
        self.or_insert_with(key, V::default)
    }

    /// Removes `key`, returning its value. Backward-shift deletion keeps
    /// probe chains intact without tombstones.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let mut i = self.probe(*key);
        let (_, value) = self.slots[i].take()?;
        self.len -= 1;
        // Shift the rest of the probe chain back over the hole.
        let mut j = (i + 1) & self.mask;
        while let Some((k, _)) = &self.slots[j] {
            let home = self.bucket_of(*k);
            // Move k back iff its home bucket does not sit in (i, j]
            // cyclically — i.e. the hole is within k's probe path.
            let hole_in_path = if j >= home {
                i >= home && i < j
            } else {
                i >= home || i < j
            };
            if hole_in_path {
                self.slots[i] = self.slots[j].take();
                i = j;
            }
            j = (j + 1) & self.mask;
        }
        Some(value)
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            *s = None;
        }
        self.len = 0;
    }

    /// Iterates entries in table order (deterministic for a given
    /// operation sequence; not sorted — sort on drain where consumers
    /// depend on order).
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.slots.iter().flatten().map(|(k, v)| (k, v))
    }

    /// Iterates values.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.slots.iter().flatten().map(|(_, v)| v)
    }

    /// Iterates values mutably.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut V> {
        self.slots.iter_mut().flatten().map(|(_, v)| v)
    }

    /// Iterates keys.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.slots.iter().flatten().map(|(k, _)| k)
    }

    fn grow(&mut self) {
        let new_len = self.slots.len() * 2;
        let old = std::mem::replace(&mut self.slots, (0..new_len).map(|_| None).collect());
        self.mask = new_len - 1;
        for (k, v) in old.into_iter().flatten() {
            let i = self.probe(k);
            debug_assert!(self.slots[i].is_none(), "duplicate key during grow");
            self.slots[i] = Some((k, v));
        }
    }
}

impl<K: FastKey, V> std::ops::Index<&K> for FastMap<K, V> {
    type Output = V;

    fn index(&self, key: &K) -> &V {
        self.get(key).expect("no entry found for key")
    }
}

impl<'a, K: FastKey, V> IntoIterator for &'a FastMap<K, V> {
    type Item = (&'a K, &'a V);
    type IntoIter = std::iter::Map<
        std::iter::Flatten<std::slice::Iter<'a, Option<(K, V)>>>,
        fn(&'a (K, V)) -> (&'a K, &'a V),
    >;

    fn into_iter(self) -> Self::IntoIter {
        self.slots.iter().flatten().map(|(k, v)| (k, v))
    }
}

/// Content equality, independent of table layout or insertion order.
impl<K: FastKey, V: PartialEq> PartialEq for FastMap<K, V> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().all(|(k, v)| other.get(k) == Some(v))
    }
}

impl<K: FastKey, V: Eq> Eq for FastMap<K, V> {}

impl<K: FastKey, V> FromIterator<(K, V)> for FastMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let it = iter.into_iter();
        let mut m = Self::with_capacity(it.size_hint().0);
        for (k, v) in it {
            m.insert(k, v);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    #[test]
    fn insert_get_update_remove() {
        let mut m: FastMap<u64, u64> = FastMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(1, 10), None);
        assert_eq!(m.insert(2, 20), None);
        assert_eq!(m.insert(1, 11), Some(10));
        assert_eq!(m.get(&1), Some(&11));
        assert_eq!(m.len(), 2);
        *m.get_mut(&2).unwrap() += 1;
        assert_eq!(m.get(&2), Some(&21));
        assert_eq!(m.remove(&1), Some(11));
        assert_eq!(m.remove(&1), None);
        assert_eq!(m.len(), 1);
        assert!(!m.contains_key(&1));
        assert!(m.contains_key(&2));
    }

    #[test]
    fn or_insert_with_and_or_default() {
        let mut m: FastMap<u64, u64> = FastMap::new();
        *m.or_default(5) += 3;
        *m.or_default(5) += 4;
        assert_eq!(m.get(&5), Some(&7));
        let v = m.or_insert_with(6, || 100);
        assert_eq!(*v, 100);
        assert_eq!(m.or_insert_with(6, || 999), &100);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut m: FastMap<u64, u64> = FastMap::with_capacity(4);
        for i in 0..10_000 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 10_000);
        for i in 0..10_000 {
            assert_eq!(m.get(&i), Some(&(i * 2)), "key {i}");
        }
    }

    #[test]
    fn probe_chains_wrap_around_the_table_end() {
        // Force collisions into the last buckets by brute-force search:
        // find keys whose home bucket is the final slot of a tiny table.
        let mut m: FastMap<u64, u64> = FastMap::with_capacity(MIN_CAPACITY);
        let table = m.slots.len();
        let tail_keys: Vec<u64> = (0..100_000u64)
            .filter(|k| mix(*k) as usize & (table - 1) >= table - 2)
            .take(4)
            .collect();
        assert_eq!(tail_keys.len(), 4, "found colliding tail keys");
        for (i, k) in tail_keys.iter().enumerate() {
            m.insert(*k, i as u64);
        }
        for (i, k) in tail_keys.iter().enumerate() {
            assert_eq!(m.get(k), Some(&(i as u64)), "wrapped key {k}");
        }
        // Remove the first (the one physically at the table tail) and
        // verify backward shift repaired the wrapped chain.
        m.remove(&tail_keys[0]);
        for (i, k) in tail_keys.iter().enumerate().skip(1) {
            assert_eq!(m.get(k), Some(&(i as u64)), "post-removal key {k}");
        }
    }

    #[test]
    fn differential_against_std_hashmap() {
        // A few thousand randomized (seeded) operations must behave
        // exactly like std::collections::HashMap.
        let mut rng = Rng64::seed_from_u64(0xFA57_AB1E);
        let mut fast: FastMap<u64, u64> = FastMap::new();
        let mut model: HashMap<u64, u64> = HashMap::new();
        for step in 0..5_000u64 {
            let key = rng.gen_range(0u64..600); // small space → collisions
            match rng.gen_range(0u32..10) {
                0..=4 => {
                    assert_eq!(
                        fast.insert(key, step),
                        model.insert(key, step),
                        "insert {key}"
                    );
                }
                5..=6 => {
                    assert_eq!(fast.remove(&key), model.remove(&key), "remove {key}");
                }
                7 => {
                    *fast.or_default(key) += 1;
                    *model.entry(key).or_default() += 1;
                }
                _ => {
                    assert_eq!(fast.get(&key), model.get(&key), "get {key}");
                }
            }
            assert_eq!(fast.len(), model.len(), "len after step {step}");
        }
        let mut got: Vec<(u64, u64)> = fast.iter().map(|(k, v)| (*k, *v)).collect();
        got.sort_unstable();
        let mut want: Vec<(u64, u64)> = model.into_iter().collect();
        want.sort_unstable();
        assert_eq!(got, want, "final contents match");
    }

    #[test]
    fn iteration_order_is_reproducible() {
        let build = || {
            let mut m: FastMap<u64, u64> = FastMap::new();
            for i in 0..500 {
                m.insert(i * 31 % 257, i);
            }
            m.iter().map(|(k, v)| (*k, *v)).collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn fast_hashmap_is_a_dropin() {
        let mut m: FastHashMap<(u16, u64), u64> = FastHashMap::default();
        m.insert((1, 2), 3);
        *m.entry((1, 2)).or_insert(0) += 1;
        assert_eq!(m[&(1, 2)], 4);
        let mut s: FastHashSet<u64> = FastHashSet::default();
        assert!(s.insert(9));
        assert!(!s.insert(9));
    }

    #[test]
    fn hasher_mixes_low_bits() {
        // Sequential keys must not collide into sequential buckets of a
        // small table (the failure mode of the unfinalized Fx hash).
        let buckets: HashSet<u64> = (0..64u64).map(|k| mix(k) & 1023).collect();
        assert!(buckets.len() > 48, "low bits well-mixed: {}", buckets.len());
    }
}
