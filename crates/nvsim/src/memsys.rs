//! The [`MemorySystem`] trait and the deterministic run loop.
//!
//! Every snapshotting scheme — NVOverlay, the five baselines, and the
//! no-snapshot ideal system — implements [`MemorySystem`]. The [`Runner`]
//! replays a [`Trace`] against a system: it always advances the core with
//! the smallest local clock, so any scheme sees the *same* interleaving for
//! the same trace, which is what makes cross-scheme comparisons (Fig 11/12)
//! meaningful.

use crate::addr::{Addr, CoreId, LineAddr, ThreadId, Token};
use crate::clock::{CoreClock, Cycle};
use crate::fastmap::FastMap;
use crate::stats::SystemStats;
use crate::trace::{PackedEvent, PackedTrace, Trace};

/// A memory operation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MemOp {
    /// A load (read).
    Load,
    /// A store (write).
    Store,
}

/// The result of one access against a [`MemorySystem`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Total latency observed by the core, including any persistence stall.
    pub latency: Cycle,
    /// The portion of `latency` that was persistence stall (barriers,
    /// NVM backpressure). Reported separately for overhead decomposition.
    pub persist_stall: Cycle,
    /// The value read (loads) or written (stores). The runner checks load
    /// values against its golden model — a sequentially-consistent
    /// interleaving must return exactly the last token stored to the line.
    pub value: Token,
}

/// A full memory system under test: hierarchy + persistence scheme.
pub trait MemorySystem {
    /// Short scheme name as used in the paper's figures
    /// (e.g. `"NVOverlay"`, `"PiCL"`, `"SW Logging"`).
    fn name(&self) -> &'static str;

    /// Performs one memory access issued by `core` at time `now`.
    fn access(
        &mut self,
        core: CoreId,
        op: MemOp,
        addr: Addr,
        token: Token,
        now: Cycle,
    ) -> AccessOutcome;

    /// Handles an explicit epoch boundary requested by `core`'s thread.
    /// Returns any stall the boundary imposes on the requesting core.
    fn epoch_mark(&mut self, core: CoreId, now: Cycle) -> Cycle;

    /// Finishes the run: closes the final epoch, drains dirty state, and
    /// returns the time at which everything is persistent.
    fn finish(&mut self, now: Cycle) -> Cycle;

    /// The scheme's statistics block.
    fn stats(&self) -> &SystemStats;

    /// The scheme's hierarchical metrics tree. The default covers the
    /// common [`SystemStats`] block; schemes with deeper structure
    /// (per-OMC, per-VD state) override this to publish their subtrees.
    fn metrics(&self) -> crate::metrics::Registry {
        let mut reg = crate::metrics::Registry::new();
        self.stats().metrics_into(&mut reg, "sys");
        reg
    }

    /// Whether the scheme supports island-sharded replay
    /// ([`Runner::run_packed_sharded`]). Schemes whose persistence
    /// mechanism is inherently machine-global (e.g. whole-machine
    /// shadow checkpointing) return `false` and are replayed serially.
    fn shardable(&self) -> bool {
        true
    }

    /// Deposits `token` as the home-memory content of `line` — the
    /// epoch-barrier import of a remote island's write. Applied only if
    /// no cache in this system holds the line (a cached local copy is
    /// newer by the sharded-replay ordering); returns whether the
    /// deposit was applied so the caller can mirror it into its golden
    /// model. The default (no home memory to write) applies nothing.
    fn import_line(&mut self, _line: LineAddr, _token: Token) -> bool {
        false
    }

    /// Applies one window's canonical exchange run in a single batch:
    /// every entry not written by `island` itself is offered to
    /// [`MemorySystem::import_line`] semantics, applied deposits are
    /// mirrored into `golden`, and the applied count is returned. The
    /// default loops `import_line`; schemes with a home memory override
    /// this to hoist the per-line dispatch (cache peeks + DRAM write)
    /// into one pass over the sorted run.
    fn import_lines(
        &mut self,
        entries: &[crate::shard::ExchangeEntry],
        island: u16,
        golden: &mut FastMap<LineAddr, Token>,
    ) -> u64 {
        let mut applied = 0;
        for e in entries {
            if e.src != island && self.import_line(e.line, e.token) {
                golden.insert(e.line, e.token);
                applied += 1;
            }
        }
        applied
    }

    /// The scheme's most advanced epoch, published at shard barriers so
    /// islands can Lamport-sync. Schemes without epoch state report 0.
    fn epoch_floor(&self) -> u64 {
        0
    }

    /// Raises every epoch domain to at least `floor` (the barrier's
    /// Lamport sync: a domain observing a newer epoch advances to it).
    /// Returns the stall this imposes on the scheme's cores. The
    /// default (no epoch state) does nothing.
    fn raise_epoch_floor(&mut self, _floor: u64, _now: Cycle) -> Cycle {
        0
    }
}

/// Summary of one [`Runner::run`].
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Wall-clock cycles: the largest core clock when the last access
    /// retired (persistence `finish` work is reported separately, matching
    /// the paper's methodology of overlapping background persistence).
    pub cycles: Cycle,
    /// Time at which all snapshot state was durable.
    pub persist_done: Cycle,
    /// Per-core final clocks.
    pub per_core_cycles: Vec<Cycle>,
    /// Sum of persistence stalls over all cores.
    pub stall_cycles: Cycle,
    /// Accesses executed.
    pub accesses: u64,
    /// Loads whose returned value did not match the golden model (must be
    /// zero for a coherent memory system; also debug-asserted).
    pub load_value_mismatches: u64,
    /// The final logical memory image (line → last token stored, in the
    /// executed interleaving order). Used as the golden image for recovery
    /// verification.
    pub golden_image: FastMap<LineAddr, Token>,
}

/// Deterministic trace runner.
///
/// `gap_cycles` models the non-memory instructions between consecutive
/// memory accesses of one core (the paper's cores are 4-way superscalar;
/// a recorded access stands for several instructions of surrounding
/// work). The default of 20 cycles puts the ideal system's NVM write
/// density in the regime the paper's Fig 17 bandwidth curves show
/// (averages of a few GB/s against a ~7.7 GB/s device).
#[derive(Clone, Debug)]
pub struct Runner {
    gap_cycles: Cycle,
    coalesce: bool,
}

impl Default for Runner {
    fn default() -> Self {
        Self {
            gap_cycles: 20,
            coalesce: true,
        }
    }
}

impl Runner {
    /// A runner with the default inter-access gap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the inter-access gap in cycles.
    pub fn with_gap(gap_cycles: Cycle) -> Self {
        Self {
            gap_cycles,
            ..Self::default()
        }
    }

    /// Sets whether sharded replay physically coalesces silent windows
    /// (default `true`). Barrier *effects* follow the plan's rendezvous
    /// cadence either way — this knob only decides whether workers still
    /// park at the two `Barrier` waits of silent windows, so turning it
    /// off reproduces the pre-coalescing pacing for differential tests
    /// without changing a single byte of the results.
    pub fn coalesce(mut self, on: bool) -> Self {
        self.coalesce = on;
        self
    }

    /// Replays `trace` against `system`. Thread *i* runs on core *i*.
    ///
    /// Convenience wrapper: packs the trace and delegates to
    /// [`Runner::run_packed`] — identical interleaving and results.
    ///
    /// # Panics
    /// Panics if the trace has more threads than the system has cores is
    /// not checked here; systems index per-core state by `CoreId` and will
    /// panic themselves if overrun.
    pub fn run<S: MemorySystem + ?Sized>(&self, system: &mut S, trace: &Trace) -> RunReport {
        self.run_packed(system, &trace.to_packed())
    }

    /// Replays a packed trace against `system`. This is the real replay
    /// loop: the per-thread streams are contiguous 16-byte
    /// [`crate::trace::PackedEvent`]s, so the cursor walk streams through
    /// one flat vector instead of chasing nested `Vec`s.
    ///
    /// # Panics
    /// See [`Runner::run`].
    /// Generic over the concrete system type: calling this with a concrete
    /// `S` monomorphizes the loop and inlines the scheme's access path
    /// into it; `&mut dyn MemorySystem` still works for callers that hold
    /// schemes behind a trait object.
    pub fn run_packed<S: MemorySystem + ?Sized>(
        &self,
        system: &mut S,
        trace: &PackedTrace,
    ) -> RunReport {
        let n = trace.thread_count();
        let mut clocks: Vec<CoreClock> = (0..n).map(|_| CoreClock::new()).collect();
        let mut cursors = vec![0usize; n];
        // Size the load-value oracle for the trace's store volume up
        // front; the map holds at most one entry per written line.
        let mut golden: FastMap<LineAddr, Token> =
            FastMap::with_capacity((trace.store_count() as usize).min(1 << 20));
        let mut accesses = 0u64;
        let mut load_value_mismatches = 0u64;
        let streams: Vec<&[PackedEvent]> =
            (0..n).map(|i| trace.thread(ThreadId(i as u16))).collect();

        // Next wake time per core, `Cycle::MAX` once its stream is
        // drained. Core counts are small (≤64), so a linear scan-min
        // beats a binary heap's branchy sift per event; scanning in
        // ascending core order with a strict `<` reproduces the
        // min-heap's (clock, core-id) tie-break exactly.
        let mut wake: Vec<Cycle> = (0..n)
            .map(|i| if streams[i].is_empty() { Cycle::MAX } else { 0 })
            .collect();

        loop {
            let mut i = usize::MAX;
            let mut t = Cycle::MAX;
            for (c, &w) in wake.iter().enumerate() {
                if w < t {
                    t = w;
                    i = c;
                }
            }
            if i == usize::MAX {
                break;
            }
            let core = CoreId(i as u16);
            let events = streams[i];
            debug_assert_eq!(clocks[i].now(), t);
            let e = events[cursors[i]];
            if !e.is_mark() {
                let (op, addr, token) = (e.op(), e.addr(), e.token());
                let out = system.access(core, op, addr, token, t);
                let lat = out.latency.max(1);
                clocks[i].advance(lat - out.persist_stall.min(lat));
                clocks[i].stall(out.persist_stall.min(lat));
                clocks[i].advance(self.gap_cycles);
                match op {
                    MemOp::Store => {
                        golden.insert(addr.line(), token);
                    }
                    MemOp::Load => {
                        let expect = golden.get(&addr.line()).copied().unwrap_or(0);
                        if out.value != expect {
                            load_value_mismatches += 1;
                            debug_assert_eq!(out.value, expect, "stale load of {addr} on {core}");
                        }
                    }
                }
                accesses += 1;
            } else {
                let stall = system.epoch_mark(core, t);
                clocks[i].stall(stall);
                clocks[i].advance(1);
            }
            cursors[i] += 1;
            wake[i] = if cursors[i] < events.len() {
                clocks[i].now()
            } else {
                Cycle::MAX
            };
        }

        let cycles = clocks.iter().map(|c| c.now()).max().unwrap_or(0);
        let persist_done = system.finish(cycles);
        RunReport {
            cycles,
            persist_done,
            per_core_cycles: clocks.iter().map(|c| c.now()).collect(),
            stall_cycles: clocks.iter().map(|c| c.stall_cycles()).sum(),
            accesses,
            load_value_mismatches,
            golden_image: golden,
        }
    }

    /// Replays a packed trace sharded across islands (see
    /// [`crate::shard::ShardPlan`]): each island drives its own
    /// sub-machine (built by `factory` from the island configuration)
    /// through the plan's windows, rendezvousing at epoch barriers to
    /// align clocks, Lamport-sync epochs, and import the canonical
    /// cross-island exchange.
    ///
    /// `workers` is purely an execution knob: islands are fixed by the
    /// plan, barriers are max-reductions over all islands, and imports
    /// are trace-derived, so the report is **byte-identical for every
    /// worker count** (the differential tests pin 1 vs 2 vs 4 vs 8).
    /// The physical thread count is capped at the host's available
    /// parallelism — oversubscription cannot help, and the invariance
    /// makes the cap unobservable.
    /// Per-island stats, metrics and golden images are merged on the
    /// calling thread in ascending island order; worker-thread trace
    /// recorders are absorbed into the caller's recorder (per-kind
    /// event counts are worker-invariant, event order is not).
    ///
    /// # Panics
    /// Panics if the plan and trace disagree (wrong thread count) or if
    /// the factory builds a system with fewer cores than an island has
    /// threads.
    pub fn run_packed_sharded<S, F>(
        &self,
        factory: F,
        trace: &PackedTrace,
        plan: &crate::shard::ShardPlan,
        workers: usize,
    ) -> ShardedRunReport
    where
        S: MemorySystem,
        F: Fn(usize) -> S + Sync,
    {
        self.run_packed_sharded_prof(factory, trace, plan, workers, false)
            .0
    }

    /// [`Runner::run_packed_sharded`] with optional stall attribution.
    ///
    /// With `profiled` set, every island accumulates a
    /// [`crate::prof::WindowCell`] per barrier window (events replayed,
    /// simulated arrival/aligned clocks, import tallies, and the
    /// wall-time of its compute / exchange-apply / epoch-sync phases),
    /// every worker accumulates its rendezvous wait, and the caller
    /// times the ascending-island merge; the assembled
    /// [`crate::prof::ShardProfile`] rides back next to the report. The
    /// accumulators are thread-local to the owning worker and read the
    /// monotonic clock only at window granularity, so the profiled path
    /// stays within a few per-window `Instant` reads of the unprofiled
    /// one — and the simulation itself is untouched either way: the
    /// report is byte-identical with and without profiling, and the
    /// profile's structural counters are byte-identical across worker
    /// counts (`nvbench/tests/profile_determinism.rs`).
    ///
    /// Independently of profiling, setting `NVO_PROGRESS` (to a
    /// heartbeat interval in seconds; any non-numeric value means 5)
    /// spawns a watchdog that reports per-shard windows-completed with
    /// an ETA on stderr and flags a barrier that has stopped making
    /// progress instead of letting the run hang silently.
    ///
    /// # Panics
    /// See [`Runner::run_packed_sharded`].
    pub fn run_packed_sharded_prof<S, F>(
        &self,
        factory: F,
        trace: &PackedTrace,
        plan: &crate::shard::ShardPlan,
        workers: usize,
        profiled: bool,
    ) -> (ShardedRunReport, Option<crate::prof::ShardProfile>)
    where
        S: MemorySystem,
        F: Fn(usize) -> S + Sync,
    {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::{Barrier, Mutex};
        use std::time::Instant;

        let run_t0 = profiled.then(Instant::now);
        let islands = plan.island_count();
        let windows = plan.window_count();
        // Physical threads are additionally capped at the host's
        // parallelism: on an oversubscribed host, extra workers only add
        // context switches and barrier parks. The report is
        // worker-count-invariant by construction — the count only picks
        // which thread replays which island — so the cap is unobservable
        // in the results; the differential tests pin exactly that.
        let host = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let nworkers = workers.clamp(1, islands.max(1)).min(host.max(1));
        let gap = self.gap_cycles;
        let coalesce = self.coalesce;
        debug_assert_eq!(
            (0..islands)
                .map(|i| plan.island(i).threads.len())
                .sum::<usize>(),
            trace.thread_count(),
            "plan was derived from a different trace"
        );

        let clock_pub: Vec<AtomicU64> = (0..islands).map(|_| AtomicU64::new(0)).collect();
        let epoch_pub: Vec<AtomicU64> = (0..islands).map(|_| AtomicU64::new(0)).collect();
        let barrier = Barrier::new(nworkers);
        let slots: Vec<Mutex<Option<IslandOutcome>>> =
            (0..islands).map(|_| Mutex::new(None)).collect();
        let trace_cfg = crate::nvtrace::active_config();
        let worker_logs: Vec<Mutex<Option<crate::nvtrace::TraceLog>>> =
            (0..nworkers).map(|_| Mutex::new(None)).collect();
        let worker_profs: Vec<Mutex<Option<crate::prof::WorkerProfile>>> =
            (0..nworkers).map(|_| Mutex::new(None)).collect();
        let watchdog = ProgressWatchdog::from_env(islands, windows as u64);

        std::thread::scope(|scope| {
            for wid in 0..nworkers {
                let factory = &factory;
                let clock_pub = &clock_pub;
                let epoch_pub = &epoch_pub;
                let barrier = &barrier;
                let slots = &slots;
                let worker_logs = &worker_logs;
                let worker_profs = &worker_profs;
                let watchdog = &watchdog;
                scope.spawn(move || {
                    let worker_t0 = profiled.then(Instant::now);
                    // Contiguous lap clock: each boundary charges the
                    // segment since the previous boundary, so the phase
                    // counters tile the worker's lifetime and loop
                    // overhead cannot escape attribution.
                    let mut last = worker_t0;
                    let mut wp = crate::prof::WorkerProfile {
                        worker: wid,
                        ..Default::default()
                    };
                    if let Some(tc) = trace_cfg {
                        crate::nvtrace::install(tc);
                    }
                    // This worker's islands, ascending.
                    let mine: Vec<usize> = (wid..islands).step_by(nworkers).collect();
                    let mut runs: Vec<IslandRun<'_, S>> = mine
                        .iter()
                        .map(|&i| {
                            let t0 = profiled.then(Instant::now);
                            let mut run = IslandRun::new(factory(i), plan, i, profiled);
                            if let (Some(t0), Some(p)) = (t0, run.prof.as_mut()) {
                                p.setup_ns = t0.elapsed().as_nanos() as u64;
                            }
                            run
                        })
                        .collect();
                    wp.compute_ns += lap(&mut last);
                    for w in 0..windows {
                        for run in &mut runs {
                            crate::nvtrace::set_shard(run.island as u16 + 1);
                            run.run_window(plan, w, gap);
                        }
                        if plan.is_rendezvous(w) {
                            for run in &mut runs {
                                clock_pub[run.island].store(run.max_clock(), Ordering::Relaxed);
                                epoch_pub[run.island]
                                    .store(run.sys.epoch_floor(), Ordering::Relaxed);
                            }
                            wp.compute_ns += lap(&mut last);
                            // Rendezvous 1: every island's clock and epoch
                            // floor is published. The max-reductions below
                            // are order-independent, so every worker
                            // computes identical barrier targets.
                            barrier.wait();
                            let t_max = clock_pub.iter().map(|c| c.load(Ordering::Relaxed)).max();
                            let e_max = epoch_pub.iter().map(|c| c.load(Ordering::Relaxed)).max();
                            let (t_max, e_max) = (t_max.unwrap_or(0), e_max.unwrap_or(0));
                            // Rendezvous 2: nobody republishes for window
                            // w+1 until everyone has read window w's maxima.
                            barrier.wait();
                            wp.barrier_ns += lap(&mut last);
                            for run in &mut runs {
                                crate::nvtrace::set_shard(run.island as u16 + 1);
                                run.barrier_sync(plan, w, t_max, e_max);
                            }
                            wp.exchange_ns += lap(&mut last);
                        } else {
                            // Silent window: the plan proves this barrier
                            // would move nothing — empty exchange run,
                            // no epoch marks, and lockstep whole-epoch
                            // floor advances — so there are no effects to
                            // apply in *either* mode. Coalescing lets the
                            // worker free-run into the next window;
                            // `--no-coalesce` still parks at the physical
                            // waits (same published values as a rendezvous
                            // would see, same worker pacing as the old
                            // every-window cadence) purely so the
                            // differential suite can exercise both paths.
                            for run in &mut runs {
                                run.mark_silent(w);
                            }
                            wp.compute_ns += lap(&mut last);
                            if !coalesce {
                                barrier.wait();
                                barrier.wait();
                                wp.barrier_ns += lap(&mut last);
                            }
                        }
                        if let Some(wd) = watchdog {
                            for run in &runs {
                                wd.board.windows_done[run.island]
                                    .store(w as u64 + 1, Ordering::Relaxed);
                            }
                        }
                    }
                    let mut pkg_ns = 0u64;
                    for run in runs {
                        let island = run.island;
                        let out = run.finish();
                        if let Some(p) = out.prof.as_ref() {
                            pkg_ns += p.package_ns;
                        }
                        *slots[island].lock().expect("island slot") = Some(out);
                    }
                    // The finish laps mix the persistence drain
                    // (compute) with outcome packaging; the islands'
                    // own package_ns splits the segment.
                    let seg = lap(&mut last);
                    let pkg = pkg_ns.min(seg);
                    wp.package_ns += pkg;
                    wp.compute_ns += seg - pkg;
                    crate::nvtrace::set_shard(0);
                    if trace_cfg.is_some() {
                        *worker_logs[wid].lock().expect("log slot") = crate::nvtrace::take();
                    }
                    if let Some(t0) = worker_t0 {
                        wp.elapsed_ns = t0.elapsed().as_nanos() as u64;
                        *worker_profs[wid].lock().expect("prof slot") = Some(wp);
                    }
                });
            }
        });
        if let Some(wd) = watchdog {
            wd.finish();
        }

        // Absorb worker trace logs into the caller's recorder.
        for slot in worker_logs {
            if let Some(log) = slot.into_inner().expect("log slot") {
                crate::nvtrace::absorb(&log);
            }
        }

        // Merge island outcomes in ascending island order — fixed
        // regardless of which worker ran which island.
        let merge_t0 = profiled.then(Instant::now);
        let mut island_profiles: Vec<crate::prof::IslandProfile> = Vec::new();
        let mut report = ShardedRunReport {
            cycles: 0,
            persist_done: 0,
            stall_cycles: 0,
            accesses: 0,
            load_value_mismatches: 0,
            imported_lines: 0,
            islands,
            workers: nworkers,
            windows: windows as u64,
            rendezvous_windows: plan.rendezvous_count() as u64,
            stats: SystemStats::default(),
            metrics: crate::metrics::Registry::new(),
            golden_image: FastMap::default(),
        };
        let mut first = true;
        for slot in slots {
            let o = slot
                .into_inner()
                .expect("island slot")
                .expect("every island ran");
            report.cycles = report.cycles.max(o.cycles);
            report.persist_done = report.persist_done.max(o.persist_done);
            report.stall_cycles += o.stall_cycles;
            report.accesses += o.accesses;
            report.load_value_mismatches += o.mismatches;
            report.imported_lines += o.imported;
            if first {
                report.stats = o.stats;
                report.metrics = crate::metrics::Registry::from_frozen(o.metrics);
                first = false;
            } else {
                report.stats.merge(&o.stats);
                report
                    .metrics
                    .merge(&crate::metrics::Registry::from_frozen(o.metrics));
            }
            for (line, token) in &o.golden {
                report.golden_image.insert(*line, *token);
            }
            if let Some(p) = o.prof {
                island_profiles.push(p);
            }
        }
        let profile = merge_t0.map(|t0| {
            let merge_ns = t0.elapsed().as_nanos() as u64;
            crate::prof::ShardProfile {
                islands,
                windows,
                workers: nworkers,
                window_stores: plan.window_stores(),
                rendezvous_windows: plan.rendezvous_count() as u64,
                exchange_entries: (0..windows)
                    .map(|w| plan.exchange(w).len() as u64)
                    .collect(),
                island_profiles,
                worker_profiles: worker_profs
                    .into_iter()
                    .map(|s| s.into_inner().expect("prof slot").expect("worker profiled"))
                    .collect(),
                merge_ns,
                plan_build_ns: 0,
                total_ns: run_t0.expect("profiled").elapsed().as_nanos() as u64,
            }
        });
        (report, profile)
    }
}

/// Advance a contiguous lap clock: charge the segment since the last
/// boundary and move the boundary to now. `None` (unprofiled) charges
/// nothing and reads no clock.
fn lap(last: &mut Option<std::time::Instant>) -> u64 {
    match last {
        Some(t0) => {
            let now = std::time::Instant::now();
            let d = now.duration_since(*t0).as_nanos() as u64;
            *last = Some(now);
            d
        }
        None => 0,
    }
}

/// Shared state between the replay workers and the `NVO_PROGRESS`
/// monitor thread.
struct ProgressBoard {
    /// Per-island windows completed (Relaxed — diagnostic only).
    windows_done: Vec<std::sync::atomic::AtomicU64>,
    stop: std::sync::Mutex<bool>,
    cv: std::sync::Condvar,
}

/// The `NVO_PROGRESS` heartbeat: a monitor thread that reads per-island
/// windows-completed counters on an interval, reports progress with an
/// ETA, and flags a rendezvous that has stopped advancing (a stuck
/// barrier surfaces as a warning naming the laggard islands instead of
/// a silent hang). The monitor is a plain (non-scoped) thread so it can
/// be woken and joined after the replay scope ends.
struct ProgressWatchdog {
    board: std::sync::Arc<ProgressBoard>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ProgressWatchdog {
    /// Arms the watchdog if `NVO_PROGRESS` is set (value = heartbeat
    /// seconds; non-numeric or non-positive values mean 5).
    fn from_env(islands: usize, total_windows: u64) -> Option<Self> {
        use std::sync::atomic::{AtomicU64, Ordering};
        let interval = std::env::var("NVO_PROGRESS").ok().map(|v| {
            v.trim()
                .parse::<f64>()
                .ok()
                .filter(|s| *s > 0.0)
                .unwrap_or(5.0)
        })?;
        let board = std::sync::Arc::new(ProgressBoard {
            windows_done: (0..islands).map(|_| AtomicU64::new(0)).collect(),
            stop: std::sync::Mutex::new(false),
            cv: std::sync::Condvar::new(),
        });
        let monitor = std::sync::Arc::clone(&board);
        let handle = std::thread::spawn(move || {
            let t0 = std::time::Instant::now();
            let tick = std::time::Duration::from_secs_f64(interval);
            let mut last_min = 0u64;
            let mut stopped = monitor.stop.lock().expect("watchdog lock");
            loop {
                let (guard, _) = monitor
                    .cv
                    .wait_timeout(stopped, tick)
                    .expect("watchdog wait");
                stopped = guard;
                if *stopped {
                    break;
                }
                let done: Vec<u64> = monitor
                    .windows_done
                    .iter()
                    .map(|c| c.load(Ordering::Relaxed))
                    .collect();
                let min = done.iter().copied().min().unwrap_or(0);
                let max = done.iter().copied().max().unwrap_or(0);
                let elapsed = t0.elapsed().as_secs_f64();
                if min == last_min && min < total_windows {
                    let laggards: Vec<usize> = done
                        .iter()
                        .enumerate()
                        .filter(|(_, &d)| d == min)
                        .map(|(i, _)| i)
                        .collect();
                    eprintln!(
                        "NVO_PROGRESS: no window progress in {interval:.1}s — possible stuck \
                         barrier at window {min}/{total_windows}; waiting on islands {laggards:?}"
                    );
                } else {
                    let eta = if min > 0 {
                        format!(
                            "~{:.1}s",
                            (total_windows.saturating_sub(min)) as f64 * elapsed / min as f64
                        )
                    } else {
                        "?".to_string()
                    };
                    eprintln!(
                        "NVO_PROGRESS: windows {min}/{total_windows} complete on every island \
                         (fastest at {max}), elapsed {elapsed:.1}s, eta {eta}"
                    );
                }
                last_min = min;
            }
        });
        Some(Self {
            board,
            handle: Some(handle),
        })
    }

    /// Stops and joins the monitor thread (all islands finished).
    fn finish(mut self) {
        *self.board.stop.lock().expect("watchdog lock") = true;
        self.board.cv.notify_all();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Summary of one [`Runner::run_packed_sharded`].
#[derive(Clone, Debug)]
pub struct ShardedRunReport {
    /// Wall-clock cycles: the maximum island clock at the final barrier.
    pub cycles: Cycle,
    /// Latest island persist-done time.
    pub persist_done: Cycle,
    /// Persistence stalls summed over all islands' cores.
    pub stall_cycles: Cycle,
    /// Accesses executed across all islands.
    pub accesses: u64,
    /// Island-local golden-model mismatches (must be zero).
    pub load_value_mismatches: u64,
    /// Cross-island exchange entries applied (per-run determinism aid).
    pub imported_lines: u64,
    /// Number of islands in the plan.
    pub islands: usize,
    /// Worker threads actually used.
    pub workers: usize,
    /// Barrier windows in the plan.
    pub windows: u64,
    /// Windows at which islands actually rendezvoused (the plan's
    /// coalesced cadence; ≤ `windows`).
    pub rendezvous_windows: u64,
    /// All islands' stats merged in ascending island order.
    pub stats: SystemStats,
    /// All islands' metrics merged in ascending island order.
    pub metrics: crate::metrics::Registry,
    /// Island golden images merged in ascending island order
    /// (diagnostic; not the serial interleaving's image).
    pub golden_image: FastMap<LineAddr, Token>,
}

/// Plain-data result of one island, returned from its worker.
struct IslandOutcome {
    cycles: Cycle,
    persist_done: Cycle,
    stall_cycles: Cycle,
    accesses: u64,
    mismatches: u64,
    imported: u64,
    stats: SystemStats,
    metrics: crate::metrics::FrozenRegistry,
    golden: FastMap<LineAddr, Token>,
    prof: Option<crate::prof::IslandProfile>,
}

/// One island mid-replay: its sub-machine plus local runner state.
struct IslandRun<'t, S> {
    sys: S,
    island: usize,
    clocks: Vec<CoreClock>,
    cursors: Vec<usize>,
    streams: Vec<&'t [PackedEvent]>,
    golden: FastMap<LineAddr, Token>,
    accesses: u64,
    mismatches: u64,
    imported: u64,
    /// Stall-attribution accumulator, owned by this island's worker
    /// (thread-local by construction — no synchronization needed).
    prof: Option<crate::prof::IslandProfile>,
}

impl<'t, S: MemorySystem> IslandRun<'t, S> {
    fn new(sys: S, plan: &'t crate::shard::ShardPlan, island: usize, profiled: bool) -> Self {
        // Stream the plan's pre-split island segment (local thread `l`
        // is the island's core `l`) — contiguous in memory, instead of
        // strided slices of the global trace.
        let seg = plan.island_trace(island);
        let streams: Vec<&[PackedEvent]> = (0..seg.thread_count())
            .map(|l| seg.thread(crate::addr::ThreadId(l as u16)))
            .collect();
        let n = streams.len();
        Self {
            sys,
            island,
            clocks: (0..n).map(|_| CoreClock::new()).collect(),
            cursors: vec![0; n],
            streams,
            golden: FastMap::default(),
            accesses: 0,
            mismatches: 0,
            imported: 0,
            prof: profiled.then(|| crate::prof::IslandProfile {
                island,
                cells: Vec::with_capacity(plan.window_count()),
                ..Default::default()
            }),
        }
    }

    fn max_clock(&self) -> Cycle {
        self.clocks.iter().map(|c| c.now()).max().unwrap_or(0)
    }

    /// Replays this island's slice of window `w`: the scan-min loop of
    /// [`Runner::run_packed`] over the island's local cores, bounded by
    /// the plan's window cuts.
    fn run_window(&mut self, plan: &crate::shard::ShardPlan, w: usize, gap: Cycle) {
        // Events replayed are counted by cursor-sum delta around the
        // whole window — zero per-event cost, profiled or not.
        let prof_t0 = self.prof.is_some().then(|| {
            (
                std::time::Instant::now(),
                self.cursors.iter().sum::<usize>(),
            )
        });
        let cuts = &plan.island(self.island).cuts;
        let n = self.streams.len();
        let mut wake: Vec<Cycle> = (0..n)
            .map(|l| {
                if self.cursors[l] < cuts[l][w] {
                    self.clocks[l].now()
                } else {
                    Cycle::MAX
                }
            })
            .collect();
        loop {
            let mut i = usize::MAX;
            let mut t = Cycle::MAX;
            for (c, &wk) in wake.iter().enumerate() {
                if wk < t {
                    t = wk;
                    i = c;
                }
            }
            if i == usize::MAX {
                break;
            }
            let core = CoreId(i as u16);
            let e = self.streams[i][self.cursors[i]];
            if !e.is_mark() {
                let (op, addr, token) = (e.op(), e.addr(), e.token());
                let out = self.sys.access(core, op, addr, token, t);
                let lat = out.latency.max(1);
                self.clocks[i].advance(lat - out.persist_stall.min(lat));
                self.clocks[i].stall(out.persist_stall.min(lat));
                self.clocks[i].advance(gap);
                match op {
                    MemOp::Store => {
                        self.golden.insert(addr.line(), token);
                    }
                    MemOp::Load => {
                        let expect = self.golden.get(&addr.line()).copied().unwrap_or(0);
                        if out.value != expect {
                            self.mismatches += 1;
                            debug_assert_eq!(
                                out.value, expect,
                                "stale load of {addr} on island {} {core}",
                                self.island
                            );
                        }
                    }
                }
                self.accesses += 1;
            } else {
                let stall = self.sys.epoch_mark(core, t);
                self.clocks[i].stall(stall);
                self.clocks[i].advance(1);
            }
            self.cursors[i] += 1;
            wake[i] = if self.cursors[i] < cuts[i][w] {
                self.clocks[i].now()
            } else {
                Cycle::MAX
            };
        }
        if let Some((t0, events_before)) = prof_t0 {
            let cell = crate::prof::WindowCell {
                events: (self.cursors.iter().sum::<usize>() - events_before) as u64,
                arrive_clock: self.max_clock(),
                compute_ns: t0.elapsed().as_nanos() as u64,
                ..Default::default()
            };
            self.prof.as_mut().expect("profiled").cells.push(cell);
        }
    }

    /// Applies the barrier's effects: emit the rendezvous event, align
    /// island clocks to the global maximum (idle wait, not stall),
    /// Lamport-sync the epoch floor, and import the window's canonical
    /// cross-island exchange.
    fn barrier_sync(&mut self, plan: &crate::shard::ShardPlan, w: usize, t_max: Cycle, e_max: u64) {
        crate::nvtrace::TraceScope::new(crate::nvtrace::Track::System).emit(
            crate::nvtrace::EventKind::ShardBarrier,
            self.max_clock(),
            w as u64,
            t_max,
        );
        for c in &mut self.clocks {
            let now = c.now();
            if now < t_max {
                c.advance(t_max - now);
            }
        }
        let sync_t0 = self.prof.is_some().then(std::time::Instant::now);
        let stall = self.sys.raise_epoch_floor(e_max, t_max);
        if stall > 0 {
            for c in &mut self.clocks {
                c.stall(stall);
            }
        }
        let exch_t0 = sync_t0.map(|t0| (t0.elapsed().as_nanos() as u64, std::time::Instant::now()));
        let applied = self
            .sys
            .import_lines(plan.exchange(w), self.island as u16, &mut self.golden);
        self.imported += applied;
        if let Some((sync_ns, exch_t0)) = exch_t0 {
            let cell = self.prof.as_mut().expect("profiled").cells[w];
            // Every window's cell is pushed by run_window before its
            // barrier_sync, so index w is always present.
            let cell = crate::prof::WindowCell {
                aligned_clock: t_max,
                epoch_floor: e_max,
                sync_stall_cycles: stall,
                imports_applied: applied,
                imports_skipped: plan.exchange(w).len() as u64 - applied,
                sync_ns,
                exchange_ns: exch_t0.elapsed().as_nanos() as u64,
                ..cell
            };
            self.prof.as_mut().expect("profiled").cells[w] = cell;
        }
    }

    /// Completes the profile cell of a silent (coalesced) window: no
    /// alignment happened, so the aligned clock is the island's own
    /// arrival, and the epoch floor simply carries over from the
    /// previous cell. Pure structural bookkeeping — identical in both
    /// cadence modes and for every worker count.
    fn mark_silent(&mut self, w: usize) {
        if let Some(p) = self.prof.as_mut() {
            let prev_floor = if w == 0 {
                0
            } else {
                p.cells[w - 1].epoch_floor
            };
            let cell = &mut p.cells[w];
            cell.aligned_clock = cell.arrive_clock;
            cell.epoch_floor = prev_floor;
        }
    }

    fn finish(self) -> IslandOutcome {
        let IslandRun {
            mut sys,
            clocks,
            golden,
            accesses,
            mismatches,
            imported,
            mut prof,
            ..
        } = self;
        let cycles = clocks.iter().map(|c| c.now()).max().unwrap_or(0);
        let finish_t0 = prof.is_some().then(std::time::Instant::now);
        let persist_done = sys.finish(cycles);
        if let (Some(t0), Some(p)) = (finish_t0, prof.as_mut()) {
            p.finish_ns = t0.elapsed().as_nanos() as u64;
            p.final_clock = cycles;
        }
        let package_t0 = prof.is_some().then(std::time::Instant::now);
        let stall_cycles = clocks.iter().map(|c| c.stall_cycles()).sum();
        let stats = sys.stats().clone();
        let metrics = sys.metrics().into_frozen();
        // Deallocating the island sub-machine is real per-island wall
        // time (NVOverlay's device maps run to megabytes) — charge it
        // to outcome packaging rather than letting it leak out of the
        // attribution.
        drop(sys);
        if let (Some(t0), Some(p)) = (package_t0, prof.as_mut()) {
            p.package_ns = t0.elapsed().as_nanos() as u64;
        }
        IslandOutcome {
            cycles,
            persist_done,
            stall_cycles,
            accesses,
            mismatches,
            imported,
            stats,
            metrics,
            golden,
            prof,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceBuilder;

    /// A trivial memory system: fixed latency, records the order of
    /// accesses it saw.
    struct FixedLatency {
        latency: Cycle,
        seen: Vec<(u16, u64)>,
        stats: SystemStats,
    }

    impl FixedLatency {
        fn new(latency: Cycle) -> Self {
            Self {
                latency,
                seen: Vec::new(),
                stats: SystemStats::default(),
            }
        }
    }

    impl MemorySystem for FixedLatency {
        fn name(&self) -> &'static str {
            "fixed"
        }
        fn access(
            &mut self,
            core: CoreId,
            _op: MemOp,
            addr: Addr,
            _token: Token,
            _now: Cycle,
        ) -> AccessOutcome {
            self.seen.push((core.0, addr.raw()));
            AccessOutcome {
                latency: self.latency,
                persist_stall: 0,
                value: _token,
            }
        }
        fn epoch_mark(&mut self, _core: CoreId, _now: Cycle) -> Cycle {
            7
        }
        fn finish(&mut self, now: Cycle) -> Cycle {
            now
        }
        fn stats(&self) -> &SystemStats {
            &self.stats
        }
    }

    #[test]
    fn interleaving_is_round_robin_for_equal_latencies() {
        let mut b = TraceBuilder::new(2);
        for i in 0..3 {
            b.store(ThreadId(0), Addr::new(i * 64));
            b.store(ThreadId(1), Addr::new((i + 100) * 64));
        }
        let trace = b.build();
        let mut sys = FixedLatency::new(4);
        let report = Runner::with_gap(2).run(&mut sys, &trace);
        assert_eq!(report.accesses, 6);
        // Equal clocks tie-break by core id deterministically.
        let cores: Vec<u16> = sys.seen.iter().map(|(c, _)| *c).collect();
        assert_eq!(cores, vec![0, 1, 0, 1, 0, 1]);
        assert_eq!(report.cycles, 3 * (4 + 2));
    }

    #[test]
    fn golden_image_reflects_last_store_in_interleaved_order() {
        let mut b = TraceBuilder::new(2);
        let t0 = b.store(ThreadId(0), Addr::new(0));
        let _t1 = b.store(ThreadId(1), Addr::new(64));
        let t2 = b.store(ThreadId(1), Addr::new(0)); // overwrites line 0
        let trace = b.build();
        let mut sys = FixedLatency::new(4);
        let report = Runner::with_gap(2).run(&mut sys, &trace);
        // Core 1's second access (t2) lands after core 0's first (t0):
        // clocks: c0 access at 0, c1 access at 0, c1 access at 6.
        let _ = t0;
        assert_eq!(report.golden_image[&LineAddr::new(0)], t2);
        assert_eq!(report.golden_image.len(), 2);
    }

    #[test]
    fn epoch_marks_charge_the_reported_stall() {
        let mut b = TraceBuilder::new(1);
        b.store(ThreadId(0), Addr::new(0));
        b.epoch_mark(ThreadId(0));
        b.store(ThreadId(0), Addr::new(64));
        let trace = b.build();
        let mut sys = FixedLatency::new(4);
        let report = Runner::with_gap(2).run(&mut sys, &trace);
        assert_eq!(report.stall_cycles, 7);
        assert_eq!(report.cycles, 6 + 8 + 6);
    }

    #[test]
    fn runs_are_reproducible() {
        let mut b = TraceBuilder::new(4);
        for i in 0..50u64 {
            b.store(ThreadId((i % 4) as u16), Addr::new((i % 13) * 64));
        }
        let trace = b.build();
        let mut s1 = FixedLatency::new(3);
        let mut s2 = FixedLatency::new(3);
        let r1 = Runner::new().run(&mut s1, &trace);
        let r2 = Runner::new().run(&mut s2, &trace);
        assert_eq!(s1.seen, s2.seen);
        assert_eq!(r1.cycles, r2.cycles);
        assert_eq!(r1.golden_image, r2.golden_image);
    }
}
