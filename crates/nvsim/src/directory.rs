//! Sparse coherence directory.
//!
//! Tracks, per cache line, which *nodes* (Versioned Domains at the LLC
//! level) hold the line and which one, if any, holds it exclusively. The
//! directory is sparse: lines nobody caches have no entry, which is how the
//! non-inclusive LLC of the paper (§II-D, §III-B) can track lines it does
//! not itself hold data for.
//!
//! Invariant maintained: an exclusive owner is the *only* sharer
//! (single-writer / multi-reader).

use crate::addr::LineAddr;
use crate::fastmap::FastMap;

/// Maximum number of directory nodes (VDs) supported by the bitmask.
pub const MAX_NODES: u16 = 64;

/// Directory state for one line.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DirEntry {
    sharers: u64,
    owner: Option<u16>,
}

impl DirEntry {
    /// The exclusive owner (a node holding the line in M or E), if any.
    #[inline]
    pub fn owner(&self) -> Option<u16> {
        self.owner
    }

    /// Whether `node` currently shares the line.
    #[inline]
    pub fn is_sharer(&self, node: u16) -> bool {
        self.sharers & (1u64 << node) != 0
    }

    /// Number of sharers.
    #[inline]
    pub fn sharer_count(&self) -> u32 {
        self.sharers.count_ones()
    }

    /// Iterates all sharer node indices (ascending).
    pub fn sharers(&self) -> BitIter {
        BitIter(self.sharers)
    }

    /// Sharers other than `node` (ascending). Allocation-free: iterates
    /// the sharer word directly via `trailing_zeros`.
    pub fn sharers_except(&self, node: u16) -> BitIter {
        BitIter(self.sharers & !(1u64 << node))
    }

    fn check(&self) {
        if let Some(o) = self.owner {
            debug_assert!(
                self.sharers & (1u64 << o) != 0,
                "the owner must hold a copy"
            );
        }
    }
}

/// Ascending iterator over the set bits of a sharer word — the
/// allocation-free replacement for the old `Vec<u16>`-returning walks on
/// the GetS/GetX hot path.
#[derive(Clone, Copy, Debug)]
pub struct BitIter(u64);

impl Iterator for BitIter {
    type Item = u16;

    #[inline]
    fn next(&mut self) -> Option<u16> {
        if self.0 == 0 {
            return None;
        }
        let n = self.0.trailing_zeros() as u16;
        self.0 &= self.0 - 1;
        Some(n)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for BitIter {}

/// A sparse directory over up to [`MAX_NODES`] nodes.
#[derive(Clone, Debug, Default)]
pub struct Directory {
    entries: FastMap<LineAddr, DirEntry>,
}

impl Directory {
    /// An empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// The entry for `line`, if any node caches it.
    pub fn entry(&self, line: LineAddr) -> Option<&DirEntry> {
        self.entries.get(&line)
    }

    /// Records that `node` obtained a shared copy.
    ///
    /// # Panics
    /// Debug-panics if another node still owns the line exclusively — the
    /// caller must downgrade the owner first (MESI) or use
    /// [`Directory::add_sharer_keep_owner`] (MOESI).
    pub fn add_sharer(&mut self, line: LineAddr, node: u16) {
        assert!(node < MAX_NODES, "node index out of range");
        let e = self.entries.or_default(line);
        debug_assert!(
            e.owner.is_none() || e.owner == Some(node),
            "add_sharer with a live foreign owner"
        );
        if e.owner == Some(node) {
            // Self-downgrade: keep sharing, drop exclusivity.
            e.owner = None;
        }
        e.sharers |= 1u64 << node;
        e.check();
    }

    /// Records that `node` obtained a shared copy while the current owner
    /// keeps Owned (dirty-shared) responsibility — the MOESI downgrade.
    pub fn add_sharer_keep_owner(&mut self, line: LineAddr, node: u16) {
        assert!(node < MAX_NODES, "node index out of range");
        let e = self.entries.or_default(line);
        e.sharers |= 1u64 << node;
        e.check();
    }

    /// Records that `node` obtained the line exclusively (M/E). All other
    /// sharers must already have been invalidated by the caller.
    pub fn set_owner(&mut self, line: LineAddr, node: u16) {
        assert!(node < MAX_NODES, "node index out of range");
        let e = self.entries.or_default(line);
        debug_assert!(
            e.sharers & !(1u64 << node) == 0,
            "set_owner with other sharers still present"
        );
        e.sharers = 1u64 << node;
        e.owner = Some(node);
        e.check();
    }

    /// Downgrades the exclusive owner to a plain sharer (keeps its copy).
    pub fn downgrade_owner(&mut self, line: LineAddr) {
        if let Some(e) = self.entries.get_mut(&line) {
            e.owner = None;
            e.check();
        }
    }

    /// Removes `node` from the line's sharers (invalidation or eviction of
    /// the node's last copy). Drops the entry when nobody shares.
    pub fn remove_node(&mut self, line: LineAddr, node: u16) {
        if let Some(e) = self.entries.get_mut(&line) {
            e.sharers &= !(1u64 << node);
            if e.owner == Some(node) {
                e.owner = None;
            }
            if e.sharers == 0 {
                self.entries.remove(&line);
            }
        }
    }

    /// Drops the whole entry (all copies gone).
    pub fn clear_line(&mut self, line: LineAddr) {
        self.entries.remove(&line);
    }

    /// Number of tracked lines.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the directory tracks no lines.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    #[test]
    fn shared_then_exclusive_transitions() {
        let mut d = Directory::new();
        d.add_sharer(line(1), 0);
        d.add_sharer(line(1), 3);
        let e = d.entry(line(1)).unwrap();
        assert_eq!(e.sharer_count(), 2);
        assert_eq!(e.owner(), None);
        assert!(e.is_sharer(3));

        // Invalidate sharer 0, then 3 upgrades to owner.
        d.remove_node(line(1), 0);
        d.set_owner(line(1), 3);
        let e = d.entry(line(1)).unwrap();
        assert_eq!(e.owner(), Some(3));
        assert_eq!(e.sharer_count(), 1);
    }

    #[test]
    fn owner_self_downgrade_via_add_sharer() {
        let mut d = Directory::new();
        d.set_owner(line(7), 2);
        d.add_sharer(line(7), 2);
        let e = d.entry(line(7)).unwrap();
        assert_eq!(e.owner(), None);
        assert!(e.is_sharer(2));
    }

    #[test]
    fn downgrade_keeps_copy() {
        let mut d = Directory::new();
        d.set_owner(line(9), 5);
        d.downgrade_owner(line(9));
        let e = d.entry(line(9)).unwrap();
        assert_eq!(e.owner(), None);
        assert!(e.is_sharer(5));
        // Another node can now share.
        d.add_sharer(line(9), 6);
        assert_eq!(d.entry(line(9)).unwrap().sharer_count(), 2);
    }

    #[test]
    fn entry_disappears_when_last_sharer_leaves() {
        let mut d = Directory::new();
        d.add_sharer(line(4), 1);
        d.remove_node(line(4), 1);
        assert!(d.entry(line(4)).is_none());
        assert!(d.is_empty());
    }

    #[test]
    fn sharers_except_lists_others() {
        let mut d = Directory::new();
        for n in [0u16, 2, 5] {
            d.add_sharer(line(2), n);
        }
        let others: Vec<u16> = d.entry(line(2)).unwrap().sharers_except(2).collect();
        assert_eq!(others, vec![0, 5]);
        assert_eq!(d.entry(line(2)).unwrap().sharers_except(2).len(), 2);
    }

    #[test]
    fn moesi_owner_coexists_with_sharers() {
        let mut d = Directory::new();
        d.set_owner(line(3), 1);
        d.add_sharer_keep_owner(line(3), 4);
        d.add_sharer_keep_owner(line(3), 5);
        let e = d.entry(line(3)).unwrap();
        assert_eq!(e.owner(), Some(1));
        assert_eq!(e.sharer_count(), 3);
        // Owner eviction leaves plain sharers.
        d.remove_node(line(3), 1);
        let e = d.entry(line(3)).unwrap();
        assert_eq!(e.owner(), None);
        assert_eq!(e.sharer_count(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn node_out_of_range_panics() {
        let mut d = Directory::new();
        d.add_sharer(line(0), 64);
    }
}
