//! # nvsim — deterministic multicore cache/NVM timing simulator
//!
//! `nvsim` is the substrate on which the NVOverlay reproduction is built. It
//! plays the role zsim played in the paper: a fast, deterministic,
//! trace-driven timing model of a multicore memory hierarchy with a banked
//! NVDIMM at the bottom.
//!
//! The crate provides reusable building blocks:
//!
//! * [`addr`] — strongly-typed byte/line/page addresses and geometry math.
//! * [`mesi`] — the MESI coherence state lattice.
//! * [`cache`] — a generic set-associative cache array with LRU replacement
//!   and per-line user metadata.
//! * [`directory`] — sparse sharer directories (used at the L2 and LLC).
//! * [`noc`] — a hop-latency interconnect model with message accounting.
//! * [`dram`] / [`nvm`] — device models. The NVM model has banked write
//!   occupancy, bounded queues with backpressure, byte accounting by purpose
//!   (data / log / mapping metadata / context), and bandwidth time series.
//! * [`trace`] — per-thread memory access traces and deterministic
//!   interleaving.
//! * [`hierarchy`] — a complete non-versioned 3-level MESI hierarchy
//!   (private L1s, per-domain inclusive L2s, distributed non-inclusive LLC
//!   slices) with policy hooks. The five baseline schemes in `nvbaselines`
//!   are built on it. NVOverlay's *versioned* hierarchy lives in the
//!   `nvoverlay` crate and reuses the low-level blocks from here.
//! * [`memsys`] — the [`memsys::MemorySystem`] trait every snapshotting
//!   scheme implements, and the deterministic run loop.
//! * [`fastmap`] — open-addressing maps and an Fx-style hasher for the
//!   simulator's hot paths (directory entries, device contents, golden
//!   images).
//! * [`fault`] — persistence-order shadow model: a journal of every NVM
//!   write with logical payloads, in-flight windows, and prefix-closed
//!   crash cuts with torn-write boundaries. Drives the `nvchaos`
//!   crash-site explorer.
//! * [`shard`] — island-sharded replay planning: partitions a packed
//!   trace by VD into independent sub-machines with epoch-barrier
//!   windows and canonical cross-island exchange maps, all derived from
//!   the trace alone so results are invariant to the worker count.
//! * [`json`] — a minimal hand-rolled JSON parser/escaper shared by the
//!   report exporters and the persistent snapshot store (zero external
//!   dependencies).
//! * [`rng`] — deterministic xoshiro256++ randomness (no external crates).
//! * [`nvtrace`] — structured event tracing into a per-thread ring
//!   buffer (flight recorder). Compiled out without the `trace` cargo
//!   feature; a single branch when compiled in but idle.
//! * [`metrics`] — hierarchical named counters/gauges/histograms with a
//!   deterministic tree dump and cheap cross-run merging.
//! * [`prof`] — stall attribution for sharded replay: per-shard,
//!   per-window wall-time accounting over {compute, barrier-wait,
//!   exchange-apply, epoch-sync, merge}, deterministic straggler
//!   analysis from simulated clocks, and an Amdahl-style scaling model.
//!
//! ## Example
//!
//! ```
//! use nvsim::config::SimConfig;
//!
//! let cfg = SimConfig::default();
//! assert_eq!(cfg.cores, 16);
//! assert_eq!(cfg.cores_per_vd, 2);
//! ```

#![warn(missing_docs)]

pub mod addr;
pub mod cache;
pub mod clock;
pub mod config;
pub mod directory;
pub mod dram;
pub mod fastmap;
pub mod fault;
pub mod hierarchy;
pub mod json;
pub mod memsys;
pub mod mesi;
pub mod metrics;
pub mod noc;
pub mod nvm;
pub mod nvtrace;
pub mod prof;
pub mod rng;
pub mod shard;
pub mod stats;
pub mod trace;
pub mod trace_io;

pub use addr::{Addr, CoreId, LineAddr, PageAddr, ThreadId, Token, VdId};
pub use clock::Cycle;
pub use config::SimConfig;
pub use memsys::{AccessOutcome, MemOp, MemorySystem, RunReport, Runner, ShardedRunReport};
pub use prof::{ProfBucket, ShardProfile};
pub use shard::ShardPlan;
