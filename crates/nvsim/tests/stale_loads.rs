#[test]
fn plain_hierarchy_loads_match_model() {
    use nvsim::addr::{Addr, CoreId};
    use nvsim::config::SimConfig;
    use nvsim::hierarchy::Hierarchy;
    use nvsim::memsys::MemOp;
    use nvsim::rng::Rng64;
    use std::collections::HashMap;

    let cfg = SimConfig::builder()
        .cores(16, 2)
        .l1(1024, 2, 4)
        .l2(4096, 4, 8)
        .llc(16 * 1024, 4, 30, 2)
        .epoch_size_stores(1_000_000)
        .build()
        .unwrap();
    for seed in 0..20u64 {
        let mut h = Hierarchy::new(&cfg);
        let mut model: HashMap<u64, u64> = HashMap::new();
        let mut rng = Rng64::seed_from_u64(seed);
        for i in 0..20_000u64 {
            let core = CoreId(rng.gen_range(0..16));
            let line = rng.gen_range(0..200u64);
            if rng.gen_bool(0.4) {
                h.access(core, MemOp::Store, Addr::new(line * 64), i + 1);
                model.insert(line, i + 1);
            } else {
                let (_, v) = h.access(core, MemOp::Load, Addr::new(line * 64), 0);
                let expect = model.get(&line).copied().unwrap_or(0);
                assert_eq!(
                    v, expect,
                    "seed {seed} step {i}: stale load of line {line} by {core:?}"
                );
            }
        }
    }
}
