//! MOESI protocol variant tests for the baseline hierarchy.

use nvsim::addr::{Addr, CoreId, LineAddr};
use nvsim::config::Protocol;
use nvsim::hierarchy::{Hierarchy, HierarchyEvent};
use nvsim::memsys::MemOp;
use nvsim::SimConfig;
use std::collections::HashMap;

fn cfg(protocol: Protocol) -> SimConfig {
    SimConfig::builder()
        .cores(8, 2)
        .l1(1024, 2, 4)
        .l2(4096, 4, 8)
        .llc(16 * 1024, 4, 30, 2)
        .epoch_size_stores(1_000_000)
        .protocol(protocol)
        .build()
        .unwrap()
}

fn addr(line: u64) -> Addr {
    Addr::new(line * 64)
}

#[test]
fn moesi_downgrade_keeps_dirty_data_in_place() {
    let mut h = Hierarchy::new(&cfg(Protocol::Moesi));
    h.access(CoreId(0), MemOp::Store, addr(5), 77);
    // Remote load: under MOESI, NO L2 write-back event is produced.
    let (_, v) = h.access(CoreId(2), MemOp::Load, addr(5), 0);
    assert_eq!(v, 77, "reader sees the owner's data");
    assert!(
        !h.events()
            .iter()
            .any(|e| matches!(e, HierarchyEvent::L2Writeback { .. })),
        "MOESI downgrade must not write back: {:?}",
        h.events()
    );
    assert_eq!(h.newest_token(LineAddr::new(5)), 77);
    // Under MESI, the same sequence deposits dirty data in the LLC.
    let mut m = Hierarchy::new(&cfg(Protocol::Mesi));
    m.access(CoreId(0), MemOp::Store, addr(5), 77);
    m.access(CoreId(2), MemOp::Load, addr(5), 0);
    assert!(m
        .events()
        .iter()
        .any(|e| matches!(e, HierarchyEvent::L2Writeback { .. })));
}

#[test]
fn moesi_owner_upgrade_invalidates_sharers() {
    let mut h = Hierarchy::new(&cfg(Protocol::Moesi));
    h.access(CoreId(0), MemOp::Store, addr(9), 1); // VD0 owns M
    h.access(CoreId(2), MemOp::Load, addr(9), 0); // VD1 shares; VD0 -> O
    h.access(CoreId(4), MemOp::Load, addr(9), 0); // VD2 shares too
                                                  // Owner stores again: O -> M upgrade must invalidate VD1 and VD2.
    h.access(CoreId(0), MemOp::Store, addr(9), 2);
    let (_, v1) = h.access(CoreId(2), MemOp::Load, addr(9), 0);
    let (_, v2) = h.access(CoreId(4), MemOp::Load, addr(9), 0);
    assert_eq!(v1, 2, "stale sharer copy must have been invalidated");
    assert_eq!(v2, 2);
}

#[test]
fn moesi_foreign_store_takes_ownership_from_o() {
    let mut h = Hierarchy::new(&cfg(Protocol::Moesi));
    h.access(CoreId(0), MemOp::Store, addr(3), 10); // VD0 M
    h.access(CoreId(2), MemOp::Load, addr(3), 0); // VD0 O, VD1 S
    h.access(CoreId(4), MemOp::Store, addr(3), 20); // VD2 takes M
    for core in [0u16, 2, 4] {
        let (_, v) = h.access(CoreId(core), MemOp::Load, addr(3), 0);
        assert_eq!(v, 20, "core{core}");
    }
}

#[test]
fn moesi_o_eviction_lands_in_llc_dirty() {
    let mut h = Hierarchy::new(&cfg(Protocol::Moesi));
    h.access(CoreId(0), MemOp::Store, addr(7), 70);
    h.access(CoreId(2), MemOp::Load, addr(7), 0); // VD0 now O
                                                  // Thrash VD0's L2 so the O line gets evicted (64-line L2).
    for i in 100..300u64 {
        h.access(CoreId(0), MemOp::Load, addr(i), 0);
    }
    // The data must still be visible everywhere.
    assert_eq!(h.newest_token(LineAddr::new(7)), 70);
    let (_, v) = h.access(CoreId(4), MemOp::Load, addr(7), 0);
    assert_eq!(v, 70);
}

#[test]
fn moesi_functional_correctness_random_mix() {
    let mut h = Hierarchy::new(&cfg(Protocol::Moesi));
    let mut model: HashMap<u64, u64> = HashMap::new();
    let mut x = 12345u64;
    for i in 0..30_000u64 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let core = CoreId((x >> 33) as u16 % 8);
        let line = (x >> 40) % 150;
        if x.is_multiple_of(3) {
            h.access(core, MemOp::Store, addr(line), i + 1);
            model.insert(line, i + 1);
        } else {
            let (_, v) = h.access(core, MemOp::Load, addr(line), 0);
            let expect = model.get(&line).copied().unwrap_or(0);
            assert_eq!(v, expect, "step {i}: stale load of line {line}");
        }
    }
    let _ = h.drain_dirty();
    for (line, expect) in model {
        assert_eq!(h.newest_token(LineAddr::new(line)), expect);
    }
}
