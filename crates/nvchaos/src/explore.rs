//! Deterministic crash-site exploration.
//!
//! [`prepare`] runs the workload once per scheme with the NVM fault
//! plane attached (the *oracle run*), harvests the persistence-order
//! journal, and picks a stratified, seeded sample of crash sites — every
//! journal index is a candidate, so crash points fall *inside* OMC
//! flushes (between two `MasterChunk` writes of one merge), mid-`Mmaster`
//! root update, mid-undo-log flush, and at plain data writes.
//!
//! Each site check ([`ChaosRun::check_site`]) is a pure function of the
//! journal and the site's derived seed: draw a crash cut, rebuild the
//! durable state, run the production recovery procedure against it,
//! optionally inject a mapping-word bit flip (which recovery must
//! *detect*), and verify the three consistency-cut invariants of
//! `tests/crash_consistency.rs` against the trace oracle. Site checks
//! are `Sync` and independent, so callers may fan them out across
//! threads (`nvbench::par`) without perturbing the result.

use crate::oracle::TraceOracle;
use crate::rebuild::{
    rebuild_undo, undo_commit_cutoff, undo_expected, RebuildFidelity, RebuiltState,
};
use crate::report::{ChaosReport, Violation};
use nvbaselines::sw_undo::SwUndoLogging;
use nvoverlay::recovery::{recover_durable, RecoveryError};
use nvoverlay::system::NvOverlaySystem;
use nvsim::addr::{LineAddr, Token};
use nvsim::config::SimConfig;
use nvsim::fastmap::FastHashMap;
use nvsim::fault::{CrashCut, FaultPlane, PersistPayload, WriteRecord};
use nvsim::memsys::Runner;
use nvsim::nvtrace::{EventKind, TraceScope, Track};
use nvsim::rng::Rng64;
use nvsim::trace::Trace;

/// Per-site seed mixer (splitmix64 increment): keeps site seeds
/// independent of the order sites were selected in.
pub(crate) const SEED_GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// The scheme whose crash behavior is explored.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosScheme {
    /// The NVOverlay system (multi-snapshot overlay + Mmaster recovery).
    NvOverlay,
    /// The software undo-logging baseline (WAL + epoch commit markers).
    SwUndo,
}

impl ChaosScheme {
    /// Parses a CLI scheme name.
    pub fn from_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "nvoverlay" | "nv-overlay" | "overlay" => Some(Self::NvOverlay),
            "sw-undo" | "sw_undo" | "swundo" | "sw-logging" | "undo" => Some(Self::SwUndo),
            _ => None,
        }
    }

    /// Canonical name (stable in reports).
    pub fn name(self) -> &'static str {
        match self {
            Self::NvOverlay => "nvoverlay",
            Self::SwUndo => "sw-undo",
        }
    }
}

/// Where in the persistence flow a crash site sits, keyed by the write
/// being issued when the crash hits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SiteCategory {
    /// A data write: an overlay version slot or a home-location flush.
    Data,
    /// A Master Mapping Table metadata chunk mid-OMC-flush.
    OmcFlushMeta,
    /// The `rec-epoch` master root pointer update.
    MasterRoot,
    /// A processor context dump at an epoch boundary.
    Context,
    /// An undo-log entry (software logging).
    UndoLog,
    /// An epoch commit marker (software logging).
    EpochCommit,
}

impl SiteCategory {
    /// All categories, in stable report order.
    pub const ALL: [SiteCategory; 6] = [
        SiteCategory::Data,
        SiteCategory::OmcFlushMeta,
        SiteCategory::MasterRoot,
        SiteCategory::Context,
        SiteCategory::UndoLog,
        SiteCategory::EpochCommit,
    ];

    /// Stable kebab-case name.
    pub fn name(self) -> &'static str {
        match self {
            SiteCategory::Data => "data",
            SiteCategory::OmcFlushMeta => "omc-flush-meta",
            SiteCategory::MasterRoot => "master-root",
            SiteCategory::Context => "context",
            SiteCategory::UndoLog => "undo-log",
            SiteCategory::EpochCommit => "epoch-commit",
        }
    }

    fn index(self) -> usize {
        SiteCategory::ALL
            .iter()
            .position(|c| *c == self)
            .expect("listed")
    }
}

fn category_of(rec: &WriteRecord) -> SiteCategory {
    match &rec.payload {
        Some(PersistPayload::MasterChunk { .. }) => SiteCategory::OmcFlushMeta,
        Some(PersistPayload::RecEpochRoot { .. }) => SiteCategory::MasterRoot,
        Some(PersistPayload::Context { .. }) => SiteCategory::Context,
        Some(PersistPayload::UndoLog { .. }) => SiteCategory::UndoLog,
        Some(PersistPayload::EpochCommit { .. }) => SiteCategory::EpochCommit,
        Some(PersistPayload::Version { .. }) | Some(PersistPayload::DataHome { .. }) | None => {
            SiteCategory::Data
        }
    }
}

/// Exploration parameters.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// The scheme under test.
    pub scheme: ChaosScheme,
    /// Number of crash sites to explore (capped by the journal length).
    pub sites: usize,
    /// Master seed: fixes the site sample and every per-site cut.
    pub seed: u64,
    /// Probability a cut's boundary write is torn rather than lost.
    pub torn_p: f64,
    /// Probability of injecting a mapping-word bit flip at a site
    /// (NVOverlay only; recovery must detect it).
    pub flip_p: f64,
    /// Recovery rebuild fidelity ([`RebuildFidelity::BrokenNoEpochFilter`]
    /// is the harness self-test mode — invariants must then fire).
    pub fidelity: RebuildFidelity,
    /// Run the oracle sim under sustained OMC backpressure: NVM queue
    /// depth 1 and 4× write latency, deepening the in-flight windows.
    pub stress_backpressure: bool,
}

impl ChaosConfig {
    /// Defaults for `scheme`: 200 sites, seed 7, torn 25%, flip 10%,
    /// exact fidelity, no backpressure.
    pub fn new(scheme: ChaosScheme) -> Self {
        Self {
            scheme,
            sites: 200,
            seed: 7,
            torn_p: 0.25,
            flip_p: 0.10,
            fidelity: RebuildFidelity::Exact,
            stress_backpressure: false,
        }
    }
}

/// The outcome of one crash-site check.
#[derive(Clone, Debug)]
pub struct SiteResult {
    /// Journal index of the crash site.
    pub site: usize,
    /// Category of the write being issued at the crash.
    pub category: SiteCategory,
    /// The derived per-site seed (replay with `--sites 1`-style tools).
    pub seed: u64,
    /// Accepted writes dropped or torn by the cut.
    pub dropped: usize,
    /// Category of the torn boundary write, if the cut tore one.
    pub torn: Option<SiteCategory>,
    /// Mapping-word bit flips injected at this site.
    pub flips: usize,
    /// Faults recovery correctly *detected* (torn root, corrupt mapping).
    pub detected: Vec<&'static str>,
    /// The epoch recovery restored (0 = nothing recoverable).
    pub recovered_epoch: u64,
    /// Lines in the recovered image.
    pub recovered_lines: usize,
    /// Invariant violations — empty means the site is consistent.
    pub violations: Vec<String>,
}

/// One prepared exploration: the oracle run's journal plus the selected
/// site sample. Site checks borrow it immutably and are independent.
pub struct ChaosRun {
    plane: FaultPlane,
    oracle: TraceOracle,
    cfg: ChaosConfig,
    /// Selected `(journal index, category)` sites, ascending.
    sites: Vec<(usize, SiteCategory)>,
    run_cycles: u64,
}

/// Runs the workload once with the fault plane attached and selects the
/// crash-site sample. Deterministic for a given `(trace, simcfg, cfg)`.
pub fn prepare(trace: &Trace, simcfg: &SimConfig, cfg: ChaosConfig) -> ChaosRun {
    let mut simcfg = simcfg.clone();
    if cfg.stress_backpressure {
        simcfg.nvm_queue_depth = 1;
        simcfg.nvm_write_latency *= 4;
    }
    let (plane, run_cycles) = match cfg.scheme {
        ChaosScheme::NvOverlay => {
            let mut sys = NvOverlaySystem::new(&simcfg);
            sys.nvm_mut().enable_fault_plane();
            let report = Runner::new().run(&mut sys, trace);
            (
                sys.nvm_mut().take_fault_plane().expect("plane attached"),
                report.cycles,
            )
        }
        ChaosScheme::SwUndo => {
            let mut sys = SwUndoLogging::new(&simcfg);
            sys.nvm_mut().enable_fault_plane();
            let report = Runner::new().run(&mut sys, trace);
            (
                sys.nvm_mut().take_fault_plane().expect("plane attached"),
                report.cycles,
            )
        }
    };
    let oracle = TraceOracle::new(trace);
    let sites = select_sites(&plane, &cfg);
    ChaosRun {
        plane,
        oracle,
        cfg,
        sites,
        run_cycles,
    }
}

/// Stratified site sample: every journal index (plus the end-of-run
/// crash) is a candidate, bucketed by category; the budget is spread
/// round-robin across non-empty buckets so rare-but-critical sites
/// (root updates, mid-flush metadata chunks) are always represented,
/// then drawn per bucket by seeded partial Fisher–Yates.
fn select_sites(plane: &FaultPlane, cfg: &ChaosConfig) -> Vec<(usize, SiteCategory)> {
    let mut pools: [Vec<usize>; 6] = Default::default();
    for r in plane.records() {
        pools[category_of(r).index()].push(r.id as usize);
    }
    // The end-of-run crash (all writes issued, queue possibly wet).
    pools[SiteCategory::Data.index()].push(plane.len());

    let mut quota = [0usize; 6];
    let mut budget = cfg.sites;
    loop {
        let mut progressed = false;
        for c in 0..6 {
            if budget == 0 {
                break;
            }
            if quota[c] < pools[c].len() {
                quota[c] += 1;
                budget -= 1;
                progressed = true;
            }
        }
        if budget == 0 || !progressed {
            break;
        }
    }

    let mut rng = Rng64::seed_from_u64(cfg.seed ^ 0x51_7E5);
    let mut out = Vec::new();
    for c in 0..6 {
        let pool = &mut pools[c];
        for i in 0..quota[c] {
            let j = i + rng.gen_range(0..(pool.len() - i) as u64) as usize;
            pool.swap(i, j);
            out.push((pool[i], SiteCategory::ALL[c]));
        }
    }
    out.sort_unstable_by_key(|(s, _)| *s);
    out
}

impl ChaosRun {
    /// Number of selected sites (≤ `cfg.sites`).
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// The journal of the oracle run.
    pub fn plane(&self) -> &FaultPlane {
        &self.plane
    }

    /// The exploration parameters.
    pub fn config(&self) -> &ChaosConfig {
        &self.cfg
    }

    /// Checks one selected site. Pure: depends only on the journal and
    /// the site's derived seed, never on other sites — safe to fan out.
    pub fn check_site(&self, i: usize) -> SiteResult {
        let (site, category) = self.sites[i];
        let seed = self.cfg.seed ^ (site as u64).wrapping_mul(SEED_GOLDEN);
        let mut rng = Rng64::seed_from_u64(seed);
        let cut = self.plane.crash_cut(site, &mut rng, self.cfg.torn_p);
        let scope = TraceScope::new(Track::Fault);
        scope.emit(EventKind::FaultInjected, cut.crash_time, site as u64, 0);
        if !cut.lost.is_empty() {
            scope.emit(EventKind::FaultInjected, cut.crash_time, site as u64, 3);
        }
        if cut.torn.is_some() {
            scope.emit(EventKind::FaultInjected, cut.crash_time, site as u64, 1);
        }
        let torn = cut
            .torn
            .map(|id| category_of(&self.plane.records()[id as usize]));
        let mut res = SiteResult {
            site,
            category,
            seed,
            dropped: cut.dropped_count(),
            torn,
            flips: 0,
            detected: Vec::new(),
            recovered_epoch: 0,
            recovered_lines: 0,
            violations: Vec::new(),
        };
        match self.cfg.scheme {
            ChaosScheme::NvOverlay => self.check_nvoverlay(&cut, &mut rng, &scope, &mut res),
            ChaosScheme::SwUndo => self.check_sw_undo(&cut, &mut res),
        }
        res
    }

    fn check_nvoverlay(
        &self,
        cut: &CrashCut,
        rng: &mut Rng64,
        scope: &TraceScope,
        res: &mut SiteResult,
    ) {
        let mut rb = RebuiltState::rebuild(&self.plane, cut, self.cfg.fidelity);
        // A torn rec-epoch root must be *detected*, then recovery falls
        // back to the previous durable root cell.
        if res.torn == Some(SiteCategory::MasterRoot) {
            match recover_durable(&rb) {
                Err(RecoveryError::TornMasterRoot { .. }) => res.detected.push("torn-master-root"),
                other => res.violations.push(format!(
                    "torn rec-epoch root went undetected (recovery returned {other:?})"
                )),
            }
            rb.fallback_to_previous_root();
        }
        // In-array corruption: flip one bit of one mapping word; the
        // parity check must refuse to recover until the word is healed.
        // Only meaningful when a durable root exists — with no committed
        // epoch, recovery stops before the mapping scan and no data is
        // at risk.
        use nvoverlay::recovery::DurableState as _;
        if rb.root().epoch > 0 && rng.gen_bool(self.cfg.flip_p) {
            if let Some((line, original, bit)) = rb.inject_flip(rng) {
                res.flips += 1;
                scope.emit(EventKind::FaultInjected, cut.crash_time, res.site as u64, 2);
                match recover_durable(&rb) {
                    Err(RecoveryError::CorruptMapping { line: bad, .. }) if bad == line => {
                        res.detected.push("corrupt-mapping");
                    }
                    other => res.violations.push(format!(
                        "bit {bit} flipped in the mapping word of line {:#x} went \
                         undetected (recovery returned {other:?})",
                        line.raw()
                    )),
                }
                rb.heal(line, original);
            }
        }
        match recover_durable(&rb) {
            Ok(img) => {
                res.recovered_epoch = img.epoch();
                res.recovered_lines = img.len();
                let map: FastHashMap<LineAddr, Token> = img.iter().collect();
                self.check_token_validity(&map, res);
                self.check_prefix_cut(&map, res);
                // Invariant 3: the image equals the journal-derived
                // expectation at the recovered epoch.
                let expected = nvoverlay_expected(&self.plane, cut, img.epoch());
                if map != expected {
                    res.violations.push(format!(
                        "recovered image diverges from the journal expectation at \
                         epoch {} ({} vs {} lines)",
                        img.epoch(),
                        map.len(),
                        expected.len()
                    ));
                }
            }
            // No committed epoch survived this cut: an empty restart is
            // the correct answer.
            Err(RecoveryError::NothingRecoverable) => {}
            Err(e) => res
                .violations
                .push(format!("unexpected recovery failure: {e}")),
        }
    }

    fn check_sw_undo(&self, cut: &CrashCut, res: &mut SiteResult) {
        let recovered = rebuild_undo(&self.plane, cut);
        let expected = undo_expected(&self.plane, cut);
        res.recovered_epoch = undo_commit_cutoff(&self.plane, cut);
        res.recovered_lines = recovered.len();
        if recovered != expected {
            res.violations.push(format!(
                "undo rollback diverges from the journal expectation ({} vs {} lines)",
                recovered.len(),
                expected.len()
            ));
        }
        self.check_token_validity(&recovered, res);
        self.check_prefix_cut(&recovered, res);
    }

    /// Invariant 1 (see [`crate::invariants::check_token_validity`]).
    fn check_token_validity(&self, img: &FastHashMap<LineAddr, Token>, res: &mut SiteResult) {
        crate::invariants::check_token_validity(&self.oracle, img, &mut res.violations);
    }

    /// Invariant 2 (see [`crate::invariants::check_prefix_cut`]).
    fn check_prefix_cut(&self, img: &FastHashMap<LineAddr, Token>, res: &mut SiteResult) {
        crate::invariants::check_prefix_cut(&self.oracle, img, &mut res.violations);
    }

    /// Aggregates site results into a report (deterministic field order;
    /// violations in ascending site order).
    pub fn summarize(&self, results: &[SiteResult]) -> ChaosReport {
        let mut category_counts: Vec<(String, usize)> = SiteCategory::ALL
            .iter()
            .map(|c| (c.name().to_string(), 0))
            .collect();
        for r in results {
            category_counts[r.category.index()].1 += 1;
        }
        let mut violations: Vec<Violation> = Vec::new();
        for r in results {
            for m in &r.violations {
                violations.push(Violation {
                    site: r.site,
                    category: r.category.name().to_string(),
                    message: m.clone(),
                });
            }
        }
        violations.sort_by(|a, b| (a.site, &a.message).cmp(&(b.site, &b.message)));
        ChaosReport {
            scheme: self.cfg.scheme.name().to_string(),
            seed: self.cfg.seed,
            sites_requested: self.cfg.sites,
            sites_explored: results.len(),
            journal_writes: self.plane.len(),
            run_cycles: self.run_cycles,
            category_counts,
            torn_sites: results.iter().filter(|r| r.torn.is_some()).count(),
            dropped_writes: results.iter().map(|r| r.dropped).sum(),
            flips_injected: results.iter().map(|r| r.flips).sum(),
            faults_detected: results.iter().map(|r| r.detected.len()).sum(),
            max_recovered_epoch: results.iter().map(|r| r.recovered_epoch).max().unwrap_or(0),
            violations,
        }
    }
}

/// The journal-derived expected NVOverlay image at `root_epoch`: the
/// newest durable version at or below the root per line (latest journal
/// write wins among equal epochs). Re-derived here, independently of
/// [`RebuiltState`]'s query path, as the invariant-3 reference.
fn nvoverlay_expected(
    plane: &FaultPlane,
    cut: &CrashCut,
    root_epoch: u64,
) -> FastHashMap<LineAddr, Token> {
    let mut best: FastHashMap<LineAddr, (u64, u64, Token)> = FastHashMap::default();
    for r in plane.records() {
        if !cut.survives(r.id) {
            continue;
        }
        if let Some(PersistPayload::Version { line, token, epoch }) = &r.payload {
            if *epoch <= root_epoch {
                let e = best.entry(*line).or_insert((*epoch, r.id, *token));
                if (*epoch, r.id) >= (e.0, e.1) {
                    *e = (*epoch, r.id, *token);
                }
            }
        }
    }
    best.into_iter().map(|(l, (_, _, t))| (l, t)).collect()
}

/// Serial convenience: prepare, check every site, summarize.
pub fn explore(trace: &Trace, simcfg: &SimConfig, cfg: ChaosConfig) -> ChaosReport {
    let run = prepare(trace, simcfg, cfg);
    let results: Vec<SiteResult> = (0..run.site_count()).map(|i| run.check_site(i)).collect();
    run.summarize(&results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvsim::addr::{Addr, ThreadId};
    use nvsim::trace::TraceBuilder;

    fn small_cfg() -> SimConfig {
        SimConfig::builder()
            .cores(4, 2)
            .l1(1024, 2, 4)
            .l2(4096, 4, 8)
            .llc(16 * 1024, 4, 30, 2)
            .epoch_size_stores(64)
            .build()
            .unwrap()
    }

    /// 4 threads, private regions plus a shared line every 5th store.
    fn small_trace() -> Trace {
        let mut b = TraceBuilder::new(4);
        for round in 0..160u64 {
            for t in 0..4u16 {
                let addr = if (round + t as u64).is_multiple_of(5) {
                    Addr::new(0x9000 * 64)
                } else {
                    Addr::new((0x1000 * (t as u64 + 1) + round % 24) * 64)
                };
                b.store(ThreadId(t), addr);
            }
        }
        b.build()
    }

    #[test]
    fn nvoverlay_sites_are_consistent_and_deterministic() {
        let cfg = ChaosConfig {
            sites: 60,
            ..ChaosConfig::new(ChaosScheme::NvOverlay)
        };
        let trace = small_trace();
        let a = explore(&trace, &small_cfg(), cfg.clone());
        assert!(
            a.violations.is_empty(),
            "unexpected violations: {:#?}",
            a.violations
        );
        assert!(a.sites_explored > 0);
        assert!(a.max_recovered_epoch >= 2, "several epochs must commit");
        // The sample must include interior metadata and root sites.
        let count = |name: &str| {
            a.category_counts
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, c)| *c)
                .unwrap()
        };
        assert!(count("omc-flush-meta") > 0, "{:?}", a.category_counts);
        assert!(count("master-root") > 0, "{:?}", a.category_counts);
        // Byte-identical on a second run.
        let b = explore(&trace, &small_cfg(), cfg);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn broken_recovery_is_caught() {
        let cfg = ChaosConfig {
            sites: 60,
            fidelity: RebuildFidelity::BrokenNoEpochFilter,
            ..ChaosConfig::new(ChaosScheme::NvOverlay)
        };
        let report = explore(&small_trace(), &small_cfg(), cfg);
        assert!(
            !report.violations.is_empty(),
            "an epoch-filter-less recovery must violate the cut invariants"
        );
    }

    #[test]
    fn sw_undo_sites_are_consistent() {
        let cfg = ChaosConfig {
            sites: 40,
            ..ChaosConfig::new(ChaosScheme::SwUndo)
        };
        let report = explore(&small_trace(), &small_cfg(), cfg);
        assert!(
            report.violations.is_empty(),
            "unexpected violations: {:#?}",
            report.violations
        );
        assert!(report.sites_explored > 0);
    }

    #[test]
    fn backpressure_deepens_the_inflight_window() {
        let base = ChaosConfig {
            sites: 40,
            torn_p: 0.0,
            flip_p: 0.0,
            ..ChaosConfig::new(ChaosScheme::NvOverlay)
        };
        let trace = small_trace();
        let calm = explore(&trace, &small_cfg(), base.clone());
        let stressed = explore(
            &trace,
            &small_cfg(),
            ChaosConfig {
                stress_backpressure: true,
                ..base
            },
        );
        assert!(calm.violations.is_empty() && stressed.violations.is_empty());
        assert!(
            stressed.dropped_writes >= calm.dropped_writes,
            "backpressure ({}) should keep at least as many writes in flight as calm ({})",
            stressed.dropped_writes,
            calm.dropped_writes
        );
    }

    #[test]
    fn scheme_names_round_trip() {
        for s in [ChaosScheme::NvOverlay, ChaosScheme::SwUndo] {
            assert_eq!(ChaosScheme::from_name(s.name()), Some(s));
        }
        assert_eq!(ChaosScheme::from_name("dram"), None);
    }
}
