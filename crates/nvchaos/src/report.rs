//! The JSON exploration report.
//!
//! Hand-rolled serialization (the workspace carries no serde): field
//! order is fixed, maps are emitted in [`SiteCategory`] order, and
//! violations ascend by site — so two runs with the same seed produce
//! byte-identical reports, which CI exploits (`cmp` of two runs).
//!
//! [`SiteCategory`]: crate::explore::SiteCategory

use std::fmt::Write as _;

use nvsim::json::{self, JsonValue};

/// Schema version stamped into every report (`"schema"`, the first
/// field). [`ChaosReport::from_json`] rejects reports written by a
/// future schema instead of silently misreading them.
pub const CHAOS_REPORT_SCHEMA: u64 = 1;

/// One invariant violation, locating the crash site that produced it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Journal index of the crash site.
    pub site: usize,
    /// Category of the site (see `SiteCategory::name`).
    pub category: String,
    /// Human-readable description of the violated invariant.
    pub message: String,
}

/// Aggregated outcome of one chaos exploration.
#[derive(Clone, Debug)]
pub struct ChaosReport {
    /// Canonical scheme name.
    pub scheme: String,
    /// Master seed of the exploration.
    pub seed: u64,
    /// Sites asked for on the command line.
    pub sites_requested: usize,
    /// Sites actually explored (capped by the journal length).
    pub sites_explored: usize,
    /// NVM writes recorded by the oracle run.
    pub journal_writes: usize,
    /// Cycles the oracle run took.
    pub run_cycles: u64,
    /// Explored sites per category, in stable category order.
    pub category_counts: Vec<(String, usize)>,
    /// Sites whose cut tore a write on the durability boundary.
    pub torn_sites: usize,
    /// Total accepted writes dropped or torn across all cuts.
    pub dropped_writes: usize,
    /// Mapping-word bit flips injected.
    pub flips_injected: usize,
    /// Faults recovery correctly detected (torn roots, corrupt words).
    pub faults_detected: usize,
    /// Newest epoch any site recovered.
    pub max_recovered_epoch: u64,
    /// Every invariant violation found (empty = all sites consistent).
    pub violations: Vec<Violation>,
}

impl ChaosReport {
    /// Whether every explored site upheld every invariant.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Deterministic JSON rendering (trailing newline included).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(512);
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": {},", CHAOS_REPORT_SCHEMA);
        let _ = writeln!(s, "  \"scheme\": {},", json_str(&self.scheme));
        let _ = writeln!(s, "  \"seed\": {},", self.seed);
        let _ = writeln!(s, "  \"sites_requested\": {},", self.sites_requested);
        let _ = writeln!(s, "  \"sites_explored\": {},", self.sites_explored);
        let _ = writeln!(s, "  \"journal_writes\": {},", self.journal_writes);
        let _ = writeln!(s, "  \"run_cycles\": {},", self.run_cycles);
        s.push_str("  \"sites_by_category\": {");
        for (i, (name, n)) in self.category_counts.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "{}: {}", json_str(name), n);
        }
        s.push_str("},\n");
        let _ = writeln!(s, "  \"torn_sites\": {},", self.torn_sites);
        let _ = writeln!(s, "  \"dropped_writes\": {},", self.dropped_writes);
        let _ = writeln!(s, "  \"flips_injected\": {},", self.flips_injected);
        let _ = writeln!(s, "  \"faults_detected\": {},", self.faults_detected);
        let _ = writeln!(
            s,
            "  \"max_recovered_epoch\": {},",
            self.max_recovered_epoch
        );
        let _ = writeln!(s, "  \"violation_count\": {},", self.violations.len());
        s.push_str("  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\n    {{\"site\": {}, \"category\": {}, \"message\": {}}}",
                v.site,
                json_str(&v.category),
                json_str(&v.message)
            );
        }
        if !self.violations.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }

    /// Parses a report previously rendered by [`ChaosReport::to_json`].
    ///
    /// # Errors
    /// A message naming the malformed field, or the unsupported schema
    /// version for reports written by a future tool.
    pub fn from_json(text: &str) -> Result<ChaosReport, String> {
        let v = json::parse(text).map_err(|e| format!("malformed report JSON: {e}"))?;
        let schema = v
            .get("schema")
            .and_then(JsonValue::as_u64)
            .ok_or("report is missing the schema field")?;
        if schema > CHAOS_REPORT_SCHEMA {
            return Err(format!(
                "report schema {schema} is newer than supported {CHAOS_REPORT_SCHEMA}"
            ));
        }
        let str_field = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field {key}"))
        };
        let num_field = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("missing numeric field {key}"))
        };
        let mut category_counts = Vec::new();
        match v.get("sites_by_category") {
            Some(JsonValue::Object(pairs)) => {
                for (name, n) in pairs {
                    let n = n
                        .as_u64()
                        .ok_or_else(|| format!("non-numeric count for category {name}"))?;
                    category_counts.push((name.clone(), n as usize));
                }
            }
            _ => return Err("missing object field sites_by_category".to_string()),
        }
        let mut violations = Vec::new();
        for item in v
            .get("violations")
            .and_then(JsonValue::as_array)
            .ok_or("missing array field violations")?
        {
            violations.push(Violation {
                site: item
                    .get("site")
                    .and_then(JsonValue::as_u64)
                    .ok_or("violation missing site")? as usize,
                category: item
                    .get("category")
                    .and_then(JsonValue::as_str)
                    .ok_or("violation missing category")?
                    .to_string(),
                message: item
                    .get("message")
                    .and_then(JsonValue::as_str)
                    .ok_or("violation missing message")?
                    .to_string(),
            });
        }
        Ok(ChaosReport {
            scheme: str_field("scheme")?,
            seed: num_field("seed")?,
            sites_requested: num_field("sites_requested")? as usize,
            sites_explored: num_field("sites_explored")? as usize,
            journal_writes: num_field("journal_writes")? as usize,
            run_cycles: num_field("run_cycles")?,
            category_counts,
            torn_sites: num_field("torn_sites")? as usize,
            dropped_writes: num_field("dropped_writes")? as usize,
            flips_injected: num_field("flips_injected")? as usize,
            faults_detected: num_field("faults_detected")? as usize,
            max_recovered_epoch: num_field("max_recovered_epoch")?,
            violations,
        })
    }
}

/// Escapes a string as a JSON string literal.
fn json_str(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len() + 2);
    out.push('"');
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ChaosReport {
        ChaosReport {
            scheme: "nvoverlay".into(),
            seed: 7,
            sites_requested: 200,
            sites_explored: 120,
            journal_writes: 4096,
            run_cycles: 999,
            category_counts: vec![("data".into(), 100), ("master-root".into(), 20)],
            torn_sites: 5,
            dropped_writes: 40,
            flips_injected: 11,
            faults_detected: 16,
            max_recovered_epoch: 9,
            violations: vec![],
        }
    }

    #[test]
    fn json_shape_is_stable() {
        let j = sample().to_json();
        assert!(j.starts_with("{\n  \"schema\": 1,\n  \"scheme\": \"nvoverlay\",\n"));
        assert!(j.contains("\"sites_by_category\": {\"data\": 100, \"master-root\": 20},"));
        assert!(j.contains("\"violation_count\": 0,"));
        assert!(j.ends_with("\"violations\": []\n}\n"));
        assert_eq!(sample().to_json(), j, "rendering is deterministic");
    }

    #[test]
    fn json_round_trips_through_from_json() {
        let mut r = sample();
        r.violations.push(Violation {
            site: 9,
            category: "master-root".into(),
            message: "cut \"torn\"".into(),
        });
        let j = r.to_json();
        let back = ChaosReport::from_json(&j).unwrap();
        assert_eq!(back.to_json(), j, "parse/render is a fixed point");
    }

    #[test]
    fn future_schema_reports_are_rejected() {
        let j = sample()
            .to_json()
            .replace("\"schema\": 1,", "\"schema\": 99,");
        let err = ChaosReport::from_json(&j).unwrap_err();
        assert!(err.contains("schema 99"), "got: {err}");
        assert!(ChaosReport::from_json("{").is_err());
        assert!(ChaosReport::from_json("{}").is_err());
    }

    #[test]
    fn violations_render_with_escaping() {
        let mut r = sample();
        r.violations.push(Violation {
            site: 3,
            category: "data".into(),
            message: "token \"9\"\nlost".into(),
        });
        let j = r.to_json();
        assert!(!r.ok());
        assert!(j.contains(
            "{\"site\": 3, \"category\": \"data\", \"message\": \"token \\\"9\\\"\\nlost\"}"
        ));
    }

    #[test]
    fn control_chars_escape_to_unicode() {
        assert_eq!(json_str("a\u{1}b"), "\"a\\u0001b\"");
        assert_eq!(json_str("tab\there"), "\"tab\\there\"");
    }
}
