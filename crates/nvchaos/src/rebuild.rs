//! Rebuilding post-crash durable state from a journal crash cut.
//!
//! The fault plane ([`nvsim::fault::FaultPlane`]) records every NVM write
//! with its semantic payload; a [`CrashCut`] says which of those writes
//! survived. This module replays the surviving writes into the durable
//! state each scheme's recovery procedure would find on the device:
//!
//! * [`RebuiltState`] — the NVOverlay view (epoch-tagged version slots,
//!   master mapping words, the `rec-epoch` root ping-pong cell). It
//!   implements [`DurableState`], so the production
//!   [`nvoverlay::recovery::recover_durable`] runs against it unchanged.
//! * [`rebuild_undo`]/[`undo_expected`] — the software-undo-logging view
//!   (home locations, undo log, epoch commit markers) and the
//!   journal-derived image it must reconstruct.

use nvoverlay::recovery::{DurableState, RootCell};
use nvsim::addr::{LineAddr, Token};
use nvsim::fastmap::FastHashMap;
use nvsim::fault::{CrashCut, FaultPlane, PersistPayload};
use nvsim::rng::Rng64;

/// How faithfully the rebuilt state answers `version_at` queries.
///
/// `BrokenNoEpochFilter` is a deliberately wrong implementation kept for
/// harness self-tests: it ignores the root epoch and always returns the
/// newest durable version, which leaks post-`rec-epoch` writes into the
/// "recovered" image. The chaos invariants must catch it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RebuildFidelity {
    /// Correct §V-E semantics: newest durable version at or below the
    /// root epoch.
    Exact,
    /// Intentionally broken: newest durable version, epoch ignored.
    BrokenNoEpochFilter,
}

/// Durable NVOverlay state reconstructed from a crash cut.
#[derive(Clone, Debug)]
pub struct RebuiltState {
    /// line → durable versions as `(epoch, journal id, token)`, in
    /// journal order (id ascending).
    versions: FastHashMap<LineAddr, Vec<(u64, u64, Token)>>,
    /// Master mapping words replayed from durable `MasterChunk` writes.
    words: FastHashMap<LineAddr, u64>,
    /// Durable `rec-epoch` root writes as `(journal id, epoch)`, id
    /// ascending. The live root is the last entry.
    roots: Vec<(u64, u64)>,
    /// Epoch named by a root write torn by the crash, if any. While set,
    /// `root()` reports a torn cell and recovery must fall back.
    torn_root: Option<u64>,
    /// Durable per-VD context dumps seen (for reporting only).
    context_dumps: usize,
    fidelity: RebuildFidelity,
}

impl RebuiltState {
    /// Replays the surviving prefix of the journal into durable NVOverlay
    /// state.
    ///
    /// Torn-write semantics: data-sized writes (versions, contexts) are
    /// line-atomic — torn means lost. A torn `MasterChunk` keeps a
    /// deterministic prefix of its entries. A torn `RecEpochRoot` leaves
    /// the cell failing its integrity check until
    /// [`fallback_to_previous_root`](Self::fallback_to_previous_root).
    pub fn rebuild(plane: &FaultPlane, cut: &CrashCut, fidelity: RebuildFidelity) -> Self {
        let mut s = Self {
            versions: FastHashMap::default(),
            words: FastHashMap::default(),
            roots: Vec::new(),
            torn_root: None,
            context_dumps: 0,
            fidelity,
        };
        for r in plane.records() {
            let torn = cut.is_torn(r.id);
            if !cut.survives(r.id) && !torn {
                continue;
            }
            match (&r.payload, torn) {
                (Some(PersistPayload::Version { line, token, epoch }), false) => {
                    s.versions
                        .entry(*line)
                        .or_default()
                        .push((*epoch, r.id, *token));
                }
                (Some(PersistPayload::MasterChunk { entries }), false) => {
                    for (l, w) in entries {
                        s.words.insert(*l, *w);
                    }
                }
                (Some(PersistPayload::MasterChunk { entries }), true) => {
                    // Torn chunk: a deterministic prefix of its ≤32 words
                    // made it to the array before the crash.
                    let keep = (r.id as usize) % (entries.len() + 1);
                    for (l, w) in &entries[..keep] {
                        s.words.insert(*l, *w);
                    }
                }
                (Some(PersistPayload::RecEpochRoot { epoch }), false) => {
                    s.roots.push((r.id, *epoch));
                }
                (Some(PersistPayload::RecEpochRoot { epoch }), true) => {
                    s.torn_root = Some(*epoch);
                }
                (Some(PersistPayload::Context { .. }), false) => s.context_dumps += 1,
                // Torn data/context writes are line-atomic: simply lost.
                // Undo-logging payloads don't belong to this scheme view.
                _ => {}
            }
        }
        s
    }

    /// Drops the torn root: recovery restarts from the previous durable
    /// `rec-epoch` cell (the paper's ping-pong root makes this safe —
    /// at most one cell can be torn).
    pub fn fallback_to_previous_root(&mut self) {
        self.torn_root = None;
    }

    /// Flips one random bit in one random master mapping word, modeling
    /// in-array corruption. Returns `(line, original word, bit)` so the
    /// caller can assert detection and then [`heal`](Self::heal) the
    /// word. `None` when no mapping words survived the crash.
    pub fn inject_flip(&mut self, rng: &mut Rng64) -> Option<(LineAddr, u64, u32)> {
        if self.words.is_empty() {
            return None;
        }
        let mut keys: Vec<LineAddr> = self.words.keys().copied().collect();
        keys.sort_by_key(|l| l.raw());
        let line = keys[rng.gen_range(0..keys.len() as u64) as usize];
        let bit = rng.gen_range(0..64u64) as u32;
        let original = self.words[&line];
        self.words.insert(line, original ^ (1u64 << bit));
        Some((line, original, bit))
    }

    /// Restores a mapping word corrupted by [`inject_flip`](Self::inject_flip).
    pub fn heal(&mut self, line: LineAddr, word: u64) {
        self.words.insert(line, word);
    }

    /// Durable versions across all lines.
    pub fn version_count(&self) -> usize {
        self.versions.values().map(Vec::len).sum()
    }

    /// Durable `rec-epoch` root writes (excluding a torn one).
    pub fn root_count(&self) -> usize {
        self.roots.len()
    }

    /// Durable master mapping words.
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    /// Durable per-VD context dumps.
    pub fn context_dumps(&self) -> usize {
        self.context_dumps
    }
}

impl DurableState for RebuiltState {
    fn root(&self) -> RootCell {
        if let Some(epoch) = self.torn_root {
            return RootCell { epoch, torn: true };
        }
        RootCell {
            epoch: self.roots.last().map_or(0, |(_, e)| *e),
            torn: false,
        }
    }

    fn mapping_words(&self) -> Box<dyn Iterator<Item = (LineAddr, u64)> + '_> {
        Box::new(self.words.iter().map(|(l, w)| (*l, *w)))
    }

    fn lines(&self) -> Box<dyn Iterator<Item = LineAddr> + '_> {
        Box::new(self.versions.keys().copied())
    }

    fn version_at(&self, line: LineAddr, epoch: u64) -> Option<Token> {
        let vs = self.versions.get(&line)?;
        match self.fidelity {
            // Newest durable version at or below the root epoch; among
            // equals the latest journal write wins (re-persisted slots).
            RebuildFidelity::Exact => vs
                .iter()
                .filter(|(e, _, _)| *e <= epoch)
                .max_by_key(|(e, id, _)| (*e, *id))
                .map(|(_, _, t)| *t),
            RebuildFidelity::BrokenNoEpochFilter => vs
                .iter()
                .max_by_key(|(e, id, _)| (*e, *id))
                .map(|(_, _, t)| *t),
        }
    }
}

/// The number of epochs with a durable commit marker under `cut`:
/// epochs `0..cutoff` committed; anything at or beyond `cutoff` must be
/// rolled back.
pub fn undo_commit_cutoff(plane: &FaultPlane, cut: &CrashCut) -> u64 {
    let mut cutoff = 0u64;
    for r in plane.records() {
        if let Some(PersistPayload::EpochCommit { epoch }) = &r.payload {
            if cut.survives(r.id) {
                cutoff = cutoff.max(*epoch + 1);
            }
        }
    }
    cutoff
}

/// The image software undo-logging recovery reconstructs from a crash
/// cut: replay surviving home-location writes, find the newest durable
/// epoch commit marker `C`, then roll back every home overwrite from
/// epochs newer than `C` using the (write-ahead, hence durable) undo log.
/// A rolled-back line whose pre-image token is 0 was never committed —
/// it reverts to zero-fill and leaves the image.
pub fn rebuild_undo(plane: &FaultPlane, cut: &CrashCut) -> FastHashMap<LineAddr, Token> {
    let cutoff = undo_commit_cutoff(plane, cut);

    // Home array: last surviving write per line, tagged with its epoch.
    let mut home: FastHashMap<LineAddr, (u64, Token)> = FastHashMap::default();
    // Undo log: earliest surviving pre-image per line among epochs ≥ cutoff.
    let mut undo: FastHashMap<LineAddr, Token> = FastHashMap::default();
    for r in plane.records() {
        if !cut.survives(r.id) {
            continue;
        }
        match &r.payload {
            Some(PersistPayload::DataHome { line, token, epoch }) => {
                home.insert(*line, (*epoch, *token));
            }
            Some(PersistPayload::UndoLog { line, prev, epoch }) if *epoch >= cutoff => {
                undo.entry(*line).or_insert(*prev);
            }
            _ => {}
        }
    }
    let mut image: FastHashMap<LineAddr, Token> = FastHashMap::default();
    for (line, (epoch, token)) in home {
        if epoch >= cutoff {
            // Uncommitted overwrite: roll back to the logged pre-image.
            match undo.get(&line) {
                Some(&prev) if prev != 0 => {
                    image.insert(line, prev);
                }
                _ => {}
            }
        } else {
            image.insert(line, token);
        }
    }
    image
}

/// The journal-derived *expected* image for software undo logging: home
/// writes of epochs older than the newest durable commit marker, replayed
/// in journal order. Computed without consulting the undo log, so it is
/// an independent check on [`rebuild_undo`].
pub fn undo_expected(plane: &FaultPlane, cut: &CrashCut) -> FastHashMap<LineAddr, Token> {
    let cutoff = undo_commit_cutoff(plane, cut);
    let mut image = FastHashMap::default();
    for r in plane.records() {
        if let Some(PersistPayload::DataHome { line, token, epoch }) = &r.payload {
            if *epoch < cutoff && cut.survives(r.id) {
                image.insert(*line, *token);
            }
        }
    }
    image
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvoverlay::mnm::{table::encode_loc, NvmLoc};
    use nvoverlay::recovery::{recover_durable, RecoveryError};
    use nvsim::stats::NvmWriteKind;

    fn line(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    /// A synthetic journal: three version writes across two epochs plus a
    /// root for epoch 1 only.
    fn synthetic_plane() -> FaultPlane {
        let mut p = FaultPlane::new();
        // id 0: line 1 @ epoch 1 (durable below).
        p.record(1, NvmWriteKind::Data, 64, 0, 10);
        p.annotate_last(PersistPayload::Version {
            line: line(1),
            token: 11,
            epoch: 1,
        });
        // id 1: root -> epoch 1.
        p.record(100, NvmWriteKind::MapMetadata, 8, 10, 20);
        p.annotate_last(PersistPayload::RecEpochRoot { epoch: 1 });
        // id 2: line 2 @ epoch 2 (will be lost in the cut).
        p.record(2, NvmWriteKind::Data, 64, 20, 40);
        p.annotate_last(PersistPayload::Version {
            line: line(2),
            token: 22,
            epoch: 2,
        });
        // id 3: line 3 @ epoch 2 (durable past-root version).
        p.record(3, NvmWriteKind::Data, 64, 20, 30);
        p.annotate_last(PersistPayload::Version {
            line: line(3),
            token: 33,
            epoch: 2,
        });
        p
    }

    #[test]
    fn broken_fidelity_leaks_past_root_versions_and_exact_does_not() {
        let plane = synthetic_plane();
        // Crash at site 4 (end), losing id 2 only (id 3 completes first).
        let cut = plane.cut_with_durable_prefix(4, 1, false);
        assert!(cut.survives(3) && !cut.survives(2), "cut shape: {cut:?}");

        let exact = RebuiltState::rebuild(&plane, &cut, RebuildFidelity::Exact);
        let img = recover_durable(&exact).unwrap();
        assert_eq!(img.epoch(), 1);
        assert_eq!(img.read(line(1)), Some(11));
        assert_eq!(img.read(line(3)), None, "epoch 2 is past the root");

        let broken = RebuiltState::rebuild(&plane, &cut, RebuildFidelity::BrokenNoEpochFilter);
        let img = recover_durable(&broken).unwrap();
        assert_eq!(
            img.read(line(3)),
            Some(33),
            "the broken rebuild leaks the uncommitted epoch-2 write"
        );
    }

    #[test]
    fn torn_root_falls_back_to_the_previous_cell() {
        let mut plane = FaultPlane::new();
        plane.record(100, NvmWriteKind::MapMetadata, 8, 0, 10);
        plane.annotate_last(PersistPayload::RecEpochRoot { epoch: 1 });
        plane.record(100, NvmWriteKind::MapMetadata, 8, 10, 20);
        plane.annotate_last(PersistPayload::RecEpochRoot { epoch: 2 });
        // Tear the epoch-2 root write (the only in-flight write).
        let cut = plane.cut_with_durable_prefix(2, 0, true);
        assert!(cut.is_torn(1));
        let mut s = RebuiltState::rebuild(&plane, &cut, RebuildFidelity::Exact);
        assert_eq!(
            recover_durable(&s).unwrap_err(),
            RecoveryError::TornMasterRoot { epoch: 2 }
        );
        s.fallback_to_previous_root();
        assert_eq!(
            s.root(),
            RootCell {
                epoch: 1,
                torn: false
            }
        );
    }

    #[test]
    fn torn_master_chunk_keeps_a_prefix() {
        let mut plane = FaultPlane::new();
        let entries: Vec<(LineAddr, u64)> = (0..4)
            .map(|i| {
                (
                    line(i),
                    encode_loc(NvmLoc {
                        page: i as u32,
                        slot: 0,
                    }),
                )
            })
            .collect();
        plane.record(50, NvmWriteKind::MapMetadata, 256, 0, 10);
        plane.annotate_last(PersistPayload::MasterChunk { entries });
        let cut = plane.cut_with_durable_prefix(1, 0, true);
        let s = RebuiltState::rebuild(&plane, &cut, RebuildFidelity::Exact);
        // id 0, 4 entries → prefix of 0 % 5 = 0 words.
        assert_eq!(s.word_count(), 0);
    }

    #[test]
    fn injected_flip_is_caught_by_recovery_and_heals() {
        let mut plane = FaultPlane::new();
        plane.record(1, NvmWriteKind::Data, 64, 0, 5);
        plane.annotate_last(PersistPayload::Version {
            line: line(1),
            token: 7,
            epoch: 1,
        });
        plane.record(60, NvmWriteKind::MapMetadata, 256, 5, 10);
        plane.annotate_last(PersistPayload::MasterChunk {
            entries: vec![(line(1), encode_loc(NvmLoc { page: 9, slot: 3 }))],
        });
        plane.record(100, NvmWriteKind::MapMetadata, 8, 10, 20);
        plane.annotate_last(PersistPayload::RecEpochRoot { epoch: 1 });
        let cut = plane.cut_with_durable_prefix(3, 3, false);
        let mut s = RebuiltState::rebuild(&plane, &cut, RebuildFidelity::Exact);

        let mut rng = Rng64::seed_from_u64(99);
        let (l, original, _bit) = s.inject_flip(&mut rng).unwrap();
        match recover_durable(&s) {
            Err(RecoveryError::CorruptMapping { line: bad, .. }) => assert_eq!(bad, l),
            other => panic!("flip not detected: {other:?}"),
        }
        s.heal(l, original);
        assert_eq!(recover_durable(&s).unwrap().read(line(1)), Some(7));
    }

    #[test]
    fn undo_rollback_matches_the_journal_expectation() {
        let mut p = FaultPlane::new();
        // Epoch 0: log + home for line 1, then the commit marker.
        p.record(0x5555 ^ 1, NvmWriteKind::Log, 72, 0, 5);
        p.annotate_last(PersistPayload::UndoLog {
            line: line(1),
            prev: 0,
            epoch: 0,
        });
        p.record(1, NvmWriteKind::Data, 64, 5, 10);
        p.annotate_last(PersistPayload::DataHome {
            line: line(1),
            token: 10,
            epoch: 0,
        });
        p.record(0xC0_0417, NvmWriteKind::MapMetadata, 8, 10, 15);
        p.annotate_last(PersistPayload::EpochCommit { epoch: 0 });
        // Epoch 1: log for line 1 (prev = committed 10), home overwrite,
        // marker never durable.
        p.record(0x5555 ^ 1, NvmWriteKind::Log, 72, 15, 20);
        p.annotate_last(PersistPayload::UndoLog {
            line: line(1),
            prev: 10,
            epoch: 1,
        });
        p.record(1, NvmWriteKind::Data, 64, 20, 25);
        p.annotate_last(PersistPayload::DataHome {
            line: line(1),
            token: 99,
            epoch: 1,
        });
        // Crash right after the epoch-1 home write, all 5 writes durable.
        let cut = p.cut_with_durable_prefix(5, 5, false);
        let recovered = rebuild_undo(&p, &cut);
        let expected = undo_expected(&p, &cut);
        assert_eq!(expected.get(&line(1)), Some(&10));
        assert_eq!(recovered, expected, "rollback restores the pre-image");
    }

    #[test]
    fn undo_rollback_removes_lines_never_committed() {
        let mut p = FaultPlane::new();
        p.record(0x5555 ^ 4, NvmWriteKind::Log, 72, 0, 5);
        p.annotate_last(PersistPayload::UndoLog {
            line: line(4),
            prev: 0,
            epoch: 0,
        });
        p.record(4, NvmWriteKind::Data, 64, 5, 10);
        p.annotate_last(PersistPayload::DataHome {
            line: line(4),
            token: 40,
            epoch: 0,
        });
        // No commit marker: everything rolls back to zero-fill.
        let cut = p.cut_with_durable_prefix(2, 2, false);
        assert!(rebuild_undo(&p, &cut).is_empty());
        assert!(undo_expected(&p, &cut).is_empty());
    }
}
