//! The pre-crash oracle: ground truth about the workload derived from
//! the trace alone (no simulator state), against which every recovered
//! image is judged.

use nvsim::addr::{LineAddr, ThreadId, Token};
use nvsim::fastmap::{FastHashMap, FastHashSet};
use nvsim::memsys::MemOp;
use nvsim::trace::{Trace, TraceEvent};

/// Per-trace ground truth: which tokens were written where, in what
/// per-thread order, and which lines are *private* (single-writer) —
/// the lines for which per-thread prefix-cut reasoning applies.
pub struct TraceOracle {
    /// token → (owning thread, per-thread store sequence number).
    order: FastHashMap<Token, (u16, u64)>,
    /// line → every token ever stored to it (program order per thread;
    /// threads concatenated — exact order only meaningful for private
    /// lines).
    line_writes: FastHashMap<LineAddr, Vec<Token>>,
    /// Private lines (exactly one writing thread) → that thread.
    private: Vec<(LineAddr, u16)>,
    threads: usize,
}

impl TraceOracle {
    /// Scans the trace once and builds the oracle.
    pub fn new(trace: &Trace) -> Self {
        let mut order = FastHashMap::default();
        let mut line_writes: FastHashMap<LineAddr, Vec<Token>> = FastHashMap::default();
        let mut writers: FastHashMap<LineAddr, FastHashSet<u16>> = FastHashMap::default();
        for t in 0..trace.thread_count() {
            let mut seq = 0u64;
            for ev in trace.thread(ThreadId(t as u16)) {
                if let TraceEvent::Access {
                    op: MemOp::Store,
                    addr,
                    token,
                } = ev
                {
                    let line = addr.line();
                    order.insert(*token, (t as u16, seq));
                    seq += 1;
                    line_writes.entry(line).or_default().push(*token);
                    writers.entry(line).or_default().insert(t as u16);
                }
            }
        }
        let mut private: Vec<(LineAddr, u16)> = writers
            .iter()
            .filter(|(_, w)| w.len() == 1)
            .map(|(l, w)| (*l, *w.iter().next().expect("non-empty")))
            .collect();
        private.sort_by_key(|(l, _)| l.raw());
        Self {
            order,
            line_writes,
            private,
            threads: trace.thread_count(),
        }
    }

    /// Whether `token` was ever stored to `line` by the workload
    /// (consistency invariant 1: no fabricated data).
    pub fn written_to(&self, line: LineAddr, token: Token) -> bool {
        self.line_writes
            .get(&line)
            .is_some_and(|v| v.contains(&token))
    }

    /// The `(thread, per-thread sequence)` of a store token.
    pub fn order_of(&self, token: Token) -> Option<(u16, u64)> {
        self.order.get(&token).copied()
    }

    /// Every token stored to `line`, in program order (exact for private
    /// lines).
    pub fn writes_to(&self, line: LineAddr) -> &[Token] {
        self.line_writes.get(&line).map_or(&[], Vec::as_slice)
    }

    /// Private lines and their single writer, in address order.
    pub fn private_lines(&self) -> &[(LineAddr, u16)] {
        &self.private
    }

    /// Thread count of the underlying trace.
    pub fn thread_count(&self) -> usize {
        self.threads
    }

    /// Total distinct stored tokens.
    pub fn token_count(&self) -> usize {
        self.order.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvsim::addr::Addr;
    use nvsim::trace::TraceBuilder;

    #[test]
    fn oracle_tracks_order_and_privacy() {
        let mut b = TraceBuilder::new(2);
        let t0 = b.store(ThreadId(0), Addr::new(0)); // private to thread 0
        let t1 = b.store(ThreadId(0), Addr::new(0));
        let t2 = b.store(ThreadId(1), Addr::new(64)); // private to thread 1
        let t3 = b.store(ThreadId(0), Addr::new(128)); // shared line
        let t4 = b.store(ThreadId(1), Addr::new(128));
        let o = TraceOracle::new(&b.build());
        assert_eq!(o.order_of(t0), Some((0, 0)));
        assert_eq!(o.order_of(t1), Some((0, 1)));
        assert_eq!(o.order_of(t2), Some((1, 0)));
        assert!(o.written_to(LineAddr::new(0), t1));
        assert!(!o.written_to(LineAddr::new(0), t2));
        assert_eq!(o.writes_to(LineAddr::new(0)), &[t0, t1]);
        assert_eq!(
            o.private_lines(),
            &[(LineAddr::new(0), 0), (LineAddr::new(1), 1)],
            "line 2 (0x80) is written by both threads"
        );
        assert!(o.written_to(LineAddr::new(2), t3) && o.written_to(LineAddr::new(2), t4));
        assert_eq!(o.token_count(), 5);
    }
}
