//! Deterministic fault exploration of the on-disk snapshot store.
//!
//! The file-I/O sibling of [`crate::explore`]: where the NVM plane
//! crashes the *simulated memory system*, this plane crashes the
//! *backup machinery* around it. [`prepare_store`] runs the workload
//! once, exports the exact snapshot image, records a full
//! backup → incremental backup → remove → gc script against a
//! journaling in-memory store, and selects a seeded sample of crash
//! sites over the op journal. Each site check replays the prefix cut
//! (optionally tearing the boundary write to a byte prefix, optionally
//! flipping one bit in a surviving file — latent media corruption),
//! reopens the store, and asserts the robustness contract:
//!
//! * a **clean crash prefix** (no flip) must open to one of the
//!   script's committed manifests, list exactly that version's backup
//!   set, and restore every listed backup to the byte-exact image that
//!   commit captured — never a panic, never a hybrid;
//! * a **corrupted image** (flip injected) may additionally fail with a
//!   typed [`StoreError`] — but whatever *does* restore is held to the
//!   same exactness;
//! * every successful restore must also pass the consistency-cut
//!   invariants ([`crate::invariants`]) against the trace oracle,
//!   rebuild a live backend whose `time_travel` agrees with the stored
//!   master, and (when the caller injects a [`MountCheck`]) mount under
//!   the query service.
//!
//! Determinism mirrors the NVM plane: one oracle run, pure per-site
//! checks keyed by `(journal, master seed, check index)`, and a
//! byte-stable JSON report — two runs of one seed `cmp` equal.

use crate::explore::SEED_GOLDEN;
use crate::oracle::TraceOracle;
use crate::report::Violation;
use nvoverlay::mnm::Mnm;
use nvoverlay::system::NvOverlaySystem;
use nvsim::addr::{LineAddr, Token};
use nvsim::config::SimConfig;
use nvsim::fastmap::FastHashMap;
use nvsim::memsys::Runner;
use nvsim::rng::Rng64;
use nvsim::trace::Trace;
use nvstore::{MemIo, SnapshotExport, Store, StoreCut, StoreError, StoreFaultPlane, StoreOp};
use std::fmt::Write as _;

/// Schema version stamped into every store-chaos report.
pub const STORE_CHAOS_REPORT_SCHEMA: u64 = 1;

/// A caller-injected mount probe: given the rebuilt live backend and
/// the restored export, verify the snapshot actually serves (the `nvo`
/// CLI injects `nvserve::Mount` here; the crate itself stays free of a
/// dependency cycle on the query service).
pub type MountCheck = dyn Fn(&Mnm, &SnapshotExport) -> Result<(), String> + Sync;

/// Store-exploration parameters.
#[derive(Clone, Debug)]
pub struct StoreChaosConfig {
    /// Number of fault sites (cut draws) to explore.
    pub sites: usize,
    /// Master seed: fixes the site sample and every per-site draw.
    pub seed: u64,
    /// Probability a cut tears its boundary write to a byte prefix
    /// (only meaningful when the boundary op is a write; renames and
    /// removes are atomic).
    pub torn_p: f64,
    /// Probability of flipping one bit in one surviving file after the
    /// cut — latent media corruption the store must *detect*.
    pub flip_p: f64,
}

impl Default for StoreChaosConfig {
    fn default() -> Self {
        StoreChaosConfig {
            sites: 200,
            seed: 7,
            torn_p: 0.25,
            flip_p: 0.10,
        }
    }
}

/// Where in the store's commit protocol a crash site sits, keyed by the
/// op at the crash boundary. Stable kebab-case names, in report order.
const SITE_CATEGORIES: [&str; 9] = [
    "shadow-write",
    "root-write",
    "data-write",
    "layer-publish",
    "manifest-publish",
    "quarantine-move",
    "rename",
    "remove",
    "end-of-script",
];

fn categorize(op: Option<&StoreOp>) -> &'static str {
    match op {
        None => "end-of-script",
        Some(StoreOp::Write { path, .. }) if path.starts_with("tmp/") => "shadow-write",
        Some(StoreOp::Write { path, .. }) if path.starts_with("ROOT.") => "root-write",
        Some(StoreOp::Write { .. }) => "data-write",
        Some(StoreOp::Rename { to, .. }) if to.starts_with("layers/") => "layer-publish",
        Some(StoreOp::Rename { to, .. }) if to.starts_with("manifests/") => "manifest-publish",
        Some(StoreOp::Rename { to, .. }) if to.starts_with("quarantine/") => "quarantine-move",
        Some(StoreOp::Rename { .. }) => "rename",
        Some(StoreOp::Remove { .. }) => "remove",
    }
}

/// The outcome of one store fault-site check.
#[derive(Clone, Debug)]
pub struct StoreSiteResult {
    /// Journal index of the crash site (`plane.len()` = end of script).
    pub site: usize,
    /// Category of the op at the crash boundary.
    pub category: &'static str,
    /// The derived per-check seed.
    pub seed: u64,
    /// Whether the cut tore the boundary write.
    pub torn: bool,
    /// Bit flips injected into the surviving image.
    pub flips: usize,
    /// The file the flip landed in.
    pub flipped_path: Option<String>,
    /// Manifest version the store opened to (`None` = typed open error).
    pub manifest_version: Option<u64>,
    /// Variant names of every typed [`StoreError`] observed.
    pub typed_errors: Vec<String>,
    /// Restores that succeeded and were checked in full.
    pub restores_checked: usize,
    /// Restores additionally verified through the injected mount probe.
    pub mounts_checked: usize,
    /// Contract violations — empty means the site upheld the contract.
    pub violations: Vec<String>,
}

/// One prepared store exploration: the op journal of the scripted
/// session, the two committed snapshot images, and the trace oracle.
/// Site checks borrow it immutably and are independent.
pub struct StoreChaosRun {
    plane: StoreFaultPlane,
    oracle: TraceOracle,
    cfg: StoreChaosConfig,
    /// The full snapshot image ("head" in the script).
    full: SnapshotExport,
    /// The truncated prefix image ("base" in the script).
    base: SnapshotExport,
    /// Selected journal sites, one per check (sites repeat in later
    /// rounds once every distinct site has been drawn).
    sites: Vec<usize>,
}

/// Runs the workload once, exports the snapshot, records the scripted
/// store session, and selects the fault-site sample. Deterministic for
/// a given `(trace, simcfg, cfg)`.
///
/// # Errors
/// A typed [`StoreError`] when the export or the fault-free scripted
/// session itself fails — a harness setup failure, not a chaos finding.
pub fn prepare_store(
    trace: &Trace,
    simcfg: &SimConfig,
    cfg: StoreChaosConfig,
) -> Result<StoreChaosRun, StoreError> {
    let mut sys = NvOverlaySystem::new(simcfg);
    let _ = Runner::new().run(&mut sys, trace);
    let full = SnapshotExport::from_mnm(sys.mnm())?;
    let base = full.truncated((full.rec_epoch / 2).max(1));

    // The scripted session every crash cut is a prefix of: an initial
    // backup, an incremental backup sharing its layer prefix, a remove,
    // and a GC sweep — so cuts land inside layer publication, manifest
    // publication, root flips, pruning, and quarantine moves.
    let mut store = Store::open(MemIo::recording())?;
    store.backup("base", &base)?;
    store.backup("head", &full)?;
    store.remove("head")?;
    store.gc()?;
    let plane = StoreFaultPlane::new(store.into_io().take_journal());

    let sites = select_sites(plane.len(), &cfg);
    Ok(StoreChaosRun {
        plane,
        oracle: TraceOracle::new(trace),
        cfg,
        full,
        base,
        sites,
    })
}

/// Round-robin seeded sampling over `0..=len`: every distinct site is
/// drawn once (in seeded shuffled order) before any site repeats, so a
/// budget larger than the journal still covers every site while extra
/// draws revisit sites with fresh torn/flip coin flips.
fn select_sites(len: usize, cfg: &StoreChaosConfig) -> Vec<usize> {
    let distinct = len + 1;
    let mut out = Vec::with_capacity(cfg.sites);
    let mut round = 0u64;
    while out.len() < cfg.sites {
        let mut pool: Vec<usize> = (0..distinct).collect();
        let mut rng = Rng64::seed_from_u64(cfg.seed ^ 0x0057_07E5 ^ round);
        for i in 0..pool.len() {
            let j = i + rng.gen_range(0..(pool.len() - i) as u64) as usize;
            pool.swap(i, j);
        }
        let take = (cfg.sites - out.len()).min(pool.len());
        out.extend_from_slice(&pool[..take]);
        round += 1;
    }
    out
}

impl StoreChaosRun {
    /// Number of fault-site checks (= `cfg.sites`).
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// The op journal of the scripted session.
    pub fn plane(&self) -> &StoreFaultPlane {
        &self.plane
    }

    /// The exploration parameters.
    pub fn config(&self) -> &StoreChaosConfig {
        &self.cfg
    }

    /// Checks one fault site. Pure: depends only on the journal, the
    /// committed images, and the check's derived seed — safe to fan out
    /// across threads.
    pub fn check_site(&self, i: usize, mount_check: Option<&MountCheck>) -> StoreSiteResult {
        let site = self.sites[i];
        let seed = self.cfg.seed ^ (i as u64).wrapping_mul(SEED_GOLDEN);
        let mut rng = Rng64::seed_from_u64(seed);
        let boundary = self.plane.ops().get(site);
        let torn_keep = match boundary {
            Some(StoreOp::Write { data, .. })
                if !data.is_empty() && rng.gen_bool(self.cfg.torn_p) =>
            {
                Some(rng.gen_range(0..data.len() as u64) as usize)
            }
            _ => None,
        };
        let mut fs = self.plane.replay(&StoreCut { site, torn_keep });
        let mut res = StoreSiteResult {
            site,
            category: categorize(boundary),
            seed,
            torn: torn_keep.is_some(),
            flips: 0,
            flipped_path: None,
            manifest_version: None,
            typed_errors: Vec::new(),
            restores_checked: 0,
            mounts_checked: 0,
            violations: Vec::new(),
        };
        if rng.gen_bool(self.cfg.flip_p) {
            let paths = fs.paths();
            if !paths.is_empty() {
                let path = paths[rng.gen_range(0..paths.len() as u64) as usize].clone();
                if fs.flip_bit(&path, rng.next_u64()) {
                    res.flips = 1;
                    res.flipped_path = Some(path);
                }
            }
        }
        let corrupted = res.flips > 0;
        match Store::open(fs) {
            Err(e) => {
                res.typed_errors.push(e.name().to_string());
                if !corrupted {
                    res.violations.push(format!(
                        "clean crash prefix at site {site} failed to open: {e}"
                    ));
                }
            }
            Ok(store) => self.check_open_store(&store, corrupted, mount_check, &mut res),
        }
        res
    }

    fn check_open_store(
        &self,
        store: &Store<MemIo>,
        corrupted: bool,
        mount_check: Option<&MountCheck>,
        res: &mut StoreSiteResult,
    ) {
        let version = store.manifest().version;
        res.manifest_version = Some(version);
        // The script commits exactly five manifests; anything else is a
        // state no prefix of the script ever produced.
        let expect: &[(&str, &SnapshotExport)] = match version {
            0 => &[],
            1 => &[("base", &self.base)],
            2 => &[("base", &self.base), ("head", &self.full)],
            3 | 4 => &[("base", &self.base)],
            v => {
                res.violations.push(format!(
                    "opened to manifest version {v}, which no prefix of the script committed"
                ));
                return;
            }
        };
        let names: Vec<&str> = store
            .manifest()
            .backups
            .iter()
            .map(|b| b.name.as_str())
            .collect();
        let want: Vec<&str> = expect.iter().map(|(n, _)| *n).collect();
        if names != want {
            res.violations.push(format!(
                "hybrid backup set {names:?} at manifest version {version} (committed state has {want:?})"
            ));
            return;
        }
        for (name, image) in expect {
            match store.restore(name) {
                Err(e) => {
                    res.typed_errors.push(e.name().to_string());
                    if !corrupted {
                        res.violations.push(format!(
                            "restore of {name} failed on a clean crash prefix: {e}"
                        ));
                    }
                }
                Ok(got) => {
                    res.restores_checked += 1;
                    if got != **image {
                        res.violations.push(format!(
                            "restored {name} diverges from the image its commit captured \
                             ({} vs {} master lines)",
                            got.master.len(),
                            image.master.len()
                        ));
                        continue;
                    }
                    self.check_restored(name, &got, mount_check, res);
                }
            }
        }
    }

    /// The deep checks on an exact restore: the consistency-cut
    /// invariants against the trace oracle, a live-backend rebuild
    /// whose `time_travel` agrees with the stored master, and the
    /// injected mount probe.
    fn check_restored(
        &self,
        name: &str,
        got: &SnapshotExport,
        mount_check: Option<&MountCheck>,
        res: &mut StoreSiteResult,
    ) {
        let map: FastHashMap<LineAddr, Token> = got
            .master
            .iter()
            .map(|&(l, t)| (LineAddr::new(l), t))
            .collect();
        crate::invariants::check_token_validity(&self.oracle, &map, &mut res.violations);
        crate::invariants::check_prefix_cut(&self.oracle, &map, &mut res.violations);
        match got.rebuild() {
            Err(e) => res.violations.push(format!(
                "restored {name} failed to rebuild a live backend: {e}"
            )),
            Ok((mnm, _nvm)) => {
                let stride = (got.master.len() / 16).max(1);
                for &(l, t) in got.master.iter().step_by(stride) {
                    if mnm.time_travel(LineAddr::new(l), got.rec_epoch) != Some(t) {
                        res.violations.push(format!(
                            "time_travel({l:#x}, {}) on the rebuilt backend diverges from \
                             the restored master of {name}",
                            got.rec_epoch
                        ));
                    }
                }
                if let Some(check) = mount_check {
                    res.mounts_checked += 1;
                    if let Err(msg) = check(&mnm, got) {
                        res.violations
                            .push(format!("mount check failed for {name}: {msg}"));
                    }
                }
            }
        }
    }

    /// Aggregates site results into a report (deterministic field
    /// order; violations ascend by site then message).
    pub fn summarize(&self, results: &[StoreSiteResult]) -> StoreChaosReport {
        let mut category_counts: Vec<(String, usize)> =
            SITE_CATEGORIES.iter().map(|c| (c.to_string(), 0)).collect();
        for r in results {
            let slot = category_counts
                .iter_mut()
                .find(|(n, _)| n == r.category)
                .expect("categorize returns a listed name");
            slot.1 += 1;
        }
        let mut typed_errors: Vec<(String, usize)> = Vec::new();
        for r in results {
            for e in &r.typed_errors {
                match typed_errors.iter_mut().find(|(n, _)| n == e) {
                    Some((_, n)) => *n += 1,
                    None => typed_errors.push((e.clone(), 1)),
                }
            }
        }
        typed_errors.sort();
        let mut violations: Vec<Violation> = Vec::new();
        for r in results {
            for m in &r.violations {
                violations.push(Violation {
                    site: r.site,
                    category: r.category.to_string(),
                    message: m.clone(),
                });
            }
        }
        violations.sort_by(|a, b| (a.site, &a.message).cmp(&(b.site, &b.message)));
        let (mut writes, mut renames, mut removes) = (0usize, 0usize, 0usize);
        for op in self.plane.ops() {
            match op {
                StoreOp::Write { .. } => writes += 1,
                StoreOp::Rename { .. } => renames += 1,
                StoreOp::Remove { .. } => removes += 1,
            }
        }
        StoreChaosReport {
            seed: self.cfg.seed,
            sites_requested: self.cfg.sites,
            sites_explored: results.len(),
            journal_writes: writes,
            journal_renames: renames,
            journal_removes: removes,
            category_counts,
            torn_sites: results.iter().filter(|r| r.torn).count(),
            flips_injected: results.iter().map(|r| r.flips).sum(),
            typed_errors,
            restores_checked: results.iter().map(|r| r.restores_checked).sum(),
            mounts_checked: results.iter().map(|r| r.mounts_checked).sum(),
            max_manifest_version: results
                .iter()
                .filter_map(|r| r.manifest_version)
                .max()
                .unwrap_or(0),
            violations,
        }
    }
}

/// Aggregated outcome of one store fault exploration.
#[derive(Clone, Debug)]
pub struct StoreChaosReport {
    /// Master seed of the exploration.
    pub seed: u64,
    /// Fault sites asked for.
    pub sites_requested: usize,
    /// Fault sites actually checked.
    pub sites_explored: usize,
    /// File writes in the scripted session's journal.
    pub journal_writes: usize,
    /// Renames in the journal.
    pub journal_renames: usize,
    /// Removes in the journal.
    pub journal_removes: usize,
    /// Checked sites per boundary-op category, in stable order.
    pub category_counts: Vec<(String, usize)>,
    /// Cuts that tore their boundary write.
    pub torn_sites: usize,
    /// Bit flips injected.
    pub flips_injected: usize,
    /// Typed error variants observed, name-sorted with counts.
    pub typed_errors: Vec<(String, usize)>,
    /// Restores that succeeded and were verified byte-exact.
    pub restores_checked: usize,
    /// Restores additionally verified through the mount probe.
    pub mounts_checked: usize,
    /// Newest manifest version any site opened to.
    pub max_manifest_version: u64,
    /// Every contract violation found (empty = contract upheld).
    pub violations: Vec<Violation>,
}

impl StoreChaosReport {
    /// Whether every checked site upheld the robustness contract.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Deterministic JSON rendering (trailing newline included): two
    /// runs of one seed produce byte-identical output.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(512);
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": {},", STORE_CHAOS_REPORT_SCHEMA);
        let _ = writeln!(s, "  \"seed\": {},", self.seed);
        let _ = writeln!(s, "  \"sites_requested\": {},", self.sites_requested);
        let _ = writeln!(s, "  \"sites_explored\": {},", self.sites_explored);
        let _ = writeln!(s, "  \"journal_writes\": {},", self.journal_writes);
        let _ = writeln!(s, "  \"journal_renames\": {},", self.journal_renames);
        let _ = writeln!(s, "  \"journal_removes\": {},", self.journal_removes);
        s.push_str("  \"sites_by_category\": {");
        for (i, (name, n)) in self.category_counts.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "\"{name}\": {n}");
        }
        s.push_str("},\n");
        let _ = writeln!(s, "  \"torn_sites\": {},", self.torn_sites);
        let _ = writeln!(s, "  \"flips_injected\": {},", self.flips_injected);
        s.push_str("  \"typed_errors\": {");
        for (i, (name, n)) in self.typed_errors.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "\"{name}\": {n}");
        }
        s.push_str("},\n");
        let _ = writeln!(s, "  \"restores_checked\": {},", self.restores_checked);
        let _ = writeln!(s, "  \"mounts_checked\": {},", self.mounts_checked);
        let _ = writeln!(
            s,
            "  \"max_manifest_version\": {},",
            self.max_manifest_version
        );
        let _ = writeln!(s, "  \"violation_count\": {},", self.violations.len());
        s.push_str("  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\n    {{\"site\": {}, \"category\": \"{}\", \"message\": \"{}\"}}",
                v.site,
                v.category,
                nvsim::json::escape(&v.message)
            );
        }
        if !self.violations.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }
}

/// Serial convenience: prepare, check every site, summarize.
///
/// # Errors
/// Propagates [`prepare_store`]'s setup failures.
pub fn explore_store(
    trace: &Trace,
    simcfg: &SimConfig,
    cfg: StoreChaosConfig,
    mount_check: Option<&MountCheck>,
) -> Result<StoreChaosReport, StoreError> {
    let run = prepare_store(trace, simcfg, cfg)?;
    let results: Vec<StoreSiteResult> = (0..run.site_count())
        .map(|i| run.check_site(i, mount_check))
        .collect();
    Ok(run.summarize(&results))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvsim::addr::{Addr, ThreadId};
    use nvsim::trace::TraceBuilder;

    fn small_cfg() -> SimConfig {
        SimConfig::builder()
            .cores(4, 2)
            .l1(2 * 1024, 4, 4)
            .l2(8 * 1024, 8, 8)
            .llc(64 * 1024, 8, 30, 2)
            .epoch_size_stores(60)
            .build()
            .unwrap()
    }

    fn small_trace() -> Trace {
        let mut b = TraceBuilder::new(4);
        let mut token = 1u64;
        for round in 0..120u64 {
            for t in 0..4u16 {
                let line = if (round + t as u64).is_multiple_of(9) {
                    LineAddr::new(0x7000 + round % 16)
                } else {
                    LineAddr::new(0x1000 * (t as u64 + 1) + round % 48)
                };
                b.store_with_token(ThreadId(t), Addr::from(line), token);
                token += 1;
            }
        }
        b.build()
    }

    #[test]
    fn every_site_upholds_the_store_contract() {
        let cfg = StoreChaosConfig {
            sites: 120,
            ..StoreChaosConfig::default()
        };
        let report = explore_store(&small_trace(), &small_cfg(), cfg, None).unwrap();
        assert!(
            report.ok(),
            "store contract violations:\n{}",
            report
                .violations
                .iter()
                .map(|v| format!("site {} [{}]: {}", v.site, v.category, v.message))
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert_eq!(report.sites_explored, 120);
        assert!(report.restores_checked > 0, "no restore was ever checked");
        assert_eq!(report.max_manifest_version, 4);
    }

    #[test]
    fn exploration_is_deterministic() {
        let cfg = StoreChaosConfig {
            sites: 40,
            ..StoreChaosConfig::default()
        };
        let a = explore_store(&small_trace(), &small_cfg(), cfg.clone(), None).unwrap();
        let b = explore_store(&small_trace(), &small_cfg(), cfg, None).unwrap();
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn flips_surface_as_typed_errors_not_panics() {
        // Force corruption on every site: every typed failure must be a
        // named StoreError variant, and clean opens must still restore
        // exact images (check_site flags anything else as a violation).
        let cfg = StoreChaosConfig {
            sites: 80,
            flip_p: 1.0,
            ..StoreChaosConfig::default()
        };
        let report = explore_store(&small_trace(), &small_cfg(), cfg, None).unwrap();
        assert!(
            report.ok(),
            "corrupted sites broke the contract:\n{}",
            report
                .violations
                .iter()
                .map(|v| v.message.clone())
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert!(report.flips_injected > 0, "flip_p=1.0 never flipped");
    }

    #[test]
    fn mount_check_is_invoked_and_failures_are_violations() {
        let cfg = StoreChaosConfig {
            sites: 12,
            flip_p: 0.0,
            ..StoreChaosConfig::default()
        };
        let fail: Box<MountCheck> = Box::new(|_, _| Err("synthetic mount failure".into()));
        let report = explore_store(&small_trace(), &small_cfg(), cfg, Some(&*fail)).unwrap();
        assert!(report.mounts_checked > 0);
        assert!(report
            .violations
            .iter()
            .any(|v| v.message.contains("synthetic mount failure")));
    }
}
