//! # nvchaos — deterministic fault injection and crash-site exploration
//!
//! NVOverlay's claim is not "fast snapshots" but *recoverable* fast
//! snapshots: after an arbitrary power cut, scanning the Master Mapping
//! Table at `rec-epoch` must reconstruct a consistent cut of the
//! workload (paper §III-C, §V-E). This crate tests that claim the hard
//! way, by crashing the simulated system everywhere and recovering.
//!
//! The pieces:
//!
//! * [`nvsim::fault`] (the persistence-order shadow model) journals
//!   every NVM write with its logical payload; a crash durably retains
//!   only a prefix-closed subset — in device drain order — of the
//!   in-flight window, with at most one torn boundary write.
//! * [`oracle::TraceOracle`] holds ground truth about the workload
//!   (per-thread write order, single-writer lines).
//! * [`rebuild`] replays a crash cut of the journal into the durable
//!   state recovery would find, for NVOverlay ([`rebuild::RebuiltState`]
//!   implements the production [`nvoverlay::recovery::DurableState`])
//!   and for the undo-logging baseline.
//! * [`explore`] selects a stratified seeded sample of crash sites —
//!   including sites *inside* OMC flushes and mid-`Mmaster` update —
//!   checks each independently, and aggregates a deterministic
//!   [`report::ChaosReport`]. Beyond crashes it injects faults recovery
//!   must *detect*: torn `rec-epoch` roots, single-bit flips in mapping
//!   words, dropped in-flight writes, sustained NVM backpressure.
//!
//! Determinism: one oracle simulation per scheme; each site check is a
//! pure function of `(journal, master seed, site index)`. Two runs with
//! the same seed produce byte-identical JSON, and any failing site can
//! be replayed from its recorded per-site seed.
//!
//! Entry points: [`explore::prepare`] + [`explore::ChaosRun::check_site`]
//! for parallel fan-out (the `nvo chaos` subcommand), or the serial
//! [`explore::explore`] convenience.

pub mod explore;
pub mod invariants;
pub mod oracle;
pub mod rebuild;
pub mod report;
pub mod store_chaos;

pub use explore::{explore, prepare, ChaosConfig, ChaosRun, ChaosScheme, SiteCategory, SiteResult};
pub use oracle::TraceOracle;
pub use rebuild::{rebuild_undo, undo_expected, RebuildFidelity, RebuiltState};
pub use report::{ChaosReport, Violation};
pub use store_chaos::{
    explore_store, prepare_store, MountCheck, StoreChaosConfig, StoreChaosReport, StoreChaosRun,
    StoreSiteResult,
};
