//! The consistency-cut invariants, as standalone checkers.
//!
//! Both chaos planes — the in-simulation NVM crash explorer
//! ([`crate::explore`]) and the on-disk store explorer
//! ([`crate::store_chaos`]) — must hold every recovered/restored image
//! to the same two oracle-backed invariants (the third, image equality
//! against a journal- or backup-derived expectation, is computed by
//! each plane from its own ground truth). Extracting them here keeps
//! the two planes literally running the same checks.

use nvsim::fastmap::FastHashMap;
use nvsim::{LineAddr, Token};

use crate::oracle::TraceOracle;

/// Invariant 1: every recovered token was actually written to that line
/// by the workload. Violations are appended to `out`.
pub fn check_token_validity(
    oracle: &TraceOracle,
    img: &FastHashMap<LineAddr, Token>,
    out: &mut Vec<String>,
) {
    for (l, t) in img {
        if !oracle.written_to(*l, *t) {
            out.push(format!(
                "line {:#x} recovered with token {t} never written there",
                l.raw()
            ));
        }
    }
}

/// Invariant 2: per-thread prefix cut on private (single-writer) lines —
/// if the image reflects thread `t`'s write number `s`, it cannot miss
/// an earlier final write by the same thread. Violations are appended
/// to `out`.
pub fn check_prefix_cut(
    oracle: &TraceOracle,
    img: &FastHashMap<LineAddr, Token>,
    out: &mut Vec<String>,
) {
    let threads = oracle.thread_count();
    let mut cut_seq: Vec<Option<u64>> = vec![None; threads];
    for (line, owner) in oracle.private_lines() {
        let Some(&tok) = img.get(line) else { continue };
        let Some((t, s)) = oracle.order_of(tok) else {
            continue; // already reported by invariant 1
        };
        if t != *owner {
            out.push(format!(
                "private line {:#x} of thread {owner} recovered with thread {t}'s token",
                line.raw()
            ));
            continue;
        }
        let c = &mut cut_seq[t as usize];
        *c = Some(c.map_or(s, |p| p.max(s)));
    }
    for (line, owner) in oracle.private_lines() {
        let Some(cut) = cut_seq[*owner as usize] else {
            continue;
        };
        let last = *oracle.writes_to(*line).last().expect("written line");
        let (_, s) = oracle.order_of(last).expect("traced token");
        if s <= cut && img.get(line) != Some(&last) {
            out.push(format!(
                "thread {owner}'s cut reflects write #{cut} but private line {:#x} \
                 is not at its final write #{s}",
                line.raw()
            ));
        }
    }
}
