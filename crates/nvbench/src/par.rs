//! Parallel experiment engine.
//!
//! Every figure and ablation in the suite is a matrix of independent
//! (scheme, workload, config) simulations. This module fans those runs
//! out over a work-queue of OS threads (`std::thread::scope`, no
//! external crates) while keeping the *output byte-identical to the
//! serial driver*: results are collected by submission index, so
//! consumers iterate them in exactly the order a `for` loop would have
//! produced. Each simulation is single-threaded and deterministic;
//! parallelism only changes wall-clock time, never results.
//!
//! Worker count comes from [`default_jobs`]: the `NVO_JOBS` environment
//! variable if set, otherwise `std::thread::available_parallelism`.
//! `jobs <= 1` degrades to a plain serial loop on the calling thread —
//! the determinism regression test (`tests/determinism.rs`) pins the
//! parallel engine against that path.
//!
//! Traces are the expensive shared input: [`gen_traces`] generates each
//! workload trace once (itself in parallel), packs it into the flat
//! replay encoding, and hands out `Arc<PackedTrace>` clones, so an
//! N-scheme sweep neither regenerates nor re-packs the workload N
//! times.

use crate::exp::{run_scheme, run_scheme_stats, ExpResult, Scheme};
use nvsim::stats::SystemStats;
use nvsim::trace::PackedTrace;
use nvsim::SimConfig;
use nvworkloads::{generate, SuiteParams, Workload};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// The worker count: `NVO_JOBS` if set to a positive integer, else the
/// machine's available parallelism, else 1.
pub fn default_jobs() -> usize {
    if let Ok(v) = std::env::var("NVO_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `task(0..n)` across `jobs` worker threads and returns the
/// results **in index order** — byte-identical to the serial loop
/// `(0..n).map(task).collect()`.
///
/// The queue is a single atomic cursor: workers claim the next index
/// until the range is exhausted. With `jobs <= 1` (or `n <= 1`) no
/// threads are spawned at all.
///
/// # Panics
/// Propagates a panic from any task after all workers stop.
pub fn run_ordered<T, F>(n: usize, jobs: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if jobs <= 1 || n <= 1 {
        return (0..n).map(task).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(n) {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = task(i);
                *slots[i].lock().expect("result slot") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("result slot")
                .expect("every index was claimed and completed")
        })
        .collect()
}

/// Generates one trace per workload (in parallel), packs it, and shares
/// each via `Arc`, in the order given.
pub fn gen_traces(
    workloads: &[Workload],
    params: &SuiteParams,
    jobs: usize,
) -> Vec<Arc<PackedTrace>> {
    run_ordered(workloads.len(), jobs, |i| {
        Arc::new(generate(workloads[i], params).to_packed())
    })
}

/// Runs every (trace × scheme) pair of the matrix in parallel. The
/// result is row-per-trace, column-per-scheme, in the given orders —
/// the same nesting as the serial double loop.
pub fn run_matrix(
    schemes: &[Scheme],
    cfg: &Arc<SimConfig>,
    traces: &[Arc<PackedTrace>],
    jobs: usize,
) -> Vec<Vec<ExpResult>> {
    let cols = schemes.len();
    let flat = run_ordered(traces.len() * cols, jobs, |i| {
        run_scheme(schemes[i % cols], cfg, &traces[i / cols])
    });
    let mut rows = Vec::with_capacity(traces.len());
    let mut it = flat.into_iter();
    for _ in 0..traces.len() {
        rows.push(it.by_ref().take(cols).collect());
    }
    rows
}

/// [`run_matrix`], but each cell also carries the scheme's full stats
/// block so consumers can aggregate with [`SystemStats::merge`] instead
/// of re-deriving scalars. Same ordering guarantee as [`run_matrix`].
pub fn run_matrix_stats(
    schemes: &[Scheme],
    cfg: &Arc<SimConfig>,
    traces: &[Arc<PackedTrace>],
    jobs: usize,
) -> Vec<Vec<(ExpResult, SystemStats)>> {
    let cols = schemes.len();
    let flat = run_ordered(traces.len() * cols, jobs, |i| {
        let (res, stats, _) = run_scheme_stats(schemes[i % cols], cfg, &traces[i / cols]);
        (res, stats)
    });
    let mut rows = Vec::with_capacity(traces.len());
    let mut it = flat.into_iter();
    for _ in 0..traces.len() {
        rows.push(it.by_ref().take(cols).collect());
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_ordered_preserves_submission_order() {
        for jobs in [1, 2, 8] {
            let out = run_ordered(100, jobs, |i| i * 3);
            assert_eq!(
                out,
                (0..100).map(|i| i * 3).collect::<Vec<_>>(),
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn run_ordered_handles_empty_and_single() {
        assert_eq!(run_ordered(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(run_ordered(1, 4, |i| i + 7), vec![7]);
    }

    #[test]
    fn run_ordered_uses_fewer_workers_than_tasks() {
        let out = run_ordered(3, 64, |i| i);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn jobs_env_overrides_default() {
        // Serialized via the single-threaded test below only reading —
        // set and restore around the check.
        std::env::set_var("NVO_JOBS", "3");
        assert_eq!(default_jobs(), 3);
        std::env::set_var("NVO_JOBS", "not-a-number");
        assert!(default_jobs() >= 1);
        std::env::remove_var("NVO_JOBS");
        assert!(default_jobs() >= 1);
    }
}
