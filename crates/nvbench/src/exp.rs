//! Shared experiment driver.
//!
//! Builds any of the seven systems (ideal + five baselines + NVOverlay),
//! replays a workload trace against it, and collects the quantities the
//! paper's figures report: wall-clock cycles, NVM bytes by purpose,
//! eviction-reason decomposition, bandwidth series, and NVOverlay's
//! mapping-table metrics.

use nvbaselines::{HwShadow, IdealSystem, Picl, PiclLevel, SwShadow, SwUndoLogging};
use nvoverlay::system::{NvOverlayOptions, NvOverlaySystem};
use nvsim::memsys::{MemorySystem, Runner};
use nvsim::metrics::Registry;
use nvsim::stats::{EvictReason, NvmWriteKind, SystemStats};
use nvsim::trace::PackedTrace;
use nvsim::SimConfig;
use std::fmt;
use std::sync::Arc;

/// The schemes compared across the paper's figures.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Scheme {
    /// No snapshotting (Fig 11's normalization baseline).
    Ideal,
    /// Software undo logging.
    SwLogging,
    /// Software shadow paging.
    SwShadow,
    /// ThyNVM-like hardware shadow paging.
    HwShadow,
    /// PiCL hardware undo logging (LLC level).
    Picl,
    /// PiCL at the L2 level.
    PiclL2,
    /// NVOverlay.
    NvOverlay,
    /// NVOverlay with the battery-backed OMC buffer (Fig 16).
    NvOverlayBuffered,
}

impl Scheme {
    /// The six schemes of Fig 11/12, figure order.
    pub const FIGURE: [Scheme; 6] = [
        Scheme::SwLogging,
        Scheme::SwShadow,
        Scheme::HwShadow,
        Scheme::Picl,
        Scheme::PiclL2,
        Scheme::NvOverlay,
    ];

    /// Every scheme, for listings.
    pub const ALL: [Scheme; 8] = [
        Scheme::Ideal,
        Scheme::SwLogging,
        Scheme::SwShadow,
        Scheme::HwShadow,
        Scheme::Picl,
        Scheme::PiclL2,
        Scheme::NvOverlay,
        Scheme::NvOverlayBuffered,
    ];

    /// Parses a scheme label (case/punctuation-insensitive).
    pub fn from_name(s: &str) -> Option<Scheme> {
        let k = s.to_ascii_lowercase().replace([' ', '-', '_', '+'], "");
        Scheme::ALL.into_iter().find(|x| {
            x.name()
                .to_ascii_lowercase()
                .replace([' ', '-', '_', '+'], "")
                == k
        })
    }

    /// Figure label.
    pub fn name(&self) -> &'static str {
        match self {
            Scheme::Ideal => "Ideal",
            Scheme::SwLogging => "SW Logging",
            Scheme::SwShadow => "SW Shadow",
            Scheme::HwShadow => "HW Shadow",
            Scheme::Picl => "PiCL",
            Scheme::PiclL2 => "PiCL-L2",
            Scheme::NvOverlay => "NVOverlay",
            Scheme::NvOverlayBuffered => "NVOverlay+Buf",
        }
    }

    /// Instantiates the scheme's memory system. The configuration handle
    /// is shared (`Arc` bump), not cloned, so matrix sweeps hand every
    /// cell the same immutable config.
    pub fn build(&self, cfg: &Arc<SimConfig>) -> Box<dyn MemorySystem> {
        match self {
            Scheme::Ideal => Box::new(IdealSystem::new_shared(Arc::clone(cfg))),
            Scheme::SwLogging => Box::new(SwUndoLogging::new_shared(Arc::clone(cfg))),
            Scheme::SwShadow => Box::new(SwShadow::new_shared(Arc::clone(cfg))),
            Scheme::HwShadow => Box::new(HwShadow::new_shared(Arc::clone(cfg))),
            Scheme::Picl => Box::new(Picl::new_shared(Arc::clone(cfg), PiclLevel::Llc)),
            Scheme::PiclL2 => Box::new(Picl::new_shared(Arc::clone(cfg), PiclLevel::L2)),
            Scheme::NvOverlay => Box::new(NvOverlaySystem::new_shared(Arc::clone(cfg))),
            Scheme::NvOverlayBuffered => {
                Box::new(NvOverlaySystem::with_omc_buffer_shared(Arc::clone(cfg)))
            }
        }
    }

    /// Instantiates NVOverlay with explicit options (ablations).
    pub fn build_nvoverlay(cfg: &Arc<SimConfig>, opts: NvOverlayOptions) -> Box<dyn MemorySystem> {
        Box::new(NvOverlaySystem::with_options_shared(Arc::clone(cfg), opts))
    }

    /// Whether the scheme's memory system replays island-sharded —
    /// [`MemorySystem::shardable`] as a static property, so dispatchers
    /// can route without constructing a throwaway system just to ask.
    /// Must agree with every instance's answer; a test pins that.
    pub fn shardable(&self) -> bool {
        !matches!(self, Scheme::HwShadow)
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The measured outcome of one (scheme, workload) run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExpResult {
    /// Wall-clock cycles of the run.
    pub cycles: u64,
    /// Persistence stall cycles summed over cores.
    pub stall_cycles: u64,
    /// NVM bytes by purpose.
    pub data_bytes: u64,
    /// Log bytes.
    pub log_bytes: u64,
    /// Mapping-metadata bytes.
    pub meta_bytes: u64,
    /// Context-dump bytes.
    pub context_bytes: u64,
    /// NVM write-request count (data only).
    pub data_writes: u64,
    /// Eviction-reason decomposition.
    pub evict_capacity: u64,
    /// Coherence-driven (downgrade+invalidation) plus log writes.
    pub evict_coherence_log: u64,
    /// Tag-walk write-backs.
    pub evict_tag_walk: u64,
    /// Store-evictions (NVOverlay only).
    pub evict_store: u64,
    /// Epochs completed.
    pub epochs: u64,
    /// NVM bandwidth series resampled to 100 buckets (bytes per bucket).
    pub bandwidth_100: Vec<u64>,
    /// Bandwidth bucket width in cycles (before resampling).
    pub bucket_cycles: u64,
}

impl ExpResult {
    fn from_stats(stats: &SystemStats, cycles: u64, stall: u64) -> Self {
        let ev = &stats.evictions;
        Self {
            cycles,
            stall_cycles: stall,
            data_bytes: stats.nvm.bytes(NvmWriteKind::Data),
            log_bytes: stats.nvm.bytes(NvmWriteKind::Log),
            meta_bytes: stats.nvm.bytes(NvmWriteKind::MapMetadata),
            context_bytes: stats.nvm.bytes(NvmWriteKind::Context),
            data_writes: stats.nvm.writes(NvmWriteKind::Data),
            evict_capacity: ev.count(EvictReason::CapacityMiss),
            evict_coherence_log: ev.count(EvictReason::CoherenceDowngrade)
                + ev.count(EvictReason::CoherenceInvalidation)
                + ev.count(EvictReason::LogWrite)
                + ev.count(EvictReason::EpochFlush),
            evict_tag_walk: ev.count(EvictReason::TagWalk),
            evict_store: ev.count(EvictReason::StoreEviction),
            epochs: stats.epochs_completed,
            bandwidth_100: stats.nvm_bandwidth.resample(100),
            bucket_cycles: stats.nvm_bandwidth.bucket_cycles(),
        }
    }

    /// Total NVM bytes across all purposes.
    pub fn total_bytes(&self) -> u64 {
        self.data_bytes + self.log_bytes + self.meta_bytes + self.context_bytes
    }
}

/// Runs `trace` against `scheme` under `cfg` and collects the result.
pub fn run_scheme(scheme: Scheme, cfg: &Arc<SimConfig>, trace: &PackedTrace) -> ExpResult {
    run_scheme_stats(scheme, cfg, trace).0
}

/// Drives one concrete system through the replay loop. Monomorphized per
/// scheme type so the scheme's whole access path inlines into its loop —
/// this is the hot part of every figure sweep; keep it free of `dyn`.
fn drive<S: MemorySystem>(mut sys: S, trace: &PackedTrace) -> (ExpResult, SystemStats, Registry) {
    let report = Runner::new().run_packed(&mut sys, trace);
    let res = ExpResult::from_stats(sys.stats(), report.cycles, report.stall_cycles);
    (res, sys.stats().clone(), sys.metrics())
}

/// Like [`run_scheme`], but also returns the scheme's full stats block
/// (for [`SystemStats::merge`]-based aggregation) and its hierarchical
/// metrics registry (for the flat exporters).
pub fn run_scheme_stats(
    scheme: Scheme,
    cfg: &Arc<SimConfig>,
    trace: &PackedTrace,
) -> (ExpResult, SystemStats, Registry) {
    match scheme {
        Scheme::Ideal => drive(IdealSystem::new_shared(Arc::clone(cfg)), trace),
        Scheme::SwLogging => drive(SwUndoLogging::new_shared(Arc::clone(cfg)), trace),
        Scheme::SwShadow => drive(SwShadow::new_shared(Arc::clone(cfg)), trace),
        Scheme::HwShadow => drive(HwShadow::new_shared(Arc::clone(cfg)), trace),
        Scheme::Picl => drive(Picl::new_shared(Arc::clone(cfg), PiclLevel::Llc), trace),
        Scheme::PiclL2 => drive(Picl::new_shared(Arc::clone(cfg), PiclLevel::L2), trace),
        Scheme::NvOverlay => drive(NvOverlaySystem::new_shared(Arc::clone(cfg)), trace),
        Scheme::NvOverlayBuffered => drive(
            NvOverlaySystem::with_omc_buffer_shared(Arc::clone(cfg)),
            trace,
        ),
    }
}

/// Outcome of one sharded scheme run: the standard result triple plus
/// the shard-execution summary (zeroed when the scheme fell back to the
/// serial path).
#[derive(Clone, Debug)]
pub struct ShardedSchemeRun {
    /// The figure-level result.
    pub result: ExpResult,
    /// The merged stats block (ascending island order).
    pub stats: SystemStats,
    /// The merged metrics registry (ascending island order).
    pub metrics: Registry,
    /// Whether the sharded path actually ran (`false`: the scheme is
    /// serial-only and [`run_scheme_stats`] drove it instead).
    pub sharded: bool,
    /// Islands in the plan (0 when serial).
    pub islands: usize,
    /// Barrier windows in the plan (0 when serial).
    pub windows: u64,
    /// Windows at which islands actually rendezvoused — the plan's
    /// coalesced cadence (0 when serial).
    pub rendezvous_windows: u64,
    /// Cross-island exchange entries applied (0 when serial).
    pub imported_lines: u64,
    /// Stall-attribution profile (`Some` only when profiling was
    /// requested *and* the sharded path actually ran).
    pub profile: Option<nvsim::ShardProfile>,
}

/// Like [`run_scheme_stats`], but replays the trace island-sharded over
/// `shards` worker threads (see `nvsim::shard`). The result is
/// invariant to `shards` by construction — the plan, the barrier
/// protocol, and the exchange maps depend only on the trace and the
/// machine configuration — which `tests/shard_determinism.rs` pins.
///
/// Schemes whose `MemorySystem::shardable` is `false` (HW Shadow's
/// global checkpoint quiesce) fall back to the serial driver, so every
/// scheme remains runnable under any `--shards` value.
pub fn run_scheme_sharded(
    scheme: Scheme,
    cfg: &Arc<SimConfig>,
    trace: &PackedTrace,
    shards: usize,
) -> ShardedSchemeRun {
    run_scheme_sharded_prof(scheme, cfg, trace, shards, false)
}

/// [`run_scheme_sharded`] with optional stall-attribution profiling.
/// With `profiled` set (and the scheme actually shardable), the returned
/// [`ShardedSchemeRun::profile`] carries the full
/// [`nvsim::ShardProfile`]; the replay results are byte-identical either
/// way.
pub fn run_scheme_sharded_prof(
    scheme: Scheme,
    cfg: &Arc<SimConfig>,
    trace: &PackedTrace,
    shards: usize,
    profiled: bool,
) -> ShardedSchemeRun {
    run_scheme_sharded_exec(scheme, cfg, trace, shards, profiled, true)
}

/// [`run_scheme_sharded_prof`] with explicit control of window
/// coalescing. `coalesce: false` keeps the plan's rendezvous cadence
/// (and therefore every result byte) but physically parks workers at
/// silent windows' barriers too — the pre-coalescing pacing, used by the
/// coalescing differential tests and `nvo run --no-coalesce`.
pub fn run_scheme_sharded_exec(
    scheme: Scheme,
    cfg: &Arc<SimConfig>,
    trace: &PackedTrace,
    shards: usize,
    profiled: bool,
    coalesce: bool,
) -> ShardedSchemeRun {
    if !scheme.shardable() {
        let (result, stats, metrics) = run_scheme_stats(scheme, cfg, trace);
        return ShardedSchemeRun {
            result,
            stats,
            metrics,
            sharded: false,
            islands: 0,
            windows: 0,
            rendezvous_windows: 0,
            imported_lines: 0,
            profile: None,
        };
    }
    // The memoized plan: the 6-scheme matrix (and every shard count of a
    // sweep) builds each workload's plan once. Fetch time is charged to
    // the profiler's plan-build bucket — near zero on a cache hit.
    let plan_t0 = std::time::Instant::now();
    let plan = nvsim::ShardPlan::cached(trace, cfg);
    let plan_build_ns = plan_t0.elapsed().as_nanos() as u64;
    let icfg = Arc::new(cfg.island_config());
    let c = &icfg;
    let exec = ShardExec {
        plan: &plan,
        shards,
        profiled,
        coalesce,
        plan_build_ns,
    };
    match scheme {
        Scheme::Ideal => drive_sharded(|_| IdealSystem::new_shared(Arc::clone(c)), trace, &exec),
        Scheme::SwLogging => {
            drive_sharded(|_| SwUndoLogging::new_shared(Arc::clone(c)), trace, &exec)
        }
        Scheme::SwShadow => drive_sharded(|_| SwShadow::new_shared(Arc::clone(c)), trace, &exec),
        Scheme::HwShadow => unreachable!("HW Shadow declares itself serial-only"),
        Scheme::Picl => drive_sharded(
            |_| Picl::new_shared(Arc::clone(c), PiclLevel::Llc),
            trace,
            &exec,
        ),
        Scheme::PiclL2 => drive_sharded(
            |_| Picl::new_shared(Arc::clone(c), PiclLevel::L2),
            trace,
            &exec,
        ),
        Scheme::NvOverlay => {
            drive_sharded(|_| NvOverlaySystem::new_shared(Arc::clone(c)), trace, &exec)
        }
        Scheme::NvOverlayBuffered => drive_sharded(
            |_| NvOverlaySystem::with_omc_buffer_shared(Arc::clone(c)),
            trace,
            &exec,
        ),
    }
}

/// Execution knobs shared by every scheme arm of the sharded dispatch.
struct ShardExec<'p> {
    plan: &'p nvsim::ShardPlan,
    shards: usize,
    profiled: bool,
    coalesce: bool,
    plan_build_ns: u64,
}

/// Monomorphized sharded driver (see [`drive`] for why).
fn drive_sharded<S, F>(factory: F, trace: &PackedTrace, exec: &ShardExec<'_>) -> ShardedSchemeRun
where
    S: MemorySystem,
    F: Fn(usize) -> S + Sync,
{
    let (report, mut profile) = Runner::new()
        .coalesce(exec.coalesce)
        .run_packed_sharded_prof(factory, trace, exec.plan, exec.shards, exec.profiled);
    if let Some(p) = profile.as_mut() {
        p.plan_build_ns = exec.plan_build_ns;
    }
    let result = ExpResult::from_stats(&report.stats, report.cycles, report.stall_cycles);
    ShardedSchemeRun {
        result,
        stats: report.stats,
        metrics: report.metrics,
        sharded: true,
        islands: report.islands,
        windows: report.windows,
        rendezvous_windows: report.rendezvous_windows,
        imported_lines: report.imported_lines,
        profile,
    }
}

/// NVOverlay-specific measurements (Fig 13 / Fig 16).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NvoDetail {
    /// Aggregate Master Mapping Table size in bytes.
    pub master_bytes: u64,
    /// Lines mapped by the master tables (the write working set).
    pub master_entries: u64,
    /// OMC buffer hits / misses.
    pub buffer_hits: u64,
    /// OMC buffer misses.
    pub buffer_misses: u64,
    /// The recoverable epoch at the end of the run.
    pub rec_epoch: u64,
    /// Distinct DRAM OID tags in use (the §V-F tagging-overhead metric).
    pub dram_oid_tags: u64,
}

/// Runs NVOverlay with explicit options and returns both the common
/// result and the backend detail.
pub fn run_nvoverlay(
    cfg: &Arc<SimConfig>,
    opts: NvOverlayOptions,
    trace: &PackedTrace,
) -> (ExpResult, NvoDetail) {
    let mut sys = NvOverlaySystem::with_options_shared(Arc::clone(cfg), opts);
    let report = Runner::new().run_packed(&mut sys, trace);
    let res = ExpResult::from_stats(sys.stats(), report.cycles, report.stall_cycles);
    let detail = NvoDetail {
        master_bytes: sys.mnm().master_size_bytes(),
        master_entries: sys.mnm().master_entries(),
        buffer_hits: sys.mnm().buffer_hits(),
        buffer_misses: sys.mnm().buffer_misses(),
        rec_epoch: sys.rec_epoch(),
        dram_oid_tags: sys.hierarchy().dram().oid_tag_count() as u64,
    };
    (res, detail)
}

/// Runs PiCL with its walker toggled (Fig 15 ablation).
pub fn run_picl_walker(
    cfg: &Arc<SimConfig>,
    level: PiclLevel,
    walker: bool,
    trace: &PackedTrace,
) -> ExpResult {
    let mut sys = Picl::with_walker_shared(Arc::clone(cfg), level, walker);
    let report = Runner::new().run_packed(&mut sys, trace);
    ExpResult::from_stats(sys.stats(), report.cycles, report.stall_cycles)
}

/// Experiment scale taken from the environment: `NVB_SCALE` ∈
/// {`quick`, `standard`, `full`}, default `standard`. `full` matches the
/// paper's proportions most closely but takes minutes per figure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EnvScale {
    /// CI-sized.
    Quick,
    /// Default.
    Standard,
    /// Large.
    Full,
}

impl EnvScale {
    /// Reads `NVB_SCALE` from the environment.
    pub fn from_env() -> Self {
        match std::env::var("NVB_SCALE").as_deref() {
            Ok("quick") => EnvScale::Quick,
            Ok("full") => EnvScale::Full,
            _ => EnvScale::Standard,
        }
    }

    /// The suite parameters for this scale.
    pub fn suite_params(&self) -> nvworkloads::SuiteParams {
        match self {
            EnvScale::Quick => nvworkloads::SuiteParams {
                threads: 16,
                ops: 4_000,
                warmup_ops: 40_000,
                seed: 0xC0FFEE,
            },
            EnvScale::Standard => nvworkloads::SuiteParams {
                threads: 16,
                ops: 25_000,
                warmup_ops: 150_000,
                seed: 0xC0FFEE,
            },
            EnvScale::Full => nvworkloads::SuiteParams {
                threads: 16,
                ops: 120_000,
                warmup_ops: 600_000,
                seed: 0xC0FFEE,
            },
        }
    }

    /// The simulated configuration for this scale: Table II geometry with
    /// the epoch size scaled to the trace volume (the paper's 1 M-store
    /// epochs scale to the suite's store counts; see EXPERIMENTS.md).
    pub fn sim_config(&self) -> SimConfig {
        let epoch = match self {
            EnvScale::Quick => 800,
            EnvScale::Standard => 3_000,
            EnvScale::Full => 12_000,
        };
        SimConfig::builder()
            .epoch_size_stores(epoch)
            .build()
            .expect("valid default config")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvworkloads::{generate, SuiteParams, Workload};

    fn small_cfg() -> SimConfig {
        SimConfig::builder()
            .cores(16, 2)
            .l1(8 * 1024, 4, 4)
            .l2(64 * 1024, 8, 8)
            .llc(2 * 1024 * 1024, 8, 30, 4)
            .epoch_size_stores(2_000)
            .build()
            .unwrap()
    }

    #[test]
    fn all_schemes_run_the_same_trace() {
        let cfg = Arc::new(small_cfg());
        let p = SuiteParams {
            threads: 16,
            ops: 1_500,
            warmup_ops: 0,
            seed: 1,
        };
        let trace = generate(Workload::HashTable, &p).to_packed();
        for s in [Scheme::Ideal, Scheme::NvOverlay, Scheme::Picl] {
            let r = run_scheme(s, &cfg, &trace);
            assert!(r.cycles > 0, "{s}");
        }
    }

    #[test]
    fn static_shardable_agrees_with_every_instance() {
        // `Scheme::shardable` answers without constructing a system;
        // this pins it to what each constructed instance reports so the
        // two can never drift apart.
        let cfg = Arc::new(small_cfg());
        for s in Scheme::ALL {
            assert_eq!(
                s.shardable(),
                s.build(&cfg).shardable(),
                "{s}: static shardable diverged from the instance"
            );
        }
    }

    #[test]
    fn figure_shape_holds_on_a_small_run() {
        // The qualitative ordering of the paper must hold even at small
        // scale: SW schemes slowest; PiCL/NVOverlay near-ideal; PiCL
        // writes more bytes than NVOverlay; PiCL-L2 more than PiCL.
        let cfg = Arc::new(small_cfg());
        let p = SuiteParams {
            threads: 16,
            ops: 3_000,
            warmup_ops: 30_000,
            seed: 2,
        };
        let trace = generate(Workload::BTree, &p).to_packed();
        let ideal = run_scheme(Scheme::Ideal, &cfg, &trace);
        let swl = run_scheme(Scheme::SwLogging, &cfg, &trace);
        let nvo = run_scheme(Scheme::NvOverlay, &cfg, &trace);
        let picl = run_scheme(Scheme::Picl, &cfg, &trace);
        let picl_l2 = run_scheme(Scheme::PiclL2, &cfg, &trace);

        assert!(swl.cycles > nvo.cycles, "SW logging slower than NVOverlay");
        // (The unit-test config uses deliberately tiny caches; the full
        // figure runs land closer to the paper's ~1.0–1.4.)
        assert!(
            nvo.cycles < ideal.cycles * 2,
            "NVOverlay within 2x of ideal: {} vs {}",
            nvo.cycles,
            ideal.cycles
        );
        assert!(
            picl.cycles < ideal.cycles * 2,
            "PiCL within 2x of ideal: {} vs {}",
            picl.cycles,
            ideal.cycles
        );
        assert!(
            picl.total_bytes() > nvo.total_bytes(),
            "PiCL writes more than NVOverlay: {} vs {}",
            picl.total_bytes(),
            nvo.total_bytes()
        );
        assert!(
            picl_l2.total_bytes() >= picl.total_bytes(),
            "PiCL-L2 >= PiCL: {} vs {}",
            picl_l2.total_bytes(),
            picl.total_bytes()
        );
    }
}
