//! Chrome trace-event export for [`nvsim::nvtrace`] logs.
//!
//! Converts a [`TraceLog`] into the Chrome/Perfetto trace-event JSON
//! format (load the file at `ui.perfetto.dev` or `chrome://tracing`):
//!
//! * every distinct [`Track`] becomes a named thread row (`tid` = the
//!   track's 16-bit encoding, labeled via `thread_name` metadata);
//! * `EpochAdvance` events become **async spans** (`"b"`/`"e"` pairs,
//!   one per epoch id), so each VD row shows its epoch timeline;
//! * `TagWalkStart`/`TagWalkEnd` become **duration spans**
//!   (`"B"`/`"E"`), nesting under the VD row;
//! * `ShardBarrier` events become **async spans** covering the barrier
//!   wait (arrival clock → globally aligned clock), one per rendezvous
//!   window, on the emitting shard's `system` lane;
//! * all other kinds become **instant events** (`"i"`) carrying their
//!   two kind-specific arguments.
//!
//! Sharded-replay logs keep distinct per-shard lanes: the shard id is
//! folded into the track encoding at emit time (see
//! `nvsim::nvtrace::lane_label`), so a merged log from an 8-island run
//! renders `shard.0/vd.0`, `shard.1/vd.1`, … as separate thread rows.
//!
//! Timestamps: the simulator's cycle count is written directly as the
//! microsecond field (`ts`), i.e. one trace microsecond == one
//! simulated cycle.

use crate::json::escape;
use nvsim::nvtrace::{Event, EventKind, TraceLog};
use std::fmt::Write as _;

/// Run identification stamped into the trace metadata.
#[derive(Clone, Debug, Default)]
pub struct ChromeMeta {
    /// Scheme name (e.g. `"NVOverlay"`).
    pub scheme: String,
    /// Workload name (e.g. `"B+Tree"`).
    pub workload: String,
}

const PID: u32 = 1;

fn push_common(out: &mut String, name: &str, ph: &str, ts: u64, tid: u16) {
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"ph\":\"{}\",\"ts\":{},\"pid\":{},\"tid\":{}",
        escape(name),
        ph,
        ts,
        PID,
        tid
    );
}

fn push_instant(out: &mut String, e: &Event) {
    push_common(out, e.kind.name(), "i", e.time, e.track);
    let _ = write!(
        out,
        ",\"s\":\"t\",\"args\":{{\"a\":{},\"b\":{}}}}}",
        e.a, e.b
    );
}

/// Renders `log` as a Chrome trace-event JSON document.
pub fn chrome_trace_json(log: &TraceLog, meta: &ChromeMeta) -> String {
    let mut out = String::with_capacity(128 + log.events.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('\n');
    };

    // Process metadata: name the process and every track row that
    // appears in the log (sorted by encoding for determinism).
    sep(&mut out);
    let _ = write!(
        out,
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"args\":{{\"name\":\"{} / {}\"}}}}",
        PID,
        escape(&meta.scheme),
        escape(&meta.workload)
    );
    let mut tracks: Vec<u16> = log.events.iter().map(|e| e.track).collect();
    tracks.sort_unstable();
    tracks.dedup();
    for t in &tracks {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{},\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
            PID,
            t,
            escape(&nvsim::nvtrace::lane_label(*t))
        );
    }

    // Per-track time of the previous epoch advance: the epoch that just
    // ended spans from that time to this event's time.
    let mut epoch_open: Vec<(u16, u64)> = Vec::new();
    for e in &log.events {
        match e.kind {
            EventKind::EpochAdvance => {
                let start = match epoch_open.iter_mut().find(|(t, _)| *t == e.track) {
                    Some(slot) => std::mem::replace(&mut slot.1, e.time),
                    None => {
                        epoch_open.push((e.track, e.time));
                        0
                    }
                };
                let name = format!("epoch {}", e.a);
                sep(&mut out);
                push_common(&mut out, &name, "b", start, e.track);
                let _ = write!(out, ",\"cat\":\"epoch\",\"id\":{}}}", e.a);
                sep(&mut out);
                push_common(&mut out, &name, "e", e.time, e.track);
                let _ = write!(out, ",\"cat\":\"epoch\",\"id\":{}}}", e.a);
            }
            EventKind::TagWalkStart => {
                sep(&mut out);
                push_common(&mut out, "tag walk", "B", e.time, e.track);
                let _ = write!(out, ",\"args\":{{\"epoch\":{}}}}}", e.a);
            }
            EventKind::TagWalkEnd => {
                sep(&mut out);
                push_common(&mut out, "tag walk", "E", e.time, e.track);
                let _ = write!(
                    out,
                    ",\"args\":{{\"min_ver\":{},\"versions\":{}}}}}",
                    e.a, e.b
                );
            }
            EventKind::ShardBarrier => {
                // a = window index, b = globally aligned clock; the
                // span covers this shard's wait at the rendezvous. The
                // id is the window, so Perfetto groups the per-shard
                // waits of one barrier together.
                let name = format!("barrier {}", e.a);
                sep(&mut out);
                push_common(&mut out, &name, "b", e.time, e.track);
                let _ = write!(out, ",\"cat\":\"barrier\",\"id\":{}}}", e.a);
                sep(&mut out);
                push_common(&mut out, &name, "e", e.b.max(e.time), e.track);
                let _ = write!(out, ",\"cat\":\"barrier\",\"id\":{}}}", e.a);
            }
            _ => {
                sep(&mut out);
                push_instant(&mut out, e);
            }
        }
    }
    let _ = write!(
        out,
        "\n],\"otherData\":{{\"accepted\":{},\"overwritten\":{},\"sampled_out\":{},\"sample_every\":{}}}}}\n",
        log.accepted,
        log.overwritten,
        log.total_sampled_out(),
        log.sample_every
    );
    out
}

/// Renders a [`nvsim::ShardProfile`] as a standalone Chrome trace-event
/// document: one lane per island showing its per-window utilization
/// (a `compute` span from the previous barrier to its arrival, then a
/// `barrier wait` span from its arrival to the aligned clock), plus a
/// `stragglers` lane naming the critical-path island of every window.
/// All spans are placed on *simulated* clocks (one trace microsecond ==
/// one simulated cycle), so the rendering is deterministic — wall-clock
/// bucket totals ride along as process metadata args only.
pub fn chrome_profile_json(p: &nvsim::ShardProfile, meta: &ChromeMeta) -> String {
    let mut out = String::with_capacity(256 + p.islands * p.windows * 128);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('\n');
    };

    sep(&mut out);
    let _ = write!(
        out,
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"args\":{{\"name\":\"{} / {} (profile)\"}}}}",
        PID,
        escape(&meta.scheme),
        escape(&meta.workload)
    );
    // tid 0 = straggler lane, tid i+1 = island i.
    sep(&mut out);
    let _ = write!(
        out,
        "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{PID},\"tid\":0,\"args\":{{\"name\":\"stragglers\"}}}}"
    );
    for ip in &p.island_profiles {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{},\"tid\":{},\"args\":{{\"name\":\"island.{}\"}}}}",
            PID,
            ip.island + 1,
            ip.island
        );
    }

    for ip in &p.island_profiles {
        let tid = ip.island + 1;
        let mut prev_aligned = 0u64;
        for (w, c) in ip.cells.iter().enumerate() {
            let compute = c.arrive_clock.saturating_sub(prev_aligned);
            sep(&mut out);
            let name = format!("window {w}");
            push_common(&mut out, &name, "X", prev_aligned, tid as u16);
            let _ = write!(
                out,
                ",\"dur\":{},\"cat\":\"compute\",\"args\":{{\"events\":{},\"imports\":{}}}}}",
                compute, c.events, c.imports_applied
            );
            let wait = c.aligned_clock.saturating_sub(c.arrive_clock);
            if wait > 0 {
                sep(&mut out);
                push_common(&mut out, "barrier wait", "X", c.arrive_clock, tid as u16);
                let _ = write!(
                    out,
                    ",\"dur\":{wait},\"cat\":\"barrier\",\"args\":{{\"window\":{w}}}}}"
                );
            }
            prev_aligned = c.aligned_clock;
        }
    }

    let mut prev_aligned = 0u64;
    for (w, s) in p.stragglers().iter().enumerate() {
        let aligned = p
            .island_profiles
            .first()
            .map_or(prev_aligned, |ip| ip.cells[w].aligned_clock);
        sep(&mut out);
        let name = format!("island {s}");
        push_common(&mut out, &name, "X", prev_aligned, 0);
        let _ = write!(
            out,
            ",\"dur\":{},\"cat\":\"straggler\",\"args\":{{\"window\":{w}}}}}",
            aligned.saturating_sub(prev_aligned)
        );
        prev_aligned = aligned;
    }

    let b = p.bucket_ns();
    let _ = write!(
        out,
        "\n],\"otherData\":{{\"islands\":{},\"windows\":{},\"workers\":{},\"compute_us\":{},\"barrier_wait_us\":{},\"exchange_apply_us\":{},\"epoch_sync_us\":{},\"merge_us\":{}}}}}\n",
        p.islands,
        p.windows,
        p.workers,
        b[0] / 1_000,
        b[1] / 1_000,
        b[2] / 1_000,
        b[3] / 1_000,
        b[4] / 1_000
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, JsonValue};
    use nvsim::nvtrace::{TraceBuffer, TraceConfig, Track};

    fn sample_log() -> TraceLog {
        let mut buf = TraceBuffer::new(TraceConfig::default());
        let vd = Track::Vd(0).encode();
        buf.push(Event {
            time: 100,
            kind: EventKind::EpochAdvance,
            track: vd,
            a: 1,
            b: 2,
        });
        buf.push(Event {
            time: 100,
            kind: EventKind::TagWalkStart,
            track: vd,
            a: 2,
            b: 0,
        });
        buf.push(Event {
            time: 140,
            kind: EventKind::TagWalkEnd,
            track: vd,
            a: 1,
            b: 7,
        });
        buf.push(Event {
            time: 150,
            kind: EventKind::OmcFlush,
            track: Track::Omc(0).encode(),
            a: 1,
            b: 7,
        });
        buf.into_log()
    }

    #[test]
    fn export_is_valid_json_with_expected_phases() {
        let json = chrome_trace_json(
            &sample_log(),
            &ChromeMeta {
                scheme: "NVOverlay".into(),
                workload: "B+Tree \"quoted\"".into(),
            },
        );
        let doc = parse(&json).expect("chrome export must parse");
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let phases: Vec<&str> = events
            .iter()
            .map(|e| e.get("ph").unwrap().as_str().unwrap())
            .collect();
        // 2 metadata tracks + process name, one b/e pair, one B/E pair,
        // one instant.
        assert_eq!(phases.iter().filter(|p| **p == "M").count(), 3);
        assert_eq!(phases.iter().filter(|p| **p == "b").count(), 1);
        assert_eq!(phases.iter().filter(|p| **p == "e").count(), 1);
        assert_eq!(phases.iter().filter(|p| **p == "B").count(), 1);
        assert_eq!(phases.iter().filter(|p| **p == "E").count(), 1);
        assert_eq!(phases.iter().filter(|p| **p == "i").count(), 1);
        // The epoch span is on the VD track and carries its id.
        let b = events
            .iter()
            .find(|e| e.get("ph").unwrap().as_str() == Some("b"))
            .unwrap();
        assert_eq!(b.get("id").unwrap().as_u64(), Some(1));
        assert_eq!(
            b.get("tid").unwrap().as_u64(),
            Some(Track::Vd(0).encode() as u64)
        );
    }

    #[test]
    fn shard_lanes_render_as_distinct_tracks_with_barrier_spans() {
        use nvsim::nvtrace::SHARD_SHIFT;
        let mut buf = TraceBuffer::new(TraceConfig::default());
        let sys = Track::System.encode();
        // The same component track on two shard lanes, each emitting
        // its window-0 barrier wait (a = window, b = aligned clock).
        for (shard, arrive) in [(1u16, 80u64), (2, 100)] {
            buf.push(Event {
                time: arrive,
                kind: EventKind::ShardBarrier,
                track: (sys & 0xE000) | (sys & 0x00FF) | (shard << SHARD_SHIFT),
                a: 0,
                b: 100,
            });
        }
        let json = chrome_trace_json(&buf.into_log(), &ChromeMeta::default());
        let doc = parse(&json).expect("chrome export must parse");
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("M"))
            .filter_map(|e| e.get("args").and_then(|a| a.get("name")))
            .filter_map(|n| n.as_str())
            .collect();
        assert!(names.contains(&"shard.0/system"), "lanes: {names:?}");
        assert!(names.contains(&"shard.1/system"), "lanes: {names:?}");
        // One async b/e pair per shard, grouped by the window id, and
        // the slower shard's wait collapses to a zero-length span.
        let b: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("b"))
            .collect();
        assert_eq!(b.len(), 2);
        assert!(b.iter().all(|e| e.get("id").unwrap().as_u64() == Some(0)));
        assert_eq!(b[0].get("ts").unwrap().as_u64(), Some(80));
        assert_eq!(b[1].get("ts").unwrap().as_u64(), Some(100));
    }

    #[test]
    fn export_is_deterministic() {
        let meta = ChromeMeta::default();
        let a = chrome_trace_json(&sample_log(), &meta);
        let b = chrome_trace_json(&sample_log(), &meta);
        assert_eq!(a, b);
        assert!(matches!(parse(&a), Ok(JsonValue::Object(_))));
    }

    #[test]
    fn profile_export_renders_island_lanes_and_straggler_spans() {
        use nvsim::prof::{IslandProfile, ShardProfile, WindowCell};
        let cell = |arrive, aligned| WindowCell {
            events: 5,
            arrive_clock: arrive,
            aligned_clock: aligned,
            ..Default::default()
        };
        let p = ShardProfile {
            islands: 2,
            windows: 2,
            workers: 2,
            window_stores: 8,
            exchange_entries: vec![0, 0],
            island_profiles: vec![
                IslandProfile {
                    island: 0,
                    cells: vec![cell(60, 100), cell(160, 200)],
                    ..Default::default()
                },
                IslandProfile {
                    island: 1,
                    cells: vec![cell(100, 100), cell(200, 200)],
                    ..Default::default()
                },
            ],
            ..Default::default()
        };
        let json = chrome_profile_json(
            &p,
            &ChromeMeta {
                scheme: "NVOverlay".into(),
                workload: "btree".into(),
            },
        );
        let doc = parse(&json).expect("profile export must parse");
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let lanes: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("M"))
            .filter_map(|e| e.get("args").and_then(|a| a.get("name")))
            .filter_map(|n| n.as_str())
            .collect();
        assert!(lanes.contains(&"stragglers"), "lanes: {lanes:?}");
        assert!(lanes.contains(&"island.0"), "lanes: {lanes:?}");
        assert!(lanes.contains(&"island.1"), "lanes: {lanes:?}");
        // Island 1 is the straggler of both windows; island 0 shows a
        // 40-cycle barrier wait per window.
        let straggler_names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("tid").and_then(|t| t.as_u64()) == Some(0))
            .filter(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .map(|e| e.get("name").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(straggler_names, ["island 1", "island 1"]);
        let waits = events
            .iter()
            .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some("barrier wait"))
            .count();
        assert_eq!(waits, 2, "island 0 waits in both windows");
        // Deterministic: rendered purely from simulated clocks.
        assert_eq!(
            json,
            chrome_profile_json(
                &p,
                &ChromeMeta {
                    scheme: "NVOverlay".into(),
                    workload: "btree".into(),
                }
            )
        );
    }
}
