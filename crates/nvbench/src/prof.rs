//! Phase timing and stall-attribution reporting for drivers and `nvo`.
//!
//! [`Spans`] generalizes the hand-rolled `Instant` bookkeeping `nvo
//! perf` used to do: name a phase, run it, and read back per-phase and
//! total wall-clock time. Spans of the same name accumulate, so a
//! driver can re-enter a phase (e.g. per-round replay) and still report
//! one line per phase, in first-entry order. Phases nest: a
//! [`Spans::push`]/[`Spans::pop`] prefix turns subsequent charges into
//! `parent/child` paths, and output is available at µs resolution — the
//! same resolution the profiler emitters below report in.
//!
//! The rest of the module renders an [`nvsim::ShardProfile`] (produced
//! by `Runner::run_packed_sharded_prof`) for humans and machines:
//! [`bottleneck_table`] (where did the wall-time go, who straggled),
//! [`profile_json`] (the full machine-readable profile), and
//! [`profile_structural_json`] (only the deterministic counters, for
//! byte-identity comparison across runs and shard counts).

use nvsim::prof::{ProfBucket, ShardProfile};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Named wall-clock phase accumulator with nesting support.
#[derive(Clone, Debug, Default)]
pub struct Spans {
    spans: Vec<(String, Duration)>,
    prefix: Vec<String>,
}

impl Spans {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a nesting level: subsequent [`Spans::time`]/[`Spans::add`]
    /// charges land under `name/…` until the matching [`Spans::pop`].
    pub fn push(&mut self, name: &str) {
        self.prefix.push(name.to_string());
    }

    /// Closes the innermost nesting level (no-op at top level).
    pub fn pop(&mut self) {
        self.prefix.pop();
    }

    /// Times `f` and charges it to the phase `name` (under the current
    /// nesting prefix).
    pub fn time<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        self.add(name, t0.elapsed());
        out
    }

    /// Charges a pre-measured duration to `name` (under the current
    /// nesting prefix).
    pub fn add(&mut self, name: &str, d: Duration) {
        let path = if self.prefix.is_empty() {
            name.to_string()
        } else {
            format!("{}/{}", self.prefix.join("/"), name)
        };
        match self.spans.iter_mut().find(|(n, _)| *n == path) {
            Some((_, acc)) => *acc += d,
            None => self.spans.push((path, d)),
        }
    }

    /// Seconds charged to the phase path `name` so far (0.0 if never
    /// entered).
    pub fn secs(&self, name: &str) -> f64 {
        self.spans
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0.0, |(_, d)| d.as_secs_f64())
    }

    /// Microseconds charged to the phase path `name` so far.
    pub fn micros(&self, name: &str) -> u64 {
        self.spans
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, d)| d.as_micros() as u64)
    }

    /// Total seconds across all phases. Nested phases are charged to
    /// their own path only, so parents that wrap children double-count
    /// here exactly as they always did for re-entered flat phases.
    pub fn total_secs(&self) -> f64 {
        self.spans.iter().map(|(_, d)| d.as_secs_f64()).sum()
    }

    /// Total microseconds across all phases.
    pub fn total_micros(&self) -> u64 {
        self.spans.iter().map(|(_, d)| d.as_micros() as u64).sum()
    }

    /// Phase paths in first-entry order, as seconds.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> + '_ {
        self.spans
            .iter()
            .map(|(n, d)| (n.as_str(), d.as_secs_f64()))
    }

    /// Phase paths in first-entry order, as microseconds.
    pub fn iter_micros(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.spans
            .iter()
            .map(|(n, d)| (n.as_str(), d.as_micros() as u64))
    }
}

fn us(ns: u64) -> u64 {
    ns / 1_000
}

/// Renders only the deterministic part of a profile: structural
/// counters derived from the shard plan and the simulation, plus the
/// straggler/imbalance analysis computed from them. Byte-identical
/// across runs and across worker counts for the same workload and
/// configuration — CI `cmp`s this output directly.
pub fn profile_structural_json(p: &ShardProfile) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"nvo-profile-structural-v1\",");
    let _ = writeln!(out, "  \"islands\": {},", p.islands);
    let _ = writeln!(out, "  \"windows\": {},", p.windows);
    let _ = writeln!(out, "  \"rendezvous_windows\": {},", p.rendezvous_windows);
    let _ = writeln!(out, "  \"window_stores\": {},", p.window_stores);
    let _ = writeln!(out, "  \"exchange_entries\": {:?},", p.exchange_entries);
    let _ = writeln!(out, "  \"stragglers\": {:?},", p.stragglers());
    let _ = writeln!(out, "  \"straggler_counts\": {:?},", p.straggler_counts());
    out.push_str("  \"wait_blame_cycles\": [");
    for (i, (w, b)) in p.wait_blame_cycles().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{w},{b}]");
    }
    out.push_str("],\n");
    let _ = writeln!(out, "  \"imbalance_permille\": {},", p.imbalance_permille());
    out.push_str("  \"islands_detail\": [\n");
    for (i, ip) in p.island_profiles.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let _ = write!(
            out,
            "    {{\"island\": {}, \"final_clock\": {}, \"cells\": [",
            ip.island, ip.final_clock
        );
        for (w, c) in ip.cells.iter().enumerate() {
            if w > 0 {
                out.push(',');
            }
            // Per-window structural tuple: [events, arrive_clock,
            // aligned_clock, epoch_floor, sync_stall_cycles,
            // imports_applied, imports_skipped].
            let _ = write!(
                out,
                "[{},{},{},{},{},{},{}]",
                c.events,
                c.arrive_clock,
                c.aligned_clock,
                c.epoch_floor,
                c.sync_stall_cycles,
                c.imports_applied,
                c.imports_skipped
            );
        }
        out.push_str("]}");
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Renders the wall-clock half of a profile (µs resolution). Host time:
/// real on every run, never compared for identity.
fn profile_wall_json(p: &ShardProfile) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"workers\": {},", p.workers);
    let b = p.bucket_ns();
    out.push_str("  \"buckets_us\": {");
    for (i, bucket) in ProfBucket::ALL.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{}\": {}", bucket.name(), us(b[i]));
    }
    out.push_str("},\n");
    let _ = writeln!(out, "  \"accountable_us\": {},", us(p.accountable_ns()));
    let _ = writeln!(
        out,
        "  \"attributed_fraction\": {:.4},",
        p.attributed_fraction()
    );
    let _ = writeln!(out, "  \"serial_fraction\": {:.6},", p.serial_fraction());
    // The Amdahl model clamps at the island count; the cap and the
    // clamped worker counts are explicit so two equal predictions are
    // read as "clamped", not as a measured plateau.
    let _ = writeln!(out, "  \"island_cap\": {},", p.island_cap());
    out.push_str("  \"predicted_speedup\": {");
    for (i, k) in [2usize, 4, 8, 16].iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{}\": {:.4}", k, p.predicted_speedup(*k));
    }
    out.push_str("},\n");
    out.push_str("  \"predicted_speedup_clamped\": [");
    let mut first = true;
    for k in [2usize, 4, 8, 16] {
        if p.speedup_clamped(k) {
            if !first {
                out.push_str(", ");
            }
            let _ = write!(out, "{k}");
            first = false;
        }
    }
    out.push_str("],\n");
    let _ = writeln!(out, "  \"plan_build_us\": {},", us(p.plan_build_ns));
    let _ = writeln!(out, "  \"merge_us\": {},", us(p.merge_ns));
    let _ = writeln!(out, "  \"total_us\": {},", us(p.total_ns));
    out.push_str("  \"workers_detail\": [");
    for (i, wp) in p.worker_profiles.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"worker\": {}, \"compute_us\": {}, \"barrier_us\": {}, \"exchange_us\": {}, \
             \"package_us\": {}, \"elapsed_us\": {}}}",
            wp.worker,
            us(wp.compute_ns),
            us(wp.barrier_ns),
            us(wp.exchange_ns),
            us(wp.package_ns),
            us(wp.elapsed_ns)
        );
    }
    out.push_str("],\n");
    out.push_str("  \"islands_detail\": [");
    for (i, ip) in p.island_profiles.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let compute: u64 = ip.cells.iter().map(|c| c.compute_ns).sum();
        let exchange: u64 = ip.cells.iter().map(|c| c.exchange_ns).sum();
        let sync: u64 = ip.cells.iter().map(|c| c.sync_ns).sum();
        let _ = write!(
            out,
            "{{\"island\": {}, \"setup_us\": {}, \"compute_us\": {}, \"exchange_us\": {}, \
             \"sync_us\": {}, \"finish_us\": {}, \"package_us\": {}}}",
            ip.island,
            us(ip.setup_ns),
            us(compute),
            us(exchange),
            us(sync),
            us(ip.finish_ns),
            us(ip.package_ns)
        );
    }
    out.push_str("]\n}\n");
    out
}

/// Renders the full machine-readable profile: run metadata, the
/// deterministic structural section, and the wall-clock section —
/// strictly segregated so consumers can identity-check the former and
/// must never identity-check the latter.
pub fn profile_json(p: &ShardProfile, meta: &[(&str, &str)]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "\"schema\": \"nvo-profile-v1\",");
    for (k, v) in meta {
        let _ = writeln!(
            out,
            "\"{}\": \"{}\",",
            crate::json::escape(k),
            crate::json::escape(v)
        );
    }
    let _ = write!(
        out,
        "\"structural\": {},",
        profile_structural_json(p).trim_end()
    );
    let _ = write!(out, "\n\"wall\": {}", profile_wall_json(p).trim_end());
    out.push_str("\n}\n");
    out
}

/// Renders the human-readable bottleneck table: the six-bucket
/// wall-time decomposition, the attribution coverage, the Amdahl-style
/// scaling forecast, and the straggler diagnosis.
pub fn bottleneck_table(p: &ShardProfile) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "stall attribution · {} islands × {} windows ({} rendezvous) · {} workers",
        p.islands, p.windows, p.rendezvous_windows, p.workers
    );
    let b = p.bucket_ns();
    let acc = p.accountable_ns().max(1);
    let _ = writeln!(out, "  {:<16}{:>12}  {:>6}", "bucket", "wall µs", "share");
    for (i, bucket) in ProfBucket::ALL.iter().enumerate() {
        let _ = writeln!(
            out,
            "  {:<16}{:>12}  {:>5.1}%",
            bucket.name(),
            us(b[i]),
            100.0 * b[i] as f64 / acc as f64
        );
    }
    let _ = writeln!(
        out,
        "  attributed {:.1}% of {} µs accountable ({} worker threads + merge)",
        100.0 * p.attributed_fraction(),
        us(p.accountable_ns()),
        p.workers
    );
    let mut forecast = String::new();
    for k in [2usize, 4, 8, 16] {
        let _ = write!(
            forecast,
            " {k}→{:.2}x{}",
            p.predicted_speedup(k),
            if p.speedup_clamped(k) { "*" } else { "" }
        );
    }
    let _ = writeln!(
        out,
        "scaling model: serial fraction {:.2}% · window imbalance {}‰ · predicted \
         speedup{forecast} (* clamped at the {}-island cap)",
        100.0 * p.serial_fraction(),
        p.imbalance_permille(),
        p.island_cap()
    );
    let counts = p.straggler_counts();
    let blame = p.wait_blame_cycles();
    let mut order: Vec<usize> = (0..p.islands).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(counts[i]), i));
    out.push_str("stragglers (critical-path island per window, simulated clocks):\n");
    for &i in order.iter().take(p.islands.min(8)) {
        if counts[i] == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "  island {i} gates {}/{} windows · waited {} cy · others waited {} cy on it",
            counts[i], p.windows, blame[i].0, blame[i].1
        );
    }
    let totals = p.island_totals();
    out.push_str("per-island structural totals:\n");
    for (i, (events, applied, skipped, stall)) in totals.iter().enumerate() {
        let _ = writeln!(
            out,
            "  island {i}: {events} events · imports {applied} applied / {skipped} skipped · \
             epoch-sync stall {stall} cy",
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_accumulate_in_entry_order() {
        let mut s = Spans::new();
        s.add("gen", Duration::from_millis(10));
        s.add("replay", Duration::from_millis(20));
        s.add("gen", Duration::from_millis(5));
        let names: Vec<&str> = s.iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["gen", "replay"]);
        assert!((s.secs("gen") - 0.015).abs() < 1e-9);
        assert!((s.total_secs() - 0.035).abs() < 1e-9);
        assert_eq!(s.secs("missing"), 0.0);
    }

    #[test]
    fn time_returns_the_closure_result() {
        let mut s = Spans::new();
        let v = s.time("work", || 41 + 1);
        assert_eq!(v, 42);
        assert!(s.secs("work") >= 0.0);
    }

    #[test]
    fn nested_phases_chart_under_their_parent_path() {
        let mut s = Spans::new();
        s.push("sharded");
        s.add("replay", Duration::from_micros(1500));
        s.push("merge");
        s.add("stats", Duration::from_micros(250));
        s.pop();
        s.pop();
        s.add("replay", Duration::from_micros(10));
        let names: Vec<&str> = s.iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["sharded/replay", "sharded/merge/stats", "replay"]);
        assert_eq!(s.micros("sharded/replay"), 1500);
        assert_eq!(s.micros("sharded/merge/stats"), 250);
        assert_eq!(s.total_micros(), 1760);
        // Over-popping is harmless.
        s.pop();
        s.add("tail", Duration::from_micros(1));
        assert_eq!(s.micros("tail"), 1);
    }

    fn sample_profile() -> ShardProfile {
        use nvsim::prof::{IslandProfile, WindowCell, WorkerProfile};
        let cell = |events, arrive, aligned| WindowCell {
            events,
            arrive_clock: arrive,
            aligned_clock: aligned,
            imports_applied: 1,
            imports_skipped: 2,
            compute_ns: 4_000,
            exchange_ns: 500,
            sync_ns: 300,
            ..Default::default()
        };
        ShardProfile {
            islands: 2,
            windows: 2,
            workers: 2,
            window_stores: 64,
            rendezvous_windows: 2,
            exchange_entries: vec![3, 3],
            island_profiles: vec![
                IslandProfile {
                    island: 0,
                    cells: vec![cell(10, 70, 100), cell(12, 190, 200)],
                    setup_ns: 900,
                    finish_ns: 600,
                    package_ns: 200,
                    final_clock: 210,
                },
                IslandProfile {
                    island: 1,
                    cells: vec![cell(30, 100, 100), cell(28, 200, 200)],
                    setup_ns: 900,
                    finish_ns: 600,
                    package_ns: 200,
                    final_clock: 230,
                },
            ],
            worker_profiles: vec![
                WorkerProfile {
                    worker: 0,
                    compute_ns: 9_500,
                    barrier_ns: 2_000,
                    exchange_ns: 1_600,
                    package_ns: 200,
                    elapsed_ns: 13_400,
                },
                WorkerProfile {
                    worker: 1,
                    compute_ns: 9_500,
                    barrier_ns: 100,
                    exchange_ns: 1_600,
                    package_ns: 200,
                    elapsed_ns: 12_500,
                },
            ],
            merge_ns: 1_500,
            plan_build_ns: 400,
            total_ns: 16_000,
        }
    }

    #[test]
    fn profile_json_round_trips() {
        let p = sample_profile();
        let json = profile_json(&p, &[("scheme", "NVOverlay"), ("workload", "btree")]);
        let doc = crate::json::parse(&json).expect("profile JSON must parse");
        assert_eq!(doc.get("schema").unwrap().as_str(), Some("nvo-profile-v1"));
        assert_eq!(doc.get("scheme").unwrap().as_str(), Some("NVOverlay"));
        let s = doc.get("structural").unwrap();
        assert_eq!(s.get("islands").unwrap().as_u64(), Some(2));
        assert_eq!(
            s.get("stragglers")
                .unwrap()
                .as_array()
                .unwrap()
                .iter()
                .map(|v| v.as_u64().unwrap())
                .collect::<Vec<_>>(),
            [1, 1]
        );
        assert_eq!(s.get("rendezvous_windows").unwrap().as_u64(), Some(2));
        let w = doc.get("wall").unwrap();
        assert_eq!(w.get("workers").unwrap().as_u64(), Some(2));
        assert!(w.get("buckets_us").unwrap().get("compute").is_some());
        assert!(w.get("buckets_us").unwrap().get("plan-build").is_some());
        assert!(w.get("attributed_fraction").unwrap().as_f64().unwrap() > 0.9);
        // The Amdahl clamp is explicit: a 2-island profile caps at 2 and
        // marks 4/8/16 as clamped rather than repeating one number
        // without comment.
        assert_eq!(w.get("island_cap").unwrap().as_u64(), Some(2));
        let clamped: Vec<u64> = w
            .get("predicted_speedup_clamped")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|v| v.as_u64().unwrap())
            .collect();
        assert_eq!(clamped, [4, 8, 16]);
    }

    #[test]
    fn structural_json_has_no_wall_fields() {
        let json = profile_structural_json(&sample_profile());
        assert!(!json.contains("_us"), "no µs fields in structural output");
        assert!(!json.contains("_ns"), "no ns fields in structural output");
        assert!(!json.contains("worker"), "workers are wall-side context");
        crate::json::parse(&json).expect("structural JSON must parse");
    }

    #[test]
    fn bottleneck_table_names_buckets_and_stragglers() {
        let table = bottleneck_table(&sample_profile());
        for b in ProfBucket::ALL {
            assert!(table.contains(b.name()), "missing bucket {}", b.name());
        }
        assert!(table.contains("island 1 gates 2/2 windows"));
        assert!(table.contains("predicted speedup"));
    }
}
