//! Reusable phase timing for drivers and the `nvo` CLI.
//!
//! [`Spans`] generalizes the hand-rolled `Instant` bookkeeping `nvo
//! perf` used to do: name a phase, run it, and read back per-phase and
//! total wall-clock seconds. Spans of the same name accumulate, so a
//! driver can re-enter a phase (e.g. per-round replay) and still report
//! one line per phase, in first-entry order.

use std::time::{Duration, Instant};

/// Named wall-clock phase accumulator.
#[derive(Clone, Debug, Default)]
pub struct Spans {
    spans: Vec<(String, Duration)>,
}

impl Spans {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Times `f` and charges it to the phase `name`.
    pub fn time<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        self.add(name, t0.elapsed());
        out
    }

    /// Charges a pre-measured duration to `name`.
    pub fn add(&mut self, name: &str, d: Duration) {
        match self.spans.iter_mut().find(|(n, _)| n == name) {
            Some((_, acc)) => *acc += d,
            None => self.spans.push((name.to_string(), d)),
        }
    }

    /// Seconds charged to `name` so far (0.0 if never entered).
    pub fn secs(&self, name: &str) -> f64 {
        self.spans
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0.0, |(_, d)| d.as_secs_f64())
    }

    /// Total seconds across all phases.
    pub fn total_secs(&self) -> f64 {
        self.spans.iter().map(|(_, d)| d.as_secs_f64()).sum()
    }

    /// Phases in first-entry order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> + '_ {
        self.spans
            .iter()
            .map(|(n, d)| (n.as_str(), d.as_secs_f64()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_accumulate_in_entry_order() {
        let mut s = Spans::new();
        s.add("gen", Duration::from_millis(10));
        s.add("replay", Duration::from_millis(20));
        s.add("gen", Duration::from_millis(5));
        let names: Vec<&str> = s.iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["gen", "replay"]);
        assert!((s.secs("gen") - 0.015).abs() < 1e-9);
        assert!((s.total_secs() - 0.035).abs() < 1e-9);
        assert_eq!(s.secs("missing"), 0.0);
    }

    #[test]
    fn time_returns_the_closure_result() {
        let mut s = Spans::new();
        let v = s.time("work", || 41 + 1);
        assert_eq!(v, 42);
        assert!(s.secs("work") >= 0.0);
    }
}
