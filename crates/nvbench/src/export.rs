//! Flat stats exporters: metrics registry → JSON / TSV.
//!
//! The registry iterates in name order (BTreeMap), so both formats are
//! deterministic for a given run — the observability tests compare
//! serial and parallel exports byte-for-byte.

use crate::json::escape;
use nvsim::metrics::{MetricValue, Registry};
use std::fmt::Write as _;

fn fmt_gauge(g: f64) -> String {
    // Round-trippable and stable: integers print without a fraction.
    if g.fract() == 0.0 && g.abs() < 1e15 {
        format!("{}", g as i64)
    } else {
        format!("{g}")
    }
}

/// Renders a frozen registry as a flat JSON object, one key per metric
/// in name order. Histograms become
/// `{"count":N,"sum":S,"max":M,"buckets":[[floor,count],...]}`.
pub fn registry_json(reg: &Registry, run_meta: &[(&str, &str)]) -> String {
    let mut out = String::from("{\n");
    let mut first = true;
    for (k, v) in run_meta {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let _ = write!(out, "  \"{}\": \"{}\"", escape(k), escape(v));
    }
    for (name, value) in reg.iter() {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let _ = write!(out, "  \"{}\": ", escape(name));
        match value {
            MetricValue::Counter(c) => {
                let _ = write!(out, "{c}");
            }
            MetricValue::Gauge(g) => {
                let _ = write!(out, "{}", fmt_gauge(*g));
            }
            MetricValue::Histogram(h) => {
                let _ = write!(
                    out,
                    "{{\"count\":{},\"sum\":{},\"max\":{},\"buckets\":[",
                    h.count(),
                    h.sum(),
                    h.max()
                );
                for (i, (floor, n)) in h.buckets().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "[{floor},{n}]");
                }
                out.push_str("]}");
            }
        }
    }
    out.push_str("\n}\n");
    out
}

/// Renders a frozen registry as `name\tvalue` lines in name order.
/// Histograms collapse to `count/sum/max`.
pub fn registry_tsv(reg: &Registry) -> String {
    let mut out = String::new();
    for (name, value) in reg.iter() {
        match value {
            MetricValue::Counter(c) => {
                let _ = writeln!(out, "{name}\t{c}");
            }
            MetricValue::Gauge(g) => {
                let _ = writeln!(out, "{name}\t{}", fmt_gauge(*g));
            }
            MetricValue::Histogram(h) => {
                let _ = writeln!(out, "{name}\t{}/{}/{}", h.count(), h.sum(), h.max());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use nvsim::metrics::Hist;

    fn sample() -> Registry {
        let mut reg = Registry::new();
        reg.set_counter("omc.0.buffer_hits", 42);
        reg.set_gauge("omc.0.pool.utilization", 0.5);
        let mut h = Hist::new();
        h.record(3);
        h.record(300);
        reg.record_hist("nvm.queue_delay", h);
        reg
    }

    #[test]
    fn json_round_trips() {
        let json = registry_json(&sample(), &[("scheme", "NVOverlay")]);
        let doc = parse(&json).expect("must parse");
        assert_eq!(doc.get("scheme").unwrap().as_str(), Some("NVOverlay"));
        assert_eq!(doc.get("omc.0.buffer_hits").unwrap().as_u64(), Some(42));
        assert_eq!(
            doc.get("omc.0.pool.utilization").unwrap().as_f64(),
            Some(0.5)
        );
        let h = doc.get("nvm.queue_delay").unwrap();
        assert_eq!(h.get("count").unwrap().as_u64(), Some(2));
        assert_eq!(h.get("sum").unwrap().as_u64(), Some(303));
    }

    #[test]
    fn tsv_is_sorted_and_complete() {
        let tsv = registry_tsv(&sample());
        let lines: Vec<&str> = tsv.lines().collect();
        assert_eq!(lines.len(), 3);
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted, "TSV must be in name order");
        assert!(tsv.contains("omc.0.buffer_hits\t42"));
        assert!(tsv.contains("nvm.queue_delay\t2/303/300"));
    }
}
