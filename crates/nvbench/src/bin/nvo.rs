//! `nvo` — command-line driver for the NVOverlay reproduction.
//!
//! ```text
//! nvo list
//! nvo run --workload B+Tree --scheme NVOverlay [--scale quick|standard|full] [--json]
//! nvo run --trace t.nvtr --scheme PiCL
//! nvo trace-gen --workload kmeans --out t.nvtr [--scale quick]
//! nvo snapshots --workload RBTree [--scale quick]
//! ```

use nvbench::{run_scheme, EnvScale, Scheme};
use nvoverlay::system::NvOverlaySystem;
use nvsim::memsys::Runner;
use nvsim::trace::Trace;
use nvworkloads::{generate, Workload};
use std::collections::HashMap;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage:\n  nvo list\n  nvo run --workload <name> --scheme <name> [--scale quick|standard|full] [--json]\n  nvo run --trace <file.nvtr> --scheme <name>\n  nvo trace-gen --workload <name> --out <file.nvtr> [--scale ...]\n  nvo snapshots --workload <name> [--scale ...]\n  nvo diff --workload <name> --from <epoch> --to <epoch> [--scale ...]"
    );
    exit(2)
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(key) = a.strip_prefix("--") {
            if key == "json" {
                out.insert("json".into(), "1".into());
                i += 1;
            } else if i + 1 < args.len() {
                out.insert(key.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                eprintln!("flag --{key} needs a value");
                usage();
            }
        } else {
            eprintln!("unexpected argument {a:?}");
            usage();
        }
    }
    out
}

fn scale_of(flags: &HashMap<String, String>) -> EnvScale {
    match flags.get("scale").map(String::as_str) {
        Some("quick") => EnvScale::Quick,
        Some("full") => EnvScale::Full,
        Some("standard") | None => EnvScale::Standard,
        Some(other) => {
            eprintln!("unknown scale {other:?}");
            usage();
        }
    }
}

fn load_workload(flags: &HashMap<String, String>, scale: EnvScale) -> Trace {
    if let Some(path) = flags.get("trace") {
        let f = std::fs::File::open(path).unwrap_or_else(|e| {
            eprintln!("cannot open {path}: {e}");
            exit(1);
        });
        return nvsim::trace_io::read_trace(std::io::BufReader::new(f)).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            exit(1);
        });
    }
    let Some(wname) = flags.get("workload") else {
        eprintln!("--workload or --trace is required");
        usage();
    };
    let Some(w) = Workload::from_name(wname) else {
        eprintln!("unknown workload {wname:?} (see `nvo list`)");
        exit(2);
    };
    generate(w, &scale.suite_params())
}

fn cmd_list() {
    println!("workloads:");
    for w in Workload::ALL {
        println!("  {w}");
    }
    println!("schemes:");
    for s in Scheme::ALL {
        println!("  {}", s.name());
    }
}

fn cmd_run(flags: HashMap<String, String>) {
    let scale = scale_of(&flags);
    let trace = load_workload(&flags, scale);
    let Some(sname) = flags.get("scheme") else {
        eprintln!("--scheme is required");
        usage();
    };
    let Some(scheme) = Scheme::from_name(sname) else {
        eprintln!("unknown scheme {sname:?} (see `nvo list`)");
        exit(2);
    };
    let cfg = scale.sim_config();
    let r = run_scheme(scheme, &cfg, &trace);
    if flags.contains_key("json") {
        println!(
            "{{\"scheme\":\"{}\",\"cycles\":{},\"stall_cycles\":{},\"data_bytes\":{},\"log_bytes\":{},\"meta_bytes\":{},\"context_bytes\":{},\"data_writes\":{},\"epochs\":{},\"evict\":{{\"capacity\":{},\"coherence_log\":{},\"tag_walk\":{},\"store_evict\":{}}}}}",
            scheme.name(),
            r.cycles,
            r.stall_cycles,
            r.data_bytes,
            r.log_bytes,
            r.meta_bytes,
            r.context_bytes,
            r.data_writes,
            r.epochs,
            r.evict_capacity,
            r.evict_coherence_log,
            r.evict_tag_walk,
            r.evict_store,
        );
    } else {
        println!("scheme        {}", scheme.name());
        println!("cycles        {}", r.cycles);
        println!("stall cycles  {}", r.stall_cycles);
        println!(
            "NVM bytes     {} (data {}, log {}, metadata {}, context {})",
            r.total_bytes(),
            r.data_bytes,
            r.log_bytes,
            r.meta_bytes,
            r.context_bytes
        );
        println!("data writes   {}", r.data_writes);
        println!("epochs        {}", r.epochs);
        println!(
            "evictions     capacity {} / coherence+log {} / tag-walk {} / store-evict {}",
            r.evict_capacity, r.evict_coherence_log, r.evict_tag_walk, r.evict_store
        );
    }
}

fn cmd_trace_gen(flags: HashMap<String, String>) {
    let scale = scale_of(&flags);
    let trace = load_workload(&flags, scale);
    let Some(out) = flags.get("out") else {
        eprintln!("--out is required");
        usage();
    };
    let f = std::fs::File::create(out).unwrap_or_else(|e| {
        eprintln!("cannot create {out}: {e}");
        exit(1);
    });
    nvsim::trace_io::write_trace(&trace, std::io::BufWriter::new(f)).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        exit(1);
    });
    println!(
        "wrote {} ({} threads, {} accesses, {} stores)",
        out,
        trace.thread_count(),
        trace.access_count(),
        trace.store_count()
    );
}

fn cmd_snapshots(flags: HashMap<String, String>) {
    let scale = scale_of(&flags);
    let trace = load_workload(&flags, scale);
    let cfg = scale.sim_config();
    let mut sys = NvOverlaySystem::new(&cfg);
    let _ = Runner::new().run(&mut sys, &trace);
    let store = sys.snapshots();
    println!("recoverable epoch: {}", store.recoverable_epoch());
    let epochs = store.epochs();
    println!("captured epochs: {}", epochs.len());
    for (e, readable) in epochs.iter().take(20) {
        let delta = if *readable {
            store
                .delta(*e)
                .map(|d| format!("{} lines", d.len()))
                .unwrap_or_else(|| "-".into())
        } else {
            "reclaimed".into()
        };
        println!("  epoch {e:>6}: {delta}");
    }
    if epochs.len() > 20 {
        println!("  ... ({} more)", epochs.len() - 20);
    }
    let wear = sys.nvm().wear_report();
    println!(
        "NVM wear: {} unique lines, {} writes, hottest line written {} times (mean {:.2})",
        wear.unique_keys, wear.total_writes, wear.max_key_writes, wear.mean_key_writes
    );
}

fn cmd_diff(flags: HashMap<String, String>) {
    let scale = scale_of(&flags);
    let trace = load_workload(&flags, scale);
    let (Some(from), Some(to)) = (
        flags.get("from").and_then(|v| v.parse::<u64>().ok()),
        flags.get("to").and_then(|v| v.parse::<u64>().ok()),
    ) else {
        eprintln!("--from <epoch> and --to <epoch> are required");
        usage();
    };
    if from >= to {
        eprintln!("--from must be less than --to");
        exit(2);
    }
    let cfg = scale.sim_config();
    let mut sys = NvOverlaySystem::new(&cfg);
    let _ = Runner::new().run(&mut sys, &trace);
    let store = sys.snapshots();
    let last = store.recoverable_epoch();
    if to > last {
        eprintln!("epoch {to} exceeds the recoverable epoch {last}");
        exit(1);
    }
    match store.diff(from, to) {
        None => {
            eprintln!("an epoch in ({from}, {to}] is no longer individually readable");
            exit(1);
        }
        Some(changes) => {
            println!(
                "{} lines changed between epoch {from} and epoch {to}:",
                changes.len()
            );
            for c in changes.iter().take(30) {
                println!(
                    "  {:#012x}: {} -> {}",
                    c.line.raw() * 64,
                    c.before.map_or("-".into(), |t| t.to_string()),
                    c.after.map_or("-".into(), |t| t.to_string()),
                );
            }
            if changes.len() > 30 {
                println!("  ... ({} more)", changes.len() - 30);
            }
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("run") => cmd_run(parse_flags(&args[1..])),
        Some("trace-gen") => cmd_trace_gen(parse_flags(&args[1..])),
        Some("snapshots") => cmd_snapshots(parse_flags(&args[1..])),
        Some("diff") => cmd_diff(parse_flags(&args[1..])),
        _ => usage(),
    }
}
