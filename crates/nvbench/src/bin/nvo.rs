//! `nvo` — command-line driver for the NVOverlay reproduction.
//!
//! ```text
//! nvo list
//! nvo run --workload B+Tree --scheme NVOverlay [--scale quick|standard|full] [--shards N] [--json] [--stats-out s.json]
//! nvo run --trace t.nvtr --scheme PiCL
//! nvo trace-gen --workload kmeans --out t.nvtr [--scale quick]
//! nvo trace B+Tree --scheme NVOverlay [--scale quick] [--trace-out t.json] [--stats-out s.json]
//! nvo snapshots --workload RBTree [--scale quick]
//! nvo chaos B+Tree --scheme nvoverlay --sites 200 --seed 7 [--jobs N] [--out report.json]
//! nvo profile B+Tree --scheme NVOverlay --shards 4 [--scale quick] [--out p.json] [--structural-out s.json] [--chrome c.json]
//! nvo serve B+Tree --sessions 8 --batch 32 --epochs all --workers 4 [--seed S] [--out serve.json] [--stats-out s.json]
//! nvo query B+Tree --key 0x1f40 --epoch 7
//! nvo backup B+Tree --store ./snaps --name nightly [--upto E] [--scale quick]
//! nvo restore --store ./snaps --name nightly [--verify]
//! nvo store ls|rm|gc|validate --store ./snaps [--name N] [--purge]
//! nvo chaos B+Tree --store --sites 200 --seed 7 [--jobs N] [--out report.json]
//! nvo perf [--jobs N] [--shards N] [--profile] [--serve] [--scale quick|standard|full] [--out BENCH_perf.json] [--baseline <file>]
//! ```
//!
//! `nvo trace` needs the `trace` cargo feature
//! (`cargo build --release -p nvbench --features trace`); the stock
//! build compiles the tracer out entirely.
//!
//! ## Exit codes
//!
//! `0` success, `1` generic failure, `2` usage. Typed error classes map
//! to stable documented codes (the variant name is printed to stderr as
//! `error[<Variant>]: <message>` so scripts can grep it):
//!
//! | range | class | codes |
//! |---|---|---|
//! | 10–13 | `QueryError` | EpochZero 10, NotYetRecoverable 11, NotRetained 12, Wrapped 13 |
//! | 20–22 | `MountError` | Recovery 20, BufferNotDrained 21, nothing-to-serve 22 |
//! | 30–39 | `StoreError` | Io 30, Checksum 31, TornManifest 32, MissingLayer 33, RefcountUnderflow 34, SchemaVersion 35, BackupNotFound 36, BackupExists 37, UnreadableEpoch 38, BufferNotDrained 39 |

use nvbench::{
    bottleneck_table, chrome_profile_json, chrome_trace_json, default_jobs, gen_traces,
    profile_json, profile_structural_json, registry_json, run_matrix_stats, run_scheme_sharded,
    run_scheme_sharded_exec, run_scheme_sharded_prof, run_scheme_stats, ChromeMeta, EnvScale,
    ExpResult, Scheme, Spans,
};
use nvoverlay::store::QueryError;
use nvoverlay::system::NvOverlaySystem;
use nvserve::{
    driver as serve_driver, server as serve_engine, EpochSelect, Mount, MountError, ServeConfig,
};
use nvsim::memsys::Runner;
use nvsim::stats::{NvmWriteKind, SystemStats};
use nvsim::trace::Trace;
use nvstore::{DiskIo, SnapshotExport, Store, StoreError};
use nvworkloads::{generate, Workload};
use std::collections::HashMap;
use std::process::exit;
use std::sync::Arc;
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage:\n  nvo list\n  nvo run --workload <name> --scheme <name> [--scale quick|standard|full] [--shards N] [--no-coalesce] [--json] [--stats-out <file>]\n  nvo run --trace <file.nvtr> --scheme <name>\n  nvo trace-gen --workload <name> --out <file.nvtr> [--scale ...]\n  nvo trace <workload> --scheme <name> [--scale ...] [--trace-out <file>] [--stats-out <file>] [--buffer-cap N] [--sample N]\n  nvo snapshots --workload <name> [--scale ...]\n  nvo diff --workload <name> --from <epoch> --to <epoch> [--scale ...]\n  nvo chaos <workload> --scheme nvoverlay|sw-undo [--sites N] [--seed S] [--scale ...] [--jobs N] [--torn-p P] [--flip-p P] [--stress-backpressure] [--broken-recovery] [--out <file>] [--json]\n  nvo chaos <workload> --store [--sites N] [--seed S] [--scale ...] [--jobs N] [--torn-p P] [--flip-p P] [--out <file>] [--json]\n  nvo profile <workload> [--scheme <name>] [--shards N] [--scale ...] [--out <file>] [--structural-out <file>] [--chrome <file>] [--json]\n  nvo serve <workload> [--sessions N] [--batches K] [--batch B] [--epochs all|latest|A..B] [--workers W] [--cache-cap C] [--subshards S] [--seed S] [--theta T] [--no-probes] [--scale ...] [--out <file>] [--stats-out <file>] [--json]\n  nvo query <workload> --key <byte-addr> [--epoch E|latest] [--scale ...]\n  nvo backup <workload> --store <dir> [--name <backup>] [--upto E] [--scale ...]\n  nvo restore --store <dir> [--name <backup>] [--verify]\n  nvo store <ls|rm|gc|validate> --store <dir> [--name <backup>] [--purge]\n  nvo perf [--jobs N] [--shards N] [--profile] [--serve] [--scale ...] [--out BENCH_perf.json] [--serve-out BENCH_serve.json] [--baseline <file>]"
    );
    exit(2)
}

/// Typed-error exits: print `error[<Variant>]: <message>` and exit with
/// the class's documented code (see the module docs).
fn exit_query(e: &QueryError) -> ! {
    eprintln!("error[{}]: {e}", e.name());
    exit(match e {
        QueryError::EpochZero => 10,
        QueryError::NotYetRecoverable { .. } => 11,
        QueryError::NotRetained { .. } => 12,
        QueryError::Wrapped { .. } => 13,
    })
}

fn exit_mount(e: &MountError) -> ! {
    eprintln!("error[{}]: {e}", e.name());
    exit(match e {
        MountError::Recovery(_) => 20,
        MountError::BufferNotDrained { .. } => 21,
    })
}

/// `nvo serve` found a mountable image but nothing matching the load
/// plan — distinct from a mount rejection.
const EXIT_SERVE_EMPTY: i32 = 22;

fn exit_store(e: &StoreError) -> ! {
    eprintln!("error[{}]: {e}", e.name());
    exit(match e {
        StoreError::Io { .. } => 30,
        StoreError::Checksum { .. } => 31,
        StoreError::TornManifest { .. } => 32,
        StoreError::MissingLayer { .. } => 33,
        StoreError::RefcountUnderflow { .. } => 34,
        StoreError::SchemaVersion { .. } => 35,
        StoreError::BackupNotFound { .. } => 36,
        StoreError::BackupExists { .. } => 37,
        StoreError::UnreadableEpoch { .. } => 38,
        StoreError::BufferNotDrained { .. } => 39,
    })
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(key) = a.strip_prefix("--") {
            if key == "json"
                || key == "stress-backpressure"
                || key == "broken-recovery"
                || key == "profile"
                || key == "serve"
                || key == "no-probes"
                || key == "no-coalesce"
                || key == "verify"
                || key == "purge"
            {
                out.insert(key.to_string(), "1".into());
                i += 1;
            } else if key == "store" && args.get(i + 1).is_none_or(|v| v.starts_with("--")) {
                // `--store` is a mode toggle for `nvo chaos` (no value)
                // but takes a directory everywhere else.
                out.insert(key.to_string(), "1".into());
                i += 1;
            } else if i + 1 < args.len() {
                out.insert(key.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                eprintln!("flag --{key} needs a value");
                usage();
            }
        } else {
            eprintln!("unexpected argument {a:?}");
            usage();
        }
    }
    out
}

fn scale_of(flags: &HashMap<String, String>) -> EnvScale {
    match flags.get("scale").map(String::as_str) {
        Some("quick") => EnvScale::Quick,
        Some("full") => EnvScale::Full,
        Some("standard") | None => EnvScale::Standard,
        Some(other) => {
            eprintln!("unknown scale {other:?}");
            usage();
        }
    }
}

fn load_workload(flags: &HashMap<String, String>, scale: EnvScale) -> Trace {
    if let Some(path) = flags.get("trace") {
        let f = std::fs::File::open(path).unwrap_or_else(|e| {
            eprintln!("cannot open {path}: {e}");
            exit(1);
        });
        return nvsim::trace_io::read_trace(std::io::BufReader::new(f)).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            exit(1);
        });
    }
    let Some(wname) = flags.get("workload") else {
        eprintln!("--workload or --trace is required");
        usage();
    };
    let Some(w) = Workload::from_name(wname) else {
        eprintln!("unknown workload {wname:?} (see `nvo list`)");
        exit(2);
    };
    generate(w, &scale.suite_params())
}

fn cmd_list() {
    println!("workloads:");
    for w in Workload::ALL {
        println!("  {w}");
    }
    println!("schemes:");
    for s in Scheme::ALL {
        println!("  {}", s.name());
    }
}

fn cmd_run(flags: HashMap<String, String>) {
    let scale = scale_of(&flags);
    let trace = load_workload(&flags, scale);
    let Some(sname) = flags.get("scheme") else {
        eprintln!("--scheme is required");
        usage();
    };
    let Some(scheme) = Scheme::from_name(sname) else {
        eprintln!("unknown scheme {sname:?} (see `nvo list`)");
        exit(2);
    };
    let cfg = Arc::new(scale.sim_config());
    // `--shards N` replays through the island-sharded runner. Results
    // are invariant to N, so CI compares the outputs of different
    // counts byte-for-byte (sharded results intentionally differ from
    // the serial path's: islands are independent sub-machines).
    // `--no-coalesce` keeps the plan's rendezvous cadence but parks
    // workers at silent windows too — results must not change, which
    // CI also checks by comparing the two modes' outputs.
    let (r, reg) = match shards_requested(&flags) {
        Some(n) => {
            let coalesce = !flags.contains_key("no-coalesce");
            let run = run_scheme_sharded_exec(scheme, &cfg, &trace.to_packed(), n, false, coalesce);
            (run.result, run.metrics)
        }
        None => {
            let (r, _stats, reg) = run_scheme_stats(scheme, &cfg, &trace.to_packed());
            (r, reg)
        }
    };
    if let Some(path) = flags.get("stats-out") {
        let wname = flags.get("workload").map(String::as_str).unwrap_or("-");
        let json = registry_json(&reg, &[("scheme", scheme.name()), ("workload", wname)]);
        std::fs::write(path, json).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            exit(1);
        });
    }
    if flags.contains_key("json") {
        println!(
            "{{\"scheme\":\"{}\",\"cycles\":{},\"stall_cycles\":{},\"data_bytes\":{},\"log_bytes\":{},\"meta_bytes\":{},\"context_bytes\":{},\"data_writes\":{},\"epochs\":{},\"evict\":{{\"capacity\":{},\"coherence_log\":{},\"tag_walk\":{},\"store_evict\":{}}}}}",
            scheme.name(),
            r.cycles,
            r.stall_cycles,
            r.data_bytes,
            r.log_bytes,
            r.meta_bytes,
            r.context_bytes,
            r.data_writes,
            r.epochs,
            r.evict_capacity,
            r.evict_coherence_log,
            r.evict_tag_walk,
            r.evict_store,
        );
    } else {
        println!("scheme        {}", scheme.name());
        println!("cycles        {}", r.cycles);
        println!("stall cycles  {}", r.stall_cycles);
        println!(
            "NVM bytes     {} (data {}, log {}, metadata {}, context {})",
            r.total_bytes(),
            r.data_bytes,
            r.log_bytes,
            r.meta_bytes,
            r.context_bytes
        );
        println!("data writes   {}", r.data_writes);
        println!("epochs        {}", r.epochs);
        println!(
            "evictions     capacity {} / coherence+log {} / tag-walk {} / store-evict {}",
            r.evict_capacity, r.evict_coherence_log, r.evict_tag_walk, r.evict_store
        );
    }
}

fn cmd_trace_gen(flags: HashMap<String, String>) {
    let scale = scale_of(&flags);
    let trace = load_workload(&flags, scale);
    let Some(out) = flags.get("out") else {
        eprintln!("--out is required");
        usage();
    };
    let f = std::fs::File::create(out).unwrap_or_else(|e| {
        eprintln!("cannot create {out}: {e}");
        exit(1);
    });
    nvsim::trace_io::write_trace(&trace, std::io::BufWriter::new(f)).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        exit(1);
    });
    println!(
        "wrote {} ({} threads, {} accesses, {} stores)",
        out,
        trace.thread_count(),
        trace.access_count(),
        trace.store_count()
    );
}

/// `nvo trace` — one instrumented run with the structured-event tracer
/// on, exporting a Perfetto-loadable Chrome trace and (optionally) the
/// flat metrics registry.
fn cmd_trace(flags: HashMap<String, String>) {
    if !nvsim::nvtrace::compiled_in() {
        eprintln!(
            "nvo trace requires the `trace` feature; rebuild with\n  cargo build --release -p nvbench --features trace"
        );
        exit(2);
    }
    let scale = scale_of(&flags);
    let trace = load_workload(&flags, scale);
    let sname = flags
        .get("scheme")
        .map(String::as_str)
        .unwrap_or("NVOverlay");
    let Some(scheme) = Scheme::from_name(sname) else {
        eprintln!("unknown scheme {sname:?} (see `nvo list`)");
        exit(2);
    };
    let mut tcfg = nvsim::nvtrace::TraceConfig::default();
    if let Some(v) = flags.get("buffer-cap") {
        match v.parse::<usize>() {
            Ok(n) if n >= 1 => tcfg.capacity = n,
            _ => {
                eprintln!("--buffer-cap must be a positive integer, got {v:?}");
                exit(2);
            }
        }
    }
    if let Some(v) = flags.get("sample") {
        match v.parse::<u32>() {
            Ok(n) if n >= 1 => tcfg.sample_every = n,
            _ => {
                eprintln!("--sample must be a positive integer, got {v:?}");
                exit(2);
            }
        }
    }
    let cfg = Arc::new(scale.sim_config());
    nvsim::nvtrace::install(tcfg);
    let (res, _stats, reg) = run_scheme_stats(scheme, &cfg, &trace.to_packed());
    let log = nvsim::nvtrace::take().expect("tracer was installed");

    let wname = flags.get("workload").map(String::as_str).unwrap_or("-");
    println!(
        "traced {} on {}: {} cycles, {} events kept ({} accepted, {} overwritten, {} sampled out)",
        scheme.name(),
        wname,
        res.cycles,
        log.events.len(),
        log.accepted,
        log.overwritten,
        log.total_sampled_out()
    );
    for kind in nvsim::nvtrace::EventKind::ALL {
        let n = log.count(kind);
        if n > 0 {
            println!("  {:>8} {}", n, kind.name());
        }
    }

    let trace_out = flags
        .get("trace-out")
        .cloned()
        .unwrap_or_else(|| "nvo_trace.json".to_string());
    let meta = ChromeMeta {
        scheme: scheme.name().to_string(),
        workload: wname.to_string(),
    };
    std::fs::write(&trace_out, chrome_trace_json(&log, &meta)).unwrap_or_else(|e| {
        eprintln!("cannot write {trace_out}: {e}");
        exit(1);
    });
    println!("  wrote {trace_out} (load it at ui.perfetto.dev)");
    if let Some(path) = flags.get("stats-out") {
        let json = registry_json(&reg, &[("scheme", scheme.name()), ("workload", wname)]);
        std::fs::write(path, json).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            exit(1);
        });
        println!("  wrote {path}");
    }
}

fn cmd_snapshots(flags: HashMap<String, String>) {
    let scale = scale_of(&flags);
    let trace = load_workload(&flags, scale);
    let cfg = scale.sim_config();
    let mut sys = NvOverlaySystem::new(&cfg);
    let _ = Runner::new().run(&mut sys, &trace);
    let store = sys.snapshots();
    println!("recoverable epoch: {}", store.recoverable_epoch());
    let epochs = store.epochs();
    println!("captured epochs: {}", epochs.len());
    for (e, readable) in epochs.iter().take(20) {
        let delta = if *readable {
            store
                .delta(*e)
                .map(|d| format!("{} lines", d.len()))
                .unwrap_or_else(|| "-".into())
        } else {
            "reclaimed".into()
        };
        println!("  epoch {e:>6}: {delta}");
    }
    if epochs.len() > 20 {
        println!("  ... ({} more)", epochs.len() - 20);
    }
    let wear = sys.nvm().wear_report();
    println!(
        "NVM wear: {} unique lines, {} writes, hottest line written {} times (mean {:.2})",
        wear.unique_keys, wear.total_writes, wear.max_key_writes, wear.mean_key_writes
    );
}

fn cmd_diff(flags: HashMap<String, String>) {
    let scale = scale_of(&flags);
    let trace = load_workload(&flags, scale);
    let (Some(from), Some(to)) = (
        flags.get("from").and_then(|v| v.parse::<u64>().ok()),
        flags.get("to").and_then(|v| v.parse::<u64>().ok()),
    ) else {
        eprintln!("--from <epoch> and --to <epoch> are required");
        usage();
    };
    if from >= to {
        eprintln!("--from must be less than --to");
        exit(2);
    }
    let cfg = scale.sim_config();
    let mut sys = NvOverlaySystem::new(&cfg);
    let _ = Runner::new().run(&mut sys, &trace);
    let store = sys.snapshots();
    let last = store.recoverable_epoch();
    if to > last {
        eprintln!("epoch {to} exceeds the recoverable epoch {last}");
        exit(1);
    }
    match store.diff(from, to) {
        None => {
            eprintln!("an epoch in ({from}, {to}] is no longer individually readable");
            exit(1);
        }
        Some(changes) => {
            println!(
                "{} lines changed between epoch {from} and epoch {to}:",
                changes.len()
            );
            for c in changes.iter().take(30) {
                println!(
                    "  {:#012x}: {} -> {}",
                    c.line.raw() * 64,
                    c.before.map_or("-".into(), |t| t.to_string()),
                    c.after.map_or("-".into(), |t| t.to_string()),
                );
            }
            if changes.len() > 30 {
                println!("  ... ({} more)", changes.len() - 30);
            }
        }
    }
}

/// `nvo chaos` — deterministic crash-site exploration: run the workload
/// once with the NVM fault plane attached, then fan independent
/// crash/recovery checks out across `--jobs` workers. Exits nonzero if
/// any site violates a consistency-cut invariant.
fn cmd_chaos(flags: HashMap<String, String>) {
    if flags.contains_key("store") {
        return cmd_chaos_store(flags);
    }
    let scale = scale_of(&flags);
    let trace = load_workload(&flags, scale);
    let sname = flags
        .get("scheme")
        .map(String::as_str)
        .unwrap_or("nvoverlay");
    let Some(scheme) = nvchaos::ChaosScheme::from_name(sname) else {
        eprintln!("unknown chaos scheme {sname:?} (expected nvoverlay or sw-undo)");
        exit(2);
    };
    let mut ccfg = nvchaos::ChaosConfig::new(scheme);
    if let Some(v) = flags.get("sites") {
        match v.parse::<usize>() {
            Ok(n) if n >= 1 => ccfg.sites = n,
            _ => {
                eprintln!("--sites must be a positive integer, got {v:?}");
                exit(2);
            }
        }
    }
    if let Some(v) = flags.get("seed") {
        match v.parse::<u64>() {
            Ok(n) => ccfg.seed = n,
            _ => {
                eprintln!("--seed must be an integer, got {v:?}");
                exit(2);
            }
        }
    }
    for (flag, slot) in [("torn-p", &mut ccfg.torn_p), ("flip-p", &mut ccfg.flip_p)] {
        if let Some(v) = flags.get(flag) {
            match v.parse::<f64>() {
                Ok(p) if (0.0..=1.0).contains(&p) => *slot = p,
                _ => {
                    eprintln!("--{flag} must be a probability in [0, 1], got {v:?}");
                    exit(2);
                }
            }
        }
    }
    ccfg.stress_backpressure = flags.contains_key("stress-backpressure");
    if flags.contains_key("broken-recovery") {
        // Harness self-test: a recovery that ignores the rec-epoch
        // filter must make the invariants fire.
        ccfg.fidelity = nvchaos::RebuildFidelity::BrokenNoEpochFilter;
    }
    let jobs = jobs_of(&flags);

    let run = nvchaos::prepare(&trace, &scale.sim_config(), ccfg);
    let results = nvbench::run_ordered(run.site_count(), jobs, |i| run.check_site(i));
    let report = run.summarize(&results);
    let json = report.to_json();

    if let Some(path) = flags.get("out") {
        std::fs::write(path, &json).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            exit(1);
        });
    }
    if flags.contains_key("json") {
        print!("{json}");
    } else {
        println!(
            "chaos {}: {} sites over a {}-write journal (seed {})",
            report.scheme, report.sites_explored, report.journal_writes, report.seed
        );
        let by_cat: Vec<String> = report
            .category_counts
            .iter()
            .filter(|(_, n)| *n > 0)
            .map(|(c, n)| format!("{c} {n}"))
            .collect();
        println!("  sites: {}", by_cat.join(", "));
        println!(
            "  faults: {} writes dropped, {} torn, {} bit flips injected, {} detected by recovery",
            report.dropped_writes, report.torn_sites, report.flips_injected, report.faults_detected
        );
        println!("  max recovered epoch: {}", report.max_recovered_epoch);
        if report.ok() {
            println!("  invariants: all sites consistent");
        } else {
            println!("  INVARIANT VIOLATIONS: {}", report.violations.len());
            for v in report.violations.iter().take(10) {
                println!("    site {} [{}]: {}", v.site, v.category, v.message);
            }
            if report.violations.len() > 10 {
                println!("    ... ({} more)", report.violations.len() - 10);
            }
        }
    }
    if !report.ok() {
        exit(1);
    }
}

/// The worker count for a command: `--jobs` beats `NVO_JOBS` beats the
/// machine's available parallelism.
fn jobs_of(flags: &HashMap<String, String>) -> usize {
    match flags.get("jobs") {
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("--jobs must be a positive integer, got {v:?}");
                exit(2);
            }
        },
        None => default_jobs(),
    }
}

/// The sharded-replay worker count, if sharding was requested at all:
/// `--shards` beats `NVO_SHARDS`; neither means the serial replay path.
/// One worker still runs the sharded algorithm (every island in turn) —
/// same results as any other worker count, no thread overlap.
fn shards_requested(flags: &HashMap<String, String>) -> Option<usize> {
    if let Some(v) = flags.get("shards") {
        match v.parse::<usize>() {
            Ok(n) if n >= 1 => return Some(n),
            _ => {
                eprintln!("--shards must be a positive integer, got {v:?}");
                exit(2);
            }
        }
    }
    if let Ok(v) = std::env::var("NVO_SHARDS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return Some(n);
            }
        }
    }
    None
}

/// Extracts a named throughput object (e.g. `"throughput_maccess_s"`)
/// from a perf-report JSON (the exact format `nvo perf` writes) as
/// scheme-name → value pairs.
fn parse_throughput_baseline(json: &str, key: &str) -> HashMap<String, f64> {
    let mut out = HashMap::new();
    let Some(start) = json.find(&format!("\"{key}\"")) else {
        return out;
    };
    let Some(open) = json[start..].find('{') else {
        return out;
    };
    let rest = &json[start + open + 1..];
    let Some(close) = rest.find('}') else {
        return out;
    };
    for pair in rest[..close].split(',') {
        let mut it = pair.splitn(2, ':');
        let (Some(k), Some(v)) = (it.next(), it.next()) else {
            continue;
        };
        if let Ok(n) = v.trim().parse::<f64>() {
            out.insert(k.trim().trim_matches('"').to_string(), n);
        }
    }
    out
}

/// Renders a per-scheme value table as JSON object members
/// (`"name": value` pairs, scheme order).
fn throughput_table_of(schemes: &[Scheme], vals: &[f64]) -> String {
    schemes
        .iter()
        .enumerate()
        .map(|(si, s)| format!("\"{}\": {:.4}", s.name(), vals[si]))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Microseconds for the JSON report. Sub-microsecond readings are below
/// the monotonic clock's meaningful granularity on the hosts we run on,
/// so they clamp to zero instead of encoding noise digits.
fn micros(secs: f64) -> u64 {
    let us = (secs * 1e6).round();
    if us < 1.0 {
        0
    } else {
        us as u64
    }
}

/// `nvo profile` — one stall-attributed island-sharded replay: runs the
/// workload through `run_scheme_sharded_prof`, prints the human-readable
/// bottleneck table (six-bucket wall-time decomposition, Amdahl-style
/// scaling forecast, per-window straggler diagnosis), and writes the
/// machine-readable profile JSON with its wall-clock fields strictly
/// segregated from the identity-checkable structural counters
/// (`--structural-out` emits the latter alone, for CI `cmp`).
/// `--chrome` additionally renders per-island utilization lanes and the
/// straggler lane as a Perfetto-loadable trace.
fn cmd_profile(flags: HashMap<String, String>) {
    let scale = scale_of(&flags);
    let trace = load_workload(&flags, scale);
    let sname = flags
        .get("scheme")
        .map(String::as_str)
        .unwrap_or("NVOverlay");
    let Some(scheme) = Scheme::from_name(sname) else {
        eprintln!("unknown scheme {sname:?} (see `nvo list`)");
        exit(2);
    };
    let shards = shards_requested(&flags).unwrap_or_else(default_host);
    let cfg = Arc::new(scale.sim_config());
    let run = run_scheme_sharded_prof(scheme, &cfg, &trace.to_packed(), shards, true);
    if !run.sharded {
        eprintln!(
            "{} is serial-only (MemorySystem::shardable is false); there is no sharded replay to profile",
            scheme.name()
        );
        exit(2);
    }
    let p = run.profile.expect("sharded profiled run carries a profile");
    let wname = flags.get("workload").map(String::as_str).unwrap_or("-");
    if !flags.contains_key("json") {
        println!(
            "profiled {} on {} ({} shards requested): {} cycles, {} imported lines",
            scheme.name(),
            wname,
            shards,
            run.result.cycles,
            run.imported_lines
        );
        print!("{}", bottleneck_table(&p));
    }

    let shards_str = shards.to_string();
    let meta: [(&str, &str); 3] = [
        ("scheme", scheme.name()),
        ("workload", wname),
        ("shards", &shards_str),
    ];
    let full = profile_json(&p, &meta);
    if flags.contains_key("json") {
        print!("{full}");
    }
    let out = flags
        .get("out")
        .cloned()
        .unwrap_or_else(|| "nvo_profile.json".to_string());
    std::fs::write(&out, &full).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        exit(1);
    });
    if !flags.contains_key("json") {
        println!("wrote {out}");
    }
    if let Some(path) = flags.get("structural-out") {
        std::fs::write(path, profile_structural_json(&p)).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            exit(1);
        });
        if !flags.contains_key("json") {
            println!("wrote {path} (deterministic structural counters only)");
        }
    }
    if let Some(path) = flags.get("chrome") {
        let cmeta = ChromeMeta {
            scheme: scheme.name().to_string(),
            workload: wname.to_string(),
        };
        std::fs::write(path, chrome_profile_json(&p, &cmeta)).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            exit(1);
        });
        if !flags.contains_key("json") {
            println!("wrote {path} (load it at ui.perfetto.dev)");
        }
    }
}

/// Builds a [`ServeConfig`] from CLI flags (defaults from
/// `ServeConfig::default`, workers from `--workers`).
fn serve_config_of(flags: &HashMap<String, String>) -> ServeConfig {
    let mut cfg = ServeConfig::default();
    for (flag, slot) in [
        ("sessions", &mut cfg.sessions),
        ("batches", &mut cfg.batches),
        ("batch", &mut cfg.batch),
        ("workers", &mut cfg.workers),
        ("cache-cap", &mut cfg.cache_cap),
        ("subshards", &mut cfg.subshards),
    ] {
        if let Some(v) = flags.get(flag) {
            match v.parse::<usize>() {
                Ok(n) if n >= 1 => *slot = n,
                _ => {
                    eprintln!("--{flag} must be a positive integer, got {v:?}");
                    exit(2);
                }
            }
        }
    }
    if let Some(v) = flags.get("seed") {
        match v.parse::<u64>() {
            Ok(n) => cfg.seed = n,
            _ => {
                eprintln!("--seed must be an integer, got {v:?}");
                exit(2);
            }
        }
    }
    if let Some(v) = flags.get("theta") {
        match v.parse::<f64>() {
            Ok(t) if (0.0..=5.0).contains(&t) => cfg.theta = t,
            _ => {
                eprintln!("--theta must be a skew in [0, 5], got {v:?}");
                exit(2);
            }
        }
    }
    if let Some(v) = flags.get("epochs") {
        cfg.epochs = match v.as_str() {
            "all" => EpochSelect::All,
            "latest" => EpochSelect::Latest,
            other => match other.split_once("..") {
                Some((lo, hi)) => match (lo.parse::<u64>(), hi.parse::<u64>()) {
                    (Ok(lo), Ok(hi)) if lo <= hi => EpochSelect::Range(lo, hi),
                    _ => {
                        eprintln!("--epochs range must be <lo>..<hi>, got {v:?}");
                        exit(2);
                    }
                },
                None => {
                    eprintln!("--epochs must be all, latest, or <lo>..<hi>, got {v:?}");
                    exit(2);
                }
            },
        };
    }
    cfg.error_probes = !flags.contains_key("no-probes");
    cfg
}

/// Replays the workload through NVOverlay and mounts the resulting
/// durable state for serving.
fn mounted_system(flags: &HashMap<String, String>, scale: EnvScale) -> NvOverlaySystem {
    let trace = load_workload(flags, scale);
    let cfg = scale.sim_config();
    let mut sys = NvOverlaySystem::new(&cfg);
    let _ = Runner::new().run(&mut sys, &trace);
    sys
}

/// `nvo serve` — mounts the recovered image left behind by one NVOverlay
/// run and serves a scripted concurrent load of batched point-in-time
/// reads against it. The report (and `--out` file) is deterministic:
/// byte-identical across `--workers` counts and repeated runs of one
/// seed; wall-clock throughput goes to stdout only.
fn cmd_serve(flags: HashMap<String, String>) {
    let scale = scale_of(&flags);
    let scfg = serve_config_of(&flags);
    let sys = mounted_system(&flags, scale);
    let mount = Mount::new(sys.mnm(), scfg.subshards).unwrap_or_else(|e| exit_mount(&e));
    let Some(plan) = serve_driver::plan(&mount, &scfg) else {
        eprintln!("nothing to serve: the image is empty or no epoch matches --epochs");
        exit(EXIT_SERVE_EMPTY);
    };
    let out = serve_engine::serve(&mount, &plan, &scfg);
    let wname = flags.get("workload").map(String::as_str).unwrap_or("-");
    let json = out.report.to_json(wname, "NVOverlay");
    if let Some(path) = flags.get("out") {
        std::fs::write(path, &json).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            exit(1);
        });
    }
    if let Some(path) = flags.get("stats-out") {
        let mut reg = nvsim::metrics::Registry::new();
        out.report.metrics_into(&mut reg, "serve");
        let stats = registry_json(&reg, &[("scheme", "NVOverlay"), ("workload", wname)]);
        std::fs::write(path, stats).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            exit(1);
        });
    }
    if flags.contains_key("json") {
        print!("{json}");
        return;
    }
    let r = &out.report;
    println!(
        "served {wname}: {} sessions x {} batches x {} keys over {} shards ({} workers)",
        r.sessions, r.batches_per_session, r.batch, r.shards, scfg.workers,
    );
    println!(
        "  mount: rec-epoch {} (max seen {}, lag {}), {} image lines, {} servable epochs",
        r.rec_epoch, r.max_epoch_seen, r.lag, r.image_lines, r.epochs_servable
    );
    println!(
        "  answered {} of {} enqueued ({} hit a version, {} empty); {} probe batches rejected",
        r.answered,
        r.enqueued,
        r.answers_some,
        r.answers_none,
        r.errors.iter().map(|(_, v)| v).sum::<u64>(),
    );
    println!(
        "  mapping cache: {:.1}% hits ({} hits / {} misses / {} evictions)",
        100.0 * r.hit_rate(),
        r.cache.hits,
        r.cache.misses,
        r.cache.evictions
    );
    println!(
        "  {:.0} queries/s ({:.3}s wall), digest {:016x}",
        out.queries_per_sec(),
        out.wall_secs,
        r.digest
    );
}

/// `nvo query` — a one-shot point-in-time read: `GET key AS OF epoch`.
/// Typed epoch rejections (`QueryError`) print `error[<Variant>]` to
/// stderr and exit with the class's documented code (10–13).
fn cmd_query(flags: HashMap<String, String>) {
    let scale = scale_of(&flags);
    let Some(keystr) = flags.get("key") else {
        eprintln!("--key <byte-addr> is required");
        usage();
    };
    let byte = match keystr.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => keystr.parse::<u64>(),
    }
    .unwrap_or_else(|_| {
        eprintln!("--key must be a byte address (decimal or 0x-hex), got {keystr:?}");
        exit(2);
    });
    let line = nvsim::addr::Addr::new(byte).line();
    let sys = mounted_system(&flags, scale);
    let mount = Mount::new(sys.mnm(), 1).unwrap_or_else(|e| exit_mount(&e));
    let epoch = match flags.get("epoch").map(String::as_str) {
        None | Some("latest") => mount.dir().recoverable(),
        Some(v) => v.parse::<u64>().unwrap_or_else(|_| {
            eprintln!("--epoch must be an epoch number or `latest`, got {v:?}");
            exit(2);
        }),
    };
    match mount.dir().resolve(epoch) {
        Err(e) => exit_query(&e),
        Ok(view) => match mount.mnm().time_travel(line, view.epoch()) {
            Some(token) => {
                println!("{byte:#012x} @ epoch {}: {token}", view.epoch());
            }
            None => {
                println!(
                    "{byte:#012x} @ epoch {}: no version at or before this epoch",
                    view.epoch()
                );
            }
        },
    }
}

fn store_dir_of(flags: &HashMap<String, String>) -> &str {
    match flags.get("store").map(String::as_str) {
        Some(dir) if dir != "1" => dir,
        _ => {
            eprintln!("--store <dir> is required");
            usage();
        }
    }
}

fn open_store(dir: &str) -> Store<DiskIo> {
    let io = DiskIo::create(dir).unwrap_or_else(|e| {
        eprintln!("cannot open store at {dir}: {e}");
        exit(1);
    });
    Store::open(io).unwrap_or_else(|e| exit_store(&e))
}

/// `nvo backup` — replays the workload, exports the exact snapshot
/// image, and writes it into the on-disk layer store. Incremental by
/// content addressing: a second backup of the same (or a prefix) image
/// reports `0 new layers`.
fn cmd_backup(flags: HashMap<String, String>) {
    let scale = scale_of(&flags);
    let dir = store_dir_of(&flags).to_string();
    let name = flags.get("name").map(String::as_str).unwrap_or("snapshot");
    let sys = mounted_system(&flags, scale);
    let mut export = SnapshotExport::from_mnm(sys.mnm()).unwrap_or_else(|e| exit_store(&e));
    if let Some(v) = flags.get("upto") {
        match v.parse::<u64>() {
            Ok(e) => export = export.truncated(e),
            _ => {
                eprintln!("--upto must be an epoch number, got {v:?}");
                exit(2);
            }
        }
    }
    let mut store = open_store(&dir);
    let stats = store
        .backup(name, &export)
        .unwrap_or_else(|e| exit_store(&e));
    println!(
        "backed up {name} into {dir}: {} new layers ({} bytes), {} shared; \
         rec-epoch {}, {} epochs captured; manifest v{}",
        stats.new_layers,
        stats.new_bytes,
        stats.shared_layers,
        export.rec_epoch,
        export.deltas.len(),
        store.manifest().version
    );
}

/// `nvo restore` — reads a backup out of the store (full checksum,
/// chain, and anti-hybrid verification) and rebuilds a live backend
/// from it. `--verify` additionally mounts the result under the query
/// service and sweeps point-in-time reads against the stored master.
fn cmd_restore(flags: HashMap<String, String>) {
    let dir = store_dir_of(&flags);
    let name = flags.get("name").map(String::as_str).unwrap_or("snapshot");
    let store = open_store(dir);
    let export = store.restore(name).unwrap_or_else(|e| exit_store(&e));
    let (mnm, _nvm) = export.rebuild().unwrap_or_else(|e| exit_store(&e));
    println!(
        "restored {name} from {dir}: rec-epoch {} (max seen {}), {} epochs captured, \
         {} master lines, {} contexts",
        export.rec_epoch,
        export.max_epoch_seen,
        export.deltas.len(),
        export.master.len(),
        export.contexts.len()
    );
    if flags.contains_key("verify") {
        let mount = Mount::new(&mnm, 1).unwrap_or_else(|e| exit_mount(&e));
        let mut checked = 0usize;
        if export.rec_epoch > 0 {
            let view = mount
                .dir()
                .resolve(export.rec_epoch)
                .unwrap_or_else(|e| exit_query(&e));
            let stride = (export.master.len() / 64).max(1);
            for &(l, t) in export.master.iter().step_by(stride) {
                let got = mount
                    .mnm()
                    .time_travel(nvsim::addr::LineAddr::new(l), view.epoch());
                if got != Some(t) {
                    eprintln!(
                        "error[Checksum]: mounted read of line {l:#x} at epoch {} returned \
                         {got:?}, stored master says {t}",
                        view.epoch()
                    );
                    exit(31);
                }
                checked += 1;
            }
        }
        println!(
            "verified: recovery passed, mounted under the query service, \
             {checked} point-in-time reads match the stored master"
        );
    }
}

/// `nvo store <ls|rm|gc|validate>` — maintenance of an on-disk layer
/// store: list contents, drop a backup, sweep unreferenced layers into
/// quarantine (`--purge` deletes the quarantine for good), or fully
/// re-verify every backup.
fn cmd_store(args: &[String]) {
    let Some(sub) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("nvo store needs a subcommand: ls, rm, gc, or validate");
        usage();
    };
    let flags = parse_flags(&args[1..]);
    let dir = store_dir_of(&flags);
    match sub.as_str() {
        "ls" => {
            let store = open_store(dir);
            let m = store.manifest();
            let layer_bytes: u64 = m.layers.iter().map(|(_, meta)| meta.bytes).sum();
            println!(
                "store {dir}: manifest v{}, {} backups, {} layers ({} bytes), {} quarantined",
                m.version,
                m.backups.len(),
                m.layers.len(),
                layer_bytes,
                m.quarantine.len()
            );
            for b in &m.backups {
                println!(
                    "  {}: rec-epoch {} (max seen {}), {} delta layers, {} OMCs x {} VDs",
                    b.name,
                    b.rec_epoch,
                    b.max_epoch_seen,
                    b.deltas.len(),
                    b.omcs,
                    b.vds
                );
            }
        }
        "rm" => {
            let Some(name) = flags.get("name") else {
                eprintln!("--name <backup> is required");
                usage();
            };
            let mut store = open_store(dir);
            store.remove(name).unwrap_or_else(|e| exit_store(&e));
            println!("removed {name} from {dir}; run `nvo store gc` to quarantine its layers");
        }
        "gc" => {
            let mut store = open_store(dir);
            let stats = store.gc().unwrap_or_else(|e| exit_store(&e));
            println!(
                "gc {dir}: {} layers quarantined, {} live",
                stats.quarantined, stats.live
            );
            if flags.contains_key("purge") {
                let purged = store.purge_quarantine().unwrap_or_else(|e| exit_store(&e));
                println!("purged {purged} quarantined layer files");
            }
        }
        "validate" => {
            let store = open_store(dir);
            let n = store.validate().unwrap_or_else(|e| exit_store(&e));
            println!("store {dir} is consistent: {n} backups fully verified");
        }
        other => {
            eprintln!("unknown store subcommand {other:?} (expected ls, rm, gc, or validate)");
            usage();
        }
    }
}

/// `nvo chaos --store` — crashes the backup machinery instead of the
/// simulated NVM: replays seeded prefix cuts (with torn tail writes and
/// bit flips) of a recorded backup → backup → remove → gc session and
/// requires a clean prior-manifest restore or a typed `StoreError` at
/// every site. Every exact restore is additionally mounted under the
/// query service and spot-checked against `time_travel`.
fn cmd_chaos_store(flags: HashMap<String, String>) {
    let scale = scale_of(&flags);
    let trace = load_workload(&flags, scale);
    let mut cfg = nvchaos::StoreChaosConfig::default();
    if let Some(v) = flags.get("sites") {
        match v.parse::<usize>() {
            Ok(n) if n >= 1 => cfg.sites = n,
            _ => {
                eprintln!("--sites must be a positive integer, got {v:?}");
                exit(2);
            }
        }
    }
    if let Some(v) = flags.get("seed") {
        match v.parse::<u64>() {
            Ok(n) => cfg.seed = n,
            _ => {
                eprintln!("--seed must be an integer, got {v:?}");
                exit(2);
            }
        }
    }
    for (flag, slot) in [("torn-p", &mut cfg.torn_p), ("flip-p", &mut cfg.flip_p)] {
        if let Some(v) = flags.get(flag) {
            match v.parse::<f64>() {
                Ok(p) if (0.0..=1.0).contains(&p) => *slot = p,
                _ => {
                    eprintln!("--{flag} must be a probability in [0, 1], got {v:?}");
                    exit(2);
                }
            }
        }
    }
    let jobs = jobs_of(&flags);

    let run =
        nvchaos::prepare_store(&trace, &scale.sim_config(), cfg).unwrap_or_else(|e| exit_store(&e));
    // The mount probe nvchaos cannot name itself (it would cycle on
    // nvserve): every exact restore must also mount and answer like
    // `time_travel` does.
    let mount_check = |mnm: &nvoverlay::mnm::Mnm, export: &SnapshotExport| -> Result<(), String> {
        let mount =
            Mount::new(mnm, 1).map_err(|e| format!("mount rejected the restored image: {e}"))?;
        if export.rec_epoch == 0 {
            return Ok(());
        }
        let view = mount
            .dir()
            .resolve(export.rec_epoch)
            .map_err(|e| format!("resolve({}) failed: {e}", export.rec_epoch))?;
        let stride = (export.master.len() / 8).max(1);
        for &(l, t) in export.master.iter().step_by(stride) {
            if mount
                .mnm()
                .time_travel(nvsim::addr::LineAddr::new(l), view.epoch())
                != Some(t)
            {
                return Err(format!(
                    "mounted read of line {l:#x} diverges from the stored master"
                ));
            }
        }
        Ok(())
    };
    let results = nvbench::run_ordered(run.site_count(), jobs, |i| {
        run.check_site(i, Some(&mount_check))
    });
    let report = run.summarize(&results);
    let json = report.to_json();

    if let Some(path) = flags.get("out") {
        std::fs::write(path, &json).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            exit(1);
        });
    }
    if flags.contains_key("json") {
        print!("{json}");
    } else {
        println!(
            "store chaos: {} fault sites over a {}-op journal ({} writes, {} renames, {} removes; seed {})",
            report.sites_explored,
            report.journal_writes + report.journal_renames + report.journal_removes,
            report.journal_writes,
            report.journal_renames,
            report.journal_removes,
            report.seed
        );
        let by_cat: Vec<String> = report
            .category_counts
            .iter()
            .filter(|(_, n)| *n > 0)
            .map(|(c, n)| format!("{c} {n}"))
            .collect();
        println!("  sites: {}", by_cat.join(", "));
        let typed: Vec<String> = report
            .typed_errors
            .iter()
            .map(|(n, c)| format!("{n} {c}"))
            .collect();
        println!(
            "  faults: {} torn writes, {} bit flips; typed errors: {}",
            report.torn_sites,
            report.flips_injected,
            if typed.is_empty() {
                "none".to_string()
            } else {
                typed.join(", ")
            }
        );
        println!(
            "  checked: {} exact restores, {} mounts; max manifest version {}",
            report.restores_checked, report.mounts_checked, report.max_manifest_version
        );
        if report.ok() {
            println!("  contract: every site restored a committed state or failed typed");
        } else {
            println!("  CONTRACT VIOLATIONS: {}", report.violations.len());
            for v in report.violations.iter().take(10) {
                println!("    site {} [{}]: {}", v.site, v.category, v.message);
            }
            if report.violations.len() > 10 {
                println!("    ... ({} more)", report.violations.len() - 10);
            }
        }
    }
    if !report.ok() {
        exit(1);
    }
}

/// `nvo perf` — times the parallel experiment engine against the serial
/// driver on a fixed 6-scheme × 4-workload matrix, reports per-scheme
/// serial replay throughput (Maccesses/s), then replays the same matrix
/// through the island-sharded runner at several worker counts
/// (`--shards`/`NVO_SHARDS` picks the headline count) and reports the
/// intra-workload sharded throughput and speedup. Writes
/// `BENCH_perf.json` with the per-phase breakdown (plan building timed
/// apart from replay). `--baseline <file>` gates the run against a
/// checked-in report: any scheme dropping more than 20% below its
/// baseline throughput (serial or sharded) fails the command, as does
/// any scheme whose serial/sharded overhead ratio exceeds its absolute
/// `sharded_overhead_ratio` ceiling; the throughput floors (not the
/// overhead ceilings, which are host-independent) are
/// announced-and-skipped on 1-way hosts, where one worker thread cannot
/// express a sharded speedup.
fn cmd_perf(flags: HashMap<String, String>) {
    let scale = scale_of(&flags);
    let jobs = jobs_of(&flags);
    let shards = shards_requested(&flags).unwrap_or(1);
    let out_path = flags
        .get("out")
        .cloned()
        .unwrap_or_else(|| "BENCH_perf.json".to_string());
    let cfg = Arc::new(scale.sim_config());
    let params = scale.suite_params();
    let workloads = [
        Workload::HashTable,
        Workload::BTree,
        Workload::Art,
        Workload::Kmeans,
    ];
    let schemes = Scheme::FIGURE;

    println!(
        "perf: {} schemes x {} workloads (scale {scale:?}), serial vs {jobs} jobs",
        schemes.len(),
        workloads.len()
    );

    // Phase timings for both drivers: trace generation, replay, stats.
    let mut timing = [Spans::new(), Spans::new()]; // [serial, parallel]

    // Serial pass, timed per scheme: each scheme replays every workload
    // on the calling thread, which yields the per-scheme throughput
    // table on top of the aggregate phase timing.
    let mut scheme_secs = vec![0.0f64; schemes.len()];
    let serial_traces = timing[0].time("trace_gen", || gen_traces(&workloads, &params, 1));
    let total_accesses: u64 = serial_traces.iter().map(|t| t.access_count()).sum();
    let serial_rows: Vec<Vec<(ExpResult, SystemStats)>> = timing[0].time("replay", || {
        let mut rows: Vec<Vec<(ExpResult, SystemStats)>> = (0..serial_traces.len())
            .map(|_| Vec::with_capacity(schemes.len()))
            .collect();
        for (ti, trace) in serial_traces.iter().enumerate() {
            for (si, s) in schemes.iter().enumerate() {
                let t0 = Instant::now();
                let (res, stats, _) = run_scheme_stats(*s, &cfg, trace);
                scheme_secs[si] += t0.elapsed().as_secs_f64();
                rows[ti].push((res, stats));
            }
        }
        rows
    });

    // Parallel pass through the matrix engine.
    let par_traces = timing[1].time("trace_gen", || gen_traces(&workloads, &params, jobs));
    let par_rows = timing[1].time("replay", || {
        run_matrix_stats(&schemes, &cfg, &par_traces, jobs)
    });

    // Stats phase for both: merge every run's stats block into one
    // aggregate (the same `SystemStats::merge` the figure drivers use)
    // and derive the summary scalars from it.
    for (di, rows) in [&serial_rows, &par_rows].into_iter().enumerate() {
        let (cycles, merged) = timing[di].time("stats", || {
            let mut merged = SystemStats::default();
            let mut cycles = 0u64;
            for (r, s) in rows.iter().flat_map(|row| row.iter()) {
                cycles += r.cycles;
                merged.merge(s);
            }
            (cycles, merged)
        });
        let bytes: u64 = NvmWriteKind::ALL.iter().map(|k| merged.nvm.bytes(*k)).sum();
        // The stats phase is microseconds-scale: print and report it in
        // µs — seconds with six decimals (`0.000005`) is below the
        // clock's meaningful resolution and reads as noise.
        println!(
            "  {}: trace-gen {:.3}s, replay {:.3}s, stats {}us, total {:.3}s (sum cycles {cycles}, sum NVM bytes {bytes})",
            if di == 0 { "serial  " } else { "parallel" },
            timing[di].secs("trace_gen"),
            timing[di].secs("replay"),
            micros(timing[di].secs("stats")),
            timing[di].total_secs(),
        );
    }

    // Per-scheme replay throughput over the serial pass: every scheme
    // replays the same `total_accesses` events, so Maccesses/s is
    // directly comparable across schemes and across commits.
    let maccess: Vec<f64> = scheme_secs
        .iter()
        .map(|s| total_accesses as f64 / 1e6 / s.max(1e-9))
        .collect();
    println!("  replay throughput, serial ({total_accesses} accesses per scheme):");
    for (si, s) in schemes.iter().enumerate() {
        println!("    {:<12} {:>8.2} Maccess/s", s.name(), maccess[si]);
    }

    // Sharded replay phase: the same matrix through the island-sharded
    // runner, once per probed worker count. Count 1 is the reference
    // for both determinism (results must be invariant to the worker
    // count) and the sharded speedup; 2/4/8 are always probed so the
    // determinism check covers the whole worker-count ladder (and the
    // 8-way point exposes cadence/exchange races a 2-way run hides).
    let shard_counts: Vec<usize> = {
        let mut v = vec![1, 2, 4, 8, shards];
        v.sort_unstable();
        v.dedup();
        v
    };

    // Plan pre-build, timed apart from replay: each workload's shard
    // plan (island split, filtered exchange arena, rendezvous cadence)
    // is built once here and memoized, so every sweep iteration below
    // hits the plan cache and `replay_s` measures replay alone.
    let plan_t0 = Instant::now();
    for trace in &par_traces {
        let _ = nvsim::ShardPlan::cached(trace, &cfg);
    }
    let plan_build_s = plan_t0.elapsed().as_secs_f64();
    println!(
        "  sharded plan build: {}us ({} workloads, shared across schemes and worker counts)",
        micros(plan_build_s),
        par_traces.len()
    );
    let mut sharded_secs = vec![0.0f64; shard_counts.len()];
    let mut scheme_sharded_secs = vec![0.0f64; schemes.len()];
    // Denominator for the overhead ratio: serial replays of the same
    // cell timed back-to-back with its headline sharded replays, in
    // palindromic order (sharded, serial, serial, sharded). The serial
    // pass above ran much earlier in the process, and host drift
    // (frequency scaling, allocator state) between the two sampling
    // points would otherwise masquerade as sharding overhead; within a
    // cell the first run additionally pays a cache/allocator warm-up
    // the second rides on. The palindrome charges each mode one edge
    // and one middle position, cancelling both effects. Each cell takes
    // OVERHEAD_REPS palindromic samples and keeps each mode's *best*
    // pair: on a shared 1-way host, co-tenant bursts can inflate a
    // single sample severalfold, and the minimum is the standard
    // noise-robust estimator of the true cost — a burst would have to
    // hit the same cell in every rep to survive.
    let mut scheme_serial_adj_secs = vec![0.0f64; schemes.len()];
    const OVERHEAD_REPS: usize = 3;
    let mut sharded_identical = true;
    let mut reference: Vec<(ExpResult, SystemStats, String)> = Vec::new();
    for (ci, &count) in shard_counts.iter().enumerate() {
        let t0 = Instant::now();
        let mut extra_secs = 0.0f64;
        let mut cell = 0usize;
        for trace in &par_traces {
            for (si, s) in schemes.iter().enumerate() {
                let ts = Instant::now();
                let run = run_scheme_sharded(*s, &cfg, trace, count);
                if count == shards {
                    let sweep_run_s = ts.elapsed().as_secs_f64();
                    let tx = Instant::now();
                    let mut best_sh = f64::INFINITY;
                    let mut best_se = f64::INFINITY;
                    for rep in 0..OVERHEAD_REPS {
                        // The first palindrome reuses the sweep replay
                        // as its leading sharded edge.
                        let sh_lead = if rep == 0 {
                            sweep_run_s
                        } else {
                            let t = Instant::now();
                            let _ = run_scheme_sharded(*s, &cfg, trace, count);
                            t.elapsed().as_secs_f64()
                        };
                        let t = Instant::now();
                        let _ = run_scheme_stats(*s, &cfg, trace);
                        let _ = run_scheme_stats(*s, &cfg, trace);
                        let se = t.elapsed().as_secs_f64();
                        let t = Instant::now();
                        let _ = run_scheme_sharded(*s, &cfg, trace, count);
                        best_sh = best_sh.min(sh_lead + t.elapsed().as_secs_f64());
                        best_se = best_se.min(se);
                    }
                    scheme_sharded_secs[si] += best_sh;
                    scheme_serial_adj_secs[si] += best_se;
                    extra_secs += tx.elapsed().as_secs_f64();
                }
                let out = (run.result, run.stats, run.metrics.dump_tree());
                if ci == 0 {
                    reference.push(out);
                } else if reference[cell] != out {
                    sharded_identical = false;
                }
                cell += 1;
            }
        }
        // The palindromes' extra replays are interleaved into this pass
        // for drift cancellation but are not part of the sweep; keep
        // them out of the phase timing.
        sharded_secs[ci] = t0.elapsed().as_secs_f64() - extra_secs;
    }
    let ref_secs = sharded_secs[0];
    let req_secs = sharded_secs[shard_counts.iter().position(|&c| c == shards).unwrap()];
    let sharded_speedup = ref_secs / req_secs.max(1e-9);
    let sharded_meaningful = default_host() > 1 && shards > 1;
    // Each cell contributes its best palindrome's two sharded replays,
    // so the totals cover the matrix twice at the headline count.
    let sharded_maccess: Vec<f64> = scheme_sharded_secs
        .iter()
        .map(|s| 2.0 * total_accesses as f64 / 1e6 / s.max(1e-9))
        .collect();
    println!("  replay throughput, sharded ({shards} shards):");
    for (si, s) in schemes.iter().enumerate() {
        println!(
            "    {:<12} {:>8.2} Maccess/s",
            s.name(),
            sharded_maccess[si]
        );
    }
    println!(
        "  sharded output identical across {shard_counts:?} shards: {}",
        if sharded_identical {
            "yes"
        } else {
            "NO — BUG"
        }
    );
    println!(
        "  sharded speedup: {sharded_speedup:.2}x ({shards} shards vs 1, host parallelism {}){}",
        default_host(),
        if sharded_meaningful {
            ""
        } else {
            " — not meaningful on this host, gate skipped"
        }
    );

    // Per-scheme sharding overhead: serial time over sharded time, both
    // sampled back-to-back in the sweep above (best palindrome per
    // cell) so host drift and co-tenant bursts cancel. >1
    // means sharding costs throughput at this worker count
    // (plan/barrier/exchange/merge overhead); the ratio is meaningful
    // even on a 1-way host, so regressions are visible before a
    // multi-way box exists.
    let overhead_ratio: Vec<f64> = scheme_sharded_secs
        .iter()
        .zip(&scheme_serial_adj_secs)
        .map(|(sharded, serial)| sharded / serial.max(1e-9))
        .collect();
    println!(
        "  sharding overhead (sharded/serial time, best of {OVERHEAD_REPS} palindromic samples):"
    );
    for (si, s) in schemes.iter().enumerate() {
        println!("    {:<12} {:>8.3}x", s.name(), overhead_ratio[si]);
    }

    // Profiled sharded pass (--profile): the same matrix once more with
    // stall attribution on. Verifies the profiler is result-invisible
    // (outputs still match the 1-worker reference), attributes ≥95% of
    // wall-time to the six buckets, and stays within noise of the
    // unprofiled pass's wall time.
    let profile_enabled = flags.contains_key("profile");
    let mut profile_block = String::new();
    let mut profile_failed = false;
    if profile_enabled {
        let mut scheme_prof_secs = vec![0.0f64; schemes.len()];
        let mut min_attr = 1.0f64;
        let mut profiled_identical = true;
        let mut showcase: Option<nvsim::ShardProfile> = None;
        let t0 = Instant::now();
        let mut cell = 0usize;
        for (ti, trace) in par_traces.iter().enumerate() {
            for (si, s) in schemes.iter().enumerate() {
                let ts = Instant::now();
                let run = run_scheme_sharded_prof(*s, &cfg, trace, shards, true);
                scheme_prof_secs[si] += ts.elapsed().as_secs_f64();
                let out = (run.result, run.stats, run.metrics.dump_tree());
                if reference[cell] != out {
                    profiled_identical = false;
                }
                cell += 1;
                if let Some(p) = run.profile {
                    min_attr = min_attr.min(p.attributed_fraction());
                    if ti == 0 && *s == Scheme::NvOverlay {
                        showcase = Some(p);
                    }
                }
            }
        }
        let prof_secs = t0.elapsed().as_secs_f64();
        let overhead = prof_secs / req_secs.max(1e-9) - 1.0;
        let prof_maccess: Vec<f64> = scheme_prof_secs
            .iter()
            .map(|s| total_accesses as f64 / 1e6 / s.max(1e-9))
            .collect();
        println!(
            "  profiled sharded pass: {prof_secs:.3}s ({:+.1}% vs unprofiled), min attributed {:.1}%, outputs identical: {}",
            100.0 * overhead,
            100.0 * min_attr,
            if profiled_identical { "yes" } else { "NO — BUG" }
        );
        if let Some(p) = &showcase {
            println!("  --- NVOverlay / {} ---", workloads[0]);
            for line in bottleneck_table(p).lines() {
                println!("  {line}");
            }
        }
        if min_attr < 0.95 {
            eprintln!(
                "PROFILE: only {:.1}% of sharded wall-time attributed to the six buckets (< 95%)",
                100.0 * min_attr
            );
            profile_failed = true;
        }
        if overhead > 0.02 {
            println!(
                "  PROFILE: overhead {:+.1}% exceeds the 2% target (wall-clock noise tolerated up to 10%)",
                100.0 * overhead
            );
        }
        if overhead > 0.10 {
            // Same convention as the speedup gates: wall-clock ratios
            // on a 1-way host are scheduler noise, so announce the
            // skip instead of false-failing.
            if default_host() > 1 {
                eprintln!(
                    "PROFILE: profiled pass {:+.1}% slower than unprofiled — instrumentation is no longer cheap",
                    100.0 * overhead
                );
                profile_failed = true;
            } else {
                println!(
                    "  PROFILE: overhead gate not meaningful on this host (parallelism 1), skipped"
                );
            }
        }
        if !profiled_identical {
            eprintln!("PROFILE: profiling changed the sharded replay results");
            profile_failed = true;
        }
        // The forecast clamps at the island count — requesting more
        // workers than islands cannot help, so 8 and 16 repeat the
        // cap's value on an 8-island topology. The report says so
        // explicitly (`island_cap` + the clamped-k list) instead of
        // leaving the duplicated values to look like a bug.
        let (serial_frac, island_cap, pred, clamped) = showcase
            .as_ref()
            .map(|p| {
                (
                    p.serial_fraction(),
                    p.island_cap(),
                    [2usize, 4, 8, 16].map(|k| p.predicted_speedup(k)),
                    [2usize, 4, 8, 16]
                        .iter()
                        .filter(|&&k| p.speedup_clamped(k))
                        .map(|k| k.to_string())
                        .collect::<Vec<_>>()
                        .join(", "),
                )
            })
            .unwrap_or((0.0, 1, [1.0; 4], String::new()));
        profile_block = format!(
            ",\n  \"profile\": {{\"throughput_profiled_maccess_s\": {{{}}}, \"attributed_fraction_min\": {:.4}, \"overhead_vs_unprofiled\": {:.4}, \"outputs_identical\": {}, \"nvoverlay_serial_fraction\": {:.6}, \"nvoverlay_island_cap\": {}, \"nvoverlay_predicted_speedup\": {{\"2\": {:.4}, \"4\": {:.4}, \"8\": {:.4}, \"16\": {:.4}}}, \"nvoverlay_predicted_speedup_clamped\": [{}]}}",
            throughput_table_of(&schemes, &prof_maccess),
            min_attr,
            overhead,
            profiled_identical,
            serial_frac,
            island_cap,
            pred[0],
            pred[1],
            pred[2],
            pred[3],
            clamped,
        );
    }

    // Serving-layer pass (--serve): replay each workload through
    // NVOverlay once, mount the durable state, and serve the default
    // scripted load at `jobs` workers and again at 1 worker. Gates:
    // the two reports must be byte-identical (worker-count
    // determinism), and the zipfian load must keep the mapping-table
    // cache at ≥90% hits. Writes `BENCH_serve.json` with queries/s,
    // hit rate, and recoverable-epoch lag per workload; `--baseline`
    // additionally enforces `serve_queries_s` floors (>20% drop
    // fails), skipped on 1-way hosts like the other threaded floors.
    let serve_enabled = flags.contains_key("serve");
    let mut serve_failed = false;
    if serve_enabled {
        let serve_out_path = flags
            .get("serve-out")
            .cloned()
            .unwrap_or_else(|| "BENCH_serve.json".to_string());
        let scfg = ServeConfig {
            workers: jobs,
            ..ServeConfig::default()
        };
        let scfg_ref = ServeConfig {
            workers: 1,
            ..scfg.clone()
        };
        let mut serve_identical = true;
        let mut hit_rate_min = 1.0f64;
        let mut qps = vec![0.0f64; workloads.len()];
        let mut hit_rates = vec![0.0f64; workloads.len()];
        let mut lags = vec![0u64; workloads.len()];
        let mut answered = vec![0u64; workloads.len()];
        for (ti, trace) in par_traces.iter().enumerate() {
            let mut sys = NvOverlaySystem::new(&cfg);
            let _ = Runner::new().run_packed(&mut sys, trace);
            let mount = Mount::new(sys.mnm(), scfg.subshards).unwrap_or_else(|e| {
                eprintln!("SERVE: cannot mount {}: {e}", workloads[ti]);
                exit(1);
            });
            let Some(plan) = serve_driver::plan(&mount, &scfg) else {
                eprintln!("SERVE: nothing to serve for {}", workloads[ti]);
                exit(1);
            };
            let wname = workloads[ti].name();
            let out = serve_engine::serve(&mount, &plan, &scfg);
            let ref_out = serve_engine::serve(&mount, &plan, &scfg_ref);
            if out.report.to_json(wname, "NVOverlay") != ref_out.report.to_json(wname, "NVOverlay")
            {
                serve_identical = false;
            }
            hit_rate_min = hit_rate_min.min(out.report.hit_rate());
            qps[ti] = out.queries_per_sec();
            hit_rates[ti] = out.report.hit_rate();
            lags[ti] = out.report.lag;
            answered[ti] = out.report.answered;
        }
        println!("  serve pass ({jobs} workers vs 1, default load):");
        for (ti, w) in workloads.iter().enumerate() {
            println!(
                "    {:<12} {:>10.0} queries/s, {:>5.1}% cache hits, lag {} epochs",
                w.name(),
                qps[ti],
                100.0 * hit_rates[ti],
                lags[ti]
            );
        }
        println!(
            "  serve output identical across worker counts: {}",
            if serve_identical { "yes" } else { "NO — BUG" }
        );
        if !serve_identical {
            eprintln!("SERVE: worker count changed the serve report");
            serve_failed = true;
        }
        if hit_rate_min < 0.90 {
            eprintln!(
                "SERVE: mapping-table cache hit rate {:.1}% fell below the 90% floor",
                100.0 * hit_rate_min
            );
            serve_failed = true;
        }
        let table_of = |vals: &[f64]| {
            workloads
                .iter()
                .enumerate()
                .map(|(ti, w)| format!("\"{}\": {:.4}", w.name(), vals[ti]))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let u64_table_of = |vals: &[u64]| {
            workloads
                .iter()
                .enumerate()
                .map(|(ti, w)| format!("\"{}\": {}", w.name(), vals[ti]))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let serve_json = format!(
            "{{\n  \"scale\": \"{:?}\",\n  \"workers\": {},\n  \"config\": {{\"sessions\": {}, \"batches\": {}, \"batch\": {}, \"cache_cap\": {}, \"subshards\": {}, \"seed\": {}, \"theta\": {:.4}, \"epochs\": \"{}\"}},\n  \"serve_queries_s\": {{{}}},\n  \"hit_rate\": {{{}}},\n  \"lag_epochs\": {{{}}},\n  \"answered\": {{{}}},\n  \"hit_rate_min\": {:.6},\n  \"outputs_identical\": {}\n}}\n",
            scale,
            jobs,
            scfg.sessions,
            scfg.batches,
            scfg.batch,
            scfg.cache_cap,
            scfg.subshards,
            scfg.seed,
            scfg.theta,
            scfg.epochs,
            table_of(&qps),
            table_of(&hit_rates),
            u64_table_of(&lags),
            u64_table_of(&answered),
            hit_rate_min,
            serve_identical,
        );
        std::fs::write(&serve_out_path, serve_json).unwrap_or_else(|e| {
            eprintln!("cannot write {serve_out_path}: {e}");
            exit(1);
        });
        println!("  wrote {serve_out_path}");
        if let Some(path) = flags.get("baseline") {
            let txt = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read baseline {path}: {e}");
                exit(1);
            });
            let base = parse_throughput_baseline(&txt, "serve_queries_s");
            if base.is_empty() {
                println!("  serve baseline gate: no serve_queries_s table in {path}, skipped");
            } else if default_host() <= 1 {
                println!(
                    "  serve baseline gate: {} floors SKIPPED (host parallelism 1)",
                    base.len()
                );
            } else {
                for (ti, w) in workloads.iter().enumerate() {
                    if let Some(&b) = base.get(w.name()) {
                        if qps[ti] < b * 0.8 {
                            eprintln!(
                                "REGRESSION: {} serve throughput {:.0} queries/s is >20% below baseline {:.0}",
                                w.name(),
                                qps[ti],
                                b
                            );
                            serve_failed = true;
                        }
                    }
                }
                if !serve_failed {
                    println!("  serve baseline gate: all workloads within 20% of {path}");
                }
            }
        }
    }

    let identical = serial_rows == par_rows && sharded_identical;
    let totals = [timing[0].total_secs(), timing[1].total_secs()];
    let speedup = totals[0] / totals[1].max(1e-9);
    // A 1-CPU host (or a single-job invocation) cannot show a parallel
    // speedup; annotate the report and skip the speedup gate there.
    let meaningful = default_host() > 1 && jobs > 1;
    println!(
        "  parallel output identical to serial: {}",
        if identical { "yes" } else { "NO — BUG" }
    );
    println!(
        "  speedup: {speedup:.2}x ({jobs} jobs, host parallelism {}){}",
        default_host(),
        if meaningful {
            ""
        } else {
            " — not meaningful on this host, gate skipped"
        }
    );

    let throughput_table = |vals: &[f64]| throughput_table_of(&schemes, vals);
    let shard_counts_json = shard_counts
        .iter()
        .map(|c| c.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        "{{\n  \"matrix\": {{\"schemes\": {}, \"workloads\": {}, \"scale\": \"{:?}\"}},\n  \"host_parallelism\": {},\n  \"jobs\": {},\n  \"shards\": {},\n  \"accesses_per_scheme\": {},\n  \"serial\": {{\"trace_gen_s\": {:.6}, \"replay_s\": {:.6}, \"stats_us\": {}, \"total_s\": {:.6}}},\n  \"parallel\": {{\"trace_gen_s\": {:.6}, \"replay_s\": {:.6}, \"stats_us\": {}, \"total_s\": {:.6}}},\n  \"sharded\": {{\"counts\": [{}], \"plan_build_s\": {:.6}, \"replay_1_s\": {:.6}, \"replay_s\": {:.6}}},\n  \"throughput_maccess_s\": {{{}}},\n  \"throughput_sharded_maccess_s\": {{{}}},\n  \"sharded_overhead_ratio\": {{{}}},\n  \"speedup\": {:.4},\n  \"speedup_meaningful\": {},\n  \"sharded_speedup\": {:.4},\n  \"sharded_speedup_meaningful\": {},\n  \"outputs_identical\": {}{}\n}}\n",
        schemes.len(),
        workloads.len(),
        scale,
        default_host(),
        jobs,
        shards,
        total_accesses,
        timing[0].secs("trace_gen"),
        timing[0].secs("replay"),
        micros(timing[0].secs("stats")),
        totals[0],
        timing[1].secs("trace_gen"),
        timing[1].secs("replay"),
        micros(timing[1].secs("stats")),
        totals[1],
        shard_counts_json,
        plan_build_s,
        ref_secs,
        req_secs,
        throughput_table(&maccess),
        throughput_table(&sharded_maccess),
        throughput_table(&overhead_ratio),
        speedup,
        meaningful,
        sharded_speedup,
        sharded_meaningful,
        identical,
        profile_block,
    );
    std::fs::write(&out_path, json).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        exit(1);
    });
    println!("  wrote {out_path}");

    // Throughput regression gate against a checked-in baseline report.
    let mut regressed = false;
    if let Some(path) = flags.get("baseline") {
        let txt = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {path}: {e}");
            exit(1);
        });
        let base = parse_throughput_baseline(&txt, "throughput_maccess_s");
        if base.is_empty() {
            eprintln!("baseline {path} has no throughput_maccess_s table");
            exit(1);
        }
        for (si, s) in schemes.iter().enumerate() {
            if let Some(&b) = base.get(s.name()) {
                let floor = b * 0.8;
                if maccess[si] < floor {
                    eprintln!(
                        "REGRESSION: {} replay throughput {:.2} Maccess/s is >20% below baseline {:.2}",
                        s.name(),
                        maccess[si],
                        b
                    );
                    regressed = true;
                }
            }
        }
        // Sharded floors only bind where a sharded speedup is
        // expressible; a 1-way host announces the skip instead of
        // silently passing.
        let base_sharded = parse_throughput_baseline(&txt, "throughput_sharded_maccess_s");
        if !base_sharded.is_empty() {
            if !sharded_meaningful {
                println!(
                    "  baseline gate: {} sharded floors SKIPPED (host parallelism {}, {} shards)",
                    base_sharded.len(),
                    default_host(),
                    shards
                );
            } else {
                for (si, s) in schemes.iter().enumerate() {
                    if let Some(&b) = base_sharded.get(s.name()) {
                        let floor = b * 0.8;
                        if sharded_maccess[si] < floor {
                            eprintln!(
                                "REGRESSION: {} sharded throughput {:.2} Maccess/s is >20% below baseline {:.2}",
                                s.name(),
                                sharded_maccess[si],
                                b
                            );
                            regressed = true;
                        }
                    }
                }
            }
        }
        // Sharding-overhead gate: the serial/sharded throughput ratio
        // is a pure overhead measure, meaningful on any host. The
        // baseline values are absolute ceilings (1.10 everywhere since
        // the plan-cache/coalescing rework), and exceeding one FAILS
        // the run — barrier/exchange/plan regressions must surface
        // even where the sharded-throughput floors are skipped.
        let mut base_ratio = parse_throughput_baseline(&txt, "sharded_overhead_ratio");
        if base_ratio.is_empty() && !base_sharded.is_empty() {
            // Older baselines carry only the two throughput tables;
            // derive the ceiling from them.
            for (k, serial) in &base {
                if let Some(shd) = base_sharded.get(k) {
                    base_ratio.insert(k.clone(), serial / shd.max(1e-9));
                }
            }
        }
        for (si, s) in schemes.iter().enumerate() {
            if let Some(&b) = base_ratio.get(s.name()) {
                if overhead_ratio[si] > b {
                    eprintln!(
                        "REGRESSION: {} sharded overhead ratio {:.3} exceeds the {:.2} ceiling (serial/sharded throughput)",
                        s.name(),
                        overhead_ratio[si],
                        b
                    );
                    regressed = true;
                }
            }
        }
        if !regressed {
            println!("  baseline gate: all schemes within 20% of {path}");
        }
    }
    if !identical {
        exit(1);
    }
    if meaningful && speedup < 1.0 {
        eprintln!("parallel driver slower than serial on a multi-core host");
        exit(1);
    }
    if sharded_meaningful && sharded_speedup < 1.0 {
        eprintln!("sharded replay slower than one worker on a multi-core host");
        exit(1);
    }
    if regressed || profile_failed || serve_failed {
        exit(1);
    }
}

fn default_host() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Parses `<subcommand> [<workload>] --flags ...` — an optional
/// positional workload name before the flags (trace, chaos, profile,
/// serve, and query all accept it).
fn flags_with_positional_workload(args: &[String]) -> HashMap<String, String> {
    let (positional, rest) = match args.first() {
        Some(a) if !a.starts_with("--") => (Some(a.clone()), &args[1..]),
        _ => (None, args),
    };
    let mut flags = parse_flags(rest);
    if let Some(w) = positional {
        flags.entry("workload".to_string()).or_insert(w);
    }
    flags
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("run") => cmd_run(parse_flags(&args[1..])),
        Some("trace-gen") => cmd_trace_gen(parse_flags(&args[1..])),
        Some("trace") => cmd_trace(flags_with_positional_workload(&args[1..])),
        Some("snapshots") => cmd_snapshots(parse_flags(&args[1..])),
        Some("diff") => cmd_diff(parse_flags(&args[1..])),
        Some("chaos") => cmd_chaos(flags_with_positional_workload(&args[1..])),
        Some("profile") => cmd_profile(flags_with_positional_workload(&args[1..])),
        Some("serve") => cmd_serve(flags_with_positional_workload(&args[1..])),
        Some("query") => cmd_query(flags_with_positional_workload(&args[1..])),
        Some("backup") => cmd_backup(flags_with_positional_workload(&args[1..])),
        Some("restore") => cmd_restore(parse_flags(&args[1..])),
        Some("store") => cmd_store(&args[1..]),
        Some("perf") => cmd_perf(parse_flags(&args[1..])),
        _ => usage(),
    }
}
