//! `nvo` — command-line driver for the NVOverlay reproduction.
//!
//! ```text
//! nvo list
//! nvo run --workload B+Tree --scheme NVOverlay [--scale quick|standard|full] [--json]
//! nvo run --trace t.nvtr --scheme PiCL
//! nvo trace-gen --workload kmeans --out t.nvtr [--scale quick]
//! nvo snapshots --workload RBTree [--scale quick]
//! nvo perf [--jobs N] [--scale quick|standard|full] [--out BENCH_perf.json]
//! ```

use nvbench::{default_jobs, gen_traces, run_matrix, run_scheme, EnvScale, Scheme};
use nvoverlay::system::NvOverlaySystem;
use nvsim::memsys::Runner;
use nvsim::trace::Trace;
use nvworkloads::{generate, Workload};
use std::collections::HashMap;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage:\n  nvo list\n  nvo run --workload <name> --scheme <name> [--scale quick|standard|full] [--json]\n  nvo run --trace <file.nvtr> --scheme <name>\n  nvo trace-gen --workload <name> --out <file.nvtr> [--scale ...]\n  nvo snapshots --workload <name> [--scale ...]\n  nvo diff --workload <name> --from <epoch> --to <epoch> [--scale ...]\n  nvo perf [--jobs N] [--scale ...] [--out BENCH_perf.json]"
    );
    exit(2)
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(key) = a.strip_prefix("--") {
            if key == "json" {
                out.insert("json".into(), "1".into());
                i += 1;
            } else if i + 1 < args.len() {
                out.insert(key.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                eprintln!("flag --{key} needs a value");
                usage();
            }
        } else {
            eprintln!("unexpected argument {a:?}");
            usage();
        }
    }
    out
}

fn scale_of(flags: &HashMap<String, String>) -> EnvScale {
    match flags.get("scale").map(String::as_str) {
        Some("quick") => EnvScale::Quick,
        Some("full") => EnvScale::Full,
        Some("standard") | None => EnvScale::Standard,
        Some(other) => {
            eprintln!("unknown scale {other:?}");
            usage();
        }
    }
}

fn load_workload(flags: &HashMap<String, String>, scale: EnvScale) -> Trace {
    if let Some(path) = flags.get("trace") {
        let f = std::fs::File::open(path).unwrap_or_else(|e| {
            eprintln!("cannot open {path}: {e}");
            exit(1);
        });
        return nvsim::trace_io::read_trace(std::io::BufReader::new(f)).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            exit(1);
        });
    }
    let Some(wname) = flags.get("workload") else {
        eprintln!("--workload or --trace is required");
        usage();
    };
    let Some(w) = Workload::from_name(wname) else {
        eprintln!("unknown workload {wname:?} (see `nvo list`)");
        exit(2);
    };
    generate(w, &scale.suite_params())
}

fn cmd_list() {
    println!("workloads:");
    for w in Workload::ALL {
        println!("  {w}");
    }
    println!("schemes:");
    for s in Scheme::ALL {
        println!("  {}", s.name());
    }
}

fn cmd_run(flags: HashMap<String, String>) {
    let scale = scale_of(&flags);
    let trace = load_workload(&flags, scale);
    let Some(sname) = flags.get("scheme") else {
        eprintln!("--scheme is required");
        usage();
    };
    let Some(scheme) = Scheme::from_name(sname) else {
        eprintln!("unknown scheme {sname:?} (see `nvo list`)");
        exit(2);
    };
    let cfg = scale.sim_config();
    let r = run_scheme(scheme, &cfg, &trace);
    if flags.contains_key("json") {
        println!(
            "{{\"scheme\":\"{}\",\"cycles\":{},\"stall_cycles\":{},\"data_bytes\":{},\"log_bytes\":{},\"meta_bytes\":{},\"context_bytes\":{},\"data_writes\":{},\"epochs\":{},\"evict\":{{\"capacity\":{},\"coherence_log\":{},\"tag_walk\":{},\"store_evict\":{}}}}}",
            scheme.name(),
            r.cycles,
            r.stall_cycles,
            r.data_bytes,
            r.log_bytes,
            r.meta_bytes,
            r.context_bytes,
            r.data_writes,
            r.epochs,
            r.evict_capacity,
            r.evict_coherence_log,
            r.evict_tag_walk,
            r.evict_store,
        );
    } else {
        println!("scheme        {}", scheme.name());
        println!("cycles        {}", r.cycles);
        println!("stall cycles  {}", r.stall_cycles);
        println!(
            "NVM bytes     {} (data {}, log {}, metadata {}, context {})",
            r.total_bytes(),
            r.data_bytes,
            r.log_bytes,
            r.meta_bytes,
            r.context_bytes
        );
        println!("data writes   {}", r.data_writes);
        println!("epochs        {}", r.epochs);
        println!(
            "evictions     capacity {} / coherence+log {} / tag-walk {} / store-evict {}",
            r.evict_capacity, r.evict_coherence_log, r.evict_tag_walk, r.evict_store
        );
    }
}

fn cmd_trace_gen(flags: HashMap<String, String>) {
    let scale = scale_of(&flags);
    let trace = load_workload(&flags, scale);
    let Some(out) = flags.get("out") else {
        eprintln!("--out is required");
        usage();
    };
    let f = std::fs::File::create(out).unwrap_or_else(|e| {
        eprintln!("cannot create {out}: {e}");
        exit(1);
    });
    nvsim::trace_io::write_trace(&trace, std::io::BufWriter::new(f)).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        exit(1);
    });
    println!(
        "wrote {} ({} threads, {} accesses, {} stores)",
        out,
        trace.thread_count(),
        trace.access_count(),
        trace.store_count()
    );
}

fn cmd_snapshots(flags: HashMap<String, String>) {
    let scale = scale_of(&flags);
    let trace = load_workload(&flags, scale);
    let cfg = scale.sim_config();
    let mut sys = NvOverlaySystem::new(&cfg);
    let _ = Runner::new().run(&mut sys, &trace);
    let store = sys.snapshots();
    println!("recoverable epoch: {}", store.recoverable_epoch());
    let epochs = store.epochs();
    println!("captured epochs: {}", epochs.len());
    for (e, readable) in epochs.iter().take(20) {
        let delta = if *readable {
            store
                .delta(*e)
                .map(|d| format!("{} lines", d.len()))
                .unwrap_or_else(|| "-".into())
        } else {
            "reclaimed".into()
        };
        println!("  epoch {e:>6}: {delta}");
    }
    if epochs.len() > 20 {
        println!("  ... ({} more)", epochs.len() - 20);
    }
    let wear = sys.nvm().wear_report();
    println!(
        "NVM wear: {} unique lines, {} writes, hottest line written {} times (mean {:.2})",
        wear.unique_keys, wear.total_writes, wear.max_key_writes, wear.mean_key_writes
    );
}

fn cmd_diff(flags: HashMap<String, String>) {
    let scale = scale_of(&flags);
    let trace = load_workload(&flags, scale);
    let (Some(from), Some(to)) = (
        flags.get("from").and_then(|v| v.parse::<u64>().ok()),
        flags.get("to").and_then(|v| v.parse::<u64>().ok()),
    ) else {
        eprintln!("--from <epoch> and --to <epoch> are required");
        usage();
    };
    if from >= to {
        eprintln!("--from must be less than --to");
        exit(2);
    }
    let cfg = scale.sim_config();
    let mut sys = NvOverlaySystem::new(&cfg);
    let _ = Runner::new().run(&mut sys, &trace);
    let store = sys.snapshots();
    let last = store.recoverable_epoch();
    if to > last {
        eprintln!("epoch {to} exceeds the recoverable epoch {last}");
        exit(1);
    }
    match store.diff(from, to) {
        None => {
            eprintln!("an epoch in ({from}, {to}] is no longer individually readable");
            exit(1);
        }
        Some(changes) => {
            println!(
                "{} lines changed between epoch {from} and epoch {to}:",
                changes.len()
            );
            for c in changes.iter().take(30) {
                println!(
                    "  {:#012x}: {} -> {}",
                    c.line.raw() * 64,
                    c.before.map_or("-".into(), |t| t.to_string()),
                    c.after.map_or("-".into(), |t| t.to_string()),
                );
            }
            if changes.len() > 30 {
                println!("  ... ({} more)", changes.len() - 30);
            }
        }
    }
}

/// The worker count for a command: `--jobs` beats `NVO_JOBS` beats the
/// machine's available parallelism.
fn jobs_of(flags: &HashMap<String, String>) -> usize {
    match flags.get("jobs") {
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("--jobs must be a positive integer, got {v:?}");
                exit(2);
            }
        },
        None => default_jobs(),
    }
}

/// `nvo perf` — times the parallel experiment engine against the serial
/// driver on a fixed 6-scheme × 4-workload matrix and writes
/// `BENCH_perf.json` with the per-phase breakdown.
fn cmd_perf(flags: HashMap<String, String>) {
    use std::time::Instant;

    let scale = scale_of(&flags);
    let jobs = jobs_of(&flags);
    let out_path = flags
        .get("out")
        .cloned()
        .unwrap_or_else(|| "BENCH_perf.json".to_string());
    let cfg = scale.sim_config();
    let params = scale.suite_params();
    let workloads = [
        Workload::HashTable,
        Workload::BTree,
        Workload::Art,
        Workload::Kmeans,
    ];
    let schemes = Scheme::FIGURE;

    println!(
        "perf: {} schemes x {} workloads (scale {scale:?}), serial vs {jobs} jobs",
        schemes.len(),
        workloads.len()
    );

    // Phase timings for both drivers: trace generation, replay, stats.
    let mut phases = [[0.0f64; 3]; 2]; // [serial, parallel][gen, replay, stats]
    let mut totals = [0.0f64; 2];
    let mut results = Vec::new();
    for (di, jobs_now) in [1usize, jobs].into_iter().enumerate() {
        let t0 = Instant::now();
        let traces = gen_traces(&workloads, &params, jobs_now);
        let t1 = Instant::now();
        let rows = run_matrix(&schemes, &cfg, &traces, jobs_now);
        let t2 = Instant::now();
        // Stats phase: fold every result into the summary scalars the
        // figures print.
        let mut cycles = 0u64;
        let mut bytes = 0u64;
        for row in &rows {
            for r in row {
                cycles += r.cycles;
                bytes += r.total_bytes();
            }
        }
        let t3 = Instant::now();
        phases[di] = [
            t1.duration_since(t0).as_secs_f64(),
            t2.duration_since(t1).as_secs_f64(),
            t3.duration_since(t2).as_secs_f64(),
        ];
        totals[di] = t3.duration_since(t0).as_secs_f64();
        println!(
            "  {}: trace-gen {:.3}s, replay {:.3}s, stats {:.3}s, total {:.3}s (sum cycles {cycles}, sum NVM bytes {bytes})",
            if di == 0 { "serial  " } else { "parallel" },
            phases[di][0],
            phases[di][1],
            phases[di][2],
            totals[di],
        );
        results.push(rows);
    }

    let identical = results[0] == results[1];
    let speedup = totals[0] / totals[1].max(1e-9);
    println!(
        "  parallel output identical to serial: {}",
        if identical { "yes" } else { "NO — BUG" }
    );
    println!(
        "  speedup: {speedup:.2}x ({jobs} jobs, host parallelism {})",
        default_host()
    );

    let json = format!(
        "{{\n  \"matrix\": {{\"schemes\": {}, \"workloads\": {}, \"scale\": \"{:?}\"}},\n  \"host_parallelism\": {},\n  \"jobs\": {},\n  \"serial\": {{\"trace_gen_s\": {:.6}, \"replay_s\": {:.6}, \"stats_s\": {:.6}, \"total_s\": {:.6}}},\n  \"parallel\": {{\"trace_gen_s\": {:.6}, \"replay_s\": {:.6}, \"stats_s\": {:.6}, \"total_s\": {:.6}}},\n  \"speedup\": {:.4},\n  \"outputs_identical\": {}\n}}\n",
        schemes.len(),
        workloads.len(),
        scale,
        default_host(),
        jobs,
        phases[0][0],
        phases[0][1],
        phases[0][2],
        totals[0],
        phases[1][0],
        phases[1][1],
        phases[1][2],
        totals[1],
        speedup,
        identical,
    );
    std::fs::write(&out_path, json).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        exit(1);
    });
    println!("  wrote {out_path}");
    if !identical {
        exit(1);
    }
}

fn default_host() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("run") => cmd_run(parse_flags(&args[1..])),
        Some("trace-gen") => cmd_trace_gen(parse_flags(&args[1..])),
        Some("snapshots") => cmd_snapshots(parse_flags(&args[1..])),
        Some("diff") => cmd_diff(parse_flags(&args[1..])),
        Some("perf") => cmd_perf(parse_flags(&args[1..])),
        _ => usage(),
    }
}
