//! Diagnostic smoke run across schemes (not a paper figure).
use nvbench::{run_scheme, Scheme};
use nvsim::SimConfig;
use nvworkloads::{generate, SuiteParams, Workload};

fn main() {
    let cfg = std::sync::Arc::new(
        SimConfig::builder()
            .cores(16, 2)
            .l1(8 * 1024, 4, 4)
            .l2(64 * 1024, 8, 8)
            .llc(2 * 1024 * 1024, 8, 30, 4)
            .epoch_size_stores(2_000)
            .build()
            .unwrap(),
    );
    let p = SuiteParams {
        threads: 16,
        ops: 3_000,
        warmup_ops: 30_000,
        seed: 2,
    };
    for w in [Workload::BTree, Workload::Kmeans] {
        let full = generate(w, &p);
        println!(
            "== {w}: {} accesses, {} stores, {} wlines",
            full.access_count(),
            full.store_count(),
            full.write_footprint()
        );
        let trace = full.to_packed();
        for s in [
            Scheme::Ideal,
            Scheme::SwLogging,
            Scheme::SwShadow,
            Scheme::HwShadow,
            Scheme::Picl,
            Scheme::PiclL2,
            Scheme::NvOverlay,
        ] {
            let r = run_scheme(s, &cfg, &trace);
            println!("{:12} cycles={:9} stall={:9} data={:8} log={:8} meta={:7} wr={:6} cap={:5} coh={:5} walk={:5} sev={:5} ep={}",
                s.name(), r.cycles, r.stall_cycles, r.data_bytes, r.log_bytes, r.meta_bytes, r.data_writes,
                r.evict_capacity, r.evict_coherence_log, r.evict_tag_walk, r.evict_store, r.epochs);
        }
    }
}
