//! # nvbench — experiment harness for the NVOverlay reproduction
//!
//! One bench target per table/figure of the paper (see DESIGN.md §5 and
//! `benches/`). This library holds the shared experiment driver:
//! building each scheme, running a workload trace through it, and
//! collecting the quantities the figures report.

#![warn(missing_docs)]

pub mod exp;

pub use exp::{run_nvoverlay, run_picl_walker, run_scheme, EnvScale, ExpResult, NvoDetail, Scheme};
