//! # nvbench — experiment harness for the NVOverlay reproduction
//!
//! One bench target per table/figure of the paper (see DESIGN.md §5 and
//! `benches/`). This library holds the shared experiment driver:
//! building each scheme, running a workload trace through it, and
//! collecting the quantities the figures report — plus the parallel
//! engine ([`par`]) the figure drivers fan their run matrices out with.

#![warn(missing_docs)]

pub mod chrome;
pub mod exp;
pub mod export;
pub mod par;
pub mod prof;

pub use chrome::{chrome_profile_json, chrome_trace_json, ChromeMeta};
pub use exp::{
    run_nvoverlay, run_picl_walker, run_scheme, run_scheme_sharded, run_scheme_sharded_exec,
    run_scheme_sharded_prof, run_scheme_stats, EnvScale, ExpResult, NvoDetail, Scheme,
    ShardedSchemeRun,
};
pub use export::{registry_json, registry_tsv};
/// Re-export of the shared JSON helper (moved to `nvsim::json` so the
/// store and chaos crates can parse documents without a dependency on
/// the bench harness). Existing `nvbench::json::...` paths keep working.
pub use nvsim::json;
pub use par::{default_jobs, gen_traces, run_matrix, run_matrix_stats, run_ordered};
pub use prof::{bottleneck_table, profile_json, profile_structural_json, Spans};
