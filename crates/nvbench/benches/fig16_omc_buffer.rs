//! Figure 16 — reducing NVM writes with the battery-backed OMC buffer.
//!
//! "We evaluate the persistent OMC buffer ... by simulating NVOverlay on
//! ART, with and without the buffer. The evaluation has only one epoch
//! throughout the execution to stress-test the buffer's ability to
//! absorb redundant write backs. We use a buffer that has the same
//! configuration as the simulated LLC."
//!
//! Expected shape (paper): the buffer improves performance ~41 % and cuts
//! NVM writes ~4.8× (6.2 M → 1.3 M) at a 74.8 % hit rate.

use nvbench::{default_jobs, gen_traces, run_nvoverlay, run_ordered, EnvScale};
use nvoverlay::mnm::OmcConfig;
use nvoverlay::system::NvOverlayOptions;
use nvsim::SimConfig;
use nvworkloads::Workload;

fn main() {
    let scale = EnvScale::from_env();
    let base_cfg = scale.sim_config();
    let jobs = default_jobs();
    // The stress test needs lines to leave the VDs and return repeatedly
    // within the one epoch (redundant write-backs): run a long insert
    // phase on a pre-warmed tree.
    let params = nvworkloads::SuiteParams {
        ops: scale.suite_params().ops * 4,
        ..scale.suite_params()
    };
    // One epoch throughout: epoch budget far above the trace volume.
    let cfg = std::sync::Arc::new(SimConfig {
        epoch_size_stores: u64::MAX / 2,
        ..base_cfg
    });

    // ART as in the paper, plus kmeans whose iteration structure rewrites
    // the same lines many times within the single epoch (the
    // redundant-write-back regime the paper's full-length ART run is in).
    let workloads = [Workload::Art, Workload::Kmeans];
    let traces = gen_traces(&workloads, &params, jobs);
    // 2 workloads × {no buffer, with buffer} over shared traces.
    let runs = run_ordered(4, jobs, |i| {
        let opts = if i % 2 == 0 {
            NvOverlayOptions::default()
        } else {
            NvOverlayOptions {
                omc: OmcConfig {
                    buffer: Some((cfg.llc.sets(), cfg.llc.ways)),
                    ..OmcConfig::default()
                },
                ..NvOverlayOptions::default()
            }
        };
        run_nvoverlay(&cfg, opts, &traces[i / 2])
    });

    for (wi, w) in workloads.iter().enumerate() {
        let (no_buf, _) = &runs[wi * 2];
        let (with_buf, d) = &runs[wi * 2 + 1];
        println!("Figure 16: OMC buffer on {w} (single epoch)");
        println!(
            "{:<12} {:>12} {:>12} {:>12} {:>9}",
            "variant", "cycles", "NVM writes", "buf hits", "hit rate"
        );
        println!(
            "{:<12} {:>12} {:>12} {:>12} {:>9}",
            "No Buffer", no_buf.cycles, no_buf.data_writes, "-", "-"
        );
        let hit_rate =
            100.0 * d.buffer_hits as f64 / (d.buffer_hits + d.buffer_misses).max(1) as f64;
        println!(
            "{:<12} {:>12} {:>12} {:>12} {:>8.1}%",
            "With Buffer", with_buf.cycles, with_buf.data_writes, d.buffer_hits, hit_rate
        );
        println!(
            "cycles: {:.2}x, NVM writes: {:.2}x fewer",
            no_buf.cycles as f64 / with_buf.cycles.max(1) as f64,
            no_buf.data_writes as f64 / with_buf.data_writes.max(1) as f64
        );
        println!();
    }
}
