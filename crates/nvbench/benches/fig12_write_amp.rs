//! Figure 12 — NVM write amplification in bytes, normalized to NVOverlay.
//!
//! "Fig. 12: Write Amplification (Bytes of Data) — 16 worker threads. All
//! numbers are normalized to NVOverlay." Log entries are 72 B (64 B
//! data + 8 B tag); shadow/NVOverlay mapping-table updates are counted
//! as 8 B entry writes, exactly as the paper does (§VII-B).
//!
//! Expected shape (paper): PiCL 1.4×–1.9×, PiCL-L2 1.8×–2.3×, HW Shadow
//! mostly 0.77×–1.0× (0.30× on kmeans).

use nvbench::{default_jobs, gen_traces, run_matrix, EnvScale, Scheme};
use nvworkloads::Workload;

fn main() {
    let scale = EnvScale::from_env();
    let cfg = std::sync::Arc::new(scale.sim_config());
    let params = scale.suite_params();
    let jobs = default_jobs();

    println!("Figure 12: Write Amplification in Bytes, normalized to NVOverlay");
    print!("{:<11}", "workload");
    for s in Scheme::FIGURE {
        print!(" {:>10}", s.name());
    }
    println!("  {:>12}", "NVO bytes");

    let traces = gen_traces(&Workload::ALL, &params, jobs);
    let rows = run_matrix(&Scheme::FIGURE, &cfg, &traces, jobs);
    let nvo_col = Scheme::FIGURE
        .iter()
        .position(|&s| s == Scheme::NvOverlay)
        .expect("NVOverlay is a figure scheme");

    for (w, row) in Workload::ALL.iter().zip(rows) {
        let base = row[nvo_col].total_bytes().max(1);
        print!("{:<11}", w.name());
        for (i, r) in row.iter().enumerate() {
            if i == nvo_col {
                print!(" {:>10.2}", 1.00);
            } else {
                print!(" {:>10.2}", r.total_bytes() as f64 / base as f64);
            }
        }
        println!("  {:>12}", base);
    }
}
