//! Figure 12 — NVM write amplification in bytes, normalized to NVOverlay.
//!
//! "Fig. 12: Write Amplification (Bytes of Data) — 16 worker threads. All
//! numbers are normalized to NVOverlay." Log entries are 72 B (64 B
//! data + 8 B tag); shadow/NVOverlay mapping-table updates are counted
//! as 8 B entry writes, exactly as the paper does (§VII-B).
//!
//! Expected shape (paper): PiCL 1.4×–1.9×, PiCL-L2 1.8×–2.3×, HW Shadow
//! mostly 0.77×–1.0× (0.30× on kmeans).

use nvbench::{run_scheme, EnvScale, Scheme};
use nvworkloads::{generate, Workload};

fn main() {
    let scale = EnvScale::from_env();
    let cfg = scale.sim_config();
    let params = scale.suite_params();

    println!("Figure 12: Write Amplification in Bytes, normalized to NVOverlay");
    print!("{:<11}", "workload");
    for s in Scheme::FIGURE {
        print!(" {:>10}", s.name());
    }
    println!("  {:>12}", "NVO bytes");

    for w in Workload::ALL {
        let trace = generate(w, &params);
        let nvo = run_scheme(Scheme::NvOverlay, &cfg, &trace);
        let base = nvo.total_bytes().max(1);
        print!("{:<11}", w.name());
        for s in Scheme::FIGURE {
            if s == Scheme::NvOverlay {
                print!(" {:>10.2}", 1.00);
                continue;
            }
            let r = run_scheme(s, &cfg, &trace);
            print!(" {:>10.2}", r.total_bytes() as f64 / base as f64);
        }
        println!("  {:>12}", base);
    }
}
