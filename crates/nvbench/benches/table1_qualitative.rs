//! Table I — qualitative comparison of NVOverlay with other designs.
//!
//! The table is a property of the designs, not a measurement; this target
//! prints it in the paper's layout so the full evaluation regenerates
//! from `cargo bench` alone. Each row is backed by the corresponding
//! implementation in this repository (see the module notes in
//! `nvbaselines` and `nvoverlay`).

fn main() {
    println!("Table I: Qualitative Comparison of NVOverlay with Other Designs");
    println!();
    let header = [
        "Design",
        "MinWriteAmp",
        "NoCommitTime",
        "NoReadFlushRedir",
        "SWPersistBarrier",
        "UnboundedWorkingSet",
        "NonInclusiveLLC",
        "DistributedVersioning",
    ];
    let rows: [[&str; 8]; 6] = [
        [
            "SW Undo Logging",
            "no",
            "yes",
            "yes",
            "per write",
            "yes",
            "yes",
            "no",
        ],
        [
            "SW Redo Logging",
            "no",
            "no",
            "no",
            "constant",
            "yes",
            "yes",
            "no",
        ],
        [
            "SW Shadow Paging",
            "maybe",
            "no",
            "no",
            "constant",
            "yes",
            "yes",
            "no",
        ],
        [
            "PiCL (HW Logging)",
            "no",
            "yes",
            "yes",
            "none",
            "yes",
            "no",
            "no",
        ],
        [
            "SSP (HW Shadow)",
            "yes",
            "no",
            "no",
            "none",
            "no",
            "yes",
            "no",
        ],
        [
            "NVOverlay",
            "yes",
            "yes",
            "yes",
            "none",
            "yes",
            "yes",
            "yes",
        ],
    ];
    println!(
        "{:<18} {:>11} {:>13} {:>17} {:>17} {:>20} {:>16} {:>21}",
        header[0], header[1], header[2], header[3], header[4], header[5], header[6], header[7]
    );
    for r in rows {
        println!(
            "{:<18} {:>11} {:>13} {:>17} {:>17} {:>20} {:>16} {:>21}",
            r[0], r[1], r[2], r[3], r[4], r[5], r[6], r[7]
        );
    }
    println!();
    println!("(Matches the paper's Table I; NVOverlay satisfies every column.)");
}
