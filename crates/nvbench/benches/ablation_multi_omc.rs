//! Ablation — scaling the number of OMCs (paper §V-F "Scaling to Large
//! NVM Arrays").
//!
//! NVOverlay's backend distributes over address-partitioned OMCs, each
//! with its own overlay pool and master table; one master OMC aggregates
//! the min-ver array. This ablation verifies the partitioning is
//! behaviour-preserving (identical recoverable image and essentially
//! identical traffic) while the per-OMC load drops linearly.

use nvbench::{default_jobs, run_nvoverlay, run_ordered, EnvScale};
use nvoverlay::system::NvOverlayOptions;
use nvworkloads::{generate, Workload};

fn main() {
    let scale = EnvScale::from_env();
    let cfg = std::sync::Arc::new(scale.sim_config());
    let params = scale.suite_params();
    let trace = generate(Workload::HashTable, &params).to_packed();

    println!("Ablation: OMC count scaling (Hash Table)");
    println!(
        "{:<8} {:>10} {:>12} {:>14} {:>12}",
        "OMCs", "cycles", "NVM bytes", "master bytes", "rec epoch"
    );
    let omc_counts = [1usize, 2, 4, 8];
    let runs = run_ordered(omc_counts.len(), default_jobs(), |i| {
        let opts = NvOverlayOptions {
            omc_count: omc_counts[i],
            ..NvOverlayOptions::default()
        };
        run_nvoverlay(&cfg, opts, &trace)
    });
    for (omcs, (r, d)) in omc_counts.iter().zip(runs) {
        println!(
            "{:<8} {:>10} {:>12} {:>14} {:>12}",
            omcs,
            r.cycles,
            r.total_bytes(),
            d.master_bytes,
            d.rec_epoch
        );
    }
}
