//! Ablation — scaling the number of OMCs (paper §V-F "Scaling to Large
//! NVM Arrays").
//!
//! NVOverlay's backend distributes over address-partitioned OMCs, each
//! with its own overlay pool and master table; one master OMC aggregates
//! the min-ver array. This ablation verifies the partitioning is
//! behaviour-preserving (identical recoverable image and essentially
//! identical traffic) while the per-OMC load drops linearly.

use nvbench::{run_nvoverlay, EnvScale};
use nvoverlay::system::NvOverlayOptions;
use nvworkloads::{generate, Workload};

fn main() {
    let scale = EnvScale::from_env();
    let cfg = scale.sim_config();
    let params = scale.suite_params();
    let trace = generate(Workload::HashTable, &params);

    println!("Ablation: OMC count scaling (Hash Table)");
    println!(
        "{:<8} {:>10} {:>12} {:>14} {:>12}",
        "OMCs", "cycles", "NVM bytes", "master bytes", "rec epoch"
    );
    for omcs in [1usize, 2, 4, 8] {
        let opts = NvOverlayOptions {
            omc_count: omcs,
            ..NvOverlayOptions::default()
        };
        let (r, d) = run_nvoverlay(&cfg, opts, &trace);
        println!(
            "{:<8} {:>10} {:>12} {:>14} {:>12}",
            omcs,
            r.cycles,
            r.total_bytes(),
            d.master_bytes,
            d.rec_epoch
        );
    }
}
