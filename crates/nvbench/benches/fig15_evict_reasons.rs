//! Figure 15 — eviction-reason decomposition (ART), with and without the
//! tag walker.
//!
//! "Fig. 15: Evict Reason Decomposition — Workload is ART." Bars are the
//! percentage of dirty write-outs caused by capacity misses,
//! coherence/log activity, and tag walks.
//!
//! Expected shape (paper): PiCL and PiCL-L2 depend heavily on the walker
//! (≳47 % of writes); NVOverlay's versions leave mostly through coherence
//! and capacity evictions, with the walker contributing ~11 % — so
//! disabling the walker barely changes NVOverlay.

use nvbaselines::PiclLevel;
use nvbench::{default_jobs, run_nvoverlay, run_ordered, run_picl_walker, EnvScale, ExpResult};
use nvoverlay::system::NvOverlayOptions;
use nvworkloads::{generate, Workload};

struct Row {
    name: &'static str,
    cap: u64,
    coh: u64,
    walk: u64,
    store_evict: u64,
}

impl Row {
    fn from_result(name: &'static str, r: &ExpResult) -> Self {
        Row {
            name,
            cap: r.evict_capacity,
            coh: r.evict_coherence_log,
            walk: r.evict_tag_walk,
            store_evict: r.evict_store,
        }
    }

    fn print(&self) {
        let total = (self.cap + self.coh + self.walk + self.store_evict).max(1) as f64;
        println!(
            "{:<11} {:>9.1}% {:>14.1}% {:>9.1}% {:>12.1}%",
            self.name,
            100.0 * self.cap as f64 / total,
            100.0 * self.coh as f64 / total,
            100.0 * self.walk as f64 / total,
            100.0 * self.store_evict as f64 / total,
        );
    }
}

fn main() {
    let scale = EnvScale::from_env();
    // The paper's 1M-store epochs put each VD's per-epoch write set far
    // beyond its 256 KB L2, so most versions leave through capacity and
    // coherence evictions before the walker runs. Match that regime by
    // running this figure with 8x the scaled base epoch (see
    // EXPERIMENTS.md).
    let mut cfg = scale.sim_config();
    cfg.epoch_size_stores *= 8;
    let cfg = std::sync::Arc::new(cfg);
    let params = nvworkloads::SuiteParams {
        ops: scale.suite_params().ops * 2,
        ..scale.suite_params()
    };
    let trace = generate(Workload::Art, &params).to_packed();

    // All six (walker × scheme) runs fan out over the shared ART trace;
    // index = walker-block * 3 + {PiCL, PiCL-L2, NVOverlay}.
    let results = run_ordered(6, default_jobs(), |i| {
        let walker = i < 3;
        match i % 3 {
            0 => run_picl_walker(&cfg, PiclLevel::Llc, walker, &trace),
            1 => run_picl_walker(&cfg, PiclLevel::L2, walker, &trace),
            _ => {
                let opts = NvOverlayOptions {
                    walk_on_epoch_advance: walker,
                    ..NvOverlayOptions::default()
                };
                run_nvoverlay(&cfg, opts, &trace).0
            }
        }
    });

    for (block, walker) in [true, false].into_iter().enumerate() {
        println!(
            "Figure 15{}: Evict reason decomposition (ART), {} tag walker",
            if walker { "a" } else { "b" },
            if walker { "with" } else { "without" }
        );
        println!(
            "{:<11} {:>10} {:>15} {:>10} {:>13}",
            "scheme", "capacity", "coherence/log", "tag-walk", "store-evict"
        );
        for (j, name) in ["PiCL", "PiCL-L2", "NVOverlay"].into_iter().enumerate() {
            Row::from_result(name, &results[block * 3 + j]).print();
        }
        println!();
    }
}
