//! Ablation — DRAM OID tagging granularity (paper §V-F "Runtime DRAM
//! Overhead").
//!
//! The paper proposes sharing one OID tag across a "super block" of 4
//! lines to cut DRAM tagging overhead from 3.2 % to <0.8 %. A coarser
//! tag can only over-approximate a line's epoch, which may cause extra
//! (spurious) epoch synchronizations; this ablation measures that cost.

use nvbench::{default_jobs, run_nvoverlay, run_ordered, EnvScale};
use nvoverlay::system::NvOverlayOptions;
use nvsim::SimConfig;
use nvworkloads::{generate, Workload};

fn main() {
    let scale = EnvScale::from_env();
    let base_cfg = scale.sim_config();
    let params = scale.suite_params();
    let trace = generate(Workload::BTree, &params).to_packed();

    println!("Ablation: DRAM OID super-block granularity (B+Tree)");
    println!(
        "{:<18} {:>10} {:>12} {:>10} {:>10}",
        "lines per tag", "cycles", "NVM bytes", "epochs", "DRAM tags"
    );
    let granularities = [1u32, 4, 16, 64];
    let cfgs: Vec<std::sync::Arc<SimConfig>> = granularities
        .iter()
        .map(|&g| {
            std::sync::Arc::new(SimConfig {
                dram_oid_superblock_lines: g,
                ..base_cfg.clone()
            })
        })
        .collect();
    let runs = run_ordered(granularities.len(), default_jobs(), |i| {
        run_nvoverlay(&cfgs[i], NvOverlayOptions::default(), &trace)
    });
    for (sb, (r, d)) in granularities.iter().zip(runs) {
        println!(
            "{:<18} {:>10} {:>12} {:>10} {:>10}",
            sb,
            r.cycles,
            r.total_bytes(),
            r.epochs,
            d.dram_oid_tags
        );
    }
    println!();
    println!("Coarser tags cut the DRAM tagging overhead (3.2% per-line -> 0.8%");
    println!("at 4 lines/tag, §V-F) without measurably perturbing execution.");
}
