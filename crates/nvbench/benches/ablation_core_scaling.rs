//! Ablation — scaling the core count (the paper's headline claim:
//! NVOverlay "scales to multi-socket systems" while prior proposals
//! assume centralized structures, §II-D).
//!
//! Runs the same per-thread workload intensity at 8/16/32/64 cores and
//! compares PiCL (global epochs + centralized walks) with NVOverlay
//! (distributed epochs + per-VD walkers + partitioned OMCs), normalized
//! to the ideal system at the same core count.

use nvbench::{default_jobs, run_ordered, run_scheme, EnvScale, Scheme};
use nvsim::SimConfig;
use nvworkloads::{generate, SuiteParams, Workload};
use std::sync::Arc;

fn main() {
    let scale = EnvScale::from_env();
    let base = scale.suite_params();
    let jobs = default_jobs();

    println!("Ablation: core-count scaling (ssca2, constant per-thread load)");
    println!(
        "{:<8} {:>12} {:>10} {:>12} {:>12}",
        "cores", "ideal cyc", "PiCL", "PiCL-L2", "NVOverlay"
    );
    let core_counts = [8u16, 16, 32, 64];
    let configs: Vec<Arc<SimConfig>> = core_counts
        .iter()
        .map(|&cores| {
            Arc::new(
                SimConfig::builder()
                    .cores(cores, 2)
                    // LLC grows with the socket count, as real systems do.
                    .llc(2 * 1024 * 1024 * cores as u64, 16, 30, (cores / 4).max(1))
                    .epoch_size_stores(scale.sim_config().epoch_size_stores)
                    .build()
                    .expect("valid scaled config"),
            )
        })
        .collect();
    // One trace per core count (generated in parallel, shared across the
    // four schemes), then the full 4×4 matrix fans out.
    let traces: Vec<Arc<_>> = run_ordered(core_counts.len(), jobs, |i| {
        let cores = core_counts[i];
        let params = SuiteParams {
            threads: cores as usize,
            // Constant per-thread operation count.
            ops: base.ops * cores as u64 / 16,
            ..base.clone()
        };
        Arc::new(generate(Workload::Ssca2, &params).to_packed())
    });
    let schemes = [
        Scheme::Ideal,
        Scheme::Picl,
        Scheme::PiclL2,
        Scheme::NvOverlay,
    ];
    let runs = run_ordered(core_counts.len() * schemes.len(), jobs, |i| {
        let (row, col) = (i / schemes.len(), i % schemes.len());
        run_scheme(schemes[col], &configs[row], &traces[row])
    });

    for (row, cores) in core_counts.iter().enumerate() {
        let r = &runs[row * schemes.len()..(row + 1) * schemes.len()];
        let (ideal, picl, picl2, nvo) = (&r[0], &r[1], &r[2], &r[3]);
        println!(
            "{:<8} {:>12} {:>10.2} {:>12.2} {:>12.2}",
            cores,
            ideal.cycles,
            picl.cycles as f64 / ideal.cycles as f64,
            picl2.cycles as f64 / ideal.cycles as f64,
            nvo.cycles as f64 / ideal.cycles as f64,
        );
    }
}
