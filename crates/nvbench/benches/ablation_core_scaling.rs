//! Ablation — scaling the core count (the paper's headline claim:
//! NVOverlay "scales to multi-socket systems" while prior proposals
//! assume centralized structures, §II-D).
//!
//! Runs the same per-thread workload intensity at 8/16/32/64 cores and
//! compares PiCL (global epochs + centralized walks) with NVOverlay
//! (distributed epochs + per-VD walkers + partitioned OMCs), normalized
//! to the ideal system at the same core count.

use nvbench::{run_scheme, EnvScale, Scheme};
use nvsim::SimConfig;
use nvworkloads::{generate, SuiteParams, Workload};

fn main() {
    let scale = EnvScale::from_env();
    let base = scale.suite_params();

    println!("Ablation: core-count scaling (ssca2, constant per-thread load)");
    println!(
        "{:<8} {:>12} {:>10} {:>12} {:>12}",
        "cores", "ideal cyc", "PiCL", "PiCL-L2", "NVOverlay"
    );
    for cores in [8u16, 16, 32, 64] {
        let cfg = SimConfig::builder()
            .cores(cores, 2)
            // LLC grows with the socket count, as real systems do.
            .llc(2 * 1024 * 1024 * cores as u64, 16, 30, (cores / 4).max(1))
            .epoch_size_stores(scale.sim_config().epoch_size_stores)
            .build()
            .expect("valid scaled config");
        let params = SuiteParams {
            threads: cores as usize,
            // Constant per-thread operation count.
            ops: base.ops * cores as u64 / 16,
            ..base.clone()
        };
        let trace = generate(Workload::Ssca2, &params);
        let ideal = run_scheme(Scheme::Ideal, &cfg, &trace);
        let picl = run_scheme(Scheme::Picl, &cfg, &trace);
        let picl2 = run_scheme(Scheme::PiclL2, &cfg, &trace);
        let nvo = run_scheme(Scheme::NvOverlay, &cfg, &trace);
        println!(
            "{:<8} {:>12} {:>10.2} {:>12.2} {:>12.2}",
            cores,
            ideal.cycles,
            picl.cycles as f64 / ideal.cycles as f64,
            picl2.cycles as f64 / ideal.cycles as f64,
            nvo.cycles as f64 / ideal.cycles as f64,
        );
    }
}
