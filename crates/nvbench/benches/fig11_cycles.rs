//! Figure 11 — normalized cycles, 12 workloads × 6 schemes.
//!
//! "Fig. 11: Normalized Cycles — 16 worker threads. All numbers are
//! normalized to baseline execution without snapshotting."
//!
//! Expected shape (paper): SW Logging / SW Shadow are multiples of
//! baseline (up to ~23×/~19× on the index workloads), HW Shadow is
//! moderately slower, PiCL and NVOverlay mostly overlap persistence
//! completely (≈1.0), and PiCL-L2 trails PiCL.

use nvbench::{run_scheme, EnvScale, Scheme};
use nvworkloads::{generate, Workload};

fn main() {
    let scale = EnvScale::from_env();
    let cfg = scale.sim_config();
    let params = scale.suite_params();

    println!("Figure 11: Normalized Cycles (scale {scale:?}, lower is better)");
    print!("{:<11}", "workload");
    for s in Scheme::FIGURE {
        print!(" {:>10}", s.name());
    }
    println!();

    for w in Workload::ALL {
        let trace = generate(w, &params);
        let ideal = run_scheme(Scheme::Ideal, &cfg, &trace);
        print!("{:<11}", w.name());
        for s in Scheme::FIGURE {
            let r = run_scheme(s, &cfg, &trace);
            print!(" {:>10.2}", r.cycles as f64 / ideal.cycles as f64);
        }
        println!();
    }
}
