//! Figure 11 — normalized cycles, 12 workloads × 6 schemes.
//!
//! "Fig. 11: Normalized Cycles — 16 worker threads. All numbers are
//! normalized to baseline execution without snapshotting."
//!
//! Expected shape (paper): SW Logging / SW Shadow are multiples of
//! baseline (up to ~23×/~19× on the index workloads), HW Shadow is
//! moderately slower, PiCL and NVOverlay mostly overlap persistence
//! completely (≈1.0), and PiCL-L2 trails PiCL.

use nvbench::{default_jobs, gen_traces, run_matrix, EnvScale, Scheme};
use nvworkloads::Workload;

fn main() {
    let scale = EnvScale::from_env();
    let cfg = std::sync::Arc::new(scale.sim_config());
    let params = scale.suite_params();
    let jobs = default_jobs();

    println!("Figure 11: Normalized Cycles (scale {scale:?}, lower is better)");
    print!("{:<11}", "workload");
    for s in Scheme::FIGURE {
        print!(" {:>10}", s.name());
    }
    println!();

    // Column 0 is the Ideal normalization baseline; the trace for each
    // workload is generated once and shared across all seven runs.
    let mut schemes = vec![Scheme::Ideal];
    schemes.extend(Scheme::FIGURE);
    let traces = gen_traces(&Workload::ALL, &params, jobs);
    let rows = run_matrix(&schemes, &cfg, &traces, jobs);

    for (w, row) in Workload::ALL.iter().zip(rows) {
        let ideal = &row[0];
        print!("{:<11}", w.name());
        for r in &row[1..] {
            print!(" {:>10.2}", r.cycles as f64 / ideal.cycles as f64);
        }
        println!();
    }
}
