//! Figure 13 — persistent mapping metadata cost.
//!
//! "Fig. 13: Persistent Mapping Metadata Cost — All numbers are
//! percentage of working set size." The metric is the Master Mapping
//! Table's size divided by the write working set it maps (entries × 64 B).
//!
//! Expected shape (paper): 12.8 %–15.1 % everywhere (the radix tree's
//! 12.5 % floor plus partially-filled nodes), with `yada` an outlier at
//! 19.7 % because its sparsely scattered writes leave inner nodes almost
//! empty.

use nvbench::{default_jobs, run_nvoverlay, run_ordered, EnvScale};
use nvoverlay::system::NvOverlayOptions;
use nvworkloads::{generate, Workload};

fn main() {
    let scale = EnvScale::from_env();
    let cfg = std::sync::Arc::new(scale.sim_config());
    // Fig 13 measures how densely the write working set populates the
    // mapping tree once the run has covered its structures. The paper's
    // 1.6 B-instruction runs write their structures nearly completely; we
    // reproduce that regime by measuring un-warmed structures over a
    // longer insert phase (see EXPERIMENTS.md).
    let params = nvworkloads::SuiteParams {
        warmup_ops: 0,
        ops: scale.suite_params().ops * 3,
        ..scale.suite_params()
    };

    println!("Figure 13: Mmaster size as % of write working set");
    println!(
        "{:<11} {:>14} {:>16} {:>9}",
        "workload", "Mmaster bytes", "working-set B", "percent"
    );
    // One NVOverlay run per workload; each task generates its own trace
    // (used exactly once, so there is nothing to share).
    let details = run_ordered(Workload::ALL.len(), default_jobs(), |i| {
        let trace = generate(Workload::ALL[i], &params).to_packed();
        run_nvoverlay(&cfg, NvOverlayOptions::default(), &trace).1
    });
    for (w, d) in Workload::ALL.iter().zip(details) {
        let ws = d.master_entries * 64;
        let pct = 100.0 * d.master_bytes as f64 / ws.max(1) as f64;
        println!(
            "{:<11} {:>14} {:>16} {:>8.1}%",
            w.name(),
            d.master_bytes,
            ws,
            pct
        );
    }
}
