//! Figure 17 — NVM write bandwidth time series (B+Tree), PiCL vs
//! NVOverlay.
//!
//! (a) default epochs: NVOverlay's version coherence amortizes write-back
//! bandwidth over execution while PiCL's tag walks create surges at
//! epoch boundaries — lower average, lower peak, less fluctuation.
//!
//! (b) bursty epochs (time-travel debugging): three bursty intervals of
//! tiny epochs (1 K / 10 K / 100 K stores in the paper, the same ratios
//! of the scaled base here). With very small epochs PiCL's log traffic
//! surges ~50 % above NVOverlay's.

use nvbench::{default_jobs, run_ordered, run_scheme, EnvScale, Scheme};
use nvworkloads::{generate, generate_btree_bursty, Burst, Workload};
use std::sync::Arc;

fn series_row(label: &str, series: &[u64], bucket_cycles: u64, total_cycles: u64, freq_ghz: f64) {
    // Convert resampled buckets (bytes per 1% of progress) to GB/s.
    let span_cycles = (total_cycles as f64 / series.len() as f64).max(1.0);
    let _ = bucket_cycles;
    let ns_per_bucket = span_cycles / freq_ghz;
    let gbps: Vec<f64> = series.iter().map(|&b| b as f64 / ns_per_bucket).collect();
    let avg = gbps.iter().sum::<f64>() / gbps.len() as f64;
    let peak = gbps.iter().cloned().fold(0.0, f64::max);
    let var = gbps.iter().map(|g| (g - avg) * (g - avg)).sum::<f64>() / gbps.len() as f64;
    println!(
        "{label}: avg {avg:.2} GB/s, peak {peak:.2} GB/s, stddev {:.2}",
        var.sqrt()
    );
    // A 10-bucket sparkline of the series.
    print!("  ");
    for chunk in gbps.chunks(10) {
        let v = chunk.iter().sum::<f64>() / chunk.len() as f64;
        print!("{v:6.2} ");
    }
    println!("(GB/s per decile of progress)");
}

fn main() {
    let scale = EnvScale::from_env();
    let cfg = Arc::new(scale.sim_config());
    let params = scale.suite_params();
    let jobs = default_jobs();
    let freq = cfg.freq_ghz;

    let base = cfg.epoch_size_stores;
    let bursts = [
        Burst {
            start_frac: 0.15,
            end_frac: 0.25,
            stores_per_epoch: (base / 1000).max(64),
        },
        Burst {
            start_frac: 0.45,
            end_frac: 0.55,
            stores_per_epoch: (base / 100).max(256),
        },
        Burst {
            start_frac: 0.75,
            end_frac: 0.85,
            stores_per_epoch: (base / 10).max(1024),
        },
    ];
    // Generate both traces in parallel, then fan the 2×2 (trace × scheme)
    // matrix out over them.
    let traces = run_ordered(2, jobs, |i| {
        Arc::new(
            if i == 0 {
                generate(Workload::BTree, &params)
            } else {
                generate_btree_bursty(&params, &bursts)
            }
            .to_packed(),
        )
    });
    let schemes = [Scheme::Picl, Scheme::NvOverlay];
    let runs = run_ordered(4, jobs, |i| {
        run_scheme(schemes[i % 2], &cfg, &traces[i / 2])
    });

    println!("Figure 17a: NVM write bandwidth over time, B+Tree, default epochs");
    for (s, r) in schemes.iter().zip(&runs[..2]) {
        series_row(s.name(), &r.bandwidth_100, r.bucket_cycles, r.cycles, freq);
    }

    println!();
    println!("Figure 17b: bursty epochs (three debug windows with tiny epochs)");
    for (s, r) in schemes.iter().zip(&runs[2..]) {
        series_row(s.name(), &r.bandwidth_100, r.bucket_cycles, r.cycles, freq);
    }
}
