//! Criterion micro-benchmarks for the core data structures: mapping-table
//! insert/lookup/merge, cache-array access, and epoch arithmetic. These
//! gauge the *simulator's* own performance, complementing the figure
//! benches which measure the simulated system.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use nvoverlay::epoch::{reconstruct_abs, Epoch};
use nvoverlay::mnm::{MasterTable, NvmLoc, RadixTable};
use nvsim::addr::LineAddr;
use nvsim::cache::CacheArray;

fn bench_radix_table(c: &mut Criterion) {
    c.bench_function("radix_insert_4k", |b| {
        b.iter_batched(
            RadixTable::new,
            |mut t| {
                for i in 0..4096u64 {
                    t.insert(
                        LineAddr::new(i * 97 % (1 << 20)),
                        NvmLoc {
                            page: (i % 1024) as u32,
                            slot: (i % 64) as u8,
                        },
                    );
                }
                t
            },
            BatchSize::SmallInput,
        )
    });

    let mut t = RadixTable::new();
    for i in 0..65_536u64 {
        t.insert(
            LineAddr::new(i),
            NvmLoc {
                page: (i / 64) as u32,
                slot: (i % 64) as u8,
            },
        );
    }
    c.bench_function("radix_lookup_dense", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 12_289) % 65_536;
            t.get(LineAddr::new(i))
        })
    });

    c.bench_function("master_merge_4k", |b| {
        b.iter_batched(
            || {
                let mut src = Vec::new();
                for i in 0..4096u64 {
                    src.push((
                        LineAddr::new(i * 31 % (1 << 18)),
                        NvmLoc {
                            page: (i % 512) as u32,
                            slot: (i % 64) as u8,
                        },
                    ));
                }
                (MasterTable::new(), src)
            },
            |(mut m, src)| {
                for (l, loc) in src {
                    m.merge_in(l, loc);
                }
                m
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_cache_array(c: &mut Criterion) {
    c.bench_function("cache_array_hit", |b| {
        let mut cache: CacheArray<u64> = CacheArray::new(512, 8);
        for i in 0..4096u64 {
            cache.insert(LineAddr::new(i), i);
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 997) % 4096;
            cache.get(LineAddr::new(i)).copied()
        })
    });

    c.bench_function("cache_array_miss_evict", |b| {
        let mut cache: CacheArray<u64> = CacheArray::new(64, 8);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            if !cache.contains(LineAddr::new(i % (1 << 20))) {
                cache.insert(LineAddr::new(i % (1 << 20)), i)
            } else {
                None
            }
        })
    });
}

fn bench_epoch_math(c: &mut Criterion) {
    c.bench_function("epoch_newer_than", |b| {
        let mut x = 0u16;
        b.iter(|| {
            x = x.wrapping_add(12_289);
            Epoch(x).newer_than(Epoch(x.wrapping_sub(100)))
        })
    });
    c.bench_function("epoch_reconstruct_abs", |b| {
        let mut r = 1u64;
        b.iter(|| {
            r = r.wrapping_mul(6364136223846793005).wrapping_add(1);
            reconstruct_abs(Epoch(r as u16), r % (1 << 30))
        })
    });
}

criterion_group!(benches, bench_radix_table, bench_cache_array, bench_epoch_math);
criterion_main!(benches);
