//! Micro-benchmarks for the core data structures: mapping-table
//! insert/lookup/merge, cache-array access, and epoch arithmetic. These
//! gauge the *simulator's* own performance, complementing the figure
//! benches which measure the simulated system.
//!
//! Plain timing harness (`harness = false`); no external bench crates —
//! the build environment has no registry access. Each case runs a fixed
//! iteration budget and reports mean ns/iter over the best of several
//! repetitions.

use nvoverlay::epoch::{reconstruct_abs, Epoch};
use nvoverlay::mnm::{MasterTable, NvmLoc, RadixTable};
use nvsim::addr::LineAddr;
use nvsim::cache::CacheArray;
use std::hint::black_box;
use std::time::Instant;

/// Times `iters` calls of `f`, repeated `reps` times; reports the best
/// (least noisy) repetition as mean ns/iter.
fn bench<F: FnMut()>(name: &str, iters: u64, mut f: F) {
    const REPS: usize = 5;
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let ns = start.elapsed().as_nanos() as f64 / iters as f64;
        best = best.min(ns);
    }
    println!("{name:<28} {best:>12.1} ns/iter  ({iters} iters, best of {REPS})");
}

fn bench_radix_table() {
    bench("radix_insert_4k", 200, || {
        let mut t = RadixTable::new();
        for i in 0..4096u64 {
            t.insert(
                LineAddr::new(i * 97 % (1 << 20)),
                NvmLoc {
                    page: (i % 1024) as u32,
                    slot: (i % 64) as u8,
                },
            );
        }
        black_box(&t);
    });

    let mut t = RadixTable::new();
    for i in 0..65_536u64 {
        t.insert(
            LineAddr::new(i),
            NvmLoc {
                page: (i / 64) as u32,
                slot: (i % 64) as u8,
            },
        );
    }
    let mut i = 0u64;
    bench("radix_lookup_dense", 2_000_000, || {
        i = (i + 12_289) % 65_536;
        black_box(t.get(LineAddr::new(i)));
    });

    let mut src = Vec::new();
    for i in 0..4096u64 {
        src.push((
            LineAddr::new(i * 31 % (1 << 18)),
            NvmLoc {
                page: (i % 512) as u32,
                slot: (i % 64) as u8,
            },
        ));
    }
    bench("master_merge_4k", 200, || {
        let mut m = MasterTable::new();
        for &(l, loc) in &src {
            m.merge_in(l, loc);
        }
        black_box(&m);
    });
}

fn bench_cache_array() {
    let mut cache: CacheArray<u64> = CacheArray::new(512, 8);
    for i in 0..4096u64 {
        cache.insert(LineAddr::new(i), i);
    }
    let mut i = 0u64;
    bench("cache_array_hit", 2_000_000, || {
        i = (i + 997) % 4096;
        black_box(cache.get(LineAddr::new(i)).copied());
    });

    let mut cache: CacheArray<u64> = CacheArray::new(64, 8);
    let mut i = 0u64;
    bench("cache_array_miss_evict", 2_000_000, || {
        i += 1;
        let out = if !cache.contains(LineAddr::new(i % (1 << 20))) {
            cache.insert(LineAddr::new(i % (1 << 20)), i)
        } else {
            None
        };
        black_box(out);
    });
}

fn bench_epoch_math() {
    let mut x = 0u16;
    bench("epoch_newer_than", 5_000_000, || {
        x = x.wrapping_add(12_289);
        black_box(Epoch(x).newer_than(Epoch(x.wrapping_sub(100))));
    });
    let mut r = 1u64;
    bench("epoch_reconstruct_abs", 5_000_000, || {
        r = r.wrapping_mul(6364136223846793005).wrapping_add(1);
        black_box(reconstruct_abs(Epoch(r as u16), r % (1 << 30)));
    });
}

fn main() {
    bench_radix_table();
    bench_cache_array();
    bench_epoch_math();
}
