//! Ablation — coherence-protocol variant (paper §IV-E "Protocol
//! Compatibility": "neither does NVOverlay assume specific coherence
//! protocols, nor does it modify the coherence state machine. As long as
//! the protocol supports the notion of 'ownership', it can be extended").
//!
//! Under MOESI, external read-downgrades leave dirty versions *Owned* in
//! place instead of depositing them in the LLC — NVOverlay then persists
//! those versions through the walker once per epoch rather than on every
//! producer/consumer handoff, cutting coherence-driven NVM traffic on
//! read-shared workloads.

use nvbench::{run_scheme, EnvScale, Scheme};
use nvsim::config::Protocol;
use nvsim::SimConfig;
use nvworkloads::{generate, Workload};

fn main() {
    let scale = EnvScale::from_env();
    let params = scale.suite_params();

    println!("Ablation: MESI vs MOESI (normalized cycles ×, NVM MB)");
    println!(
        "{:<11} {:>13} {:>14} {:>13} {:>14}",
        "workload", "PiCL/MESI", "PiCL/MOESI", "NVO/MESI", "NVO/MOESI"
    );
    for w in [Workload::BTree, Workload::Intruder, Workload::Kmeans, Workload::Ssca2] {
        let trace = generate(w, &params);
        let mut row = Vec::new();
        for proto in [Protocol::Mesi, Protocol::Moesi] {
            let cfg = SimConfig {
                protocol: proto,
                ..scale.sim_config()
            };
            let ideal = run_scheme(Scheme::Ideal, &cfg, &trace);
            for s in [Scheme::Picl, Scheme::NvOverlay] {
                let r = run_scheme(s, &cfg, &trace);
                row.push((
                    r.cycles as f64 / ideal.cycles as f64,
                    r.total_bytes() as f64 / 1e6,
                ));
            }
        }
        // row = [PiCL/MESI, NVO/MESI, PiCL/MOESI, NVO/MOESI]
        println!(
            "{:<11} {:>6.2}x {:>4.1}MB {:>7.2}x {:>4.1}MB {:>6.2}x {:>4.1}MB {:>7.2}x {:>4.1}MB",
            w.name(),
            row[0].0, row[0].1,
            row[2].0, row[2].1,
            row[1].0, row[1].1,
            row[3].0, row[3].1,
        );
    }
}
