//! Ablation — coherence-protocol variant (paper §IV-E "Protocol
//! Compatibility": "neither does NVOverlay assume specific coherence
//! protocols, nor does it modify the coherence state machine. As long as
//! the protocol supports the notion of 'ownership', it can be extended").
//!
//! Under MOESI, external read-downgrades leave dirty versions *Owned* in
//! place instead of depositing them in the LLC — NVOverlay then persists
//! those versions through the walker once per epoch rather than on every
//! producer/consumer handoff, cutting coherence-driven NVM traffic on
//! read-shared workloads.

use nvbench::{default_jobs, gen_traces, run_ordered, run_scheme, EnvScale, Scheme};
use nvsim::config::Protocol;
use nvsim::SimConfig;
use nvworkloads::Workload;

fn main() {
    let scale = EnvScale::from_env();
    let params = scale.suite_params();
    let jobs = default_jobs();

    println!("Ablation: MESI vs MOESI (normalized cycles ×, NVM MB)");
    println!(
        "{:<11} {:>13} {:>14} {:>13} {:>14}",
        "workload", "PiCL/MESI", "PiCL/MOESI", "NVO/MESI", "NVO/MOESI"
    );
    let workloads = [
        Workload::BTree,
        Workload::Intruder,
        Workload::Kmeans,
        Workload::Ssca2,
    ];
    let traces = gen_traces(&workloads, &params, jobs);
    // Per workload: 2 protocols × 3 runs (ideal, PiCL, NVOverlay) = 6
    // cells, all sharing the workload's trace.
    let schemes = [Scheme::Ideal, Scheme::Picl, Scheme::NvOverlay];
    let cfgs: Vec<std::sync::Arc<SimConfig>> = [Protocol::Mesi, Protocol::Moesi]
        .into_iter()
        .map(|proto| {
            std::sync::Arc::new(SimConfig {
                protocol: proto,
                ..scale.sim_config()
            })
        })
        .collect();
    let cells = run_ordered(workloads.len() * 6, jobs, |i| {
        let (wi, rest) = (i / 6, i % 6);
        run_scheme(schemes[rest % 3], &cfgs[rest / 3], &traces[wi])
    });

    for (wi, w) in workloads.iter().enumerate() {
        let mut row = Vec::new();
        for proto_block in 0..2 {
            let base = wi * 6 + proto_block * 3;
            let ideal = &cells[base];
            for s in 1..3 {
                let r = &cells[base + s];
                row.push((
                    r.cycles as f64 / ideal.cycles as f64,
                    r.total_bytes() as f64 / 1e6,
                ));
            }
        }
        // row = [PiCL/MESI, NVO/MESI, PiCL/MOESI, NVO/MOESI]
        println!(
            "{:<11} {:>6.2}x {:>4.1}MB {:>7.2}x {:>4.1}MB {:>6.2}x {:>4.1}MB {:>7.2}x {:>4.1}MB",
            w.name(),
            row[0].0,
            row[0].1,
            row[2].0,
            row[2].1,
            row[1].0,
            row[1].1,
            row[3].0,
            row[3].1,
        );
    }
}
