//! Table II — the simulated configuration in force for every experiment.

use nvbench::EnvScale;

fn main() {
    let scale = EnvScale::from_env();
    let cfg = scale.sim_config();
    let p = scale.suite_params();
    println!("Table II: Simulated Configuration (scale: {scale:?})");
    println!();
    println!(
        "Processor    {} cores, {} per Versioned Domain, {} GHz",
        cfg.cores, cfg.cores_per_vd, cfg.freq_ghz
    );
    println!(
        "L1-D cache   {} KB, 64B lines, {}-way, {} cycles",
        cfg.l1.size_bytes / 1024,
        cfg.l1.ways,
        cfg.l1.latency
    );
    println!(
        "L2 cache     {} KB, 64B lines, {}-way, {} cycles (inclusive, per VD)",
        cfg.l2.size_bytes / 1024,
        cfg.l2.ways,
        cfg.l2.latency
    );
    println!(
        "Shared LLC   {} MB, 64B lines, {}-way, {} cycles, {} slices (non-inclusive)",
        cfg.llc.size_bytes / (1024 * 1024),
        cfg.llc.ways,
        cfg.llc.latency,
        cfg.llc_slices
    );
    println!(
        "DRAM         {} controllers, {} cycles",
        cfg.dram_controllers, cfg.dram_latency
    );
    println!(
        "NVDIMM       {} banks, {} cycles ({} ns) write latency, queue depth {}",
        cfg.nvm_banks,
        cfg.nvm_write_latency,
        cfg.nvm_write_latency as f64 / cfg.freq_ghz,
        cfg.nvm_queue_depth
    );
    println!(
        "Epochs       {} stores per VD per epoch (scaled from the paper's 1M)",
        cfg.epoch_size_stores
    );
    println!(
        "Workloads    {} threads, {} ops measured after {} warm-up ops",
        p.threads, p.ops, p.warmup_ops
    );
}
