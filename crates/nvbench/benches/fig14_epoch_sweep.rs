//! Figure 14 — sensitivity to epoch size (ART benchmark).
//!
//! "(a) Normalized Cycles; (b) Normalized Writes" for PiCL, PiCL-L2 and
//! NVOverlay with epoch sizes swept over 0.5×/1×/2×/4× the base (the
//! paper sweeps 500 K–4 M store uops; we sweep the same ratios around the
//! scaled base epoch).
//!
//! Expected shape (paper): NVOverlay and PiCL-L2 cycles are insensitive
//! to epoch size; PiCL improves with longer epochs; PiCL/PiCL-L2 write
//! amplification falls ~11 %–16 % from the shortest to the longest epoch
//! while NVOverlay's writes stay flat.

use nvbench::{default_jobs, run_ordered, run_scheme, EnvScale, Scheme};
use nvsim::SimConfig;
use nvworkloads::{generate, Workload};

fn main() {
    let scale = EnvScale::from_env();
    let base_cfg = std::sync::Arc::new(scale.sim_config());
    let params = scale.suite_params();
    let jobs = default_jobs();
    let trace = generate(Workload::Art, &params).to_packed();

    let base_epoch = base_cfg.epoch_size_stores;
    let sweep: Vec<u64> = [base_epoch / 2, base_epoch, base_epoch * 2, base_epoch * 4].into();
    let schemes = [Scheme::Picl, Scheme::PiclL2, Scheme::NvOverlay];

    // One shared config per sweep point, built up front so the fan-out
    // below only bumps `Arc` refcounts.
    let sweep_cfgs: Vec<std::sync::Arc<SimConfig>> = sweep
        .iter()
        .map(|&e| {
            std::sync::Arc::new(SimConfig {
                epoch_size_stores: e,
                ..(*base_cfg).clone()
            })
        })
        .collect();

    // The full matrix in one parallel fan-out: the two normalization
    // runs (ideal, NVOverlay@base), then sweep × schemes — all over the
    // single shared ART trace.
    let cols = schemes.len();
    let all = run_ordered(2 + sweep.len() * cols, jobs, |i| match i {
        0 => run_scheme(Scheme::Ideal, &base_cfg, &trace),
        1 => run_scheme(Scheme::NvOverlay, &base_cfg, &trace),
        _ => {
            let (si, ei) = ((i - 2) % cols, (i - 2) / cols);
            run_scheme(schemes[si], &sweep_cfgs[ei], &trace)
        }
    });
    let (ideal, nvo_base, runs) = (&all[0], &all[1], &all[2..]);

    println!("Figure 14a: Normalized cycles vs epoch size (ART)");
    print!("{:<12}", "epoch");
    for s in schemes {
        print!(" {:>10}", s.name());
    }
    println!();
    let mut write_rows = Vec::new();
    for (ei, &e) in sweep.iter().enumerate() {
        print!("{:<12}", format!("{e}"));
        let mut row = Vec::new();
        for si in 0..cols {
            let r = &runs[ei * cols + si];
            print!(" {:>10.2}", r.cycles as f64 / ideal.cycles as f64);
            row.push(r.total_bytes());
        }
        println!();
        write_rows.push((e, row));
    }

    println!();
    println!("Figure 14b: NVM bytes normalized to NVOverlay@base (ART)");
    print!("{:<12}", "epoch");
    for s in schemes {
        print!(" {:>10}", s.name());
    }
    println!();
    let base = nvo_base.total_bytes().max(1) as f64;
    for (e, row) in write_rows {
        print!("{:<12}", format!("{e}"));
        for b in row {
            print!(" {:>10.2}", b as f64 / base);
        }
        println!();
    }
}
