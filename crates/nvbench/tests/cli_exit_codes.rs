//! Pins the documented `nvo` exit-code contract (see the module docs of
//! `src/bin/nvo.rs`): every typed error class maps to a stable exit
//! code, and the variant name reaches stderr as `error[<Variant>]` so
//! scripts and CI can grep the class without parsing prose.

use std::path::PathBuf;
use std::process::{Command, Output};

fn nvo(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_nvo"))
        .args(args)
        .output()
        .expect("nvo binary runs")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nvo-exit-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn usage_errors_exit_2() {
    let out = nvo(&["definitely-not-a-subcommand"]);
    assert_eq!(out.status.code(), Some(2));
    let out = nvo(&["restore"]); // --store is required
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn query_errors_use_the_10_range_with_variant_names() {
    // Epoch 0 is the pre-history sentinel: EpochZero, exit 10.
    let out = nvo(&[
        "query", "B+Tree", "--key", "0x1f40", "--epoch", "0", "--scale", "quick",
    ]);
    assert_eq!(out.status.code(), Some(10), "stderr: {}", stderr_of(&out));
    assert!(stderr_of(&out).contains("error[EpochZero]"));

    // An epoch beyond the recoverable one: NotYetRecoverable, exit 11.
    let out = nvo(&[
        "query", "B+Tree", "--key", "0x1f40", "--epoch", "99999", "--scale", "quick",
    ]);
    assert_eq!(out.status.code(), Some(11), "stderr: {}", stderr_of(&out));
    assert!(stderr_of(&out).contains("error[NotYetRecoverable]"));
}

#[test]
fn store_errors_use_the_30_range_with_variant_names() {
    let dir = temp_store("store");
    let dirs = dir.to_str().unwrap();

    // Restoring from an empty store: BackupNotFound, exit 36.
    let out = nvo(&["restore", "--store", dirs, "--name", "missing"]);
    assert_eq!(out.status.code(), Some(36), "stderr: {}", stderr_of(&out));
    assert!(stderr_of(&out).contains("error[BackupNotFound]"));

    // A real backup, then one corrupted layer byte: Checksum, exit 31.
    let out = nvo(&[
        "backup", "B+Tree", "--store", dirs, "--name", "a", "--scale", "quick",
    ]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr_of(&out));
    let layers = dir.join("layers");
    let victim = std::fs::read_dir(&layers)
        .expect("layers dir exists after backup")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .min()
        .expect("backup wrote at least one layer");
    let mut bytes = std::fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 1;
    std::fs::write(&victim, &bytes).unwrap();
    let out = nvo(&["restore", "--store", dirs, "--name", "a"]);
    assert_eq!(out.status.code(), Some(31), "stderr: {}", stderr_of(&out));
    assert!(stderr_of(&out).contains("error[Checksum]"));

    // Duplicate backup names: BackupExists, exit 37 (heal the flipped
    // byte first so open-time validation sees a clean store).
    bytes[mid] ^= 1;
    std::fs::write(&victim, &bytes).unwrap();
    let out = nvo(&[
        "backup", "B+Tree", "--store", dirs, "--name", "a", "--scale", "quick",
    ]);
    assert_eq!(out.status.code(), Some(37), "stderr: {}", stderr_of(&out));
    assert!(stderr_of(&out).contains("error[BackupExists]"));

    let _ = std::fs::remove_dir_all(&dir);
}
