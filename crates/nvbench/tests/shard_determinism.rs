//! Differential test: sharded replay must be *worker-count invisible*.
//! The shard plan, the epoch-barrier protocol, and the cross-island
//! exchange maps depend only on the trace and the machine configuration
//! — never on which OS thread ran which island — so for every figure
//! scheme × workload pair, `--shards 1/2/4/8` must produce identical
//! `ExpResult`s, byte-identical `SystemStats`, and byte-identical
//! metrics-tree dumps. With the `trace` feature on, per-kind structured
//! event counts must match too (event *order* may differ: workers
//! interleave, but each island emits the same events either way).

use nvbench::{default_jobs, gen_traces, run_ordered, run_scheme_sharded, EnvScale, Scheme};
use nvworkloads::Workload;

const WORKLOADS: [Workload; 4] = [
    Workload::HashTable,
    Workload::BTree,
    Workload::Art,
    Workload::Kmeans,
];

const SHARDS: [usize; 4] = [1, 2, 4, 8];

#[test]
fn sharded_replay_is_worker_count_invisible() {
    let cfg = std::sync::Arc::new(EnvScale::Quick.sim_config());
    let params = EnvScale::Quick.suite_params();
    let jobs = default_jobs();
    let traces = gen_traces(&WORKLOADS, &params, jobs);
    let schemes = Scheme::FIGURE;

    // Each (scheme, workload) cell runs every shard count and compares
    // against the 1-worker reference; cells fan out over the pool.
    let cols = schemes.len();
    run_ordered(WORKLOADS.len() * cols, jobs, |i| {
        let (s, t) = (schemes[i % cols], &traces[i / cols]);
        let w = WORKLOADS[i / cols];
        let base = run_scheme_sharded(s, &cfg, t, SHARDS[0]);
        let base_tree = base.metrics.dump_tree();
        for &n in &SHARDS[1..] {
            let run = run_scheme_sharded(s, &cfg, t, n);
            assert_eq!(
                base.result, run.result,
                "{s} on {w}: ExpResult diverged at {n} shards"
            );
            assert_eq!(
                base.stats, run.stats,
                "{s} on {w}: SystemStats diverged at {n} shards"
            );
            assert_eq!(
                base_tree,
                run.metrics.dump_tree(),
                "{s} on {w}: metrics tree diverged at {n} shards"
            );
            assert_eq!(base.sharded, run.sharded, "{s} on {w}: capability flapped");
            assert_eq!(
                (base.islands, base.windows, base.imported_lines),
                (run.islands, run.windows, run.imported_lines),
                "{s} on {w}: shard summary diverged at {n} shards"
            );
        }
        // The capability flag routes exactly one figure scheme serially.
        assert_eq!(base.sharded, s != Scheme::HwShadow, "{s}: capability flag");
    });
}

#[test]
fn sharded_replay_reports_plan_shape() {
    // The shard summary reflects the machine topology: Quick scale is
    // 16 cores / 2 per VD = 8 islands, and the barrier cadence is the
    // per-thread share of the epoch budget.
    let cfg = std::sync::Arc::new(EnvScale::Quick.sim_config());
    let params = EnvScale::Quick.suite_params();
    let trace = nvworkloads::generate(Workload::HashTable, &params).to_packed();
    let run = run_scheme_sharded(Scheme::NvOverlay, &cfg, &trace, 4);
    assert!(run.sharded);
    assert_eq!(run.islands, (cfg.cores / cfg.cores_per_vd) as usize);
    assert!(run.windows > 0, "a non-empty trace has at least one window");
    assert!(
        run.imported_lines > 0,
        "shared-heap workloads cross island boundaries"
    );
}

#[cfg(feature = "trace")]
#[test]
fn sharded_replay_emits_identical_event_counts() {
    use nvsim::nvtrace::{self, EventKind, TraceConfig};

    // Per-worker rings merge into this thread's recorder at the end of
    // each sharded run. Capacity is sized so nothing is overwritten —
    // only then are per-kind counts comparable across worker groupings.
    let big = TraceConfig {
        capacity: 1 << 22,
        sample_every: 1,
    };
    let cfg = std::sync::Arc::new(EnvScale::Quick.sim_config());
    let params = EnvScale::Quick.suite_params();
    let trace = nvworkloads::generate(Workload::BTree, &params).to_packed();
    for s in [Scheme::NvOverlay, Scheme::SwLogging, Scheme::Picl] {
        nvtrace::install(big);
        let _ = run_scheme_sharded(s, &cfg, &trace, 1);
        let one = nvtrace::take().expect("tracer installed");
        assert_eq!(one.overwritten, 0, "{s}: ring too small for the run");
        for &n in &[2usize, 8] {
            nvtrace::install(big);
            let _ = run_scheme_sharded(s, &cfg, &trace, n);
            let many = nvtrace::take().expect("tracer installed");
            assert_eq!(many.overwritten, 0, "{s}: ring too small at {n} shards");
            for kind in EventKind::ALL {
                assert_eq!(
                    one.count(kind),
                    many.count(kind),
                    "{s}: event count for {} diverged at {n} shards",
                    kind.name()
                );
            }
            assert_eq!(one.accepted, many.accepted, "{s}: accepted total");
        }
    }
}
