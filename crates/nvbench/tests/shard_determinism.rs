//! Differential test: sharded replay must be *worker-count invisible*.
//! The shard plan, the epoch-barrier protocol, and the cross-island
//! exchange maps depend only on the trace and the machine configuration
//! — never on which OS thread ran which island — so for every figure
//! scheme × workload pair, `--shards 1/2/4/8` must produce identical
//! `ExpResult`s, byte-identical `SystemStats`, and byte-identical
//! metrics-tree dumps. With the `trace` feature on, per-kind structured
//! event counts must match too (event *order* may differ: workers
//! interleave, but each island emits the same events either way).

use nvbench::{
    default_jobs, gen_traces, run_ordered, run_scheme_sharded, run_scheme_sharded_exec, EnvScale,
    Scheme,
};
use nvworkloads::Workload;

const WORKLOADS: [Workload; 4] = [
    Workload::HashTable,
    Workload::BTree,
    Workload::Art,
    Workload::Kmeans,
];

const SHARDS: [usize; 4] = [1, 2, 4, 8];

#[test]
fn sharded_replay_is_worker_count_invisible() {
    let cfg = std::sync::Arc::new(EnvScale::Quick.sim_config());
    let params = EnvScale::Quick.suite_params();
    let jobs = default_jobs();
    let traces = gen_traces(&WORKLOADS, &params, jobs);
    let schemes = Scheme::FIGURE;

    // Each (scheme, workload) cell runs every shard count and compares
    // against the 1-worker reference; cells fan out over the pool.
    let cols = schemes.len();
    run_ordered(WORKLOADS.len() * cols, jobs, |i| {
        let (s, t) = (schemes[i % cols], &traces[i / cols]);
        let w = WORKLOADS[i / cols];
        let base = run_scheme_sharded(s, &cfg, t, SHARDS[0]);
        let base_tree = base.metrics.dump_tree();
        for &n in &SHARDS[1..] {
            let run = run_scheme_sharded(s, &cfg, t, n);
            assert_eq!(
                base.result, run.result,
                "{s} on {w}: ExpResult diverged at {n} shards"
            );
            assert_eq!(
                base.stats, run.stats,
                "{s} on {w}: SystemStats diverged at {n} shards"
            );
            assert_eq!(
                base_tree,
                run.metrics.dump_tree(),
                "{s} on {w}: metrics tree diverged at {n} shards"
            );
            assert_eq!(base.sharded, run.sharded, "{s} on {w}: capability flapped");
            assert_eq!(
                (base.islands, base.windows, base.imported_lines),
                (run.islands, run.windows, run.imported_lines),
                "{s} on {w}: shard summary diverged at {n} shards"
            );
        }
        // The capability flag routes exactly one figure scheme serially.
        assert_eq!(base.sharded, s != Scheme::HwShadow, "{s}: capability flag");
    });
}

#[test]
fn coalescing_is_result_invisible() {
    // The adaptive barrier cadence is part of the *plan*: windows with
    // an empty (filtered) exchange and lockstep epoch floors are silent
    // in both modes, and barrier effects happen only at rendezvous
    // windows either way. `coalesce: false` merely parks workers at the
    // silent windows too, so it must not change a single result byte at
    // any worker count — this differential guards the worker plumbing
    // (publication order, watchdog, wait pairing), not the cadence.
    let cfg = std::sync::Arc::new(EnvScale::Quick.sim_config());
    let params = EnvScale::Quick.suite_params();
    let jobs = default_jobs();
    let traces = gen_traces(&WORKLOADS, &params, jobs);
    let schemes = Scheme::FIGURE;

    let cols = schemes.len();
    run_ordered(WORKLOADS.len() * cols, jobs, |i| {
        let (s, t) = (schemes[i % cols], &traces[i / cols]);
        let w = WORKLOADS[i / cols];
        for &n in &SHARDS {
            let on = run_scheme_sharded_exec(s, &cfg, t, n, false, true);
            let off = run_scheme_sharded_exec(s, &cfg, t, n, false, false);
            assert_eq!(
                on.result, off.result,
                "{s} on {w}: ExpResult diverged without coalescing at {n} shards"
            );
            assert_eq!(
                on.stats, off.stats,
                "{s} on {w}: SystemStats diverged without coalescing at {n} shards"
            );
            assert_eq!(
                on.metrics.dump_tree(),
                off.metrics.dump_tree(),
                "{s} on {w}: metrics tree diverged without coalescing at {n} shards"
            );
            assert_eq!(
                (on.imported_lines, on.rendezvous_windows),
                (off.imported_lines, off.rendezvous_windows),
                "{s} on {w}: shard summary diverged without coalescing at {n} shards"
            );
            if on.sharded {
                assert!(
                    on.rendezvous_windows <= on.windows as u64,
                    "{s} on {w}: more rendezvous than windows"
                );
            }
        }
    });
}

#[test]
fn sharded_replay_reports_plan_shape() {
    // The shard summary reflects the machine topology: Quick scale is
    // 16 cores / 2 per VD = 8 islands, and the barrier cadence is the
    // per-thread share of the epoch budget.
    let cfg = std::sync::Arc::new(EnvScale::Quick.sim_config());
    let params = EnvScale::Quick.suite_params();
    let trace = nvworkloads::generate(Workload::HashTable, &params).to_packed();
    let run = run_scheme_sharded(Scheme::NvOverlay, &cfg, &trace, 4);
    assert!(run.sharded);
    assert_eq!(run.islands, (cfg.cores / cfg.cores_per_vd) as usize);
    assert!(run.windows > 0, "a non-empty trace has at least one window");
    assert!(
        run.imported_lines > 0,
        "shared-heap workloads cross island boundaries"
    );
}

#[cfg(feature = "trace")]
#[test]
fn sharded_replay_emits_identical_event_counts() {
    use nvsim::nvtrace::{self, EventKind, TraceConfig};

    // Per-worker rings merge into this thread's recorder at the end of
    // each sharded run. Capacity is sized so nothing is overwritten —
    // only then are per-kind counts comparable across worker groupings.
    let big = TraceConfig {
        capacity: 1 << 22,
        sample_every: 1,
    };
    let cfg = std::sync::Arc::new(EnvScale::Quick.sim_config());
    let params = EnvScale::Quick.suite_params();
    let trace = nvworkloads::generate(Workload::BTree, &params).to_packed();
    for s in [Scheme::NvOverlay, Scheme::SwLogging, Scheme::Picl] {
        nvtrace::install(big);
        let _ = run_scheme_sharded(s, &cfg, &trace, 1);
        let one = nvtrace::take().expect("tracer installed");
        assert_eq!(one.overwritten, 0, "{s}: ring too small for the run");
        for &n in &[2usize, 8] {
            nvtrace::install(big);
            let _ = run_scheme_sharded(s, &cfg, &trace, n);
            let many = nvtrace::take().expect("tracer installed");
            assert_eq!(many.overwritten, 0, "{s}: ring too small at {n} shards");
            for kind in EventKind::ALL {
                assert_eq!(
                    one.count(kind),
                    many.count(kind),
                    "{s}: event count for {} diverged at {n} shards",
                    kind.name()
                );
            }
            assert_eq!(one.accepted, many.accepted, "{s}: accepted total");
        }
    }
}

#[cfg(feature = "trace")]
#[test]
fn coalescing_emits_identical_event_counts() {
    use nvsim::nvtrace::{self, EventKind, TraceConfig};

    // Same per-kind comparison as above, but between coalescing modes:
    // a silent window emits no ShardBarrier event in either mode, so
    // even the structured-event counts must be mode-invariant.
    let big = TraceConfig {
        capacity: 1 << 22,
        sample_every: 1,
    };
    let cfg = std::sync::Arc::new(EnvScale::Quick.sim_config());
    let params = EnvScale::Quick.suite_params();
    let trace = nvworkloads::generate(Workload::BTree, &params).to_packed();
    for s in [Scheme::NvOverlay, Scheme::SwLogging, Scheme::Picl] {
        for &n in &SHARDS {
            nvtrace::install(big);
            let _ = run_scheme_sharded_exec(s, &cfg, &trace, n, false, true);
            let on = nvtrace::take().expect("tracer installed");
            assert_eq!(on.overwritten, 0, "{s}: ring too small at {n} shards");
            nvtrace::install(big);
            let _ = run_scheme_sharded_exec(s, &cfg, &trace, n, false, false);
            let off = nvtrace::take().expect("tracer installed");
            assert_eq!(off.overwritten, 0, "{s}: ring too small at {n} shards");
            for kind in EventKind::ALL {
                assert_eq!(
                    on.count(kind),
                    off.count(kind),
                    "{s}: event count for {} diverged without coalescing at {n} shards",
                    kind.name()
                );
            }
            assert_eq!(on.accepted, off.accepted, "{s}: accepted total");
        }
    }
}
