//! Observability end-to-end tests: metrics registry determinism,
//! serial-vs-parallel stats merging, and (with `--features trace`) the
//! full tracer → Chrome-trace-JSON pipeline.

use nvbench::{gen_traces, run_matrix_stats, run_scheme_stats, EnvScale, Scheme};
use nvsim::stats::SystemStats;
use nvworkloads::Workload;

fn quick_cfg() -> std::sync::Arc<nvsim::SimConfig> {
    std::sync::Arc::new(EnvScale::Quick.sim_config())
}

fn quick_trace(w: Workload) -> nvsim::trace::PackedTrace {
    nvworkloads::generate(w, &EnvScale::Quick.suite_params()).to_packed()
}

#[test]
fn metrics_registry_is_deterministic_across_runs() {
    let cfg = quick_cfg();
    let trace = quick_trace(Workload::HashTable);
    let (_, _, reg1) = run_scheme_stats(Scheme::NvOverlay, &cfg, &trace);
    let (_, _, reg2) = run_scheme_stats(Scheme::NvOverlay, &cfg, &trace);
    assert_eq!(reg1, reg2, "same run must publish identical metrics");
    assert_eq!(reg1.dump_tree(), reg2.dump_tree());
    assert_eq!(
        nvbench::registry_json(&reg1, &[]),
        nvbench::registry_json(&reg2, &[])
    );
    // The NVOverlay registry exposes its deep structure.
    assert!(reg1.counter("mnm.rec_epoch").is_some());
    assert!(reg1.counter("mnm.omc.0.versions_received").is_some());
    assert!(reg1.counter("sys.access.stores").is_some());
    assert!(reg1.counter("cst.wrap_flushes").is_some());
}

#[test]
fn registry_dump_round_trips_through_json_parser() {
    let cfg = quick_cfg();
    let trace = quick_trace(Workload::BTree);
    let (_, _, reg) = run_scheme_stats(Scheme::NvOverlay, &cfg, &trace);
    let json = nvbench::registry_json(&reg, &[("scheme", "NVOverlay"), ("workload", "B+Tree")]);
    let doc = nvbench::json::parse(&json).expect("stats export must be valid JSON");
    assert_eq!(doc.get("scheme").unwrap().as_str(), Some("NVOverlay"));
    // Every counter survives the round trip exactly.
    for (name, value) in reg.iter() {
        if let nvsim::metrics::MetricValue::Counter(c) = value {
            assert_eq!(
                doc.get(name).and_then(|v| v.as_u64()),
                Some(*c),
                "counter {name} lost in export"
            );
        }
    }
}

#[test]
fn parallel_stats_merge_equals_serial_merge() {
    let cfg = quick_cfg();
    let params = EnvScale::Quick.suite_params();
    let workloads = [Workload::HashTable, Workload::BTree];
    let schemes = [Scheme::NvOverlay, Scheme::SwLogging, Scheme::Picl];
    let traces = gen_traces(&workloads, &params, 1);

    let serial = run_matrix_stats(&schemes, &cfg, &traces, 1);
    let parallel = run_matrix_stats(&schemes, &cfg, &traces, 4);
    assert_eq!(serial, parallel, "parallel engine must be byte-identical");

    let mut merged_serial = SystemStats::default();
    for (_, s) in serial.iter().flat_map(|row| row.iter()) {
        merged_serial.merge(s);
    }
    // Merging in a different order must agree on every counter (gauges
    // use max, counters add — both order-independent).
    let mut merged_rev = SystemStats::default();
    for (_, s) in parallel.iter().flat_map(|row| row.iter()).rev() {
        merged_rev.merge(s);
    }
    assert_eq!(merged_serial, merged_rev);
    let per_run_stores: u64 = serial
        .iter()
        .flat_map(|row| row.iter())
        .map(|(_, s)| s.access.stores)
        .sum();
    assert_eq!(merged_serial.access.stores, per_run_stores);
}

#[cfg(feature = "trace")]
mod traced {
    use super::*;
    use nvsim::nvtrace::{self, EventKind, TraceConfig};

    /// The acceptance-criteria run: NVOverlay under the tracer must
    /// produce epoch-advance, tag-walk, and OMC-flush events, and the
    /// Chrome export must parse back.
    #[test]
    fn nvoverlay_trace_has_key_events_and_parses() {
        assert!(nvtrace::compiled_in());
        let cfg = quick_cfg();
        let trace = quick_trace(Workload::BTree);
        nvtrace::install(TraceConfig::default());
        let _ = run_scheme_stats(Scheme::NvOverlay, &cfg, &trace);
        let log = nvtrace::take().expect("tracer installed");
        assert!(log.count(EventKind::EpochAdvance) > 0, "no epoch advances");
        assert!(log.count(EventKind::TagWalkStart) > 0, "no tag walks");
        assert_eq!(
            log.count(EventKind::TagWalkStart),
            log.count(EventKind::TagWalkEnd),
            "unbalanced tag-walk spans"
        );
        assert!(log.count(EventKind::OmcFlush) > 0, "no OMC flushes");

        let json = nvbench::chrome_trace_json(
            &log,
            &nvbench::ChromeMeta {
                scheme: "NVOverlay".into(),
                workload: "B+Tree".into(),
            },
        );
        let doc = nvbench::json::parse(&json).expect("chrome trace must be valid JSON");
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        // Instrumented events survive the export (plus metadata rows).
        assert!(events.len() > log.events.len());
        // Epoch spans appear as async begin/end pairs.
        let begins = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("b"))
            .count();
        let ends = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("e"))
            .count();
        assert_eq!(begins, ends);
        assert_eq!(begins, log.count(EventKind::EpochAdvance));
    }

    /// Sampling keeps 1-of-N of the high-frequency kinds only.
    #[test]
    fn sampling_thins_high_frequency_kinds() {
        let cfg = quick_cfg();
        let trace = quick_trace(Workload::HashTable);
        nvtrace::install(TraceConfig::default());
        let _ = run_scheme_stats(Scheme::NvOverlay, &cfg, &trace);
        let full = nvtrace::take().expect("tracer installed");

        nvtrace::install(TraceConfig {
            sample_every: 8,
            ..TraceConfig::default()
        });
        let _ = run_scheme_stats(Scheme::NvOverlay, &cfg, &trace);
        let sampled = nvtrace::take().expect("tracer installed");

        // Low-frequency kinds are never sampled out.
        assert_eq!(
            full.count(EventKind::EpochAdvance),
            sampled.count(EventKind::EpochAdvance)
        );
        assert_eq!(
            full.count(EventKind::OmcFlush),
            sampled.count(EventKind::OmcFlush)
        );
        // High-frequency kinds shrink (if the run produced enough).
        let hf_full = full.count(EventKind::StoreEviction);
        if hf_full >= 8 {
            let hf_sampled = sampled.count(EventKind::StoreEviction);
            assert!(hf_sampled < hf_full);
            assert!(sampled.total_sampled_out() > 0);
        }
    }
}
