//! Schema versioning of the JSON artifacts, checked through
//! `nvbench::json` (the parser CI and downstream tooling use).
//!
//! Both durable JSON documents — chaos reports (`--out` artifacts) and
//! the store manifest — carry a leading `schema` field. The contract:
//! today's writers emit the current version, today's readers accept
//! every version up to it and reject anything newer with a typed
//! error, so a future format bump fails loudly instead of being
//! misparsed.

use nvbench::json;
use nvchaos::report::{ChaosReport, Violation, CHAOS_REPORT_SCHEMA};
use nvstore::{Manifest, StoreError, MANIFEST_SCHEMA};

fn sample_report() -> ChaosReport {
    ChaosReport {
        scheme: "nvoverlay".into(),
        seed: 7,
        sites_requested: 8,
        sites_explored: 6,
        journal_writes: 40,
        run_cycles: 1234,
        category_counts: vec![("omc-metadata".into(), 4), ("master-root".into(), 2)],
        torn_sites: 1,
        dropped_writes: 3,
        flips_injected: 2,
        faults_detected: 2,
        max_recovered_epoch: 5,
        violations: vec![Violation {
            site: 3,
            category: "master-root".into(),
            message: "example \"quoted\" violation".into(),
        }],
    }
}

#[test]
fn chaos_report_schema_round_trips_through_the_json_parser() {
    let text = sample_report().to_json();
    let doc = json::parse(&text).expect("report JSON parses");
    assert_eq!(
        doc.get("schema").and_then(|v| v.as_u64()),
        Some(CHAOS_REPORT_SCHEMA)
    );
    // The schema field leads the document so even a truncated artifact
    // reveals its version.
    assert!(text.trim_start().starts_with("{\n  \"schema\":"));
    // Full round trip: parse back to a report that serializes to the
    // identical bytes.
    let back = ChaosReport::from_json(&text).expect("own output parses");
    assert_eq!(back.to_json(), text);
}

#[test]
fn chaos_reports_from_the_future_are_rejected() {
    let text = sample_report().to_json().replace(
        &format!("\"schema\": {CHAOS_REPORT_SCHEMA},"),
        &format!("\"schema\": {},", CHAOS_REPORT_SCHEMA + 41),
    );
    // The edited document still parses as JSON — rejection is a
    // versioning decision, not a syntax error.
    assert!(json::parse(&text).is_ok());
    let err = ChaosReport::from_json(&text).expect_err("future schema must be rejected");
    assert!(
        err.contains(&format!("schema {}", CHAOS_REPORT_SCHEMA + 41)),
        "error names the offending version: {err}"
    );
}

#[test]
fn manifest_schema_round_trips_through_the_json_parser() {
    let text = Manifest::default().to_json();
    let doc = json::parse(&text).expect("manifest JSON parses");
    assert_eq!(
        doc.get("schema").and_then(|v| v.as_u64()),
        Some(MANIFEST_SCHEMA)
    );
    assert_eq!(Manifest::parse(&text).unwrap(), Manifest::default());
}

#[test]
fn manifests_from_the_future_are_rejected() {
    let text = Manifest::default().to_json().replace(
        &format!("\"schema\": {MANIFEST_SCHEMA},"),
        &format!("\"schema\": {},", MANIFEST_SCHEMA + 1),
    );
    assert!(json::parse(&text).is_ok());
    match Manifest::parse(&text) {
        Err(StoreError::SchemaVersion { found, supported }) => {
            assert_eq!(found, MANIFEST_SCHEMA + 1);
            assert_eq!(supported, MANIFEST_SCHEMA);
        }
        other => panic!("expected SchemaVersion, got {other:?}"),
    }
}
