//! Differential test: the replay fast path must be *statistically
//! invisible*. For every figure scheme × workload pair, a run with
//! `replay_fast_path` disabled (the reference access path) and one with
//! it enabled must produce identical `ExpResult`s, byte-identical
//! `SystemStats`, and byte-identical metrics-tree dumps — and, when the
//! `trace` feature is on, the same structured-event counts.

use nvbench::{default_jobs, gen_traces, run_ordered, run_scheme_stats, EnvScale, Scheme};
use nvsim::SimConfig;
use nvworkloads::Workload;
use std::sync::Arc;

const WORKLOADS: [Workload; 4] = [
    Workload::HashTable,
    Workload::BTree,
    Workload::Art,
    Workload::Kmeans,
];

fn cfg_pair() -> (Arc<SimConfig>, Arc<SimConfig>) {
    let base = EnvScale::Quick.sim_config();
    debug_assert!(base.replay_fast_path, "fast path is the default");
    let slow = SimConfig {
        replay_fast_path: false,
        ..base.clone()
    };
    (Arc::new(base), Arc::new(slow))
}

#[test]
fn fast_path_is_statistically_invisible() {
    let (fast_cfg, slow_cfg) = cfg_pair();
    let params = EnvScale::Quick.suite_params();
    let jobs = default_jobs();
    let traces = gen_traces(&WORKLOADS, &params, jobs);
    let schemes = Scheme::FIGURE;

    // Each (scheme, workload) cell runs both configurations and
    // compares them; the cells fan out over the worker pool.
    let cols = schemes.len();
    run_ordered(WORKLOADS.len() * cols, jobs, |i| {
        let (s, t) = (schemes[i % cols], &traces[i / cols]);
        let w = WORKLOADS[i / cols];
        let (r_fast, stats_fast, reg_fast) = run_scheme_stats(s, &fast_cfg, t);
        let (r_slow, stats_slow, reg_slow) = run_scheme_stats(s, &slow_cfg, t);
        assert_eq!(r_fast, r_slow, "{s} on {w}: ExpResult diverged");
        assert_eq!(stats_fast, stats_slow, "{s} on {w}: SystemStats diverged");
        assert_eq!(
            reg_fast.dump_tree(),
            reg_slow.dump_tree(),
            "{s} on {w}: metrics tree diverged"
        );
    });
}

#[cfg(feature = "trace")]
#[test]
fn fast_path_emits_identical_event_streams() {
    use nvsim::nvtrace::{self, EventKind, TraceConfig};

    // The tracer is thread-local, so both runs happen on this thread.
    let (fast_cfg, slow_cfg) = cfg_pair();
    let params = EnvScale::Quick.suite_params();
    let trace = nvworkloads::generate(Workload::BTree, &params).to_packed();
    for s in [Scheme::NvOverlay, Scheme::SwLogging, Scheme::Picl] {
        nvtrace::install(TraceConfig::default());
        let _ = run_scheme_stats(s, &slow_cfg, &trace);
        let slow_log = nvtrace::take().expect("tracer installed");
        nvtrace::install(TraceConfig::default());
        let _ = run_scheme_stats(s, &fast_cfg, &trace);
        let fast_log = nvtrace::take().expect("tracer installed");
        for kind in EventKind::ALL {
            assert_eq!(
                slow_log.count(kind),
                fast_log.count(kind),
                "{s}: event count for {} diverged",
                kind.name()
            );
        }
        assert_eq!(slow_log.accepted, fast_log.accepted, "{s}: accepted total");
    }
}
