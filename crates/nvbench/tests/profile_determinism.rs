//! Differential tests for `nvprof`: the profiler's structural section
//! must be *run- and worker-count invisible*, and profiling itself must
//! be invisible to the simulation.
//!
//! The profile strictly segregates two kinds of data (see
//! `nvsim::prof`): structural counters (event counts, simulated
//! arrival/aligned clocks, import tallies, straggler diagnosis) derive
//! from the shard plan and the simulation alone, so they are compared
//! byte-for-byte here — across repeated runs and across 1/2/4/8 worker
//! groupings. Wall-clock fields are host time and are deliberately
//! excluded from every identity check; `profile_structural_json` is the
//! boundary that keeps them out.

use nvbench::{
    profile_json, profile_structural_json, run_scheme_sharded, run_scheme_sharded_prof, EnvScale,
    Scheme,
};
use nvworkloads::Workload;

const SHARDS: [usize; 4] = [1, 2, 4, 8];

#[test]
fn profile_structural_section_is_run_and_worker_count_invisible() {
    let cfg = std::sync::Arc::new(EnvScale::Quick.sim_config());
    let params = EnvScale::Quick.suite_params();
    let trace = nvworkloads::generate(Workload::BTree, &params).to_packed();

    let base_run = run_scheme_sharded_prof(Scheme::NvOverlay, &cfg, &trace, SHARDS[0], true);
    let base = profile_structural_json(base_run.profile.as_ref().expect("sharded scheme profiles"));
    // Same run, repeated: byte-identical.
    let again = run_scheme_sharded_prof(Scheme::NvOverlay, &cfg, &trace, SHARDS[0], true);
    assert_eq!(
        base,
        profile_structural_json(again.profile.as_ref().expect("sharded scheme profiles")),
        "structural profile diverged between two identical runs"
    );
    // Every worker grouping: byte-identical to the 1-worker reference.
    for &n in &SHARDS[1..] {
        let run = run_scheme_sharded_prof(Scheme::NvOverlay, &cfg, &trace, n, true);
        assert!(run.sharded);
        assert_eq!(
            base,
            profile_structural_json(run.profile.as_ref().expect("sharded scheme profiles")),
            "structural profile diverged at {n} workers"
        );
    }
}

#[test]
fn profiling_is_invisible_to_the_simulation() {
    let cfg = std::sync::Arc::new(EnvScale::Quick.sim_config());
    let params = EnvScale::Quick.suite_params();
    let trace = nvworkloads::generate(Workload::HashTable, &params).to_packed();

    let plain = run_scheme_sharded(Scheme::NvOverlay, &cfg, &trace, 4);
    let profiled = run_scheme_sharded_prof(Scheme::NvOverlay, &cfg, &trace, 4, true);
    assert_eq!(plain.result, profiled.result, "profiling changed the run");
    assert_eq!(plain.stats, profiled.stats, "profiling changed the stats");
    assert_eq!(
        plain.metrics.dump_tree(),
        profiled.metrics.dump_tree(),
        "profiling changed the metrics tree"
    );
    // And the unprofiled path carries no profile at all.
    let none = run_scheme_sharded_prof(Scheme::NvOverlay, &cfg, &trace, 4, false);
    assert!(
        none.profile.is_none(),
        "unprofiled run must not allocate a profile"
    );

    // Soft attribution sanity (the hard >= 95% gate lives in
    // `nvo perf --profile`, where wall-clock conditions are controlled):
    // with contiguous worker laps the buckets must explain most of the
    // accountable wall-time even on a noisy test host.
    let p = profiled.profile.expect("sharded scheme profiles");
    assert!(
        p.attributed_fraction() > 0.80,
        "attribution collapsed: {:.3}",
        p.attributed_fraction()
    );
}

#[test]
fn profile_json_round_trips_and_segregates_wall_clock() {
    let cfg = std::sync::Arc::new(EnvScale::Quick.sim_config());
    let params = EnvScale::Quick.suite_params();
    let trace = nvworkloads::generate(Workload::Kmeans, &params).to_packed();
    let run = run_scheme_sharded_prof(Scheme::NvOverlay, &cfg, &trace, 2, true);
    let p = run.profile.expect("sharded scheme profiles");

    // End-to-end: the emitted document must parse with the crate's own
    // JSON reader and carry both sections.
    let json = profile_json(&p, &[("scheme", "NVOverlay"), ("workload", "Kmeans")]);
    let doc = nvbench::json::parse(&json).expect("nvo profile JSON must parse");
    assert_eq!(doc.get("schema").unwrap().as_str(), Some("nvo-profile-v1"));
    assert_eq!(doc.get("workload").unwrap().as_str(), Some("Kmeans"));
    let s = doc.get("structural").unwrap();
    assert_eq!(
        s.get("islands").unwrap().as_u64(),
        Some(p.islands as u64),
        "structural island count survives the round trip"
    );
    assert_eq!(
        s.get("stragglers").unwrap().as_array().unwrap().len(),
        p.windows,
        "one straggler verdict per window"
    );
    let w = doc.get("wall").unwrap();
    assert!(
        w.get("buckets_us").is_some(),
        "wall section carries buckets"
    );

    // The standalone structural export is the identity-checkable
    // artifact: no wall-clock or worker fields may leak into it.
    let structural = profile_structural_json(&p);
    let sdoc = nvbench::json::parse(&structural).expect("structural JSON must parse");
    assert_eq!(
        sdoc.get("schema").unwrap().as_str(),
        Some("nvo-profile-structural-v1")
    );
    for leak in ["_us", "_ns", "worker"] {
        assert!(
            !structural.contains(leak),
            "structural export leaked a wall-clock/worker field: {leak}"
        );
    }
}
