//! Regression test: the parallel experiment engine must be
//! observationally identical to the serial driver — same `ExpResult`
//! vectors, field for field, whatever the worker count.

use nvbench::{gen_traces, run_matrix, run_ordered, run_scheme, ExpResult, Scheme};
use nvsim::SimConfig;
use nvworkloads::{SuiteParams, Workload};

fn small_cfg() -> SimConfig {
    SimConfig::builder()
        .cores(8, 2)
        .l1(4 * 1024, 4, 4)
        .l2(32 * 1024, 8, 8)
        .llc(512 * 1024, 8, 30, 2)
        .epoch_size_stores(1_000)
        .build()
        .unwrap()
}

fn small_params() -> SuiteParams {
    SuiteParams {
        threads: 8,
        ops: 1_200,
        warmup_ops: 2_000,
        seed: 0xD15C0,
    }
}

#[test]
fn parallel_matrix_equals_serial_loop() {
    let cfg = std::sync::Arc::new(small_cfg());
    let params = small_params();
    let workloads = [Workload::HashTable, Workload::BTree, Workload::Kmeans];
    let schemes = [
        Scheme::Ideal,
        Scheme::Picl,
        Scheme::NvOverlay,
        Scheme::SwLogging,
    ];

    // Ground truth: the plain serial double loop, traces generated inline.
    let mut expect: Vec<Vec<ExpResult>> = Vec::new();
    for w in workloads {
        let trace = nvworkloads::generate(w, &params).to_packed();
        expect.push(
            schemes
                .iter()
                .map(|&s| run_scheme(s, &cfg, &trace))
                .collect(),
        );
    }

    // The engine at 1 worker (serial fallback path) and at 4 workers
    // (scoped-thread work queue) must both reproduce it exactly.
    for jobs in [1usize, 4] {
        let traces = gen_traces(&workloads, &params, jobs);
        let got = run_matrix(&schemes, &cfg, &traces, jobs);
        assert_eq!(got, expect, "jobs={jobs} diverged from the serial driver");
    }
}

#[test]
fn trace_sharing_is_observationally_pure() {
    // Running the same Arc<PackedTrace> through a scheme twice (as
    // parallel sweeps do) must give the same result both times — replay
    // takes the trace immutably.
    let cfg = std::sync::Arc::new(small_cfg());
    let traces = gen_traces(&[Workload::Art], &small_params(), 2);
    let a = run_scheme(Scheme::NvOverlay, &cfg, &traces[0]);
    let b = run_scheme(Scheme::NvOverlay, &cfg, &traces[0]);
    assert_eq!(a, b);
}

#[test]
fn run_ordered_is_order_stable_under_contention() {
    // Tasks with deliberately skewed durations still land in submission
    // order.
    let out = run_ordered(64, 8, |i| {
        if i % 7 == 0 {
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        i * i
    });
    assert_eq!(out, (0..64).map(|i| i * i).collect::<Vec<_>>());
}
