//! Shared plumbing for the baseline schemes.

use nvsim::addr::CoreId;
use nvsim::clock::Cycle;
use nvsim::config::SimConfig;
use nvsim::hierarchy::{Hierarchy, HierarchyEvent};
use nvsim::nvm::Nvm;
use nvsim::stats::SystemStats;
use std::sync::Arc;

/// The parts every baseline owns: the shared hierarchy, an NVM device,
/// the stats block and a per-core "resume time" used to model global
/// quiesce stalls (epoch flushes that halt all cores).
pub struct BaselineCore {
    /// The non-versioned MESI hierarchy.
    pub hier: Hierarchy,
    /// The scheme's NVM device.
    pub nvm: Nvm,
    /// Statistics (synced from devices at `finish`).
    pub stats: SystemStats,
    /// Per-core earliest resume time after a global stall.
    pub core_resume: Vec<Cycle>,
    /// Recycled scratch copy of the hierarchy's per-access events —
    /// schemes `mem::take` it around their handler loop so the hot path
    /// never allocates (see [`BaselineCore::take_event_scratch`]).
    pub ev_scratch: Vec<HierarchyEvent>,
}

impl BaselineCore {
    /// Builds the shared parts from a validated configuration.
    ///
    /// # Panics
    /// Panics if `cfg` does not validate.
    pub fn new(cfg: &SimConfig) -> Self {
        Self::new_shared(Arc::new(cfg.clone()))
    }

    /// Builds the shared parts over a shared configuration handle.
    ///
    /// # Panics
    /// Panics if `cfg` does not validate.
    pub fn new_shared(cfg: Arc<SimConfig>) -> Self {
        let nvm = Nvm::new(
            cfg.nvm_banks,
            cfg.nvm_write_latency,
            cfg.nvm_read_latency,
            cfg.nvm_queue_depth,
            cfg.bandwidth_bucket_cycles,
        );
        Self {
            nvm,
            stats: SystemStats::new(cfg.bandwidth_bucket_cycles),
            core_resume: vec![0; cfg.cores as usize],
            ev_scratch: Vec::new(),
            hier: Hierarchy::new_shared(cfg),
        }
    }

    /// Takes the recycled event buffer, refilled with the hierarchy's
    /// latest events. The caller iterates it (the borrow on `self` is
    /// released) and MUST hand it back via
    /// [`BaselineCore::return_event_scratch`] so the next access reuses
    /// the capacity instead of allocating.
    pub fn take_event_scratch(&mut self) -> Vec<HierarchyEvent> {
        let mut buf = std::mem::take(&mut self.ev_scratch);
        buf.clear();
        buf.extend_from_slice(self.hier.events());
        buf
    }

    /// Returns the scratch buffer taken by
    /// [`BaselineCore::take_event_scratch`].
    pub fn return_event_scratch(&mut self, buf: Vec<HierarchyEvent>) {
        self.ev_scratch = buf;
    }

    /// Stall this core owes from a previous global quiesce.
    pub fn pending_stall(&mut self, core: CoreId, now: Cycle) -> Cycle {
        let r = self.core_resume[core.index()];
        r.saturating_sub(now)
    }

    /// Halts every core until `t` (global quiesce, e.g. a software epoch
    /// flush or a synchronous mapping-table update).
    pub fn stall_all_until(&mut self, t: Cycle) {
        for r in &mut self.core_resume {
            *r = (*r).max(t);
        }
    }

    /// Installs a cross-island line at its DRAM home during a sharded
    /// replay barrier (delegates to
    /// [`Hierarchy::import_line`]). Baselines share this so every
    /// scheme's `MemorySystem::import_line` behaves identically.
    pub fn import_line(&mut self, line: nvsim::addr::LineAddr, token: nvsim::addr::Token) -> bool {
        self.hier.import_line(line, token)
    }

    /// Batched variant of [`BaselineCore::import_line`] (delegates to
    /// [`Hierarchy::import_lines`]): one pass over the sorted exchange
    /// run, applied deposits mirrored into `golden`.
    pub fn import_lines(
        &mut self,
        entries: &[nvsim::shard::ExchangeEntry],
        island: u16,
        golden: &mut nvsim::fastmap::FastMap<nvsim::addr::LineAddr, nvsim::addr::Token>,
    ) -> u64 {
        self.hier.import_lines(entries, island, golden)
    }

    /// Copies device counters into the stats block.
    pub fn sync_stats(&mut self) {
        self.stats.nvm = self.nvm.stats().clone();
        self.stats.nvm_bandwidth = self.nvm.bandwidth().clone();
        self.stats.access = self.hier.counters().clone();
    }
}

impl std::fmt::Debug for BaselineCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BaselineCore")
            .field("hier", &self.hier)
            .finish()
    }
}

/// Size in bytes of one undo/redo log entry (paper §VII-B: "each log
/// entry takes 72 bytes (64B data + 8B address tag)").
pub const LOG_ENTRY_BYTES: u64 = 72;

/// Size of a cache line's data payload.
pub const DATA_BYTES: u64 = 64;

/// Size of one mapping-table entry write.
pub const TABLE_ENTRY_BYTES: u64 = 8;
