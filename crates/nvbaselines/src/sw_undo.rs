//! Software Undo Logging (paper §VI-B "SW Logging").
//!
//! "Software generates and flushes an undo log entry before the first
//! write. We assume that the software library tracks the write set, and
//! flushes them at the end of an epoch. All NVM writes use barriers."
//!
//! Every first store to a line per epoch pays a *synchronous* 72-byte log
//! write (clwb + sfence ≈ stall until the NVM accepts and completes it);
//! at every epoch boundary the whole write set is flushed line by line
//! behind barriers while all cores stall. This is the 2×–23× slowdown bar
//! of Fig 11 and the ≈2× write amplification of Fig 12.

use crate::common::{BaselineCore, DATA_BYTES, LOG_ENTRY_BYTES};
use nvsim::addr::{Addr, CoreId, LineAddr, Token};
use nvsim::clock::Cycle;
use nvsim::config::SimConfig;
use nvsim::fastmap::FastHashMap;
use nvsim::fault::PersistPayload;
use nvsim::hierarchy::HierarchyEvent;
use nvsim::memsys::{AccessOutcome, MemOp, MemorySystem};
use nvsim::nvtrace::{EventKind, TraceScope, Track};
use nvsim::stats::{EvictReason, NvmWriteKind, SystemStats};

/// The software undo-logging scheme.
pub struct SwUndoLogging {
    core: BaselineCore,
    /// Lines dirtied this epoch (the library's write set).
    write_set: Vec<LineAddr>,
    in_set: FastHashMap<LineAddr, ()>,
    /// Undo log of the current epoch: (line, pre-image) — used for
    /// functional recovery verification.
    undo_log: Vec<(LineAddr, Token)>,
    /// Image as of the last committed epoch (what recovery reproduces).
    committed_image: FastHashMap<LineAddr, Token>,
    epochs_committed: u64,
}

impl SwUndoLogging {
    /// Creates the scheme.
    pub fn new(cfg: &SimConfig) -> Self {
        Self::new_shared(std::sync::Arc::new(cfg.clone()))
    }

    /// Creates the scheme over a shared configuration handle.
    pub fn new_shared(cfg: std::sync::Arc<SimConfig>) -> Self {
        Self {
            core: BaselineCore::new_shared(cfg),
            write_set: Vec::new(),
            in_set: FastHashMap::default(),
            undo_log: Vec::new(),
            committed_image: FastHashMap::default(),
            epochs_committed: 0,
        }
    }

    /// The image recovery would restore (last committed epoch): data in
    /// NVM home locations with the current epoch's writes rolled back via
    /// the undo log.
    pub fn recovered_image(&self) -> &FastHashMap<LineAddr, Token> {
        &self.committed_image
    }

    /// Epochs committed so far.
    pub fn epochs_committed(&self) -> u64 {
        self.epochs_committed
    }

    /// Mutable device access — used by the chaos harness to attach and
    /// harvest the persistence-order fault plane around a run.
    pub fn nvm_mut(&mut self) -> &mut nvsim::nvm::Nvm {
        &mut self.core.nvm
    }

    /// Synchronous epoch-boundary flush: every write-set line is cleaned
    /// (clwb) and written to its NVM home behind a barrier; all cores
    /// stall until the last write is durable.
    fn commit_epoch(&mut self, now: Cycle) -> Cycle {
        // Write-ahead fence: no home-location overwrite may start before
        // every already-accepted undo-log entry is durable, or a crash
        // mid-flush could leave new data with no pre-image to roll back.
        let mut done = self.core.nvm.persist_horizon().max(now);
        let lines = std::mem::take(&mut self.write_set);
        TraceScope::new(Track::Scheme).emit(
            EventKind::EpochFlush,
            now,
            self.epochs_committed,
            lines.len() as u64,
        );
        self.in_set.clear();
        for line in lines {
            let (token, _dirty) = self.core.hier.clwb(line);
            let t = self
                .core
                .nvm
                .write(done, line.raw(), NvmWriteKind::Data, DATA_BYTES);
            self.core.nvm.annotate_last(PersistPayload::DataHome {
                line,
                token,
                epoch: self.epochs_committed,
            });
            self.core.stats.evictions.record(EvictReason::EpochFlush);
            // Barriered: the next flush starts after this one is durable.
            done = t.completion;
            self.committed_image.insert(line, token);
        }
        // Durable commit marker behind a barrier: once it persists, the
        // epoch's flush is complete and its undo log is dead.
        let t = self.core.nvm.write_fenced(
            done,
            0xC0_0417 ^ self.epochs_committed,
            NvmWriteKind::MapMetadata,
            8,
        );
        self.core.nvm.annotate_last(PersistPayload::EpochCommit {
            epoch: self.epochs_committed,
        });
        done = t.completion;
        self.undo_log.clear();
        self.core.hier.advance_all_epochs();
        self.epochs_committed += 1;
        self.core.stats.epochs_completed += 1;
        self.core.stall_all_until(done);
        done.saturating_sub(now)
    }

    fn handle_events(&mut self, now: Cycle) -> Cycle {
        let mut stall = 0;
        let events = self.core.take_event_scratch();
        for e in events.iter().copied() {
            match e {
                HierarchyEvent::StoreCommitted {
                    line,
                    old_token,
                    first_in_epoch,
                    ..
                } => {
                    if first_in_epoch {
                        // Synchronous undo-log entry before the write.
                        let t = self.core.nvm.write(
                            now,
                            line.raw() ^ 0x5555,
                            NvmWriteKind::Log,
                            LOG_ENTRY_BYTES,
                        );
                        self.core.nvm.annotate_last(PersistPayload::UndoLog {
                            line,
                            prev: old_token,
                            epoch: self.epochs_committed,
                        });
                        self.core.stats.evictions.record(EvictReason::LogWrite);
                        TraceScope::new(Track::Scheme).emit(
                            EventKind::LogWrite,
                            now,
                            line.raw(),
                            LOG_ENTRY_BYTES,
                        );
                        stall += t.sync_stall(now);
                        self.undo_log.push((line, old_token));
                    }
                    if self.in_set.insert(line, ()).is_none() {
                        self.write_set.push(line);
                    }
                }
                HierarchyEvent::EpochTrigger { .. } => {
                    stall += self.commit_epoch(now + stall);
                }
                // Natural write-backs go to the DRAM working copy only;
                // persistence is the software's explicit job.
                HierarchyEvent::L2Writeback { .. } | HierarchyEvent::LlcWriteback { .. } => {}
            }
        }
        self.core.return_event_scratch(events);
        stall
    }
}

impl MemorySystem for SwUndoLogging {
    fn name(&self) -> &'static str {
        "SW Logging"
    }

    fn access(
        &mut self,
        core: CoreId,
        op: MemOp,
        addr: Addr,
        token: Token,
        now: Cycle,
    ) -> AccessOutcome {
        let quiesce = self.core.pending_stall(core, now);
        let (lat, value) = self.core.hier.access(core, op, addr, token);
        let stall = self.handle_events(now + quiesce + lat);
        let persist_stall = quiesce + stall;
        self.core.stats.persist_stall_cycles += persist_stall;
        AccessOutcome {
            latency: lat + persist_stall,
            persist_stall,
            value,
        }
    }

    fn epoch_mark(&mut self, core: CoreId, now: Cycle) -> Cycle {
        let _ = core;
        let stall = self.commit_epoch(now);
        self.core.stats.persist_stall_cycles += stall;
        stall
    }

    fn import_line(&mut self, line: LineAddr, token: Token) -> bool {
        self.core.import_line(line, token)
    }

    fn import_lines(
        &mut self,
        entries: &[nvsim::shard::ExchangeEntry],
        island: u16,
        golden: &mut nvsim::fastmap::FastMap<LineAddr, Token>,
    ) -> u64 {
        self.core.import_lines(entries, island, golden)
    }

    fn finish(&mut self, now: Cycle) -> Cycle {
        let end = self.commit_epoch(now);
        let _ = self.core.hier.drain_dirty();
        self.core.sync_stats();
        now + end
    }

    fn stats(&self) -> &SystemStats {
        &self.core.stats
    }
}

impl std::fmt::Debug for SwUndoLogging {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SwUndoLogging")
            .field("write_set", &self.write_set.len())
            .field("epochs_committed", &self.epochs_committed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvsim::addr::ThreadId;
    use nvsim::memsys::Runner;
    use nvsim::trace::TraceBuilder;

    fn cfg(epoch: u64) -> SimConfig {
        SimConfig::builder()
            .cores(4, 2)
            .l1(1024, 2, 4)
            .l2(4096, 4, 8)
            .llc(16 * 1024, 4, 30, 2)
            .epoch_size_stores(epoch)
            .build()
            .unwrap()
    }

    #[test]
    fn logs_once_per_line_per_epoch_and_flushes_data() {
        let mut sys = SwUndoLogging::new(&cfg(1_000_000));
        let mut tb = TraceBuilder::new(4);
        // 10 lines, 3 stores each.
        for r in 0..3u64 {
            for i in 0..10u64 {
                let _ = r;
                tb.store(ThreadId(0), Addr::new(i * 64));
            }
        }
        let trace = tb.build();
        let report = Runner::new().run(&mut sys, &trace);
        let s = sys.stats();
        assert_eq!(s.nvm.writes(NvmWriteKind::Log), 10, "one log per line");
        assert_eq!(s.nvm.writes(NvmWriteKind::Data), 10, "final flush");
        assert!(report.stall_cycles > 0, "barriers stall the core");
        // Recovery equals the golden image after the final commit.
        for (l, t) in &report.golden_image {
            assert_eq!(sys.recovered_image().get(l), Some(t));
        }
    }

    #[test]
    fn epoch_boundaries_restart_logging() {
        let mut sys = SwUndoLogging::new(&cfg(5));
        let mut tb = TraceBuilder::new(4);
        for i in 0..20u64 {
            tb.store(ThreadId(0), Addr::new((i % 2) * 64));
        }
        let trace = tb.build();
        let _ = Runner::new().run(&mut sys, &trace);
        // 20 stores over 2 lines, epoch every 5 stores → 4 epochs, each
        // re-logging both lines (2 logs/epoch).
        assert!(sys.epochs_committed() >= 4);
        assert!(sys.stats().nvm.writes(NvmWriteKind::Log) >= 8);
    }

    #[test]
    fn write_amplification_is_roughly_double() {
        let mut sys = SwUndoLogging::new(&cfg(50));
        let mut tb = TraceBuilder::new(4);
        for i in 0..1000u64 {
            tb.store(ThreadId((i % 4) as u16), Addr::new((i % 100) * 64));
        }
        let trace = tb.build();
        let _ = Runner::new().run(&mut sys, &trace);
        let s = sys.stats();
        let log = s.nvm.bytes(NvmWriteKind::Log) as f64;
        let data = s.nvm.bytes(NvmWriteKind::Data) as f64;
        let amp = (log + data) / data;
        assert!(
            amp > 1.5 && amp < 2.5,
            "undo logging doubles the write volume, got {amp:.2}"
        );
    }
}
