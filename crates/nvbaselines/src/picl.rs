//! PiCL and PiCL-L2 (paper §VI-B).
//!
//! PiCL is hardware undo logging: a background log entry (72 B) captures
//! each line's pre-image on its first write per epoch, dirty data is
//! written to its NVM home when it leaves the chip, and an epoch-boundary
//! tag walk (PiCL's ACS) evicts the previous epoch's dirty lines. All of
//! it is background work — PiCL's Fig 11 bars sit at ≈1.0 — but the log
//! doubles the written bytes (Fig 12's 1.4×–1.9×) and the walks burst at
//! epoch boundaries (Fig 17).
//!
//! PiCL proper assumes an *inclusive monolithic* LLC to buffer dirty data
//! on-chip; **PiCL-L2** is the paper's hypothetical variant for modern
//! non-inclusive-LLC parts, with the persistence boundary at the small
//! per-VD L2s: every dirty L2 eviction writes NVM, and version tags are
//! lost below the L2 so bouncing lines are re-logged — the source of its
//! extra slowdown and 1.8×–2.3× write amplification.

use crate::common::{BaselineCore, DATA_BYTES, LOG_ENTRY_BYTES};
use nvsim::addr::{Addr, CoreId, LineAddr, Token};
use nvsim::clock::Cycle;
use nvsim::config::SimConfig;
use nvsim::fastmap::{FastHashMap, FastHashSet};
use nvsim::hierarchy::{EpochId, HierarchyEvent};
use nvsim::memsys::{AccessOutcome, MemOp, MemorySystem};
use nvsim::nvtrace::{EventKind, TraceScope, Track};
use nvsim::stats::{EvictReason, NvmWriteKind, SystemStats};

/// Where PiCL's version tracking and tag walks live.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PiclLevel {
    /// The original design: inclusive LLC buffering (paper's "PiCL").
    Llc,
    /// The hypothetical L2-level variant (paper's "PiCL-L2").
    L2,
}

/// The PiCL hardware undo-logging scheme.
pub struct Picl {
    core: BaselineCore,
    level: PiclLevel,
    walker_enabled: bool,
    /// PiCL-L2 only: lines currently resident in an L2 whose pre-image has
    /// been logged this epoch (tags are lost when a line leaves the L2,
    /// forcing a conservative re-log on return).
    logged_resident: FastHashSet<LineAddr>,
    /// Undo log of not-yet-committed epochs: (epoch, line, pre-image).
    undo: Vec<(EpochId, LineAddr, Token)>,
    /// NVM home image (data writes land here).
    nvm_image: FastHashMap<LineAddr, Token>,
    /// Last epoch whose data is fully on NVM.
    committed_epoch: EpochId,
    walk_writes: u64,
}

impl Picl {
    /// Creates PiCL at the given tracking level.
    pub fn new(cfg: &SimConfig, level: PiclLevel) -> Self {
        Self::with_walker(cfg, level, true)
    }

    /// Creates PiCL over a shared configuration handle.
    pub fn new_shared(cfg: std::sync::Arc<SimConfig>, level: PiclLevel) -> Self {
        Self::with_walker_shared(cfg, level, true)
    }

    /// Creates PiCL with the tag walker optionally disabled (the Fig 15b
    /// ablation — without its walker PiCL can only persist data through
    /// natural evictions).
    pub fn with_walker(cfg: &SimConfig, level: PiclLevel, walker_enabled: bool) -> Self {
        Self::with_walker_shared(std::sync::Arc::new(cfg.clone()), level, walker_enabled)
    }

    /// [`Picl::with_walker`] over a shared configuration handle.
    pub fn with_walker_shared(
        cfg: std::sync::Arc<SimConfig>,
        level: PiclLevel,
        walker_enabled: bool,
    ) -> Self {
        Self {
            core: BaselineCore::new_shared(cfg),
            level,
            walker_enabled,
            logged_resident: FastHashSet::default(),
            undo: Vec::new(),
            nvm_image: FastHashMap::default(),
            committed_epoch: 0,
            walk_writes: 0,
        }
    }

    /// The underlying hierarchy (inspection/debugging).
    pub fn hierarchy(&self) -> &nvsim::hierarchy::Hierarchy {
        &self.core.hier
    }

    /// Data writes issued by the tag walker so far (Fig 15).
    pub fn walk_writes(&self) -> u64 {
        self.walk_writes
    }

    /// Last fully committed epoch.
    pub fn committed_epoch(&self) -> EpochId {
        self.committed_epoch
    }

    /// The image crash recovery would produce: NVM home data with the
    /// undo log of uncommitted epochs applied in reverse.
    pub fn recovered_image(&self) -> FastHashMap<LineAddr, Token> {
        let mut img = self.nvm_image.clone();
        for (epoch, line, old) in self.undo.iter().rev() {
            if *epoch > self.committed_epoch {
                if *old == 0 {
                    img.remove(line);
                } else {
                    img.insert(*line, *old);
                }
            }
        }
        img
    }

    fn write_home(
        &mut self,
        now: Cycle,
        line: LineAddr,
        token: Token,
        reason: EvictReason,
    ) -> Cycle {
        let t = self
            .core
            .nvm
            .write(now, line.raw(), NvmWriteKind::Data, DATA_BYTES);
        self.core.stats.evictions.record(reason);
        self.nvm_image.insert(line, token);
        t.backpressure_stall(now)
    }

    fn log_pre_image(&mut self, now: Cycle, line: LineAddr, old: Token, epoch: EpochId) -> Cycle {
        let t = self
            .core
            .nvm
            .write(now, line.raw() ^ 0x7777, NvmWriteKind::Log, LOG_ENTRY_BYTES);
        self.core.stats.evictions.record(EvictReason::LogWrite);
        TraceScope::new(Track::Scheme).emit(EventKind::LogWrite, now, line.raw(), LOG_ENTRY_BYTES);
        self.undo.push((epoch, line, old));
        t.backpressure_stall(now)
    }

    /// Epoch-boundary pipeline: advance the global epoch, then tag-walk
    /// the previous epoch's dirty lines to NVM (background).
    fn commit_epoch(&mut self, now: Cycle) {
        let ending = self.core.hier.epoch(nvsim::addr::VdId(0));
        self.core.hier.advance_all_epochs();
        self.core.stats.epochs_completed += 1;
        self.logged_resident.clear();

        if !self.walker_enabled {
            // Ablation: no walk; the epoch's data persists only through
            // natural evictions (recovery fidelity is not maintained).
            return;
        }
        // Tag walk: write back dirty lines of epochs <= ending.
        let walker = TraceScope::new(Track::Scheme);
        walker.emit(EventKind::TagWalkStart, now, ending, 0);
        let walk_writes_before = self.walk_writes;
        match self.level {
            PiclLevel::Llc => {
                // Inclusive-LLC walk: covers the LLC and (since our
                // substrate LLC is non-inclusive) the L2s it would have
                // contained.
                let dirty = self.core.hier.dirty_llc_lines(|_, oid| oid <= ending);
                for d in dirty {
                    self.core.hier.clean_llc_line(d.line);
                    let _ = self.write_home(now, d.line, d.token, EvictReason::TagWalk);
                    self.walk_writes += 1;
                }
                for vd in 0..self.core.hier.config().vd_count() {
                    let vd = nvsim::addr::VdId(vd);
                    let dirty = self.core.hier.dirty_l2_lines(vd, |_, oid| oid <= ending);
                    for d in dirty {
                        self.core.hier.clean_l2_line(vd, d.line);
                        let _ = self.write_home(now, d.line, d.token, EvictReason::TagWalk);
                        self.walk_writes += 1;
                    }
                }
            }
            PiclLevel::L2 => {
                for vd in 0..self.core.hier.config().vd_count() {
                    let vd = nvsim::addr::VdId(vd);
                    let dirty = self.core.hier.dirty_l2_lines(vd, |_, oid| oid <= ending);
                    for d in dirty {
                        self.core.hier.clean_l2_line(vd, d.line);
                        let _ = self.write_home(now, d.line, d.token, EvictReason::TagWalk);
                        self.walk_writes += 1;
                    }
                }
            }
        }
        walker.emit(
            EventKind::TagWalkEnd,
            now,
            ending,
            self.walk_writes - walk_writes_before,
        );
        // Everything of `ending` is now home: the epoch commits and its
        // undo entries can be dropped.
        self.committed_epoch = ending;
        self.undo.retain(|(e, _, _)| *e > ending);
    }

    fn handle_events(&mut self, now: Cycle) -> Cycle {
        let mut stall = 0;
        let events = self.core.take_event_scratch();
        for e in events.iter().copied() {
            match e {
                HierarchyEvent::StoreCommitted {
                    line,
                    old_token,
                    new_oid,
                    first_in_epoch,
                    ..
                } => {
                    let must_log = match self.level {
                        PiclLevel::Llc => first_in_epoch,
                        // Tags are lost below the L2: re-log whenever the
                        // line is not a known-logged resident.
                        PiclLevel::L2 => !self.logged_resident.contains(&line),
                    };
                    if must_log {
                        // Background hardware logging: only NVM queue
                        // backpressure is visible to the core.
                        stall = stall.max(self.log_pre_image(now, line, old_token, new_oid));
                        if self.level == PiclLevel::L2 {
                            self.logged_resident.insert(line);
                        }
                    }
                }
                HierarchyEvent::EpochTrigger { .. } => {
                    self.commit_epoch(now);
                }
                HierarchyEvent::L2Writeback {
                    line,
                    token,
                    reason,
                    ..
                } => {
                    if self.level == PiclLevel::L2 {
                        // Persistence boundary at the L2: the line's data
                        // must be home before the tag is lost.
                        stall = stall.max(self.write_home(now, line, token, reason));
                        self.logged_resident.remove(&line);
                    }
                }
                HierarchyEvent::LlcWriteback {
                    line,
                    token,
                    reason,
                    ..
                } => {
                    if self.level == PiclLevel::Llc {
                        stall = stall.max(self.write_home(now, line, token, reason));
                    }
                }
            }
        }
        self.core.return_event_scratch(events);
        stall
    }
}

impl MemorySystem for Picl {
    fn name(&self) -> &'static str {
        match self.level {
            PiclLevel::Llc => "PiCL",
            PiclLevel::L2 => "PiCL-L2",
        }
    }

    fn access(
        &mut self,
        core: CoreId,
        op: MemOp,
        addr: Addr,
        token: Token,
        now: Cycle,
    ) -> AccessOutcome {
        let (lat, value) = self.core.hier.access(core, op, addr, token);
        let stall = self.handle_events(now + lat);
        self.core.stats.persist_stall_cycles += stall;
        AccessOutcome {
            latency: lat + stall,
            persist_stall: stall,
            value,
        }
    }

    fn epoch_mark(&mut self, _core: CoreId, now: Cycle) -> Cycle {
        self.commit_epoch(now);
        0
    }

    fn import_line(&mut self, line: LineAddr, token: Token) -> bool {
        self.core.import_line(line, token)
    }

    fn import_lines(
        &mut self,
        entries: &[nvsim::shard::ExchangeEntry],
        island: u16,
        golden: &mut nvsim::fastmap::FastMap<LineAddr, Token>,
    ) -> u64 {
        self.core.import_lines(entries, island, golden)
    }

    fn finish(&mut self, now: Cycle) -> Cycle {
        self.commit_epoch(now);
        // Drain any remaining dirty data (from the epoch just opened).
        let rest = self.core.hier.drain_dirty();
        for d in rest {
            let _ = self.write_home(now, d.line, d.token, EvictReason::Drain);
        }
        self.commit_epoch(now);
        self.core.sync_stats();
        self.core.nvm.persist_horizon().max(now)
    }

    fn stats(&self) -> &SystemStats {
        &self.core.stats
    }
}

impl std::fmt::Debug for Picl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Picl")
            .field("level", &self.level)
            .field("committed_epoch", &self.committed_epoch)
            .field("walk_writes", &self.walk_writes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvsim::addr::ThreadId;
    use nvsim::memsys::Runner;
    use nvsim::trace::TraceBuilder;

    fn cfg(epoch: u64) -> SimConfig {
        SimConfig::builder()
            .cores(4, 2)
            .l1(1024, 2, 4)
            .l2(4096, 4, 8)
            .llc(16 * 1024, 4, 30, 2)
            .epoch_size_stores(epoch)
            .build()
            .unwrap()
    }

    fn mk_trace(n: u64, lines: u64) -> nvsim::trace::Trace {
        let mut tb = TraceBuilder::new(4);
        for i in 0..n {
            tb.store(ThreadId((i % 4) as u16), Addr::new((i % lines) * 64));
        }
        tb.build()
    }

    #[test]
    fn logs_and_data_both_reach_nvm() {
        let mut sys = Picl::new(&cfg(1_000_000), PiclLevel::Llc);
        let trace = mk_trace(30, 10);
        let report = Runner::new().run(&mut sys, &trace);
        let s = sys.stats();
        assert_eq!(
            s.nvm.writes(NvmWriteKind::Log),
            10,
            "one log per line/epoch"
        );
        assert_eq!(
            s.nvm.writes(NvmWriteKind::Data),
            10,
            "walk writes each line"
        );
        for (l, t) in &report.golden_image {
            assert_eq!(sys.recovered_image().get(l), Some(t));
        }
    }

    #[test]
    fn recovery_rolls_back_uncommitted_epochs() {
        let cfg_ = cfg(1_000_000);
        let mut sys = Picl::new(&cfg_, PiclLevel::Llc);
        // Epoch 1: A=1. Commit (epoch mark). Epoch 2: A=2 (uncommitted).
        let mut tb = TraceBuilder::new(4);
        let a1 = tb.store(ThreadId(0), Addr::new(0));
        tb.epoch_mark(ThreadId(0));
        let _a2 = tb.store(ThreadId(0), Addr::new(0));
        let trace = tb.build();
        // Run manually without finish to observe mid-run state: use the
        // Runner but check committed_epoch afterwards (finish commits
        // everything, so recovery equals golden here).
        let report = Runner::new().run(&mut sys, &trace);
        let img = sys.recovered_image();
        for (l, t) in &report.golden_image {
            assert_eq!(img.get(l), Some(t));
        }
        let _ = a1;
        assert!(sys.committed_epoch() >= 2);
    }

    #[test]
    fn picl_l2_writes_more_than_picl() {
        // Working set larger than L2 (64 lines) but smaller than LLC:
        // PiCL-L2 pays a data write per L2 eviction; PiCL buffers in LLC.
        let cfg_ = cfg(2_000);
        let trace = mk_trace(20_000, 150);
        let mut llc = Picl::new(&cfg_, PiclLevel::Llc);
        let _ = Runner::new().run(&mut llc, &trace);
        let mut l2 = Picl::new(&cfg_, PiclLevel::L2);
        let _ = Runner::new().run(&mut l2, &trace);
        let b_llc = llc.stats().nvm.total_bytes();
        let b_l2 = l2.stats().nvm.total_bytes();
        assert!(
            b_l2 > b_llc,
            "PiCL-L2 ({b_l2}) must write more than PiCL ({b_llc})"
        );
    }

    #[test]
    fn walks_dominate_evictions_for_picl() {
        let cfg_ = cfg(500);
        let trace = mk_trace(10_000, 60);
        let mut sys = Picl::new(&cfg_, PiclLevel::Llc);
        let _ = Runner::new().run(&mut sys, &trace);
        let walks = sys.stats().evictions.count(EvictReason::TagWalk);
        assert!(walks > 0, "tag walker produced write-backs");
        assert!(sys.walk_writes() == walks);
    }
}
