//! # nvbaselines — the paper's five comparison schemes, plus the ideal
//! no-snapshot system
//!
//! Each scheme implements [`nvsim::memsys::MemorySystem`] on top of the
//! shared non-versioned MESI hierarchy ([`nvsim::hierarchy::Hierarchy`])
//! and models the persistence behaviour the paper ascribes to it (§VI-B):
//!
//! | Scheme | Module | Mechanism |
//! |---|---|---|
//! | Ideal (no snapshotting) | [`ideal`] | normalization baseline of Fig 11 |
//! | SW Undo Logging | [`sw_undo`] | synchronous undo log before first write; barriered write-set flush at epoch end |
//! | SW Shadow Paging | [`sw_shadow`] | barriered write-set flush to shadow locations + synchronous persistent mapping-table update |
//! | HW Shadow (ThyNVM-like) | [`hw_shadow`] | background data persistence overlapped with execution; synchronous mapping-table update at epoch end |
//! | PiCL | [`picl`] | hardware undo logging, version-tagged inclusive LLC, epoch-boundary tag walks |
//! | PiCL-L2 | [`picl`] (L2 level) | PiCL with the persistence boundary at the (small) L2s |
//!
//! All schemes run identical traces through identical hierarchies, so the
//! cycle and write-amplification comparisons of Figs 11/12 are
//! apples-to-apples.

#![warn(missing_docs)]

pub mod common;
pub mod hw_shadow;
pub mod ideal;
pub mod picl;
pub mod sw_shadow;
pub mod sw_undo;

pub use hw_shadow::HwShadow;
pub use ideal::IdealSystem;
pub use picl::{Picl, PiclLevel};
pub use sw_shadow::SwShadow;
pub use sw_undo::SwUndoLogging;
