//! The ideal NVM system with no snapshotting — the normalization baseline
//! of Fig 11 ("All numbers are normalized to baseline execution without
//! snapshotting").

use crate::common::BaselineCore;
use nvsim::addr::{Addr, CoreId, LineAddr, Token};
use nvsim::clock::Cycle;
use nvsim::config::SimConfig;
use nvsim::memsys::{AccessOutcome, MemOp, MemorySystem};
use nvsim::stats::SystemStats;

/// A system that runs the hierarchy and persists nothing.
#[derive(Debug)]
pub struct IdealSystem {
    core: BaselineCore,
}

impl IdealSystem {
    /// Creates the ideal system.
    pub fn new(cfg: &SimConfig) -> Self {
        Self::new_shared(std::sync::Arc::new(cfg.clone()))
    }

    /// Creates the ideal system over a shared configuration handle.
    pub fn new_shared(cfg: std::sync::Arc<SimConfig>) -> Self {
        Self {
            core: BaselineCore::new_shared(cfg),
        }
    }
}

impl MemorySystem for IdealSystem {
    fn name(&self) -> &'static str {
        "Ideal"
    }

    fn access(
        &mut self,
        core: CoreId,
        op: MemOp,
        addr: Addr,
        token: Token,
        _now: Cycle,
    ) -> AccessOutcome {
        let (latency, value) = self.core.hier.access(core, op, addr, token);
        AccessOutcome {
            latency,
            persist_stall: 0,
            value,
        }
    }

    fn epoch_mark(&mut self, _core: CoreId, _now: Cycle) -> Cycle {
        0
    }

    fn import_line(&mut self, line: LineAddr, token: Token) -> bool {
        self.core.import_line(line, token)
    }

    fn import_lines(
        &mut self,
        entries: &[nvsim::shard::ExchangeEntry],
        island: u16,
        golden: &mut nvsim::fastmap::FastMap<LineAddr, Token>,
    ) -> u64 {
        self.core.import_lines(entries, island, golden)
    }

    fn finish(&mut self, now: Cycle) -> Cycle {
        let _ = self.core.hier.drain_dirty();
        self.core.sync_stats();
        now
    }

    fn stats(&self) -> &SystemStats {
        &self.core.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvsim::addr::ThreadId;
    use nvsim::memsys::Runner;
    use nvsim::trace::TraceBuilder;

    #[test]
    fn ideal_never_touches_nvm() {
        let cfg = SimConfig::builder()
            .cores(4, 2)
            .l1(1024, 2, 4)
            .l2(4096, 4, 8)
            .llc(16 * 1024, 4, 30, 2)
            .epoch_size_stores(10)
            .build()
            .unwrap();
        let mut sys = IdealSystem::new(&cfg);
        let mut tb = TraceBuilder::new(4);
        for i in 0..500u64 {
            tb.store(ThreadId((i % 4) as u16), Addr::new((i % 64) * 64));
        }
        let trace = tb.build();
        let report = Runner::new().run(&mut sys, &trace);
        assert_eq!(sys.stats().nvm.total_bytes(), 0);
        assert_eq!(report.stall_cycles, 0);
    }
}
