//! Software Shadow Paging (paper §VI-B "SW Shadow").
//!
//! "Software tracks the write set and flushes dirty lines back at the end
//! of each epoch. Software also maintains a persistent mapping table,
//! which is updated at the end of an epoch. All NVM writes use barriers."
//!
//! Data is written once (to a shadow location), so there is no log write
//! amplification — but every epoch boundary synchronously flushes the
//! write set *and* the mapping-table updates behind barriers, stalling
//! all cores (the Fig 11 "SW Shadow" bar, slightly better than SW
//! Logging).

use crate::common::{BaselineCore, DATA_BYTES, TABLE_ENTRY_BYTES};
use nvoverlay::mnm::{NvmLoc, RadixTable};
use nvsim::addr::{Addr, CoreId, LineAddr, Token};
use nvsim::clock::Cycle;
use nvsim::config::SimConfig;
use nvsim::fastmap::FastHashMap;
use nvsim::hierarchy::HierarchyEvent;
use nvsim::memsys::{AccessOutcome, MemOp, MemorySystem};
use nvsim::stats::{EvictReason, NvmWriteKind, SystemStats};

/// The software shadow-paging scheme.
pub struct SwShadow {
    core: BaselineCore,
    write_set: Vec<LineAddr>,
    in_set: FastHashMap<LineAddr, ()>,
    /// The persistent shadow mapping table (same radix shape as
    /// NVOverlay's master table, which the paper also charges 8-byte
    /// entry writes for).
    table: RadixTable,
    /// Shadow slot allocator: two slots per line, flipped each commit.
    shadow_flip: FastHashMap<LineAddr, bool>,
    committed_image: FastHashMap<LineAddr, Token>,
    epochs_committed: u64,
}

impl SwShadow {
    /// Creates the scheme.
    pub fn new(cfg: &SimConfig) -> Self {
        Self::new_shared(std::sync::Arc::new(cfg.clone()))
    }

    /// Creates the scheme over a shared configuration handle.
    pub fn new_shared(cfg: std::sync::Arc<SimConfig>) -> Self {
        Self {
            core: BaselineCore::new_shared(cfg),
            write_set: Vec::new(),
            in_set: FastHashMap::default(),
            table: RadixTable::new(),
            shadow_flip: FastHashMap::default(),
            committed_image: FastHashMap::default(),
            epochs_committed: 0,
        }
    }

    /// The image recovery would restore.
    pub fn recovered_image(&self) -> &FastHashMap<LineAddr, Token> {
        &self.committed_image
    }

    /// Epochs committed so far.
    pub fn epochs_committed(&self) -> u64 {
        self.epochs_committed
    }

    fn commit_epoch(&mut self, now: Cycle) -> Cycle {
        let mut done = now;
        let lines = std::mem::take(&mut self.write_set);
        self.in_set.clear();
        // Phase 1: barriered data writes to shadow locations.
        for &line in &lines {
            let (token, _) = self.core.hier.clwb(line);
            let flip = self.shadow_flip.entry(line).or_insert(false);
            *flip = !*flip;
            let shadow_key = line.raw() * 2 + u64::from(*flip);
            let t = self
                .core
                .nvm
                .write(done, shadow_key, NvmWriteKind::Data, DATA_BYTES);
            self.core.stats.evictions.record(EvictReason::EpochFlush);
            done = t.completion;
            self.committed_image.insert(line, token);
        }
        // Phase 2: barriered mapping-table updates (atomic commit).
        for &line in &lines {
            let flip = *self.shadow_flip.get(&line).expect("flipped in phase 1");
            let fx = self.table.insert(
                line,
                NvmLoc {
                    page: (line.raw() / 64) as u32,
                    slot: ((line.raw() % 64) * 2 + u64::from(flip) % 2) as u8 % 64,
                },
            );
            let t = self.core.nvm.write(
                done,
                line.raw() ^ 0xAAAA,
                NvmWriteKind::MapMetadata,
                fx.entry_writes * TABLE_ENTRY_BYTES,
            );
            done = t.completion;
        }
        self.core.hier.advance_all_epochs();
        self.epochs_committed += 1;
        self.core.stats.epochs_completed += 1;
        self.core.stall_all_until(done);
        done.saturating_sub(now)
    }

    fn handle_events(&mut self, now: Cycle) -> Cycle {
        let mut stall = 0;
        let events = self.core.take_event_scratch();
        for e in events.iter().copied() {
            match e {
                HierarchyEvent::StoreCommitted { line, .. } => {
                    if self.in_set.insert(line, ()).is_none() {
                        self.write_set.push(line);
                    }
                }
                HierarchyEvent::EpochTrigger { .. } => {
                    stall += self.commit_epoch(now + stall);
                }
                HierarchyEvent::L2Writeback { .. } | HierarchyEvent::LlcWriteback { .. } => {}
            }
        }
        self.core.return_event_scratch(events);
        stall
    }
}

impl MemorySystem for SwShadow {
    fn name(&self) -> &'static str {
        "SW Shadow"
    }

    fn access(
        &mut self,
        core: CoreId,
        op: MemOp,
        addr: Addr,
        token: Token,
        now: Cycle,
    ) -> AccessOutcome {
        let quiesce = self.core.pending_stall(core, now);
        let (lat, value) = self.core.hier.access(core, op, addr, token);
        let stall = self.handle_events(now + quiesce + lat);
        let persist_stall = quiesce + stall;
        self.core.stats.persist_stall_cycles += persist_stall;
        AccessOutcome {
            latency: lat + persist_stall,
            persist_stall,
            value,
        }
    }

    fn epoch_mark(&mut self, _core: CoreId, now: Cycle) -> Cycle {
        let stall = self.commit_epoch(now);
        self.core.stats.persist_stall_cycles += stall;
        stall
    }

    fn import_line(&mut self, line: LineAddr, token: Token) -> bool {
        self.core.import_line(line, token)
    }

    fn import_lines(
        &mut self,
        entries: &[nvsim::shard::ExchangeEntry],
        island: u16,
        golden: &mut nvsim::fastmap::FastMap<LineAddr, Token>,
    ) -> u64 {
        self.core.import_lines(entries, island, golden)
    }

    fn finish(&mut self, now: Cycle) -> Cycle {
        let end = self.commit_epoch(now);
        let _ = self.core.hier.drain_dirty();
        self.core.sync_stats();
        now + end
    }

    fn stats(&self) -> &SystemStats {
        &self.core.stats
    }
}

impl std::fmt::Debug for SwShadow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SwShadow")
            .field("write_set", &self.write_set.len())
            .field("epochs_committed", &self.epochs_committed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvsim::addr::ThreadId;
    use nvsim::memsys::Runner;
    use nvsim::trace::TraceBuilder;

    fn cfg(epoch: u64) -> SimConfig {
        SimConfig::builder()
            .cores(4, 2)
            .l1(1024, 2, 4)
            .l2(4096, 4, 8)
            .llc(16 * 1024, 4, 30, 2)
            .epoch_size_stores(epoch)
            .build()
            .unwrap()
    }

    #[test]
    fn writes_data_once_plus_table_metadata() {
        let mut sys = SwShadow::new(&cfg(1_000_000));
        let mut tb = TraceBuilder::new(4);
        for r in 0..3u64 {
            for i in 0..10u64 {
                let _ = r;
                tb.store(ThreadId(0), Addr::new(i * 64));
            }
        }
        let trace = tb.build();
        let report = Runner::new().run(&mut sys, &trace);
        let s = sys.stats();
        assert_eq!(s.nvm.writes(NvmWriteKind::Data), 10, "each line once");
        assert_eq!(s.nvm.writes(NvmWriteKind::Log), 0, "no log");
        assert!(s.nvm.bytes(NvmWriteKind::MapMetadata) > 0);
        for (l, t) in &report.golden_image {
            assert_eq!(sys.recovered_image().get(l), Some(t));
        }
    }

    #[test]
    fn shadow_has_less_write_amp_than_logging() {
        let run = |mk: &mut dyn FnMut() -> Box<dyn MemorySystem>| {
            let mut tb = TraceBuilder::new(4);
            for i in 0..1500u64 {
                tb.store(ThreadId((i % 4) as u16), Addr::new((i % 100) * 64));
            }
            let trace = tb.build();
            let mut sys = mk();
            let _ = Runner::new().run(sys.as_mut(), &trace);
            sys.stats().nvm.total_bytes()
        };
        let cfg_ = cfg(100);
        let shadow = run(&mut || Box::new(SwShadow::new(&cfg_)));
        let undo = run(&mut || Box::new(crate::sw_undo::SwUndoLogging::new(&cfg_)));
        assert!(
            shadow < undo,
            "shadow ({shadow}) must write less than undo logging ({undo})"
        );
    }
}
