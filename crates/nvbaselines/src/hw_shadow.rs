//! Hardware Shadow Paging (paper §VI-B "HW Shadow").
//!
//! "We model hardware shadow paging using a three-version, cache line
//! granularity shadow scheme similar to ThyNVM. Hardware can overlap the
//! persistence of the previous epoch with the execution of the current
//! epoch. However, the centralized mapping table is updated
//! synchronously."
//!
//! At an epoch boundary the epoch's dirty lines are cleaned and their
//! data streams to NVM *in the background* (overlapped — only NVM
//! backpressure is visible), while the mapping-table update runs
//! synchronously and stalls every core (the moderate Fig 11 overhead).
//! Because data leaves through the (large) LLC side once per epoch, HW
//! Shadow writes *less* than NVOverlay on L2-thrashing workloads like
//! kmeans (Fig 12).

use crate::common::{BaselineCore, DATA_BYTES, TABLE_ENTRY_BYTES};
use nvoverlay::mnm::{NvmLoc, RadixTable};
use nvsim::addr::{Addr, CoreId, LineAddr, Token};
use nvsim::clock::Cycle;
use nvsim::config::SimConfig;
use nvsim::fastmap::FastHashMap;
use nvsim::hierarchy::HierarchyEvent;
use nvsim::memsys::{AccessOutcome, MemOp, MemorySystem};
use nvsim::stats::{EvictReason, NvmWriteKind, SystemStats};

/// The ThyNVM-like hardware shadow-paging scheme.
pub struct HwShadow {
    core: BaselineCore,
    write_set: Vec<LineAddr>,
    in_set: FastHashMap<LineAddr, ()>,
    table: RadixTable,
    shadow_flip: FastHashMap<LineAddr, bool>,
    committed_image: FastHashMap<LineAddr, Token>,
    epochs_committed: u64,
}

impl HwShadow {
    /// Creates the scheme.
    pub fn new(cfg: &SimConfig) -> Self {
        Self::new_shared(std::sync::Arc::new(cfg.clone()))
    }

    /// Creates the scheme over a shared configuration handle.
    pub fn new_shared(cfg: std::sync::Arc<SimConfig>) -> Self {
        Self {
            core: BaselineCore::new_shared(cfg),
            write_set: Vec::new(),
            in_set: FastHashMap::default(),
            table: RadixTable::new(),
            shadow_flip: FastHashMap::default(),
            committed_image: FastHashMap::default(),
            epochs_committed: 0,
        }
    }

    /// The image recovery would restore.
    pub fn recovered_image(&self) -> &FastHashMap<LineAddr, Token> {
        &self.committed_image
    }

    /// Epochs committed.
    pub fn epochs_committed(&self) -> u64 {
        self.epochs_committed
    }

    fn commit_epoch(&mut self, now: Cycle) -> Cycle {
        let lines = std::mem::take(&mut self.write_set);
        self.in_set.clear();
        // Background data persistence: overlapped with execution; the
        // writes occupy NVM banks but impose no synchronous stall.
        for &line in &lines {
            let (token, _) = self.core.hier.clwb(line);
            let flip = self.shadow_flip.entry(line).or_insert(false);
            *flip = !*flip;
            self.core.nvm.write(
                now,
                line.raw() * 2 + u64::from(*flip),
                NvmWriteKind::Data,
                DATA_BYTES,
            );
            self.core.stats.evictions.record(EvictReason::EpochFlush);
            self.committed_image.insert(line, token);
        }
        // Synchronous, centralized mapping-table update: the next epoch
        // cannot start until the table is consistent (ThyNVM's
        // "non-overlappable mapping table updates", §II-C).
        let mut done = now;
        for &line in &lines {
            let flip = *self.shadow_flip.get(&line).expect("set above");
            let fx = self.table.insert(
                line,
                NvmLoc {
                    page: (line.raw() / 64) as u32,
                    slot: (line.raw() % 64) as u8,
                },
            );
            let _ = flip;
            let t = self.core.nvm.write(
                done,
                line.raw() ^ 0x3333,
                NvmWriteKind::MapMetadata,
                fx.entry_writes * TABLE_ENTRY_BYTES,
            );
            done = t.completion;
        }
        self.core.hier.advance_all_epochs();
        self.epochs_committed += 1;
        self.core.stats.epochs_completed += 1;
        self.core.stall_all_until(done);
        done.saturating_sub(now)
    }

    fn handle_events(&mut self, now: Cycle) -> Cycle {
        let mut stall = 0;
        let events = self.core.take_event_scratch();
        for e in events.iter().copied() {
            match e {
                HierarchyEvent::StoreCommitted { line, .. } => {
                    if self.in_set.insert(line, ()).is_none() {
                        self.write_set.push(line);
                    }
                }
                HierarchyEvent::EpochTrigger { .. } => {
                    stall += self.commit_epoch(now + stall);
                }
                // A dirty line evicted from the LLC mid-epoch must be
                // shadowed immediately (it may not survive until the
                // boundary). Background write.
                HierarchyEvent::LlcWriteback {
                    line,
                    token,
                    reason,
                    ..
                } => {
                    self.core
                        .nvm
                        .write(now, line.raw(), NvmWriteKind::Data, DATA_BYTES);
                    self.core.stats.evictions.record(reason);
                    self.committed_image.insert(line, token);
                    // The line's current value is persistent; drop it from
                    // the pending set so the boundary does not rewrite it
                    // unless it is dirtied again.
                    if self.in_set.remove(&line).is_some() {
                        self.write_set.retain(|l| *l != line);
                    }
                }
                HierarchyEvent::L2Writeback { .. } => {}
            }
        }
        self.core.return_event_scratch(events);
        stall
    }
}

impl MemorySystem for HwShadow {
    fn name(&self) -> &'static str {
        "HW Shadow"
    }

    fn access(
        &mut self,
        core: CoreId,
        op: MemOp,
        addr: Addr,
        token: Token,
        now: Cycle,
    ) -> AccessOutcome {
        let quiesce = self.core.pending_stall(core, now);
        let (lat, value) = self.core.hier.access(core, op, addr, token);
        let stall = self.handle_events(now + quiesce + lat);
        let persist_stall = quiesce + stall;
        self.core.stats.persist_stall_cycles += persist_stall;
        AccessOutcome {
            latency: lat + persist_stall,
            persist_stall,
            value,
        }
    }

    fn epoch_mark(&mut self, _core: CoreId, now: Cycle) -> Cycle {
        let stall = self.commit_epoch(now);
        self.core.stats.persist_stall_cycles += stall;
        stall
    }

    /// ThyNVM-style checkpointing quiesces *every* core at a global
    /// barrier — there is no per-VD machine to carve islands out of, so
    /// the scheme declares itself serial-only and `nvbench` falls back
    /// to the serial replay path.
    fn shardable(&self) -> bool {
        false
    }

    fn finish(&mut self, now: Cycle) -> Cycle {
        let end = self.commit_epoch(now);
        let _ = self.core.hier.drain_dirty();
        self.core.sync_stats();
        (now + end).max(self.core.nvm.persist_horizon())
    }

    fn stats(&self) -> &SystemStats {
        &self.core.stats
    }
}

impl std::fmt::Debug for HwShadow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HwShadow")
            .field("write_set", &self.write_set.len())
            .field("epochs_committed", &self.epochs_committed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvsim::addr::ThreadId;
    use nvsim::memsys::Runner;
    use nvsim::trace::TraceBuilder;

    fn cfg(epoch: u64) -> SimConfig {
        SimConfig::builder()
            .cores(4, 2)
            .l1(1024, 2, 4)
            .l2(4096, 4, 8)
            .llc(16 * 1024, 4, 30, 2)
            .epoch_size_stores(epoch)
            .build()
            .unwrap()
    }

    #[test]
    fn data_written_once_per_epoch_with_metadata() {
        let mut sys = HwShadow::new(&cfg(1_000_000));
        let mut tb = TraceBuilder::new(4);
        for r in 0..5u64 {
            for i in 0..10u64 {
                let _ = r;
                tb.store(ThreadId(0), Addr::new(i * 64));
            }
        }
        let trace = tb.build();
        let report = Runner::new().run(&mut sys, &trace);
        let s = sys.stats();
        assert_eq!(s.nvm.writes(NvmWriteKind::Data), 10);
        assert_eq!(s.nvm.writes(NvmWriteKind::Log), 0);
        for (l, t) in &report.golden_image {
            assert_eq!(sys.recovered_image().get(l), Some(t));
        }
    }

    #[test]
    fn hw_shadow_stalls_less_than_sw_shadow() {
        let cfg_ = cfg(50);
        let mk_trace = || {
            let mut tb = TraceBuilder::new(4);
            for i in 0..2000u64 {
                tb.store(ThreadId((i % 4) as u16), Addr::new((i % 120) * 64));
            }
            tb.build()
        };
        let mut hw = HwShadow::new(&cfg_);
        let rh = Runner::new().run(&mut hw, &mk_trace());
        let mut sw = crate::sw_shadow::SwShadow::new(&cfg_);
        let rs = Runner::new().run(&mut sw, &mk_trace());
        assert!(
            rh.cycles < rs.cycles,
            "overlapped persistence must beat barriers: {} vs {}",
            rh.cycles,
            rs.cycles
        );
    }
}
