//! Differential suite: nvserve answers vs the reference time-travel
//! reader and the nvchaos trace oracle, for every recoverable epoch of
//! four workloads, byte-identical across worker counts.
//!
//! For each workload the test replays a scaled-down trace through the
//! full NVOverlay system, mounts the durable state, and submits one
//! batch per servable epoch covering a stride-sample of the recovered
//! key universe through the real serve engine (shard queues, epoch-table
//! caches, worker threads). Every answer must:
//!
//! 1. equal `Mnm::time_travel(line, epoch)` — the reference reader the
//!    recovery module tests pin against the paper's §V-E semantics;
//! 2. be a token the oracle saw written to that line (no fabrication);
//! 3. advance monotonically in per-line program order across ascending
//!    epochs for single-writer lines;
//! 4. at the recoverable head, equal the §V-E recovered image.
//!
//! The whole report (including cache stats and the answer digest) must
//! serialize byte-identically for 1, 2, 4, and 8 workers.

use nvchaos::TraceOracle;
use nvoverlay::system::NvOverlaySystem;
use nvserve::driver::{BatchPlan, LoadPlan, SessionPlan};
use nvserve::{serve, Mount, ServeConfig};
use nvsim::memsys::Runner;
use nvsim::{LineAddr, SimConfig};
use nvworkloads::{generate, SuiteParams, Workload};

const WORKLOADS: [Workload; 4] = [
    Workload::HashTable,
    Workload::BTree,
    Workload::Art,
    Workload::Kmeans,
];

fn params() -> SuiteParams {
    SuiteParams {
        threads: 8,
        ops: 1_000,
        warmup_ops: 1_500,
        seed: 0xC0FFEE,
    }
}

fn config() -> SimConfig {
    SimConfig::builder()
        .epoch_size_stores(250)
        .build()
        .expect("valid config")
}

/// At most this many sampled keys per batch (stride over the universe).
const SAMPLE_CAP: usize = 300;

fn sample(keys: &[LineAddr]) -> Vec<LineAddr> {
    let stride = keys.len().div_ceil(SAMPLE_CAP).max(1);
    keys.iter().step_by(stride).copied().collect()
}

#[test]
fn serve_matches_time_travel_and_oracle_everywhere() {
    for w in WORKLOADS {
        let trace = generate(w, &params());
        let oracle = TraceOracle::new(&trace);
        let cfg = config();
        let mut sys = NvOverlaySystem::new(&cfg);
        let _ = Runner::new().run(&mut sys, &trace);
        let img = sys.recover().expect("recoverable after a clean run");

        let scfg = ServeConfig {
            cache_cap: 64,
            error_probes: false,
            ..ServeConfig::default()
        };
        let mount = Mount::new(sys.mnm(), scfg.subshards).expect("mountable");
        let servable = mount.dir().servable();
        assert!(
            servable.len() >= 3,
            "{w}: want several servable epochs, got {servable:?}"
        );
        let keys = sample(mount.keys());
        assert!(!keys.is_empty(), "{w}: empty key sample");

        // One session, one batch per servable epoch (ascending), same
        // sampled keys each time — exactly the shape the monotonicity
        // check needs.
        let plan = LoadPlan {
            sessions: vec![SessionPlan {
                id: 0,
                batches: servable
                    .iter()
                    .map(|&e| BatchPlan {
                        epoch: e,
                        keys: keys.clone(),
                    })
                    .collect(),
            }],
            probes: 0,
        };

        let out = serve(&mount, &plan, &scfg);
        assert_eq!(
            out.answers.len(),
            servable.len() * keys.len(),
            "{w}: every query answered"
        );

        // Single-writer lines for the monotonicity check (answer tokens
        // must move forward in program order as the epoch advances).
        let private: std::collections::HashSet<u64> = oracle
            .private_lines()
            .iter()
            .map(|(l, _)| l.raw())
            .collect();
        let mut last_pos: Vec<Option<usize>> = vec![None; keys.len()];

        for (bi, &epoch) in servable.iter().enumerate() {
            for (ki, &line) in keys.iter().enumerate() {
                let got = out.answers[bi * keys.len() + ki];
                // 1. Reference reader.
                let want = sys.mnm().time_travel(line, epoch);
                assert_eq!(
                    got, want,
                    "{w}: line {line:?} @ epoch {epoch} diverged from time_travel"
                );
                if let Some(token) = got {
                    // 2. The oracle saw this exact write.
                    assert!(
                        oracle.written_to(line, token),
                        "{w}: line {line:?} @ epoch {epoch}: token {token} never written"
                    );
                    // 3. Per-line program order advances with the epoch.
                    if private.contains(&line.raw()) {
                        let pos = oracle
                            .writes_to(line)
                            .iter()
                            .position(|&t| t == token)
                            .expect("token is in the line's write sequence");
                        if let Some(prev) = last_pos[ki] {
                            assert!(
                                pos >= prev,
                                "{w}: line {line:?} went backwards ({prev} -> {pos}) \
                                 between epochs"
                            );
                        }
                        last_pos[ki] = Some(pos);
                    }
                }
                // 4. The recoverable head equals the recovered image.
                if epoch == mount.dir().recoverable() {
                    assert_eq!(
                        got,
                        img.read(line),
                        "{w}: line {line:?} at the head diverged from recovery"
                    );
                }
            }
        }
    }
}

#[test]
fn serve_reports_are_byte_identical_across_worker_counts() {
    for w in WORKLOADS {
        let trace = generate(w, &params());
        let cfg = config();
        let mut sys = NvOverlaySystem::new(&cfg);
        let _ = Runner::new().run(&mut sys, &trace);

        let base = ServeConfig {
            sessions: 4,
            batches: 8,
            batch: 16,
            cache_cap: 32,
            ..ServeConfig::default()
        };
        let mount = Mount::new(sys.mnm(), base.subshards).expect("mountable");
        let mut reference: Option<(String, Vec<Option<u64>>)> = None;
        for workers in [1usize, 2, 4, 8] {
            let scfg = ServeConfig {
                workers,
                ..base.clone()
            };
            let plan = nvserve::driver::plan(&mount, &scfg).expect("plan");
            let out = serve(&mount, &plan, &scfg);
            let json = out.report.to_json(w.name(), "NVOverlay");
            match &reference {
                None => reference = Some((json, out.answers)),
                Some((ref_json, ref_answers)) => {
                    assert_eq!(
                        &json, ref_json,
                        "{w}: report changed with {workers} workers"
                    );
                    assert_eq!(
                        &out.answers, ref_answers,
                        "{w}: answers changed with {workers} workers"
                    );
                }
            }
        }
    }
}
