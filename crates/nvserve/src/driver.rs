//! Deterministic multi-session load generation.
//!
//! The driver turns a seed into a full [`LoadPlan`] *before* any worker
//! thread starts: every session's batches, every batch's target epoch,
//! and every query's key are fixed up front. Execution order can then
//! vary freely with the worker count while answers and statistics stay
//! byte-identical — the same discipline `nvsim::shard` uses for sharded
//! replay.
//!
//! Keys are drawn zipfian (default θ = 0.99, the YCSB constant) over the
//! recovered image's key universe, with ranks shuffled once so the hot
//! keys land on different pages (and therefore different serving shards)
//! rather than clustering at the low addresses. Epochs are drawn
//! newest-biased from the servable set — half the batches target the
//! recoverable head, the rest time-travel uniformly — and a fixed cadence
//! of *error probes* requests unservable epochs (0 and `rec+1`) to
//! exercise the typed rejection path end to end.

use crate::server::ServeConfig;
use crate::view::Mount;
use nvsim::rng::Rng64;
use nvsim::LineAddr;

/// Which epochs a load plan may target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochSelect {
    /// Every servable epoch (newest-biased mixture).
    All,
    /// Only the recoverable head.
    Latest,
    /// Servable epochs in `[lo, hi]` (still newest-biased within it).
    Range(u64, u64),
}

impl std::fmt::Display for EpochSelect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EpochSelect::All => write!(f, "all"),
            EpochSelect::Latest => write!(f, "latest"),
            EpochSelect::Range(lo, hi) => write!(f, "{lo}..{hi}"),
        }
    }
}

/// A zipfian sampler over ranks `0..n` (rank 0 hottest).
#[derive(Debug, Clone)]
pub struct Zipf {
    cum: Vec<f64>,
}

impl Zipf {
    /// Builds the cumulative distribution for `n` ranks with skew
    /// `theta` (0 = uniform; 0.99 = YCSB default).
    ///
    /// # Panics
    /// Panics if `n` is zero.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "zipf over an empty universe");
        let mut cum = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for k in 1..=n {
            total += 1.0 / (k as f64).powf(theta);
            cum.push(total);
        }
        for c in &mut cum {
            *c /= total;
        }
        Zipf { cum }
    }

    /// Draws a rank.
    pub fn sample(&self, rng: &mut Rng64) -> usize {
        // 53 uniform mantissa bits → u in [0, 1).
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.cum
            .partition_point(|&c| c <= u)
            .min(self.cum.len() - 1)
    }
}

/// One batch of point-in-time reads a session will submit.
#[derive(Debug, Clone)]
pub struct BatchPlan {
    /// The epoch every key in the batch is read as of (may be an
    /// intentionally unservable probe).
    pub epoch: u64,
    /// The keys, in submission order.
    pub keys: Vec<LineAddr>,
}

/// One client session's scripted batches.
#[derive(Debug, Clone)]
pub struct SessionPlan {
    /// Session ordinal (0-based).
    pub id: usize,
    /// Batches in submission order.
    pub batches: Vec<BatchPlan>,
}

/// The full scripted load: a pure function of `(mount, config)`.
#[derive(Debug, Clone)]
pub struct LoadPlan {
    /// Per-session scripts.
    pub sessions: Vec<SessionPlan>,
    /// Batches that intentionally target unservable epochs.
    pub probes: usize,
}

impl LoadPlan {
    /// Total queries across all batches (including probe batches).
    pub fn queries(&self) -> usize {
        self.sessions
            .iter()
            .flat_map(|s| s.batches.iter())
            .map(|b| b.keys.len())
            .sum()
    }
}

/// Salt for the one-time key-rank shuffle.
const SHUFFLE_SALT: u64 = 0x5348_5546_464C_4531; // "SHUFFLE1"
/// Per-session seed spacing (golden-ratio stride).
const SESSION_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;
/// Every `PROBE_CADENCE`-th batch (by `session + batch` ordinal) is an
/// error probe when probes are enabled.
const PROBE_CADENCE: usize = 13;

/// Scripts the full load for `mount` under `cfg`.
///
/// Returns `None` when the mount has no keys or no servable epoch
/// matches `cfg.epochs` — there is nothing to serve.
pub fn plan(mount: &Mount<'_>, cfg: &ServeConfig) -> Option<LoadPlan> {
    let keys = mount.keys();
    if keys.is_empty() {
        return None;
    }
    let servable: Vec<u64> = match cfg.epochs {
        EpochSelect::All => mount.dir().servable(),
        EpochSelect::Latest => {
            let rec = mount.dir().recoverable();
            mount
                .dir()
                .servable()
                .into_iter()
                .filter(|&e| e == rec)
                .collect()
        }
        EpochSelect::Range(lo, hi) => mount
            .dir()
            .servable()
            .into_iter()
            .filter(|&e| lo <= e && e <= hi)
            .collect(),
    };
    let newest = *servable.last()?;

    // Shuffle ranks once so hot keys spread across pages/shards.
    let mut ranks: Vec<usize> = (0..keys.len()).collect();
    let mut shuffle_rng = Rng64::seed_from_u64(cfg.seed ^ SHUFFLE_SALT);
    for i in (1..ranks.len()).rev() {
        let j = shuffle_rng.gen_range(0u64..(i as u64 + 1)) as usize;
        ranks.swap(i, j);
    }

    let zipf = Zipf::new(keys.len(), cfg.theta);
    let rec = mount.dir().recoverable();
    let mut probes = 0usize;
    let sessions = (0..cfg.sessions.max(1))
        .map(|s| {
            let mut rng =
                Rng64::seed_from_u64(cfg.seed ^ (s as u64 + 1).wrapping_mul(SESSION_STRIDE));
            let batches = (0..cfg.batches.max(1))
                .map(|b| {
                    // Epoch first, then keys, so the rng stream shape is
                    // identical for probe and normal batches.
                    let ordinal = s + b;
                    let uniform_pick = rng.gen_range(0u64..servable.len() as u64) as usize;
                    let go_latest = rng.gen_bool(0.5);
                    let epoch = if cfg.error_probes && ordinal % PROBE_CADENCE == PROBE_CADENCE - 1
                    {
                        probes += 1;
                        if ordinal % (2 * PROBE_CADENCE) == PROBE_CADENCE - 1 {
                            0
                        } else {
                            rec + 1 + (ordinal as u64 % 3)
                        }
                    } else if go_latest {
                        newest
                    } else {
                        servable[uniform_pick]
                    };
                    let keys_drawn = (0..cfg.batch.max(1))
                        .map(|_| keys[ranks[zipf.sample(&mut rng)]])
                        .collect();
                    BatchPlan {
                        epoch,
                        keys: keys_drawn,
                    }
                })
                .collect();
            SessionPlan { id: s, batches }
        })
        .collect();
    Some(LoadPlan { sessions, probes })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_skewed_and_deterministic() {
        let z = Zipf::new(100, 0.99);
        let mut rng = Rng64::seed_from_u64(7);
        let mut counts = [0u64; 100];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // Rank 0 must dominate the tail decisively under θ=0.99.
        assert!(counts[0] > counts[50] * 5, "{counts:?}");
        assert!(counts[0] > 500);
        // Same seed, same stream.
        let mut a = Rng64::seed_from_u64(9);
        let mut b = Rng64::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut a), z.sample(&mut b));
        }
    }

    #[test]
    fn zipf_theta_zero_is_roughly_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = Rng64::seed_from_u64(3);
        let mut counts = [0u64; 10];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn epoch_select_displays_stably() {
        assert_eq!(EpochSelect::All.to_string(), "all");
        assert_eq!(EpochSelect::Latest.to_string(), "latest");
        assert_eq!(EpochSelect::Range(2, 9).to_string(), "2..9");
    }
}
