//! # nvserve — concurrent time-travel query service over recovered snapshots
//!
//! NVOverlay's Multi-snapshot NVM Mapping retains every merged epoch's
//! overlay mapping table (§V-E), so any recoverable snapshot can be read
//! at random. This crate turns that capability into a *service*: mount a
//! finished [`nvoverlay::mnm::Mnm`]'s durable state the way a recovery
//! tool attaches to NVM DIMMs, then answer concurrent batched
//! point-in-time reads — `GET key AS OF epoch E` — for any epoch the
//! typed resolver accepts.
//!
//! The pipeline:
//!
//! 1. [`view::Mount`] runs the full §V-E recovery procedure to validate
//!    the durable state, learns the key universe, and freezes an
//!    [`view::EpochDirectory`] of retained epochs.
//! 2. [`driver::plan`] scripts a deterministic multi-session load —
//!    zipfian keys, newest-biased epochs, scheduled bad-epoch probes —
//!    as a pure function of the seed.
//! 3. [`server::serve`] validates each batch once (typed
//!    [`nvoverlay::QueryError`] rejections), flattens accepted queries
//!    onto `omc_count × subshards` serving shards in canonical order,
//!    and fans the shards across worker threads. Each shard answers its
//!    queue serially through a private [`cache::EpochTableCache`] of
//!    materialized per-epoch mapping tables (deterministic LRU).
//! 4. [`report::ServeReport`] carries only worker-count-independent
//!    values plus an FNV-1a answer digest, so `1 == 2 == 4 == 8` workers
//!    is checkable with `cmp` — wall-clock throughput travels separately
//!    in [`server::ServeOutcome`].
//!
//! Answers are bit-equal to [`nvoverlay::mnm::Mnm::time_travel`] on the
//! same epoch (the differential suite pins this against the trace
//! oracle for every recoverable epoch).
//!
//! ## Example
//!
//! ```
//! use nvoverlay::mnm::{Mnm, OmcConfig};
//! use nvsim::nvm::Nvm;
//! use nvsim::addr::LineAddr;
//! use nvserve::{Mount, ServeConfig, driver, server};
//!
//! // Build three snapshots of four lines, then crash.
//! let mut m = Mnm::new(2, 1, OmcConfig { pool_pages: 16, ..OmcConfig::default() });
//! let mut n = Nvm::new(4, 400, 200, 8, 100_000);
//! for e in 1..=3 {
//!     for l in 0..4u64 {
//!         m.receive_version(&mut n, 0, LineAddr::new(l), 100 * e + l, e);
//!     }
//! }
//! m.finish(&mut n, 0, 3);
//!
//! // Mount and serve a scripted load.
//! let mount = Mount::new(&m, 2).unwrap();
//! let cfg = ServeConfig { sessions: 2, batches: 4, batch: 8, ..ServeConfig::default() };
//! let plan = driver::plan(&mount, &cfg).unwrap();
//! let out = server::serve(&mount, &plan, &cfg);
//! assert_eq!(out.report.answered, out.report.enqueued);
//!
//! // Point-in-time reads resolve through the same typed path.
//! let view = mount.dir().resolve(2).unwrap();
//! assert_eq!(mount.mnm().time_travel(LineAddr::new(1), view.epoch()), Some(201));
//! assert!(mount.dir().resolve(99).is_err());
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod driver;
pub mod report;
pub mod server;
pub mod view;

pub use cache::{CacheStats, EpochTableCache};
pub use driver::{EpochSelect, LoadPlan, Zipf};
pub use report::{ServeReport, ShardReport};
pub use server::{serve, ServeConfig, ServeOutcome};
pub use view::{EpochDirectory, EpochView, Mount, MountError};
