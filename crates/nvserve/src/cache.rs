//! Bounded per-epoch mapping-table cache with deterministic LRU eviction.
//!
//! Each serving shard keeps one [`EpochTableCache`]: a map from epoch
//! number to that shard's materialized slice of the epoch's overlay
//! mapping table. The cache is the serving layer's working set — a
//! fall-through walk touches one table per visited epoch, and under
//! zipfian key skew the newest few epochs absorb nearly all touches, so
//! a small cache yields a high hit rate (the perf gate demands ≥ 90%).
//!
//! Eviction is least-recently-used with a strictly monotonic logical
//! tick, so the eviction sequence is a pure function of the lookup
//! sequence — byte-identical stats across worker counts and runs.

use nvsim::fastmap::FastMap;
use nvsim::{LineAddr, Token};

/// Hit/miss/eviction counters for one cache (mergeable across shards).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from a resident table.
    pub hits: u64,
    /// Lookups that had to materialize the table from the OMC.
    pub misses: u64,
    /// Tables evicted to stay under the capacity bound.
    pub evictions: u64,
    /// Total `(line, token)` entries materialized into cached tables.
    pub lines_materialized: u64,
}

impl CacheStats {
    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.lines_materialized += other.lines_materialized;
    }

    /// Hit fraction over all lookups (1.0 when there were none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct CachedTable {
    lines: FastMap<LineAddr, Token>,
    last_used: u64,
}

/// An LRU cache of materialized per-epoch mapping tables.
pub struct EpochTableCache {
    cap: usize,
    tick: u64,
    tables: FastMap<u64, CachedTable>,
    stats: CacheStats,
}

impl EpochTableCache {
    /// Creates a cache holding at most `cap` epoch tables (clamped to 1).
    pub fn new(cap: usize) -> Self {
        EpochTableCache {
            cap: cap.max(1),
            tick: 0,
            tables: FastMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// The capacity bound.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Tables currently resident.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether no table is resident.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// The counters so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Returns `epoch`'s table, materializing it with `fill` on a miss
    /// and evicting the least-recently-used table when over capacity.
    pub fn table<F>(&mut self, epoch: u64, fill: F) -> &FastMap<LineAddr, Token>
    where
        F: FnOnce() -> FastMap<LineAddr, Token>,
    {
        self.tick += 1;
        if self.tables.contains_key(&epoch) {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
            if self.tables.len() >= self.cap {
                self.evict_lru();
            }
            let lines = fill();
            self.stats.lines_materialized += lines.len() as u64;
            self.tables.insert(
                epoch,
                CachedTable {
                    lines,
                    last_used: 0,
                },
            );
        }
        let t = self.tables.get_mut(&epoch).expect("just ensured resident");
        t.last_used = self.tick;
        &t.lines
    }

    /// Evicts the table with the smallest `last_used` tick (ties — which
    /// cannot occur, as ticks are unique — would break toward the lower
    /// epoch for determinism's sake).
    fn evict_lru(&mut self) {
        let victim = self
            .tables
            .iter()
            .map(|(e, t)| (t.last_used, *e))
            .min()
            .map(|(_, e)| e);
        if let Some(e) = victim {
            self.tables.remove(&e);
            self.stats.evictions += 1;
        }
    }
}

impl std::fmt::Debug for EpochTableCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochTableCache")
            .field("cap", &self.cap)
            .field("resident", &self.tables.len())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_of(n: u64) -> FastMap<LineAddr, Token> {
        let mut t = FastMap::new();
        t.insert(LineAddr::new(n), n);
        t
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let mut c = EpochTableCache::new(4);
        c.table(1, || table_of(1));
        c.table(1, || unreachable!("resident"));
        c.table(2, || table_of(2));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 2);
        assert_eq!(c.stats().lines_materialized, 2);
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn lru_evicts_the_coldest_epoch() {
        let mut c = EpochTableCache::new(2);
        c.table(1, || table_of(1));
        c.table(2, || table_of(2));
        c.table(1, || unreachable!("keeps 1 warm"));
        // Inserting 3 must evict 2 (coldest), not 1.
        c.table(3, || table_of(3));
        assert_eq!(c.stats().evictions, 1);
        c.table(1, || unreachable!("1 survived"));
        c.table(2, || table_of(2)); // 2 was evicted: refill runs
        assert_eq!(c.stats().misses, 4);
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let mut c = EpochTableCache::new(0);
        assert_eq!(c.cap(), 1);
        c.table(1, || table_of(1));
        c.table(2, || table_of(2));
        assert_eq!(c.len(), 1);
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn eviction_sequence_is_deterministic() {
        let run = || {
            let mut c = EpochTableCache::new(3);
            let mut log = Vec::new();
            for &e in &[1u64, 2, 3, 1, 4, 5, 2, 1, 6, 3] {
                c.table(e, || table_of(e));
                log.push((c.stats().hits, c.stats().misses, c.stats().evictions));
            }
            log
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn hit_rate_handles_empty_and_mixed() {
        let c = EpochTableCache::new(2);
        assert_eq!(c.stats().hit_rate(), 1.0);
        let mut c = EpochTableCache::new(2);
        c.table(1, || table_of(1));
        c.table(1, || unreachable!());
        c.table(1, || unreachable!());
        c.table(2, || table_of(2));
        assert_eq!(c.stats().hit_rate(), 0.5);
    }
}
