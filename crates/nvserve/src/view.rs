//! Mounting a recovered NVM image and resolving point-in-time epochs.
//!
//! A [`Mount`] wraps a finished [`Mnm`] the way a recovery tool would
//! attach to a crashed machine's NVM DIMMs: it first runs the full §V-E
//! recovery procedure ([`nvoverlay::recovery::recover_durable`]) to
//! validate the durable state and learn the key universe, then builds an
//! [`EpochDirectory`] — an immutable, binary-searchable index of every
//! snapshot epoch the OMCs retain — so that per-query epoch resolution
//! never touches the OMCs' internal `BTreeMap`s.
//!
//! [`EpochDirectory::resolve`] enforces exactly the same rules as
//! [`nvoverlay::SnapshotStore::resolve_epoch`] (epoch 0, not yet
//! recoverable, outside the sense window, reclaimed) and returns the same
//! typed [`QueryError`]s; a unit test pins the parity.

use nvoverlay::mnm::Mnm;
use nvoverlay::recovery::{recover_durable, RecoveryError};
use nvoverlay::{QueryError, EPOCH_SENSE_WINDOW};
use nvsim::fastmap::FastMap;
use nvsim::{LineAddr, Token};

/// Why a [`Mount`] could not be established over an [`Mnm`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MountError {
    /// The §V-E recovery procedure rejected the durable state.
    Recovery(RecoveryError),
    /// An OMC's battery-backed buffer still holds undrained versions.
    ///
    /// The serving layer answers from per-epoch overlay tables only, so
    /// it requires the write-back buffers to have been flushed (as
    /// `Mnm::finish` / power-down does); serving over a live buffer
    /// would silently miss the newest versions.
    BufferNotDrained {
        /// Index of the offending OMC.
        omc: usize,
        /// Number of versions still buffered there.
        buffered: usize,
    },
}

impl MountError {
    /// The bare variant name (`"Recovery"`, `"BufferNotDrained"`), used
    /// by the CLI to print a stable error class and pick the documented
    /// exit code.
    pub fn name(&self) -> &'static str {
        match self {
            MountError::Recovery(_) => "Recovery",
            MountError::BufferNotDrained { .. } => "BufferNotDrained",
        }
    }
}

impl std::fmt::Display for MountError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MountError::Recovery(e) => write!(f, "recovery failed: {e:?}"),
            MountError::BufferNotDrained { omc, buffered } => write!(
                f,
                "OMC {omc} write-back buffer holds {buffered} undrained version(s); \
                 finish/drain before mounting"
            ),
        }
    }
}

impl std::error::Error for MountError {}

impl From<RecoveryError> for MountError {
    fn from(e: RecoveryError) -> Self {
        MountError::Recovery(e)
    }
}

/// Immutable index of the snapshot epochs an [`Mnm`] retains.
///
/// Built once at mount time; every per-query epoch validation and
/// fall-through walk reads this directory instead of re-merging the
/// OMCs' epoch maps.
#[derive(Debug, Clone)]
pub struct EpochDirectory {
    /// All epochs any OMC has versions for (ascending), with whether each
    /// is still individually readable on every OMC that has it.
    epochs: Vec<(u64, bool)>,
    /// The recoverable epoch (`rec-epoch`) at mount time.
    recoverable: u64,
    /// The newest epoch any OMC has ever received a version for.
    max_seen: u64,
}

impl EpochDirectory {
    /// Snapshots the epoch state of `mnm`.
    pub fn new(mnm: &Mnm) -> Self {
        EpochDirectory {
            epochs: mnm.epochs(),
            recoverable: mnm.rec_epoch(),
            max_seen: mnm.max_epoch_seen(),
        }
    }

    /// The recoverable epoch this directory serves up to.
    pub fn recoverable(&self) -> u64 {
        self.recoverable
    }

    /// The newest epoch any OMC had received versions for at mount time.
    pub fn max_seen(&self) -> u64 {
        self.max_seen
    }

    /// How many epochs of in-flight work the recoverable epoch trails
    /// the newest version seen by (the paper's persist lag, in epochs).
    pub fn lag(&self) -> u64 {
        self.max_seen.saturating_sub(self.recoverable)
    }

    /// All epochs with retained versions (ascending) and whether each is
    /// individually readable.
    pub fn epochs(&self) -> &[(u64, bool)] {
        &self.epochs
    }

    /// The epochs a query may target: readable and accepted by
    /// [`resolve`](Self::resolve).
    pub fn servable(&self) -> Vec<u64> {
        self.epochs
            .iter()
            .filter(|(e, readable)| *readable && self.resolve(*e).is_ok())
            .map(|(e, _)| *e)
            .collect()
    }

    /// Validates `epoch` as a query target, mirroring
    /// [`nvoverlay::SnapshotStore::resolve_epoch`] exactly.
    ///
    /// # Errors
    /// The same [`QueryError`] taxonomy as the store-level resolver:
    /// epoch 0, not yet recoverable, outside the 16-bit sense window, or
    /// reclaimed/compacted away.
    pub fn resolve(&self, epoch: u64) -> Result<EpochView, QueryError> {
        if epoch == 0 {
            return Err(QueryError::EpochZero);
        }
        if epoch > self.recoverable {
            return Err(QueryError::NotYetRecoverable {
                requested: epoch,
                recoverable: self.recoverable,
            });
        }
        if self.recoverable - epoch >= EPOCH_SENSE_WINDOW {
            return Err(QueryError::Wrapped {
                requested: epoch,
                recoverable: self.recoverable,
            });
        }
        if let Ok(i) = self.epochs.binary_search_by_key(&epoch, |&(e, _)| e) {
            if !self.epochs[i].1 {
                return Err(QueryError::NotRetained { epoch });
            }
        }
        Ok(EpochView { epoch })
    }

    /// The retained epochs at or before `epoch` (ascending slice); the
    /// fall-through walk iterates it in reverse.
    pub fn through(&self, epoch: u64) -> &[(u64, bool)] {
        let cut = self.epochs.partition_point(|&(e, _)| e <= epoch);
        &self.epochs[..cut]
    }
}

/// A validated point-in-time read target.
///
/// Obtained only from [`EpochDirectory::resolve`]; holding one proves the
/// epoch passed the recoverability checks at mount time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochView {
    epoch: u64,
}

impl EpochView {
    /// The resolved epoch number.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

/// Multiplier for spreading page numbers across sub-shards
/// (Fibonacci hashing; also used by `nvsim::fastmap`).
const LANE_MIX: u64 = 0x9E37_79B9_7F4A_7C15;

/// A recovered NVM image mounted for serving.
///
/// Owns the [`EpochDirectory`] and the sorted key universe (every line in
/// the recovered image); borrows the [`Mnm`] immutably so worker threads
/// can share it (`Mnm` holds no interior mutability).
pub struct Mount<'a> {
    mnm: &'a Mnm,
    dir: EpochDirectory,
    keys: Vec<LineAddr>,
    image_epoch: u64,
    subshards: usize,
}

impl<'a> Mount<'a> {
    /// Validates the durable state and mounts it with `subshards` serving
    /// shards per OMC (clamped to at least 1).
    ///
    /// # Errors
    /// [`MountError::Recovery`] when §V-E recovery rejects the state;
    /// [`MountError::BufferNotDrained`] when an OMC buffer still holds
    /// versions (serve only a finished / powered-down `Mnm`).
    pub fn new(mnm: &'a Mnm, subshards: usize) -> Result<Self, MountError> {
        for (i, omc) in mnm.omcs().iter().enumerate() {
            if let Some(buf) = omc.buffer() {
                if !buf.is_empty() {
                    return Err(MountError::BufferNotDrained {
                        omc: i,
                        buffered: buf.len(),
                    });
                }
            }
        }
        let img = recover_durable(mnm)?;
        let mut keys: Vec<LineAddr> = img.iter().map(|(l, _)| l).collect();
        keys.sort_unstable_by_key(|l| l.raw());
        Ok(Mount {
            mnm,
            dir: EpochDirectory::new(mnm),
            keys,
            image_epoch: img.epoch(),
            subshards: subshards.max(1),
        })
    }

    /// The mounted mapping controller.
    pub fn mnm(&self) -> &'a Mnm {
        self.mnm
    }

    /// The epoch directory built at mount time.
    pub fn dir(&self) -> &EpochDirectory {
        &self.dir
    }

    /// Every line present in the recovered image (ascending).
    pub fn keys(&self) -> &[LineAddr] {
        &self.keys
    }

    /// The epoch the recovered image was rebuilt at.
    pub fn image_epoch(&self) -> u64 {
        self.image_epoch
    }

    /// Serving shards per OMC.
    pub fn subshards(&self) -> usize {
        self.subshards
    }

    /// Total serving shards (`omc_count × subshards`).
    pub fn shards(&self) -> usize {
        self.mnm.omcs().len() * self.subshards
    }

    /// The serving shard that owns `line`.
    ///
    /// The OMC part must agree with [`Mnm::route`] (page-granularity
    /// modulo); the sub-shard part hashes the per-OMC page lane so one
    /// shard's epoch tables cover a stable page subset.
    pub fn shard_of(&self, line: LineAddr) -> usize {
        let omcs = self.mnm.omcs().len();
        let omc = self.mnm.route(line);
        let lane = (line.page().raw() / omcs as u64).wrapping_mul(LANE_MIX) >> 32;
        omc * self.subshards + (lane as usize % self.subshards)
    }

    /// Materializes `shard`'s slice of `epoch`'s incremental delta as a
    /// lookup table (empty when the epoch is unreadable there, matching
    /// `Omc::time_travel`'s transparent fall-through past reclaimed or
    /// compacted epochs).
    pub fn materialize(&self, epoch: u64, shard: usize) -> FastMap<LineAddr, Token> {
        let omc = shard / self.subshards;
        match self.mnm.omcs()[omc].epoch_delta(epoch) {
            None => FastMap::new(),
            Some(delta) => delta.filter(|(l, _)| self.shard_of(*l) == shard).collect(),
        }
    }
}

impl std::fmt::Debug for Mount<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mount")
            .field("image_epoch", &self.image_epoch)
            .field("keys", &self.keys.len())
            .field("epochs", &self.dir.epochs.len())
            .field("shards", &self.shards())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvoverlay::mnm::OmcConfig;
    use nvsim::nvm::Nvm;

    fn line(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    fn nvm() -> Nvm {
        Nvm::new(4, 400, 200, 8, 100_000)
    }

    /// Builds a finished two-OMC Mnm with `epochs` snapshots over `lines`
    /// lines, each epoch rewriting every line.
    fn built(epochs: u64, lines: u64) -> (Mnm, Nvm) {
        let mut m = Mnm::new(
            2,
            1,
            OmcConfig {
                pool_pages: 64,
                ..OmcConfig::default()
            },
        );
        let mut n = nvm();
        for e in 1..=epochs {
            for l in 0..lines {
                m.receive_version(&mut n, 0, line(l), 1000 * e + l, e);
            }
        }
        m.finish(&mut n, 0, epochs);
        (m, n)
    }

    #[test]
    fn mount_exposes_sorted_recovered_keys() {
        let (m, _n) = built(3, 10);
        let mnt = Mount::new(&m, 4).unwrap();
        assert_eq!(mnt.image_epoch(), 3);
        assert_eq!(mnt.keys().len(), 10);
        assert!(mnt.keys().windows(2).all(|w| w[0].raw() < w[1].raw()));
        assert_eq!(mnt.shards(), 8);
    }

    #[test]
    fn mount_rejects_unrecoverable_state() {
        let m = Mnm::new(1, 1, OmcConfig::default());
        assert_eq!(
            Mount::new(&m, 1).unwrap_err(),
            MountError::Recovery(RecoveryError::NothingRecoverable)
        );
    }

    #[test]
    fn shard_routing_agrees_with_mnm_route() {
        let (m, _n) = built(2, 32);
        let mnt = Mount::new(&m, 4).unwrap();
        for l in 0..32 {
            let shard = mnt.shard_of(line(l));
            assert_eq!(shard / mnt.subshards(), m.route(line(l)));
            assert!(shard < mnt.shards());
        }
    }

    #[test]
    fn directory_resolve_matches_snapshot_store() {
        let (m, _n) = built(4, 8);
        let dir = EpochDirectory::new(&m);
        // Compare against the store-level resolver for a band of epochs
        // around the recoverable range.
        let store = nvoverlay::SnapshotStore::new(&m);
        for e in 0..=dir.recoverable() + 3 {
            let got = dir.resolve(e).map(|v| v.epoch());
            let want = store.resolve_epoch(e);
            assert_eq!(got, want, "epoch {e}");
        }
    }

    #[test]
    fn through_slices_the_walk_window() {
        let (m, _n) = built(4, 8);
        let dir = EpochDirectory::new(&m);
        let upto = dir.through(2);
        assert!(upto.iter().all(|&(e, _)| e <= 2));
        let all = dir.through(u64::MAX);
        assert_eq!(all.len(), dir.epochs().len());
    }

    #[test]
    fn materialized_tables_partition_each_epoch_delta() {
        let (m, _n) = built(3, 16);
        let mnt = Mount::new(&m, 3).unwrap();
        for e in 1..=3 {
            let mut total = 0usize;
            for shard in 0..mnt.shards() {
                let t = mnt.materialize(e, shard);
                for (l, tok) in t.iter() {
                    assert_eq!(mnt.shard_of(*l), shard);
                    assert_eq!(m.time_travel(*l, e), Some(*tok));
                }
                total += t.len();
            }
            let omc_total: usize = m
                .omcs()
                .iter()
                .filter_map(|o| o.epoch_delta(e).map(|d| d.count()))
                .sum();
            assert_eq!(total, omc_total, "epoch {e} delta partition");
        }
    }
}
