//! The concurrent serve engine.
//!
//! Queries are planned up front ([`crate::driver::plan`]), validated once
//! per batch against the [`crate::view::EpochDirectory`], and flattened
//! into per-shard queues in canonical `(session, batch, key)` order. The
//! shard count is fixed by the mount (`omc_count × subshards`) and is
//! **independent of the worker count**: worker `w` of `W` processes
//! shards `w, w+W, w+2W, …`, each shard serially in queue order with its
//! own private [`EpochTableCache`]. Results are merged in ascending shard
//! order, so answers, cache statistics, and the report digest are
//! byte-identical for 1, 2, 4, or 8 workers — only wall-clock time
//! changes.
//!
//! A query `GET key AS OF epoch E` answers exactly like
//! `Mnm::time_travel`: fall through the retained epoch tables from `E`
//! downward (reclaimed or compacted epochs are transparently skipped),
//! returning the first mapped version, or `None` when the line has no
//! version at or before `E`.

use crate::cache::{CacheStats, EpochTableCache};
use crate::driver::{EpochSelect, LoadPlan};
use crate::report::{ServeReport, ShardReport};
use crate::view::Mount;
use nvoverlay::QueryError;
use nvsim::{LineAddr, Token};

/// Tuning for one serve run.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Concurrent client sessions to script.
    pub sessions: usize,
    /// Batches per session.
    pub batches: usize,
    /// Keys per batch.
    pub batch: usize,
    /// Worker threads (clamped to the shard count; must not change any
    /// output other than wall-clock time).
    pub workers: usize,
    /// Epoch tables each shard may keep resident.
    pub cache_cap: usize,
    /// Serving shards per OMC.
    pub subshards: usize,
    /// Load-plan seed.
    pub seed: u64,
    /// Zipfian skew for key draws.
    pub theta: f64,
    /// Which epochs batches may target.
    pub epochs: EpochSelect,
    /// Whether to script deliberate bad-epoch probe batches.
    pub error_probes: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            sessions: 8,
            batches: 16,
            batch: 32,
            workers: 1,
            cache_cap: 128,
            subshards: 4,
            seed: 0x5345_5256_4531, // "SERVE1"
            theta: 0.99,
            epochs: EpochSelect::All,
            error_probes: true,
        }
    }
}

/// A single flattened query bound for one shard.
#[derive(Debug, Clone, Copy)]
struct Query {
    line: LineAddr,
    epoch: u64,
}

/// What one shard produced: answers in its queue order, plus counters.
struct ShardOut {
    answers: Vec<Option<Token>>,
    cache: CacheStats,
    fallthrough: u64,
}

/// Stable label for a [`QueryError`] kind (report key and CLI output).
pub fn error_kind(e: &QueryError) -> &'static str {
    match e {
        QueryError::EpochZero => "epoch_zero",
        QueryError::NotYetRecoverable { .. } => "not_yet_recoverable",
        QueryError::NotRetained { .. } => "not_retained",
        QueryError::Wrapped { .. } => "wrapped",
    }
}

/// All error kinds in report order.
pub const ERROR_KINDS: [&str; 4] = [
    "epoch_zero",
    "not_yet_recoverable",
    "not_retained",
    "wrapped",
];

/// The outcome of a serve run: the deterministic report plus wall time.
#[derive(Debug)]
pub struct ServeOutcome {
    /// Deterministic results — identical across worker counts.
    pub report: ServeReport,
    /// Every accepted query's answer in canonical `(session, batch,
    /// key)` order (rejected batches contribute nothing). Deterministic;
    /// the differential suite checks each entry against the reference
    /// time-travel reader and the trace oracle.
    pub answers: Vec<Option<Token>>,
    /// Wall-clock seconds for the threaded phase (never in the report).
    pub wall_secs: f64,
}

impl ServeOutcome {
    /// Answered queries per wall-clock second (0 when instantaneous).
    pub fn queries_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.report.answered as f64 / self.wall_secs
        } else {
            0.0
        }
    }
}

/// FNV-1a 64-bit fold of one word into `h`.
#[inline]
fn fnv(h: u64, word: u64) -> u64 {
    let mut h = h;
    for b in word.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Runs the scripted load against the mount.
///
/// Validation, flattening, and the digest all walk the plan in canonical
/// `(session, batch, key)` order; only the shard execution in between is
/// threaded.
pub fn serve(mount: &Mount<'_>, plan: &LoadPlan, cfg: &ServeConfig) -> ServeOutcome {
    let shard_count = mount.shards();
    // 1. Validate each batch once; flatten accepted queries to shards.
    let mut queues: Vec<Vec<Query>> = vec![Vec::new(); shard_count];
    let mut errors = [0u64; ERROR_KINDS.len()];
    let mut batch_ok: Vec<Vec<bool>> = Vec::with_capacity(plan.sessions.len());
    let mut enqueued = 0u64;
    for session in &plan.sessions {
        let mut ok_row = Vec::with_capacity(session.batches.len());
        for batch in &session.batches {
            match mount.dir().resolve(batch.epoch) {
                Ok(view) => {
                    ok_row.push(true);
                    for &line in &batch.keys {
                        queues[mount.shard_of(line)].push(Query {
                            line,
                            epoch: view.epoch(),
                        });
                        enqueued += 1;
                    }
                }
                Err(e) => {
                    ok_row.push(false);
                    let kind = error_kind(&e);
                    let ix = ERROR_KINDS.iter().position(|k| *k == kind).unwrap();
                    errors[ix] += 1;
                }
            }
        }
        batch_ok.push(ok_row);
    }

    // 2. Execute shards across workers (shard count fixed; worker count
    //    only changes which thread runs which shard).
    let workers = cfg.workers.max(1).min(shard_count.max(1));
    let mut outs: Vec<Option<ShardOut>> = Vec::new();
    outs.resize_with(shard_count, || None);
    let started = std::time::Instant::now();
    if workers <= 1 {
        for (ix, queue) in queues.iter().enumerate() {
            outs[ix] = Some(run_shard(mount, ix, queue, cfg.cache_cap));
        }
    } else {
        let queues_ref = &queues;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    scope.spawn(move || {
                        let mut mine = Vec::new();
                        let mut ix = w;
                        while ix < shard_count {
                            mine.push((ix, run_shard(mount, ix, &queues_ref[ix], cfg.cache_cap)));
                            ix += workers;
                        }
                        mine
                    })
                })
                .collect();
            for h in handles {
                for (ix, out) in h.join().expect("serve worker panicked") {
                    outs[ix] = Some(out);
                }
            }
        });
    }
    let wall_secs = started.elapsed().as_secs_f64();

    // 3. Reassemble in canonical order: digest + aggregate counters.
    let mut cursors = vec![0usize; shard_count];
    let mut digest = FNV_OFFSET;
    let mut answered = 0u64;
    let mut answers_some = 0u64;
    let mut answers_none = 0u64;
    let mut answers = Vec::with_capacity(enqueued as usize);
    for (s, session) in plan.sessions.iter().enumerate() {
        for (b, batch) in session.batches.iter().enumerate() {
            digest = fnv(digest, s as u64);
            digest = fnv(digest, b as u64);
            digest = fnv(digest, batch.epoch);
            if !batch_ok[s][b] {
                digest = fnv(digest, u64::MAX);
                continue;
            }
            for &line in &batch.keys {
                let shard = mount.shard_of(line);
                let out = outs[shard].as_ref().expect("shard ran");
                let ans = out.answers[cursors[shard]];
                cursors[shard] += 1;
                answers.push(ans);
                answered += 1;
                digest = fnv(digest, line.raw());
                match ans {
                    Some(tok) => {
                        answers_some += 1;
                        digest = fnv(digest, 1 + tok);
                    }
                    None => {
                        answers_none += 1;
                        digest = fnv(digest, 0);
                    }
                }
            }
        }
    }

    let mut cache = CacheStats::default();
    let mut fallthrough = 0u64;
    let mut per_shard = Vec::with_capacity(shard_count);
    for (ix, out) in outs.iter().enumerate() {
        let out = out.as_ref().expect("shard ran");
        cache.merge(&out.cache);
        fallthrough += out.fallthrough;
        per_shard.push(ShardReport {
            shard: ix,
            queries: out.answers.len() as u64,
            cache: out.cache,
            fallthrough: out.fallthrough,
        });
    }

    let dir = mount.dir();
    let report = ServeReport {
        sessions: plan.sessions.len(),
        batches_per_session: plan.sessions.first().map_or(0, |s| s.batches.len()),
        batch: cfg.batch,
        shards: shard_count,
        subshards: mount.subshards(),
        cache_cap: cfg.cache_cap,
        seed: cfg.seed,
        epoch_select: cfg.epochs.to_string(),
        rec_epoch: dir.recoverable(),
        max_epoch_seen: dir.max_seen(),
        lag: dir.lag(),
        image_epoch: mount.image_epoch(),
        image_lines: mount.keys().len() as u64,
        epochs_listed: dir.epochs().len() as u64,
        epochs_servable: dir.servable().len() as u64,
        enqueued,
        probes: plan.probes as u64,
        errors: ERROR_KINDS
            .iter()
            .zip(errors.iter())
            .map(|(k, &v)| ((*k).to_string(), v))
            .collect(),
        answered,
        answers_some,
        answers_none,
        cache,
        fallthrough,
        digest,
        per_shard,
    };
    ServeOutcome {
        report,
        answers,
        wall_secs,
    }
}

/// Serves one shard's queue serially with a private epoch-table cache.
fn run_shard(mount: &Mount<'_>, shard: usize, queue: &[Query], cache_cap: usize) -> ShardOut {
    let mut cache = EpochTableCache::new(cache_cap);
    let mut answers = Vec::with_capacity(queue.len());
    let mut fallthrough = 0u64;
    for q in queue {
        let mut ans = None;
        for &(e, _) in mount.dir().through(q.epoch).iter().rev() {
            fallthrough += 1;
            let table = cache.table(e, || mount.materialize(e, shard));
            if let Some(&tok) = table.get(&q.line) {
                ans = Some(tok);
                break;
            }
        }
        answers.push(ans);
    }
    ShardOut {
        answers,
        cache: *cache.stats(),
        fallthrough,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver;
    use nvoverlay::mnm::{Mnm, OmcConfig};
    use nvsim::nvm::Nvm;

    fn built(epochs: u64, lines: u64) -> Mnm {
        let mut m = Mnm::new(
            2,
            1,
            OmcConfig {
                pool_pages: 256,
                ..OmcConfig::default()
            },
        );
        let mut n = Nvm::new(4, 400, 200, 8, 100_000);
        for e in 1..=epochs {
            for l in 0..lines {
                // Each epoch rewrites a sliding half of the lines.
                if (l + e) % 2 == 0 || e == 1 {
                    m.receive_version(&mut n, 0, LineAddr::new(l), 1000 * e + l, e);
                }
            }
        }
        m.finish(&mut n, 0, epochs);
        m
    }

    fn cfg() -> ServeConfig {
        ServeConfig {
            sessions: 4,
            batches: 6,
            batch: 8,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn answers_match_time_travel() {
        let m = built(5, 40);
        let mount = Mount::new(&m, 4).unwrap();
        let cfg = cfg();
        let plan = driver::plan(&mount, &cfg).unwrap();
        let out = serve(&mount, &plan, &cfg);
        assert!(out.report.answered > 0);
        // Re-walk the plan and check every accepted query against the
        // reference reader.
        for session in &plan.sessions {
            for batch in &session.batches {
                if mount.dir().resolve(batch.epoch).is_err() {
                    continue;
                }
                for &line in &batch.keys {
                    let want = m.time_travel(line, batch.epoch);
                    // Redundant single query through a fresh shard run:
                    let shard = mount.shard_of(line);
                    let got = run_shard(
                        &mount,
                        shard,
                        &[Query {
                            line,
                            epoch: batch.epoch,
                        }],
                        4,
                    )
                    .answers[0];
                    assert_eq!(got, want, "line {line:?} @ {}", batch.epoch);
                }
            }
        }
    }

    #[test]
    fn report_is_identical_across_worker_counts() {
        let m = built(6, 64);
        let mount = Mount::new(&m, 4).unwrap();
        let base = cfg();
        let mut reports = Vec::new();
        for workers in [1usize, 2, 4, 8] {
            let cfg = ServeConfig {
                workers,
                ..base.clone()
            };
            let plan = driver::plan(&mount, &cfg).unwrap();
            let out = serve(&mount, &plan, &cfg);
            reports.push(out.report.to_json("unit", "unit"));
        }
        for r in &reports[1..] {
            assert_eq!(r, &reports[0]);
        }
    }

    #[test]
    fn probe_batches_surface_typed_errors() {
        let m = built(4, 32);
        let mount = Mount::new(&m, 2).unwrap();
        let cfg = ServeConfig {
            sessions: 8,
            batches: 13,
            batch: 4,
            ..ServeConfig::default()
        };
        let plan = driver::plan(&mount, &cfg).unwrap();
        assert!(plan.probes > 0);
        let out = serve(&mount, &plan, &cfg);
        let rejected: u64 = out.report.errors.iter().map(|(_, v)| v).sum();
        assert_eq!(rejected, plan.probes as u64);
        // Probes target epoch 0 and epochs past the recoverable head.
        let zero = out.report.errors.iter().find(|(k, _)| k == "epoch_zero");
        let ahead = out
            .report
            .errors
            .iter()
            .find(|(k, _)| k == "not_yet_recoverable");
        assert!(zero.map_or(0, |(_, v)| *v) + ahead.map_or(0, |(_, v)| *v) == rejected);
    }

    #[test]
    fn latest_only_load_hits_cache_hard() {
        let m = built(8, 64);
        let mount = Mount::new(&m, 2).unwrap();
        let cfg = ServeConfig {
            epochs: EpochSelect::Latest,
            error_probes: false,
            ..cfg()
        };
        let plan = driver::plan(&mount, &cfg).unwrap();
        let out = serve(&mount, &plan, &cfg);
        assert_eq!(out.report.answered, out.report.enqueued);
        assert!(out.report.cache.hit_rate() > 0.9, "{:?}", out.report.cache);
    }
}
