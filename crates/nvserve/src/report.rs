//! Deterministic serve reports.
//!
//! A [`ServeReport`] holds **only** values that are a pure function of
//! `(mount, plan, config)` — never wall-clock time or the worker count —
//! so two runs of the same seed can be compared with `cmp`, and runs at
//! different worker counts must serialize byte-identically (the CI smoke
//! job and the differential test both rely on this). Throughput numbers
//! live in [`crate::server::ServeOutcome::wall_secs`] and are reported
//! separately (stdout / `BENCH_serve.json`), following the structural /
//! wall-clock segregation the profiler established.

use crate::cache::CacheStats;
use nvsim::metrics::Registry;

/// Per-shard slice of a serve run.
#[derive(Debug, Clone, Copy)]
pub struct ShardReport {
    /// Shard index.
    pub shard: usize,
    /// Queries this shard answered.
    pub queries: u64,
    /// Its private epoch-table cache counters.
    pub cache: CacheStats,
    /// Epoch tables consulted across all fall-through walks.
    pub fallthrough: u64,
}

/// The deterministic results of one serve run.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Scripted sessions.
    pub sessions: usize,
    /// Batches per session.
    pub batches_per_session: usize,
    /// Keys per batch.
    pub batch: usize,
    /// Total serving shards.
    pub shards: usize,
    /// Shards per OMC.
    pub subshards: usize,
    /// Epoch-table cache capacity per shard.
    pub cache_cap: usize,
    /// Load seed.
    pub seed: u64,
    /// Epoch selection, rendered (`all` / `latest` / `lo..hi`).
    pub epoch_select: String,
    /// Recoverable epoch at mount time.
    pub rec_epoch: u64,
    /// Newest epoch any OMC had seen at mount time.
    pub max_epoch_seen: u64,
    /// `max_epoch_seen - rec_epoch` (persist lag in epochs).
    pub lag: u64,
    /// Epoch the recovered image was rebuilt at.
    pub image_epoch: u64,
    /// Lines in the recovered image (the key universe).
    pub image_lines: u64,
    /// Epochs listed in the directory.
    pub epochs_listed: u64,
    /// Epochs a query may target.
    pub epochs_servable: u64,
    /// Queries flattened to shard queues.
    pub enqueued: u64,
    /// Scripted bad-epoch probe batches.
    pub probes: u64,
    /// Rejected batches by error kind, in
    /// [`crate::server::ERROR_KINDS`] order.
    pub errors: Vec<(String, u64)>,
    /// Queries answered (equals `enqueued` — every accepted query is
    /// answered).
    pub answered: u64,
    /// Answers that found a version.
    pub answers_some: u64,
    /// Answers with no version at or before the epoch.
    pub answers_none: u64,
    /// Cache counters summed over shards.
    pub cache: CacheStats,
    /// Epoch tables consulted across all walks.
    pub fallthrough: u64,
    /// FNV-1a digest over every `(session, batch, epoch, line, answer)`
    /// in canonical order — the cross-worker determinism witness.
    pub digest: u64,
    /// Per-shard breakdown (ascending shard index).
    pub per_shard: Vec<ShardReport>,
}

fn push_kv_u64(out: &mut String, indent: &str, key: &str, v: u64, comma: bool) {
    out.push_str(indent);
    out.push_str(&format!("\"{key}\": {v}"));
    out.push_str(if comma { ",\n" } else { "\n" });
}

impl ServeReport {
    /// Overall cache hit fraction.
    pub fn hit_rate(&self) -> f64 {
        self.cache.hit_rate()
    }

    /// Renders the report as deterministic JSON.
    ///
    /// `workload` and `scheme` label the run (the serving layer only
    /// mounts NVOverlay schemes, but the label keeps report files
    /// self-describing alongside the bench JSON artifacts).
    pub fn to_json(&self, workload: &str, scheme: &str) -> String {
        let mut s = String::with_capacity(2048 + self.per_shard.len() * 160);
        s.push_str("{\n");
        s.push_str(&format!("  \"workload\": \"{workload}\",\n"));
        s.push_str(&format!("  \"scheme\": \"{scheme}\",\n"));
        s.push_str("  \"config\": {\n");
        push_kv_u64(&mut s, "    ", "sessions", self.sessions as u64, true);
        push_kv_u64(
            &mut s,
            "    ",
            "batches_per_session",
            self.batches_per_session as u64,
            true,
        );
        push_kv_u64(&mut s, "    ", "batch", self.batch as u64, true);
        push_kv_u64(&mut s, "    ", "shards", self.shards as u64, true);
        push_kv_u64(&mut s, "    ", "subshards", self.subshards as u64, true);
        push_kv_u64(&mut s, "    ", "cache_cap", self.cache_cap as u64, true);
        push_kv_u64(&mut s, "    ", "seed", self.seed, true);
        s.push_str(&format!("    \"epochs\": \"{}\"\n", self.epoch_select));
        s.push_str("  },\n");
        s.push_str("  \"mount\": {\n");
        push_kv_u64(&mut s, "    ", "rec_epoch", self.rec_epoch, true);
        push_kv_u64(&mut s, "    ", "max_epoch_seen", self.max_epoch_seen, true);
        push_kv_u64(&mut s, "    ", "lag", self.lag, true);
        push_kv_u64(&mut s, "    ", "image_epoch", self.image_epoch, true);
        push_kv_u64(&mut s, "    ", "image_lines", self.image_lines, true);
        push_kv_u64(&mut s, "    ", "epochs_listed", self.epochs_listed, true);
        push_kv_u64(
            &mut s,
            "    ",
            "epochs_servable",
            self.epochs_servable,
            false,
        );
        s.push_str("  },\n");
        s.push_str("  \"queries\": {\n");
        push_kv_u64(&mut s, "    ", "enqueued", self.enqueued, true);
        push_kv_u64(&mut s, "    ", "answered", self.answered, true);
        push_kv_u64(&mut s, "    ", "some", self.answers_some, true);
        push_kv_u64(&mut s, "    ", "none", self.answers_none, true);
        push_kv_u64(&mut s, "    ", "probes", self.probes, true);
        push_kv_u64(&mut s, "    ", "fallthrough", self.fallthrough, false);
        s.push_str("  },\n");
        s.push_str("  \"errors\": {\n");
        for (i, (k, v)) in self.errors.iter().enumerate() {
            push_kv_u64(&mut s, "    ", k, *v, i + 1 < self.errors.len());
        }
        s.push_str("  },\n");
        s.push_str("  \"cache\": {\n");
        push_kv_u64(&mut s, "    ", "hits", self.cache.hits, true);
        push_kv_u64(&mut s, "    ", "misses", self.cache.misses, true);
        push_kv_u64(&mut s, "    ", "evictions", self.cache.evictions, true);
        push_kv_u64(
            &mut s,
            "    ",
            "lines_materialized",
            self.cache.lines_materialized,
            true,
        );
        s.push_str(&format!("    \"hit_rate\": {:.6}\n", self.hit_rate()));
        s.push_str("  },\n");
        s.push_str(&format!("  \"digest\": \"{:016x}\",\n", self.digest));
        s.push_str("  \"per_shard\": [\n");
        for (i, sh) in self.per_shard.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"shard\": {}, \"queries\": {}, \"hits\": {}, \"misses\": {}, \
                 \"evictions\": {}, \"fallthrough\": {}}}{}\n",
                sh.shard,
                sh.queries,
                sh.cache.hits,
                sh.cache.misses,
                sh.cache.evictions,
                sh.fallthrough,
                if i + 1 < self.per_shard.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("  ]\n");
        s.push_str("}\n");
        s
    }

    /// Publishes the report's counters into a metrics registry under
    /// `prefix` (e.g. `serve`), alongside the simulator's own counters.
    pub fn metrics_into(&self, reg: &mut Registry, prefix: &str) {
        reg.set_counter(&format!("{prefix}.queries.enqueued"), self.enqueued);
        reg.set_counter(&format!("{prefix}.queries.answered"), self.answered);
        reg.set_counter(&format!("{prefix}.queries.some"), self.answers_some);
        reg.set_counter(&format!("{prefix}.queries.none"), self.answers_none);
        reg.set_counter(&format!("{prefix}.queries.fallthrough"), self.fallthrough);
        reg.set_counter(&format!("{prefix}.cache.hits"), self.cache.hits);
        reg.set_counter(&format!("{prefix}.cache.misses"), self.cache.misses);
        reg.set_counter(&format!("{prefix}.cache.evictions"), self.cache.evictions);
        reg.set_gauge(&format!("{prefix}.cache.hit_rate"), self.hit_rate());
        reg.set_counter(&format!("{prefix}.mount.rec_epoch"), self.rec_epoch);
        reg.set_counter(&format!("{prefix}.mount.lag"), self.lag);
        for (k, v) in &self.errors {
            reg.set_counter(&format!("{prefix}.errors.{k}"), *v);
        }
        for sh in &self.per_shard {
            let p = format!("{prefix}.shard.{:03}", sh.shard);
            reg.set_counter(&format!("{p}.queries"), sh.queries);
            reg.set_counter(&format!("{p}.cache.hits"), sh.cache.hits);
            reg.set_counter(&format!("{p}.cache.misses"), sh.cache.misses);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ServeReport {
        ServeReport {
            sessions: 2,
            batches_per_session: 3,
            batch: 4,
            shards: 2,
            subshards: 1,
            cache_cap: 8,
            seed: 42,
            epoch_select: "all".to_string(),
            rec_epoch: 9,
            max_epoch_seen: 11,
            lag: 2,
            image_epoch: 9,
            image_lines: 100,
            epochs_listed: 9,
            epochs_servable: 9,
            enqueued: 20,
            probes: 1,
            errors: vec![
                ("epoch_zero".to_string(), 1),
                ("not_yet_recoverable".to_string(), 0),
                ("not_retained".to_string(), 0),
                ("wrapped".to_string(), 0),
            ],
            answered: 20,
            answers_some: 18,
            answers_none: 2,
            cache: CacheStats {
                hits: 30,
                misses: 10,
                evictions: 2,
                lines_materialized: 50,
            },
            fallthrough: 40,
            digest: 0xdead_beef,
            per_shard: vec![
                ShardReport {
                    shard: 0,
                    queries: 12,
                    cache: CacheStats {
                        hits: 20,
                        misses: 5,
                        evictions: 1,
                        lines_materialized: 25,
                    },
                    fallthrough: 22,
                },
                ShardReport {
                    shard: 1,
                    queries: 8,
                    cache: CacheStats {
                        hits: 10,
                        misses: 5,
                        evictions: 1,
                        lines_materialized: 25,
                    },
                    fallthrough: 18,
                },
            ],
        }
    }

    #[test]
    fn json_is_stable_and_parsable_shape() {
        let a = sample().to_json("btree", "nvoverlay");
        let b = sample().to_json("btree", "nvoverlay");
        assert_eq!(a, b);
        assert!(a.starts_with("{\n"));
        assert!(a.ends_with("}\n"));
        assert!(a.contains("\"hit_rate\": 0.750000"));
        assert!(a.contains("\"digest\": \"00000000deadbeef\""));
        assert!(a.contains("\"epoch_zero\": 1,"));
        // Balanced braces/brackets.
        let opens = a.matches('{').count();
        let closes = a.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(a.matches('[').count(), a.matches(']').count());
    }

    #[test]
    fn metrics_publishes_cache_counters() {
        let mut reg = Registry::new();
        sample().metrics_into(&mut reg, "serve");
        assert_eq!(reg.counter("serve.cache.hits"), Some(30));
        assert_eq!(reg.counter("serve.cache.misses"), Some(10));
        assert_eq!(reg.counter("serve.errors.epoch_zero"), Some(1));
        assert_eq!(reg.counter("serve.shard.001.queries"), Some(8));
    }
}
