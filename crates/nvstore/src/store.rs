//! The store proper: `open` / `backup` / `restore` / `remove` / `gc`.
//!
//! ## On-disk layout
//!
//! ```text
//! <root>/
//!   ROOT.0, ROOT.1            ping-pong root cells (the commit point)
//!   manifests/<version>.json  immutable manifest per committed version
//!   layers/<id>.layer         content-addressed layer files
//!   quarantine/<id>.layer     layers parked by GC (still restorable)
//!   tmp/                      shadow files (never read after a crash)
//! ```
//!
//! ## The commit-point argument
//!
//! Every mutation follows the same journaled shadow protocol, in this
//! order: (1) new layer files are written to `tmp/` and renamed into
//! `layers/` — content-addressed, so they overwrite nothing live;
//! (2) the new manifest is written to `tmp/` and renamed to
//! `manifests/<v>.json` — a fresh name, referenced by nothing;
//! (3) the root cell `ROOT.<v mod 2>` is written: seq, manifest length,
//! manifest FNV-1a, cell FNV-1a. Step (3) is the **single commit
//! point**, and it overwrites the *older* of the two cells — the same
//! ping-pong the simulator uses for the rec-epoch root
//! (`Nvm::write_fenced`). A crash after any prefix of completed
//! operations therefore leaves: the old root valid and every file it
//! references untouched (steps 1–2 only add), or the new root valid
//! with all its files already durable. A *torn* root-cell write fails
//! the cell checksum and falls back to the surviving cell. No prefix
//! yields a hybrid.
//!
//! GC never deletes referenced data: layers whose refcount reaches zero
//! are renamed into `quarantine/` (and restore falls back to the
//! quarantine copy), so even a stale root resurrected by corruption of
//! the newest manifest still finds its layer bytes.

use crate::error::StoreError;
use crate::export::SnapshotExport;
use crate::io::{IoError, StoreIo};
use crate::layer::{fnv1a, Layer, LayerId, LayerKind, LayerPayload};
use crate::manifest::{BackupEntry, LayerMeta, Manifest, MANIFEST_SCHEMA};

/// Magic bytes opening a root cell.
pub const ROOT_MAGIC: [u8; 4] = *b"NVRT";
const ROOT_LEN: usize = 40;

/// What `backup` did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BackupStats {
    /// Layers written by this backup.
    pub new_layers: usize,
    /// Layers shared with existing backups (already in the store).
    pub shared_layers: usize,
    /// Bytes of new layer data written.
    pub new_bytes: u64,
}

/// What `gc` did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Zero-ref layers moved to quarantine by this sweep.
    pub quarantined: usize,
    /// Referenced layers kept.
    pub live: usize,
}

struct RootCell {
    seq: u64,
    manifest_len: u64,
    manifest_fnv: u64,
}

fn encode_root(cell: &RootCell) -> Vec<u8> {
    let mut out = Vec::with_capacity(ROOT_LEN);
    out.extend_from_slice(&ROOT_MAGIC);
    out.extend_from_slice(&(MANIFEST_SCHEMA as u16).to_le_bytes());
    out.extend_from_slice(&[0u8; 2]);
    out.extend_from_slice(&cell.seq.to_le_bytes());
    out.extend_from_slice(&cell.manifest_len.to_le_bytes());
    out.extend_from_slice(&cell.manifest_fnv.to_le_bytes());
    let sum = fnv1a(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

enum RootRead {
    /// Torn, missing, or checksum-failed: ignore this cell.
    Invalid,
    /// Written by a future schema.
    Future(u64),
    /// A valid cell.
    Valid(RootCell),
}

fn decode_root(bytes: &[u8]) -> RootRead {
    if bytes.len() != ROOT_LEN || bytes[..4] != ROOT_MAGIC {
        return RootRead::Invalid;
    }
    let body = &bytes[..ROOT_LEN - 8];
    let stored = u64::from_le_bytes(bytes[ROOT_LEN - 8..].try_into().expect("fixed len"));
    if fnv1a(body) != stored {
        return RootRead::Invalid;
    }
    let schema = u16::from_le_bytes([bytes[4], bytes[5]]) as u64;
    if schema > MANIFEST_SCHEMA {
        return RootRead::Future(schema);
    }
    let word = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().expect("fixed len"));
    RootRead::Valid(RootCell {
        seq: word(8),
        manifest_len: word(16),
        manifest_fnv: word(24),
    })
}

fn io_err(e: IoError) -> StoreError {
    StoreError::Io {
        path: e.path().to_string(),
        detail: e.to_string(),
    }
}

fn manifest_path(version: u64) -> String {
    format!("manifests/{version:08}.json")
}

fn layer_path(id: LayerId) -> String {
    format!("layers/{id}.layer")
}

fn quarantine_path(id: LayerId) -> String {
    format!("quarantine/{id}.layer")
}

/// An open snapshot store over an I/O backend.
pub struct Store<I: StoreIo> {
    io: I,
    manifest: Manifest,
}

impl<I: StoreIo> Store<I> {
    /// Opens (or initializes) the store, electing the newest fully
    /// valid (root cell, manifest) pair. When the newest root's
    /// manifest fails validation, the surviving cell's state is used —
    /// a clean restore of the prior consistent manifest.
    ///
    /// # Errors
    /// Typed [`StoreError`]s only: `TornManifest` when a non-fresh
    /// store has no valid pair left, `SchemaVersion` for stores written
    /// by a future version, plus `Checksum`/`MissingLayer`/
    /// `RefcountUnderflow` when every candidate manifest is internally
    /// inconsistent.
    pub fn open(io: I) -> Result<Store<I>, StoreError> {
        let mut cells: Vec<RootCell> = Vec::new();
        for slot in 0..2u64 {
            match io.read(&format!("ROOT.{slot}")) {
                Err(_) => {}
                Ok(bytes) => match decode_root(&bytes) {
                    RootRead::Invalid => {}
                    RootRead::Future(found) => {
                        return Err(StoreError::SchemaVersion {
                            found,
                            supported: MANIFEST_SCHEMA,
                        })
                    }
                    RootRead::Valid(cell) => cells.push(cell),
                },
            }
        }
        cells.sort_by_key(|c| std::cmp::Reverse(c.seq));

        if cells.is_empty() {
            // No valid root. A crash during the very first commit can
            // legitimately leave layer/manifest files with no (or a
            // torn) root cell — the prior consistent state is the empty
            // store. But a manifest of version >= 2 proves an earlier
            // commit once had a valid root, so losing *both* cells is
            // corruption, not a crash prefix.
            let max_published = io
                .list("manifests")
                .map_err(io_err)?
                .iter()
                .filter_map(|name| name.strip_suffix(".json")?.parse::<u64>().ok())
                .max()
                .unwrap_or(0);
            if max_published >= 2 {
                return Err(StoreError::TornManifest {
                    detail: "both root cells torn or missing in a committed store".to_string(),
                });
            }
            return Ok(Store {
                io,
                manifest: Manifest::default(),
            });
        }

        let mut first_err: Option<StoreError> = None;
        for cell in &cells {
            match Self::load_state(&io, cell) {
                Ok(manifest) => return Ok(Store { io, manifest }),
                Err(e) => first_err = Some(first_err.unwrap_or(e)),
            }
        }
        Err(first_err.expect("at least one candidate was tried"))
    }

    fn load_state(io: &I, cell: &RootCell) -> Result<Manifest, StoreError> {
        let path = manifest_path(cell.seq);
        let text = io.read(&path).map_err(|_| StoreError::TornManifest {
            detail: format!("root cell seq {} references a missing manifest", cell.seq),
        })?;
        if text.len() as u64 != cell.manifest_len || fnv1a(&text) != cell.manifest_fnv {
            return Err(StoreError::TornManifest {
                detail: format!("manifest {path} does not match its root-cell checksum"),
            });
        }
        let text = String::from_utf8(text).map_err(|_| StoreError::TornManifest {
            detail: format!("manifest {path} is not UTF-8"),
        })?;
        let manifest = Manifest::parse(&text)?;
        if manifest.version != cell.seq {
            return Err(StoreError::TornManifest {
                detail: format!(
                    "manifest {path} records version {}, root cell says {}",
                    manifest.version, cell.seq
                ),
            });
        }
        manifest.verify_refs()?;
        for &(id, _) in &manifest.layers {
            if !io.exists(&layer_path(id)) && !io.exists(&quarantine_path(id)) {
                return Err(StoreError::MissingLayer { id });
            }
        }
        Ok(manifest)
    }

    /// The currently committed manifest.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Consumes the store, returning the backend.
    pub fn into_io(self) -> I {
        self.io
    }

    fn commit(&mut self, mut next: Manifest) -> Result<(), StoreError> {
        next.version = self.manifest.version + 1;
        let v = next.version;
        let text = next.to_json();
        let bytes = text.as_bytes();
        // Shadow, publish, then flip the root — see the module docs for
        // why this ordering makes the root write the sole commit point.
        self.io.write("tmp/manifest.json", bytes).map_err(io_err)?;
        self.io
            .rename("tmp/manifest.json", &manifest_path(v))
            .map_err(io_err)?;
        let cell = encode_root(&RootCell {
            seq: v,
            manifest_len: bytes.len() as u64,
            manifest_fnv: fnv1a(bytes),
        });
        self.io
            .write(&format!("ROOT.{}", v % 2), &cell)
            .map_err(io_err)?;
        // Committed. Prune manifests older than the surviving cell
        // (only versions v and v-1 are reachable from the roots).
        for name in self.io.list("manifests").map_err(io_err)? {
            if let Some(ver) = name
                .strip_suffix(".json")
                .and_then(|s| s.parse::<u64>().ok())
            {
                if ver + 1 < v {
                    let _ = self.io.remove(&format!("manifests/{name}"));
                }
            }
        }
        self.manifest = next;
        Ok(())
    }

    fn layers_of(snapshot: &SnapshotExport) -> Vec<Layer> {
        let mut layers = Vec::with_capacity(snapshot.deltas.len() + 2);
        let mut parent: Option<LayerId> = None;
        for (epoch, lines) in &snapshot.deltas {
            let layer = Layer {
                kind: LayerKind::Delta,
                epoch: *epoch,
                parent,
                payload: LayerPayload::Lines(lines.clone()),
            };
            parent = Some(layer.id());
            layers.push(layer);
        }
        layers.push(Layer {
            kind: LayerKind::Master,
            epoch: snapshot.rec_epoch,
            parent,
            payload: LayerPayload::Lines(snapshot.master.clone()),
        });
        if !snapshot.contexts.is_empty() {
            layers.push(Layer {
                kind: LayerKind::Context,
                epoch: snapshot.rec_epoch,
                parent: None,
                payload: LayerPayload::Contexts(snapshot.contexts.clone()),
            });
        }
        layers
    }

    /// Backs `snapshot` up under `name`, writing only layers absent
    /// from the store (incremental: shared epoch prefixes produce
    /// shared layers, by content addressing).
    ///
    /// # Errors
    /// [`StoreError::BackupExists`] for duplicate names, plus I/O
    /// failures.
    pub fn backup(
        &mut self,
        name: &str,
        snapshot: &SnapshotExport,
    ) -> Result<BackupStats, StoreError> {
        if self.manifest.backup(name).is_some() {
            return Err(StoreError::BackupExists {
                name: name.to_string(),
            });
        }
        let layers = Self::layers_of(snapshot);
        let mut stats = BackupStats::default();
        let mut next = self.manifest.clone();

        let mut deltas = Vec::with_capacity(snapshot.deltas.len());
        let mut master = None;
        let mut context = None;
        for layer in &layers {
            let encoded = layer.encode();
            let id = LayerId(u64::from_le_bytes(
                encoded[encoded.len() - 8..].try_into().expect("sealed"),
            ));
            match layer.kind {
                LayerKind::Delta => deltas.push((layer.epoch, id)),
                LayerKind::Master => master = Some(id),
                LayerKind::Context => context = Some(id),
            }
            let published = layer_path(id);
            let known = next.layer_meta(id).is_some();
            if known {
                stats.shared_layers += 1;
            } else {
                stats.new_layers += 1;
                stats.new_bytes += encoded.len() as u64;
            }
            // (Re-)publish the bytes whenever `layers/` lacks them —
            // covers both genuinely new layers and a quarantined layer
            // being referenced again after GC.
            if !self.io.exists(&published) {
                let tmp = format!("tmp/{id}.layer");
                self.io.write(&tmp, &encoded).map_err(io_err)?;
                self.io.rename(&tmp, &published).map_err(io_err)?;
            }
            match next.layers.binary_search_by_key(&id, |&(lid, _)| lid) {
                Ok(i) => next.layers[i].1.refs += 1,
                Err(i) => next.layers.insert(
                    i,
                    (
                        id,
                        LayerMeta {
                            kind: layer.kind,
                            epoch: layer.epoch,
                            parent: layer.parent,
                            bytes: encoded.len() as u64,
                            refs: 1,
                        },
                    ),
                ),
            }
            next.quarantine.retain(|&q| q != id);
        }

        next.backups.push(BackupEntry {
            name: name.to_string(),
            rec_epoch: snapshot.rec_epoch,
            max_epoch_seen: snapshot.max_epoch_seen,
            omcs: snapshot.omcs,
            vds: snapshot.vds,
            pool_pages: snapshot.pool_pages,
            master: master.expect("every snapshot has a master layer"),
            context,
            deltas,
        });
        self.commit(next)?;
        Ok(stats)
    }

    fn read_layer(&self, id: LayerId) -> Result<Layer, StoreError> {
        let published = layer_path(id);
        let bytes = match self.io.read(&published) {
            Ok(b) => b,
            // GC parks zero-ref layers instead of deleting them, so a
            // backup resurrected from a stale root still restores.
            Err(_) => self
                .io
                .read(&quarantine_path(id))
                .map_err(|_| StoreError::MissingLayer { id })?,
        };
        let layer = Layer::decode(&bytes, &published)?;
        let sealed = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().expect("decoded"));
        if sealed != id.0 {
            return Err(StoreError::Checksum {
                path: published,
                detail: format!("content id {:016x} does not match file name", sealed),
            });
        }
        Ok(layer)
    }

    /// Restores the named backup, fully verifying every layer checksum,
    /// the parent chain, and that the stored master image equals
    /// last-writer-wins fall-through over the recoverable deltas (the
    /// anti-hybrid cross-check).
    ///
    /// # Errors
    /// [`StoreError::BackupNotFound`], plus any checksum/chain/missing-
    /// layer failure.
    pub fn restore(&self, name: &str) -> Result<SnapshotExport, StoreError> {
        let entry = self
            .manifest
            .backup(name)
            .ok_or_else(|| StoreError::BackupNotFound {
                name: name.to_string(),
            })?;
        let chain_err = |id: LayerId, detail: String| StoreError::Checksum {
            path: layer_path(id),
            detail,
        };

        let mut deltas = Vec::with_capacity(entry.deltas.len());
        let mut parent: Option<LayerId> = None;
        for &(epoch, id) in &entry.deltas {
            let layer = self.read_layer(id)?;
            if layer.kind != LayerKind::Delta || layer.epoch != epoch {
                return Err(chain_err(
                    id,
                    format!("expected the delta layer of epoch {epoch}"),
                ));
            }
            if layer.parent != parent {
                return Err(chain_err(id, "parent chain mismatch".to_string()));
            }
            parent = Some(id);
            let LayerPayload::Lines(lines) = layer.payload else {
                return Err(chain_err(
                    id,
                    "delta layer with context payload".to_string(),
                ));
            };
            deltas.push((epoch, lines));
        }

        let master_layer = self.read_layer(entry.master)?;
        if master_layer.kind != LayerKind::Master
            || master_layer.epoch != entry.rec_epoch
            || master_layer.parent != parent
        {
            return Err(chain_err(
                entry.master,
                "master layer does not terminate this backup's chain".to_string(),
            ));
        }
        let LayerPayload::Lines(master) = master_layer.payload else {
            return Err(chain_err(
                entry.master,
                "master layer with context payload".to_string(),
            ));
        };

        let contexts = match entry.context {
            None => Vec::new(),
            Some(id) => {
                let layer = self.read_layer(id)?;
                if layer.kind != LayerKind::Context {
                    return Err(chain_err(id, "expected a context layer".to_string()));
                }
                let LayerPayload::Contexts(triples) = layer.payload else {
                    return Err(chain_err(id, "context layer with line payload".to_string()));
                };
                triples
            }
        };

        // Anti-hybrid cross-check: the master image must equal
        // fall-through over the recoverable deltas. Layers stitched
        // from two different snapshots cannot pass this.
        let mut derived: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
        for (epoch, lines) in &deltas {
            if *epoch <= entry.rec_epoch {
                for &(l, t) in lines {
                    derived.insert(l, t);
                }
            }
        }
        if derived.len() != master.len()
            || !derived
                .iter()
                .zip(&master)
                .all(|((dl, dt), (ml, mt))| dl == ml && dt == mt)
        {
            return Err(chain_err(
                entry.master,
                "master image diverges from delta-chain fall-through".to_string(),
            ));
        }

        Ok(SnapshotExport {
            rec_epoch: entry.rec_epoch,
            max_epoch_seen: entry.max_epoch_seen,
            omcs: entry.omcs,
            vds: entry.vds,
            pool_pages: entry.pool_pages,
            deltas,
            master,
            contexts,
        })
    }

    /// Removes the named backup, decrementing its layers' refcounts.
    /// The layer files stay until [`Store::gc`] quarantines them.
    ///
    /// # Errors
    /// [`StoreError::BackupNotFound`]; [`StoreError::RefcountUnderflow`]
    /// when a refcount would go below zero (a corrupt manifest that
    /// `open` validation was robbed of).
    pub fn remove(&mut self, name: &str) -> Result<(), StoreError> {
        let entry =
            self.manifest
                .backup(name)
                .cloned()
                .ok_or_else(|| StoreError::BackupNotFound {
                    name: name.to_string(),
                })?;
        let mut next = self.manifest.clone();
        next.backups.retain(|b| b.name != name);
        for id in entry.layer_ids() {
            let i = next
                .layers
                .binary_search_by_key(&id, |&(lid, _)| lid)
                .map_err(|_| StoreError::MissingLayer { id })?;
            let meta = &mut next.layers[i].1;
            if meta.refs == 0 {
                return Err(StoreError::RefcountUnderflow {
                    id,
                    stored: 0,
                    actual: 0,
                });
            }
            meta.refs -= 1;
        }
        self.commit(next)
    }

    /// Sweeps zero-ref layers into `quarantine/` (never an immediate
    /// delete: quarantined bytes still serve restores of resurrected
    /// stale roots) and drops leftover shadow files.
    pub fn gc(&mut self) -> Result<GcStats, StoreError> {
        let mut next = self.manifest.clone();
        let zero: Vec<LayerId> = next
            .layers
            .iter()
            .filter(|(_, meta)| meta.refs == 0)
            .map(|&(id, _)| id)
            .collect();
        for &id in &zero {
            let published = layer_path(id);
            if self.io.exists(&published) {
                self.io
                    .rename(&published, &quarantine_path(id))
                    .map_err(io_err)?;
            }
            // Already parked by an interrupted sweep: nothing to move.
        }
        for name in self.io.list("tmp").map_err(io_err)? {
            let _ = self.io.remove(&format!("tmp/{name}"));
        }
        next.layers.retain(|(_, meta)| meta.refs > 0);
        let mut quarantine = next.quarantine.clone();
        quarantine.extend(zero.iter().copied());
        quarantine.sort_unstable();
        quarantine.dedup();
        next.quarantine = quarantine;
        let stats = GcStats {
            quarantined: zero.len(),
            live: next.layers.len(),
        };
        self.commit(next)?;
        Ok(stats)
    }

    /// Deletes every quarantined layer file for good. Safe because
    /// `backup` republishes into `layers/` any quarantined layer that
    /// becomes referenced again.
    pub fn purge_quarantine(&mut self) -> Result<usize, StoreError> {
        let files = self.io.list("quarantine").map_err(io_err)?;
        let count = files.len();
        for name in files {
            self.io
                .remove(&format!("quarantine/{name}"))
                .map_err(io_err)?;
        }
        let mut next = self.manifest.clone();
        next.quarantine.clear();
        self.commit(next)?;
        Ok(count)
    }

    /// Fully verifies the store: refcounts, every backup's layer
    /// checksums, parent chains, and master cross-checks. Returns the
    /// number of backups checked.
    pub fn validate(&self) -> Result<usize, StoreError> {
        self.manifest.verify_refs()?;
        let names: Vec<String> = self
            .manifest
            .backups
            .iter()
            .map(|b| b.name.clone())
            .collect();
        for name in &names {
            self.restore(name)?;
        }
        Ok(names.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{StoreCut, StoreFaultPlane};
    use crate::io::MemIo;

    fn snap(epochs: std::ops::RangeInclusive<u64>, rec: u64) -> SnapshotExport {
        let deltas: Vec<(u64, Vec<(u64, u64)>)> = epochs
            .clone()
            .map(|e| (e, vec![(e % 3, e * 100), (10 + e, e)]))
            .collect();
        let mut master: std::collections::BTreeMap<u64, u64> = Default::default();
        for (e, lines) in &deltas {
            if *e <= rec {
                for &(l, t) in lines {
                    master.insert(l, t);
                }
            }
        }
        SnapshotExport {
            rec_epoch: rec,
            max_epoch_seen: *epochs.end(),
            omcs: 2,
            vds: 2,
            pool_pages: 1024,
            deltas,
            master: master.into_iter().collect(),
            contexts: vec![(0, rec, 7)],
        }
    }

    #[test]
    fn backup_restore_round_trips() {
        let mut store = Store::open(MemIo::new()).unwrap();
        let s = snap(1..=4, 3);
        let stats = store.backup("a", &s).unwrap();
        assert_eq!(stats.new_layers, 6); // 4 deltas + master + context
        assert_eq!(store.restore("a").unwrap(), s);
        assert!(matches!(
            store.restore("nope"),
            Err(StoreError::BackupNotFound { .. })
        ));
        assert!(matches!(
            store.backup("a", &s),
            Err(StoreError::BackupExists { .. })
        ));
    }

    #[test]
    fn incremental_backup_shares_prefix_layers() {
        let mut store = Store::open(MemIo::new()).unwrap();
        let full = snap(1..=4, 3);
        let base = full.truncated(2);
        store.backup("base", &base).unwrap();
        let stats = store.backup("head", &full).unwrap();
        // Epochs 1..=2 are shared; epochs 3..=4, the master and the
        // context differ.
        assert_eq!(stats.shared_layers, 2);
        assert_eq!(stats.new_layers, 4);
        // Backing up identical content again under a new name writes
        // nothing at all.
        let again = store.backup("head2", &full).unwrap();
        assert_eq!(again.new_layers, 0);
        assert_eq!(again.new_bytes, 0);
        assert_eq!(store.restore("head2").unwrap(), full);
    }

    #[test]
    fn reopen_finds_committed_state() {
        let mut store = Store::open(MemIo::new()).unwrap();
        let s = snap(1..=3, 3);
        store.backup("a", &s).unwrap();
        let io = store.into_io();
        let store = Store::open(io).unwrap();
        assert_eq!(store.restore("a").unwrap(), s);
        assert_eq!(store.manifest().version, 1);
    }

    #[test]
    fn gc_quarantines_and_restore_falls_back() {
        let mut store = Store::open(MemIo::new()).unwrap();
        let full = snap(1..=4, 3);
        store.backup("base", &full.truncated(2)).unwrap();
        store.backup("head", &full).unwrap();
        store.remove("head").unwrap();
        let stats = store.gc().unwrap();
        assert_eq!(stats.quarantined, 4); // head-only: deltas 3,4 + master + context
        assert!(stats.live > 0);
        assert_eq!(store.manifest().quarantine.len(), 4);
        // The surviving backup still restores and validates.
        assert_eq!(store.validate().unwrap(), 1);
        // Re-backing-up the full snapshot resurrects quarantined
        // layers into layers/.
        let stats = store.backup("head3", &full).unwrap();
        assert_eq!(stats.new_layers, 4);
        assert!(store.manifest().quarantine.is_empty());
        let purged = store.purge_quarantine().unwrap();
        assert_eq!(purged, 4);
        assert_eq!(store.restore("head3").unwrap(), full);
    }

    #[test]
    fn remove_then_gc_then_purge_is_idempotent() {
        let mut store = Store::open(MemIo::new()).unwrap();
        store.backup("only", &snap(1..=2, 2)).unwrap();
        store.remove("only").unwrap();
        store.gc().unwrap();
        let second = store.gc().unwrap();
        assert_eq!(second.quarantined, 0);
        store.purge_quarantine().unwrap();
        assert_eq!(store.purge_quarantine().unwrap(), 0);
        assert!(matches!(
            store.remove("only"),
            Err(StoreError::BackupNotFound { .. })
        ));
    }

    #[test]
    fn every_crash_prefix_of_a_full_script_opens_to_a_consistent_state() {
        // Record a backup → backup → remove → gc script, then replay a
        // crash at every journal prefix (and a torn variant of each
        // boundary write) and require: open succeeds, the manifest is
        // one of the committed states, and every listed backup restores
        // to exactly the image that state committed.
        let full = snap(1..=4, 3);
        let base = full.truncated(2);
        let mut store = Store::open(MemIo::recording()).unwrap();
        store.backup("base", &base).unwrap();
        store.backup("head", &full).unwrap();
        store.remove("head").unwrap();
        store.gc().unwrap();
        let mut io = store.into_io();
        let plane = StoreFaultPlane::new(io.take_journal());
        assert!(plane.len() > 10);
        for site in 0..=plane.len() {
            for torn_keep in [None, Some(0), Some(5)] {
                let fs = plane.replay(&StoreCut { site, torn_keep });
                let store = Store::open(fs).unwrap_or_else(|e| {
                    panic!("open failed at crash site {site} (torn {torn_keep:?}): {e}")
                });
                let version = store.manifest().version;
                let expect: &[(&str, &SnapshotExport)] = match version {
                    0 => &[],
                    1 => &[("base", &base)],
                    2 => &[("base", &base), ("head", &full)],
                    3 | 4 => &[("base", &base)],
                    v => panic!("impossible manifest version {v} at site {site}"),
                };
                let names: Vec<&str> = store
                    .manifest()
                    .backups
                    .iter()
                    .map(|b| b.name.as_str())
                    .collect();
                assert_eq!(
                    names,
                    expect.iter().map(|(n, _)| *n).collect::<Vec<_>>(),
                    "hybrid backup set at site {site}"
                );
                for (name, image) in expect {
                    assert_eq!(
                        &store.restore(name).unwrap_or_else(|e| panic!(
                            "restore of {name} failed at site {site}: {e}"
                        )),
                        *image,
                        "hybrid image for {name} at site {site}"
                    );
                }
            }
        }
    }

    #[test]
    fn corrupting_any_live_file_yields_a_typed_error_or_prior_state() {
        let mut store = Store::open(MemIo::new()).unwrap();
        let s = snap(1..=3, 3);
        store.backup("a", &s).unwrap();
        let io = store.into_io();
        for path in io.paths() {
            for bit in [0u64, 63, 1007] {
                let mut fs = io.clone();
                fs.flip_bit(&path, bit);
                match Store::open(fs) {
                    Err(e) => {
                        // Typed error; which one depends on the victim.
                        let _ = e.name();
                    }
                    Ok(store) => match store.restore("a") {
                        Err(e) => {
                            let _ = e.name();
                        }
                        Ok(image) => assert_eq!(
                            image, s,
                            "flip of {path} bit {bit} silently changed the image"
                        ),
                    },
                }
            }
        }
    }

    #[test]
    fn both_roots_lost_in_a_committed_store_is_torn_manifest() {
        let mut store = Store::open(MemIo::new()).unwrap();
        store.backup("a", &snap(1..=2, 2)).unwrap();
        store.backup("b", &snap(1..=3, 3)).unwrap();
        let mut io = store.into_io();
        use crate::io::StoreIo as _;
        io.remove("ROOT.0").unwrap();
        io.remove("ROOT.1").unwrap();
        assert!(matches!(
            Store::open(io),
            Err(StoreError::TornManifest { .. })
        ));
    }
}
