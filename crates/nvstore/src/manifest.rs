//! The versioned store manifest.
//!
//! The manifest is the store's single source of truth: which backups
//! exist, which layers each one references (in epoch order, mirroring
//! the parent chain inside the layers themselves), and a redundant
//! per-layer reference count that lets `open` detect a manifest whose
//! refcounts would let GC reap a live layer
//! ([`crate::StoreError::RefcountUnderflow`]).
//!
//! Manifests are immutable once published: every mutation writes a new
//! `manifests/<version>.json` and flips the root cell to it, so any two
//! root cells always describe two *complete* historical states. The
//! JSON is emitted deterministically (fixed field order, sorted layer
//! table) and parsed by the suite's own [`nvsim::json`]; a `schema`
//! field written by a future version is rejected up front rather than
//! misread.

use std::collections::BTreeMap;

use nvsim::json::{self, JsonValue};

use crate::error::StoreError;
use crate::layer::{LayerId, LayerKind};

/// Manifest schema version this build reads and writes.
pub const MANIFEST_SCHEMA: u64 = 1;

/// One backup: a named, immutable snapshot of an `Mnm`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BackupEntry {
    /// Unique backup name.
    pub name: String,
    /// Recoverable epoch at backup time.
    pub rec_epoch: u64,
    /// Newest epoch any OMC had seen at backup time.
    pub max_epoch_seen: u64,
    /// Number of OMCs in the source topology.
    pub omcs: usize,
    /// Number of versioned domains in the source topology.
    pub vds: usize,
    /// Overlay pool size (pages) of the source OMC config.
    pub pool_pages: usize,
    /// The master-mapping layer (Mmaster at `rec_epoch`).
    pub master: LayerId,
    /// The context-dump layer, when any contexts were recorded.
    pub context: Option<LayerId>,
    /// Per-epoch delta layers, ascending by epoch.
    pub deltas: Vec<(u64, LayerId)>,
}

impl BackupEntry {
    /// Every layer id this backup references (deltas, master, context).
    pub fn layer_ids(&self) -> Vec<LayerId> {
        let mut ids: Vec<LayerId> = self.deltas.iter().map(|&(_, id)| id).collect();
        ids.push(self.master);
        ids.extend(self.context);
        ids
    }
}

/// Per-layer bookkeeping in the manifest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LayerMeta {
    /// What the layer holds.
    pub kind: LayerKind,
    /// The epoch the layer describes.
    pub epoch: u64,
    /// Parent layer in the chain, if any.
    pub parent: Option<LayerId>,
    /// Encoded size in bytes.
    pub bytes: u64,
    /// Number of backups referencing this layer.
    pub refs: u64,
}

/// A complete, immutable manifest state.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Manifest {
    /// Monotonic version; each commit publishes `version + 1`.
    pub version: u64,
    /// Backups in creation order.
    pub backups: Vec<BackupEntry>,
    /// Layer table, sorted by id.
    pub layers: Vec<(LayerId, LayerMeta)>,
    /// Layers moved aside by GC (still restorable), sorted by id.
    pub quarantine: Vec<LayerId>,
}

impl Manifest {
    /// Looks up a backup by name.
    pub fn backup(&self, name: &str) -> Option<&BackupEntry> {
        self.backups.iter().find(|b| b.name == name)
    }

    /// Looks up a layer's bookkeeping entry.
    pub fn layer_meta(&self, id: LayerId) -> Option<&LayerMeta> {
        self.layers
            .binary_search_by_key(&id, |&(lid, _)| lid)
            .ok()
            .map(|i| &self.layers[i].1)
    }

    /// Recomputes each layer's refcount from the backup list.
    pub fn recount_refs(&self) -> BTreeMap<LayerId, u64> {
        let mut counts: BTreeMap<LayerId, u64> = BTreeMap::new();
        for b in &self.backups {
            for id in b.layer_ids() {
                *counts.entry(id).or_insert(0) += 1;
            }
        }
        counts
    }

    /// Verifies the stored refcounts against [`Manifest::recount_refs`]
    /// and that every referenced layer has a table entry.
    ///
    /// # Errors
    /// [`StoreError::RefcountUnderflow`] on the first mismatch (by
    /// layer id order); [`StoreError::MissingLayer`] when a backup
    /// references an id absent from the layer table.
    pub fn verify_refs(&self) -> Result<(), StoreError> {
        let actual = self.recount_refs();
        for (&id, &n) in &actual {
            match self.layer_meta(id) {
                None => return Err(StoreError::MissingLayer { id }),
                Some(meta) if meta.refs != n => {
                    return Err(StoreError::RefcountUnderflow {
                        id,
                        stored: meta.refs,
                        actual: n,
                    })
                }
                Some(_) => {}
            }
        }
        for &(id, ref meta) in &self.layers {
            let n = actual.get(&id).copied().unwrap_or(0);
            if meta.refs != n {
                return Err(StoreError::RefcountUnderflow {
                    id,
                    stored: meta.refs,
                    actual: n,
                });
            }
        }
        Ok(())
    }

    /// Serializes deterministically: fixed field order, backups in
    /// creation order, layer table sorted by id. Byte-identical input
    /// states produce byte-identical manifests (the CI `cmp` gate
    /// depends on this).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.layers.len() * 96);
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": {MANIFEST_SCHEMA},\n"));
        out.push_str(&format!("  \"version\": {},\n", self.version));
        out.push_str("  \"backups\": [");
        for (i, b) in self.backups.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"name\": \"{}\", ", json::escape(&b.name)));
            out.push_str(&format!("\"rec_epoch\": {}, ", b.rec_epoch));
            out.push_str(&format!("\"max_epoch_seen\": {}, ", b.max_epoch_seen));
            out.push_str(&format!("\"omcs\": {}, ", b.omcs));
            out.push_str(&format!("\"vds\": {}, ", b.vds));
            out.push_str(&format!("\"pool_pages\": {}, ", b.pool_pages));
            out.push_str(&format!("\"master\": \"{}\", ", b.master));
            match b.context {
                Some(id) => out.push_str(&format!("\"context\": \"{id}\", ")),
                None => out.push_str("\"context\": null, "),
            }
            out.push_str("\"deltas\": [");
            for (j, (epoch, id)) in b.deltas.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("{{\"epoch\": {epoch}, \"layer\": \"{id}\"}}"));
            }
            out.push_str("]}");
        }
        if self.backups.is_empty() {
            out.push_str("],\n");
        } else {
            out.push_str("\n  ],\n");
        }
        out.push_str("  \"layers\": [");
        for (i, (id, meta)) in self.layers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"id\": \"{id}\", "));
            out.push_str(&format!("\"kind\": \"{}\", ", meta.kind.label()));
            out.push_str(&format!("\"epoch\": {}, ", meta.epoch));
            match meta.parent {
                Some(p) => out.push_str(&format!("\"parent\": \"{p}\", ")),
                None => out.push_str("\"parent\": null, "),
            }
            out.push_str(&format!("\"bytes\": {}, ", meta.bytes));
            out.push_str(&format!("\"refs\": {}}}", meta.refs));
        }
        if self.layers.is_empty() {
            out.push_str("],\n");
        } else {
            out.push_str("\n  ],\n");
        }
        out.push_str("  \"quarantine\": [");
        for (i, id) in self.quarantine.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{id}\""));
        }
        out.push_str("]\n}\n");
        out
    }

    /// Parses a manifest document.
    ///
    /// # Errors
    /// [`StoreError::SchemaVersion`] for documents written by a future
    /// schema; [`StoreError::TornManifest`] for anything malformed.
    pub fn parse(text: &str) -> Result<Manifest, StoreError> {
        let torn = |detail: &str| StoreError::TornManifest {
            detail: detail.to_string(),
        };
        let doc = json::parse(text).map_err(|e| torn(&format!("manifest is not JSON: {e}")))?;
        let schema = doc
            .get("schema")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| torn("manifest lacks a schema field"))?;
        if schema > MANIFEST_SCHEMA {
            return Err(StoreError::SchemaVersion {
                found: schema,
                supported: MANIFEST_SCHEMA,
            });
        }
        let version = doc
            .get("version")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| torn("manifest lacks a version field"))?;

        let id_field = |v: &JsonValue, key: &str| -> Result<LayerId, StoreError> {
            v.get(key)
                .and_then(JsonValue::as_str)
                .and_then(LayerId::parse)
                .ok_or_else(|| torn(&format!("bad layer id in field {key:?}")))
        };
        let opt_id_field = |v: &JsonValue, key: &str| -> Result<Option<LayerId>, StoreError> {
            match v.get(key) {
                Some(JsonValue::Null) => Ok(None),
                Some(JsonValue::String(s)) => LayerId::parse(s)
                    .map(Some)
                    .ok_or_else(|| torn(&format!("bad layer id in field {key:?}"))),
                _ => Err(torn(&format!("bad layer id in field {key:?}"))),
            }
        };
        let u64_field = |v: &JsonValue, key: &str| -> Result<u64, StoreError> {
            v.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| torn(&format!("bad numeric field {key:?}")))
        };

        let mut backups = Vec::new();
        for b in doc
            .get("backups")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| torn("manifest lacks a backups array"))?
        {
            let mut deltas = Vec::new();
            for d in b
                .get("deltas")
                .and_then(JsonValue::as_array)
                .ok_or_else(|| torn("backup lacks a deltas array"))?
            {
                deltas.push((u64_field(d, "epoch")?, id_field(d, "layer")?));
            }
            backups.push(BackupEntry {
                name: b
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| torn("backup lacks a name"))?
                    .to_string(),
                rec_epoch: u64_field(b, "rec_epoch")?,
                max_epoch_seen: u64_field(b, "max_epoch_seen")?,
                omcs: u64_field(b, "omcs")? as usize,
                vds: u64_field(b, "vds")? as usize,
                pool_pages: u64_field(b, "pool_pages")? as usize,
                master: id_field(b, "master")?,
                context: opt_id_field(b, "context")?,
                deltas,
            });
        }

        let mut layers = Vec::new();
        for l in doc
            .get("layers")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| torn("manifest lacks a layers array"))?
        {
            let kind = l
                .get("kind")
                .and_then(JsonValue::as_str)
                .and_then(LayerKind::from_label)
                .ok_or_else(|| torn("layer entry has an unknown kind"))?;
            layers.push((
                id_field(l, "id")?,
                LayerMeta {
                    kind,
                    epoch: u64_field(l, "epoch")?,
                    parent: opt_id_field(l, "parent")?,
                    bytes: u64_field(l, "bytes")?,
                    refs: u64_field(l, "refs")?,
                },
            ));
        }
        if !layers.windows(2).all(|w| w[0].0 < w[1].0) {
            return Err(torn("layer table is not sorted by id"));
        }

        let mut quarantine = Vec::new();
        for q in doc
            .get("quarantine")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| torn("manifest lacks a quarantine array"))?
        {
            quarantine.push(
                q.as_str()
                    .and_then(LayerId::parse)
                    .ok_or_else(|| torn("bad layer id in quarantine"))?,
            );
        }

        Ok(Manifest {
            version,
            backups,
            layers,
            quarantine,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        let l1 = LayerId(0x1111);
        let l2 = LayerId(0x2222);
        let lm = LayerId(0x3333);
        Manifest {
            version: 4,
            backups: vec![BackupEntry {
                name: "snap \"a\"".to_string(),
                rec_epoch: 2,
                max_epoch_seen: 3,
                omcs: 2,
                vds: 4,
                pool_pages: 65536,
                master: lm,
                context: None,
                deltas: vec![(1, l1), (2, l2)],
            }],
            layers: vec![
                (
                    l1,
                    LayerMeta {
                        kind: LayerKind::Delta,
                        epoch: 1,
                        parent: None,
                        bytes: 64,
                        refs: 1,
                    },
                ),
                (
                    l2,
                    LayerMeta {
                        kind: LayerKind::Delta,
                        epoch: 2,
                        parent: Some(l1),
                        bytes: 64,
                        refs: 1,
                    },
                ),
                (
                    lm,
                    LayerMeta {
                        kind: LayerKind::Master,
                        epoch: 2,
                        parent: Some(l2),
                        bytes: 96,
                        refs: 1,
                    },
                ),
            ],
            quarantine: vec![LayerId(0xffff)],
        }
    }

    #[test]
    fn json_round_trips_exactly() {
        let m = sample();
        let text = m.to_json();
        let back = Manifest::parse(&text).unwrap();
        assert_eq!(back, m);
        // Determinism: serializing the parse result reproduces the
        // original bytes.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn empty_manifest_round_trips() {
        let m = Manifest::default();
        assert_eq!(Manifest::parse(&m.to_json()).unwrap(), m);
    }

    #[test]
    fn future_schema_is_rejected() {
        let text = sample().to_json().replace(
            &format!("\"schema\": {MANIFEST_SCHEMA}"),
            &format!("\"schema\": {}", MANIFEST_SCHEMA + 1),
        );
        assert!(matches!(
            Manifest::parse(&text),
            Err(StoreError::SchemaVersion { found, supported })
                if found == MANIFEST_SCHEMA + 1 && supported == MANIFEST_SCHEMA
        ));
    }

    #[test]
    fn refcount_mismatch_is_detected() {
        let mut m = sample();
        m.layers[1].1.refs = 0; // understated: GC would reap a live layer
        assert!(matches!(
            m.verify_refs(),
            Err(StoreError::RefcountUnderflow {
                stored: 0,
                actual: 1,
                ..
            })
        ));
        let mut m = sample();
        m.backups[0].deltas.push((9, LayerId(0x9999)));
        assert!(matches!(
            m.verify_refs(),
            Err(StoreError::MissingLayer { id }) if id == LayerId(0x9999)
        ));
    }

    #[test]
    fn garbage_is_a_torn_manifest() {
        assert!(matches!(
            Manifest::parse("{\"schema\": 1"),
            Err(StoreError::TornManifest { .. })
        ));
        assert!(matches!(
            Manifest::parse("{\"version\": 1}"),
            Err(StoreError::TornManifest { .. })
        ));
    }
}
