//! The bridge between a live [`Mnm`] and the store.
//!
//! [`SnapshotExport`] is the store's canonical, order-normalized view
//! of a snapshot: the recoverable epoch, the source topology, every
//! captured per-epoch overlay delta (sorted by line within each epoch),
//! the master mapping at the recoverable epoch, and the processor
//! context dumps. Exports are *exact* — if any epoch's tables were
//! reclaimed or compacted, export fails with a typed error instead of
//! silently producing a lossy backup.
//!
//! A restored export rebuilds a **real** `Mnm` by replaying the deltas
//! through `receive_version` and finishing at the recorded recoverable
//! epoch, so everything downstream of a live backend — §V-E recovery
//! (`DurableState`), `SnapshotStore` epoch resolution including 16-bit
//! wrap semantics, and `nvserve::Mount` — works unchanged on a restored
//! snapshot.

use nvoverlay::mnm::{Mnm, OmcConfig, SnapshotRetention};
use nvsim::nvm::Nvm;
use nvsim::{LineAddr, VdId};

use crate::error::StoreError;

/// A complete, order-normalized snapshot image.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotExport {
    /// Recoverable epoch at export time.
    pub rec_epoch: u64,
    /// Newest epoch any OMC had seen at export time.
    pub max_epoch_seen: u64,
    /// Number of OMCs in the source topology.
    pub omcs: usize,
    /// Number of versioned domains in the source topology.
    pub vds: usize,
    /// Overlay pool size (pages) of the source OMC config.
    pub pool_pages: usize,
    /// `(epoch, sorted (line, token) pairs)`, ascending by epoch. May
    /// include epochs beyond `rec_epoch` (captured but not yet
    /// recoverable); those restore as not-yet-recoverable too.
    pub deltas: Vec<(u64, Vec<(u64, u64)>)>,
    /// The master mapping at `rec_epoch`, sorted by line.
    pub master: Vec<(u64, u64)>,
    /// Context dumps `(vd, epoch, blob)`, sorted by `(vd, epoch)`.
    pub contexts: Vec<(u64, u64, u64)>,
}

impl SnapshotExport {
    /// Captures an exact export of `mnm`.
    ///
    /// # Errors
    /// [`StoreError::BufferNotDrained`] when an OMC buffer still holds
    /// versions (finish the epoch first, as `nvserve::Mount` requires);
    /// [`StoreError::UnreadableEpoch`] when any captured epoch's tables
    /// were reclaimed or compacted away.
    pub fn from_mnm(mnm: &Mnm) -> Result<SnapshotExport, StoreError> {
        for (i, omc) in mnm.omcs().iter().enumerate() {
            if let Some(buf) = omc.buffer() {
                if !buf.is_empty() {
                    return Err(StoreError::BufferNotDrained {
                        omc: i,
                        buffered: buf.len(),
                    });
                }
            }
        }
        let mut deltas = Vec::new();
        for (epoch, readable) in mnm.epochs() {
            if !readable {
                return Err(StoreError::UnreadableEpoch { epoch });
            }
            let lines = mnm
                .epoch_delta(epoch)
                .ok_or(StoreError::UnreadableEpoch { epoch })?;
            deltas.push((
                epoch,
                lines
                    .into_iter()
                    .map(|(l, t)| (l.raw(), t))
                    .collect::<Vec<_>>(),
            ));
        }
        let mut master: Vec<(u64, u64)> = mnm.master_image().map(|(l, t)| (l.raw(), t)).collect();
        master.sort_unstable_by_key(|&(l, _)| l);
        let contexts = mnm
            .contexts_sorted()
            .into_iter()
            .map(|(vd, epoch, blob)| (vd as u64, epoch, blob))
            .collect();
        Ok(SnapshotExport {
            rec_epoch: mnm.rec_epoch(),
            max_epoch_seen: mnm.max_epoch_seen(),
            omcs: mnm.omcs().len(),
            vds: mnm.vd_count(),
            pool_pages: mnm.omcs()[0].config().pool_pages,
            deltas,
            master,
            contexts,
        })
    }

    /// A snapshot of this export as it stood at epoch `upto`: deltas,
    /// contexts and the recoverable epoch clamped to `upto`, with the
    /// master image re-derived by last-writer-wins fall-through over
    /// the surviving recoverable deltas. Used to stage incremental
    /// backups (the truncated export's layer chain is a prefix of the
    /// full one, so the layers are shared).
    pub fn truncated(&self, upto: u64) -> SnapshotExport {
        if upto >= self.max_epoch_seen {
            return self.clone();
        }
        let rec_epoch = self.rec_epoch.min(upto);
        let deltas: Vec<(u64, Vec<(u64, u64)>)> = self
            .deltas
            .iter()
            .filter(|&&(e, _)| e <= upto)
            .cloned()
            .collect();
        let mut master_map: std::collections::BTreeMap<u64, u64> =
            std::collections::BTreeMap::new();
        for (epoch, lines) in &deltas {
            if *epoch <= rec_epoch {
                for &(l, t) in lines {
                    master_map.insert(l, t);
                }
            }
        }
        SnapshotExport {
            rec_epoch,
            max_epoch_seen: upto,
            omcs: self.omcs,
            vds: self.vds,
            pool_pages: self.pool_pages,
            deltas,
            master: master_map.into_iter().collect(),
            contexts: self
                .contexts
                .iter()
                .filter(|&&(_, e, _)| e <= upto)
                .copied()
                .collect(),
        }
    }

    /// Rebuilds a live backend from this export by replaying every
    /// delta through `receive_version` and finishing at the recorded
    /// recoverable epoch. The returned `Mnm` passes §V-E recovery,
    /// resolves epochs (including 16-bit wrap rejection) exactly as the
    /// original did, and mounts under `nvserve`.
    ///
    /// # Errors
    /// [`StoreError::Checksum`] when the replayed master image diverges
    /// from the export's recorded master — the defense against a store
    /// that silently stitched layers from different snapshots together.
    pub fn rebuild(&self) -> Result<(Mnm, Nvm), StoreError> {
        let cfg = OmcConfig {
            pool_pages: self.pool_pages,
            // Never compact during replay: compaction would reclaim
            // per-epoch tables and make the restored snapshot lossier
            // than the backup. Growth covers any pool pressure.
            compaction_threshold: 2.0,
            grow_pages: 16 * 1024,
            retention: SnapshotRetention::KeepAll,
            buffer: None,
        };
        let mut nvm = Nvm::new(4, 400, 200, 8, 100_000);
        let mut mnm = Mnm::new(self.omcs.max(1), self.vds.max(1), cfg);
        for (epoch, lines) in &self.deltas {
            for &(line, token) in lines {
                mnm.receive_version(&mut nvm, 0, LineAddr::new(line), token, *epoch);
            }
        }
        for &(vd, epoch, blob) in &self.contexts {
            mnm.record_context(VdId(vd as u16), epoch, blob);
        }
        mnm.finish(&mut nvm, 0, self.rec_epoch);
        mnm.note_epoch_seen(self.max_epoch_seen);
        let mut rebuilt: Vec<(u64, u64)> = mnm.master_image().map(|(l, t)| (l.raw(), t)).collect();
        rebuilt.sort_unstable_by_key(|&(l, _)| l);
        if rebuilt != self.master {
            return Err(StoreError::Checksum {
                path: "<rebuild>".to_string(),
                detail: format!(
                    "replayed master image diverges from the stored master ({} vs {} lines)",
                    rebuilt.len(),
                    self.master.len()
                ),
            });
        }
        Ok((mnm, nvm))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded_mnm() -> (Mnm, Nvm) {
        let mut nvm = Nvm::new(4, 400, 200, 8, 100_000);
        let mut mnm = Mnm::new(2, 2, OmcConfig::default());
        for epoch in 1..=4u64 {
            for k in 0..8u64 {
                mnm.receive_version(
                    &mut nvm,
                    0,
                    LineAddr::new(k * 7 + epoch),
                    100 * epoch + k,
                    epoch,
                );
            }
        }
        mnm.record_context(VdId(0), 3, 0xc0);
        mnm.record_context(VdId(1), 3, 0xc1);
        mnm.finish(&mut nvm, 0, 3);
        (mnm, nvm)
    }

    #[test]
    fn export_rebuild_round_trips() {
        let (mnm, _nvm) = seeded_mnm();
        let export = SnapshotExport::from_mnm(&mnm).unwrap();
        assert_eq!(export.rec_epoch, 3);
        assert_eq!(export.max_epoch_seen, 4);
        assert_eq!(export.deltas.len(), 4);

        let (restored, _) = export.rebuild().unwrap();
        assert_eq!(restored.rec_epoch(), mnm.rec_epoch());
        assert_eq!(restored.max_epoch_seen(), mnm.max_epoch_seen());
        assert_eq!(restored.epochs(), mnm.epochs());
        for epoch in 1..=4u64 {
            assert_eq!(restored.epoch_delta(epoch), mnm.epoch_delta(epoch));
            for k in 0..8u64 {
                let l = LineAddr::new(k * 7 + epoch);
                assert_eq!(restored.time_travel(l, 3), mnm.time_travel(l, 3));
            }
        }
        assert_eq!(restored.context(VdId(0), 3), Some(0xc0));
        // And the round trip is a fixed point.
        assert_eq!(SnapshotExport::from_mnm(&restored).unwrap(), export);
    }

    #[test]
    fn truncated_is_a_prefix_snapshot() {
        let (mnm, _nvm) = seeded_mnm();
        let export = SnapshotExport::from_mnm(&mnm).unwrap();
        let cut = export.truncated(2);
        assert_eq!(cut.rec_epoch, 2);
        assert_eq!(cut.max_epoch_seen, 2);
        assert_eq!(cut.deltas.len(), 2);
        assert!(cut.contexts.is_empty());
        // The truncated master equals fall-through over epochs <= 2.
        let (restored, _) = cut.rebuild().unwrap();
        for &(l, _) in &cut.master {
            assert_eq!(
                restored.read_master(LineAddr::new(l)),
                mnm.time_travel(LineAddr::new(l), 2)
            );
        }
    }

    #[test]
    fn rebuild_detects_a_stitched_master() {
        let (mnm, _nvm) = seeded_mnm();
        let mut export = SnapshotExport::from_mnm(&mnm).unwrap();
        export.master[0].1 ^= 1;
        assert!(matches!(export.rebuild(), Err(StoreError::Checksum { .. })));
    }
}
