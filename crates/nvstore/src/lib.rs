//! # nvstore — crash-consistent persistent snapshot store
//!
//! nvchaos proves that in-simulation crash cuts recover to a consistent
//! §V-E image; this crate makes snapshots *durable artifacts*. It
//! serializes per-epoch overlay deltas and the master mapping
//! (`Mmaster`) of an [`nvoverlay::mnm::Mnm`] into an on-disk,
//! content-fingerprinted layer store:
//!
//! * [`layer`] — immutable, content-addressed layers (FNV-1a 64-bit
//!   ids, embedded checksums, parent chains linking each epoch delta to
//!   its predecessor). Identical content always produces byte-identical
//!   layer files, so layers are shared between backups and a repeated
//!   backup writes nothing.
//! * [`manifest`] — the versioned manifest: every backup's layer list
//!   plus a reference count per layer. Schema-versioned JSON, parsed by
//!   the suite's own [`nvsim::json`].
//! * [`store`] — the store itself: `open` / `backup` / `restore` /
//!   `remove` / `gc` over a [`io::StoreIo`] backend. Mutations follow a
//!   journaled shadow-file protocol (write temp, checksum, publish) and
//!   commit through ping-pong root cells (`ROOT.0`/`ROOT.1`), mirroring
//!   the rec-epoch root-cell fencing the simulator enforces with
//!   `Nvm::write_fenced`: a crash after **any** prefix of completed
//!   writes leaves either the previous or the new manifest fully valid,
//!   never a hybrid.
//! * [`export`] — [`export::SnapshotExport`]: the bridge between a live
//!   `Mnm` and the store. A restored export rebuilds a real `Mnm` that
//!   passes §V-E recovery and mounts under `nvserve`.
//! * [`io`] / [`fault`] — the disk backend, plus the in-memory
//!   journaling backend and [`fault::StoreFaultPlane`] that replays
//!   seeded prefix cuts, torn tail writes, and bit flips for the
//!   `nvo chaos --store` explorer.
//!
//! Every failure is a typed [`StoreError`] — the store never panics on
//! corrupt input and never serves a partial image.

#![warn(missing_docs)]

pub mod error;
pub mod export;
pub mod fault;
pub mod io;
pub mod layer;
pub mod manifest;
pub mod store;

pub use error::StoreError;
pub use export::SnapshotExport;
pub use fault::{StoreCut, StoreFaultPlane};
pub use io::{DiskIo, MemIo, StoreIo, StoreOp};
pub use layer::{fnv1a, Layer, LayerId, LayerKind, LayerPayload};
pub use manifest::{BackupEntry, LayerMeta, Manifest, MANIFEST_SCHEMA};
pub use store::{BackupStats, GcStats, Store};
