//! The store fault plane: deterministic crash/corruption replay for
//! file I/O.
//!
//! This is `nvsim::fault` transplanted from NVM writes to store
//! mutations. A recording [`MemIo`] journals every completed operation
//! of a backup/restore/gc script; the fault plane then replays
//! arbitrary *prefix cuts* of that journal — optionally tearing the
//! write at the crash boundary to a byte prefix, and optionally
//! flipping bits in surviving files — to produce the filesystem a crash
//! (or latent media corruption) would have left behind. The chaos
//! explorer (`nvchaos::store_chaos`) opens the store on each replayed
//! image and asserts the robustness contract: a clean restore of a
//! prior consistent manifest, or a typed [`crate::StoreError`] — never
//! a panic or a hybrid image.

use crate::io::{MemIo, StoreOp};

/// One injected crash cut into the op journal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoreCut {
    /// Number of journal ops that completed before the crash; ops
    /// `0..site` are applied in full.
    pub site: usize,
    /// When the op at `site` is a write, persist only this many of its
    /// bytes (a torn tail). `None` drops the boundary op entirely.
    /// Renames and removes are atomic, so a torn boundary leaves them
    /// unapplied.
    pub torn_keep: Option<usize>,
}

/// A journal of completed store mutations plus deterministic replay.
#[derive(Clone, Debug)]
pub struct StoreFaultPlane {
    journal: Vec<StoreOp>,
}

impl StoreFaultPlane {
    /// Wraps a journal taken from [`MemIo::take_journal`].
    pub fn new(journal: Vec<StoreOp>) -> StoreFaultPlane {
        StoreFaultPlane { journal }
    }

    /// The journaled operations, in completion order.
    pub fn ops(&self) -> &[StoreOp] {
        &self.journal
    }

    /// Number of journaled operations (valid cut sites are
    /// `0..=len()`).
    pub fn len(&self) -> usize {
        self.journal.len()
    }

    /// True when nothing was journaled.
    pub fn is_empty(&self) -> bool {
        self.journal.is_empty()
    }

    /// Replays the journal up to `cut`, returning the post-crash
    /// filesystem image.
    pub fn replay(&self, cut: &StoreCut) -> MemIo {
        let mut fs = MemIo::new();
        let site = cut.site.min(self.journal.len());
        for op in &self.journal[..site] {
            fs.apply(op);
        }
        if let (Some(keep), Some(StoreOp::Write { path, data })) =
            (cut.torn_keep, self.journal.get(site))
        {
            fs.apply_torn_write(path, data, keep);
        }
        fs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::StoreIo;

    fn plane() -> StoreFaultPlane {
        let mut io = MemIo::recording();
        io.write("tmp/x", b"abcdef").unwrap();
        io.rename("tmp/x", "layers/x").unwrap();
        io.write("ROOT.0", b"root").unwrap();
        StoreFaultPlane::new(io.take_journal())
    }

    #[test]
    fn prefix_cuts_are_prefix_closed() {
        let p = plane();
        let at0 = p.replay(&StoreCut {
            site: 0,
            torn_keep: None,
        });
        assert!(at0.paths().is_empty());
        let at2 = p.replay(&StoreCut {
            site: 2,
            torn_keep: None,
        });
        assert_eq!(at2.paths(), vec!["layers/x"]);
        assert!(!at2.exists("ROOT.0"));
        let all = p.replay(&StoreCut {
            site: 3,
            torn_keep: None,
        });
        assert_eq!(all.read("ROOT.0").unwrap(), b"root");
    }

    #[test]
    fn torn_boundary_write_keeps_a_byte_prefix() {
        let p = plane();
        let torn = p.replay(&StoreCut {
            site: 0,
            torn_keep: Some(3),
        });
        assert_eq!(torn.read("tmp/x").unwrap(), b"abc");
        // Boundary op 1 is a rename: atomic, so a torn cut leaves it
        // unapplied entirely.
        let at_rename = p.replay(&StoreCut {
            site: 1,
            torn_keep: Some(2),
        });
        assert_eq!(at_rename.read("tmp/x").unwrap(), b"abcdef");
        assert!(!at_rename.exists("layers/x"));
    }
}
