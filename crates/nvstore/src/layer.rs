//! Content-addressed snapshot layers.
//!
//! A layer is the unit of storage and sharing: one per-epoch overlay
//! delta, one master-mapping image, or one processor-context dump, in a
//! canonical little-endian encoding whose trailing FNV-1a checksum *is*
//! the layer's content id (so the id both names the file and
//! authenticates every byte in it). Layers embed the id of their parent
//! layer — the previous epoch's delta — forming the same committed
//! parent chains ross's overlay snapshotter uses; two backups whose
//! epoch prefixes agree therefore produce byte-identical chain
//! prefixes, which is what makes incremental backup ("only layers
//! absent from the store are written") fall out of content addressing
//! alone.

use std::fmt;

use crate::error::StoreError;

/// Layer encoding schema this build reads and writes.
pub const LAYER_SCHEMA: u16 = 1;

/// Magic bytes opening every layer file.
pub const LAYER_MAGIC: [u8; 4] = *b"NVL1";

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a over `bytes` — the store's fingerprint function (the
/// same one the trace reader and serve report already use).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A layer's content id: the FNV-1a 64 fingerprint of its encoded
/// bytes. Displayed (and stored on disk) as 16 lowercase hex digits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LayerId(pub u64);

impl LayerId {
    /// Parses the 16-hex-digit form produced by `Display`.
    pub fn parse(hex: &str) -> Option<LayerId> {
        if hex.len() != 16 {
            return None;
        }
        u64::from_str_radix(hex, 16).ok().map(LayerId)
    }
}

impl fmt::Display for LayerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// What a layer holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LayerKind {
    /// The incremental overlay delta of exactly one epoch.
    Delta,
    /// The full master mapping (`Mmaster`) at the recoverable epoch.
    Master,
    /// Processor-context dumps (`(vd, epoch, blob)` triples).
    Context,
}

impl LayerKind {
    fn code(self) -> u8 {
        match self {
            LayerKind::Delta => 0,
            LayerKind::Master => 1,
            LayerKind::Context => 2,
        }
    }

    fn from_code(code: u8) -> Option<LayerKind> {
        match code {
            0 => Some(LayerKind::Delta),
            1 => Some(LayerKind::Master),
            2 => Some(LayerKind::Context),
            _ => None,
        }
    }

    /// Kebab-case name used in the manifest JSON.
    pub fn label(self) -> &'static str {
        match self {
            LayerKind::Delta => "delta",
            LayerKind::Master => "master",
            LayerKind::Context => "context",
        }
    }

    /// Inverse of [`LayerKind::label`].
    pub fn from_label(label: &str) -> Option<LayerKind> {
        match label {
            "delta" => Some(LayerKind::Delta),
            "master" => Some(LayerKind::Master),
            "context" => Some(LayerKind::Context),
            _ => None,
        }
    }
}

/// A layer's payload. Delta and master layers carry `(line, token)`
/// pairs sorted by line; context layers carry `(vd, epoch, blob)`
/// triples sorted by `(vd, epoch)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LayerPayload {
    /// Sorted `(line_raw, token)` pairs.
    Lines(Vec<(u64, u64)>),
    /// Sorted `(vd, epoch, blob)` context triples.
    Contexts(Vec<(u64, u64, u64)>),
}

impl LayerPayload {
    /// Number of entries.
    pub fn len(&self) -> usize {
        match self {
            LayerPayload::Lines(v) => v.len(),
            LayerPayload::Contexts(v) => v.len(),
        }
    }

    /// True when the payload holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One immutable, content-addressed snapshot layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Layer {
    /// What the payload holds.
    pub kind: LayerKind,
    /// The epoch this layer describes (for master layers: the
    /// recoverable epoch the image was merged through; for context
    /// layers: the backup's recoverable epoch).
    pub epoch: u64,
    /// Id of the parent layer in the chain (the previous epoch's delta),
    /// if any.
    pub parent: Option<LayerId>,
    /// The entries.
    pub payload: LayerPayload,
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("bounds checked"))
}

impl Layer {
    /// Canonical encoded bytes, including the trailing checksum. Two
    /// layers with equal fields encode to identical bytes — the basis
    /// of both content addressing and the CI byte-identical-backup
    /// gate.
    pub fn encode(&self) -> Vec<u8> {
        let stride = match self.kind {
            LayerKind::Context => 24,
            _ => 16,
        };
        let mut out = Vec::with_capacity(40 + self.payload.len() * stride);
        out.extend_from_slice(&LAYER_MAGIC);
        out.extend_from_slice(&LAYER_SCHEMA.to_le_bytes());
        out.push(self.kind.code());
        out.push(self.parent.is_some() as u8);
        push_u64(&mut out, self.epoch);
        push_u64(&mut out, self.parent.map_or(0, |p| p.0));
        push_u64(&mut out, self.payload.len() as u64);
        match &self.payload {
            LayerPayload::Lines(pairs) => {
                for &(line, token) in pairs {
                    push_u64(&mut out, line);
                    push_u64(&mut out, token);
                }
            }
            LayerPayload::Contexts(triples) => {
                for &(vd, epoch, blob) in triples {
                    push_u64(&mut out, vd);
                    push_u64(&mut out, epoch);
                    push_u64(&mut out, blob);
                }
            }
        }
        let sum = fnv1a(&out);
        push_u64(&mut out, sum);
        out
    }

    /// The layer's content id — the same FNV-1a value `encode` appends
    /// as the checksum, so the file name authenticates the file body.
    pub fn id(&self) -> LayerId {
        let encoded = self.encode();
        LayerId(read_u64(&encoded, encoded.len() - 8))
    }

    /// Decodes and verifies `bytes`. `path` is only used to label
    /// errors.
    ///
    /// # Errors
    /// [`StoreError::Checksum`] on any framing or checksum failure;
    /// [`StoreError::SchemaVersion`] when the layer was written by a
    /// newer encoder.
    pub fn decode(bytes: &[u8], path: &str) -> Result<Layer, StoreError> {
        let corrupt = |detail: &str| StoreError::Checksum {
            path: path.to_string(),
            detail: detail.to_string(),
        };
        if bytes.len() < 40 {
            return Err(corrupt("file shorter than the fixed layer header"));
        }
        if bytes[..4] != LAYER_MAGIC {
            return Err(corrupt("bad magic (not a layer file)"));
        }
        let body = &bytes[..bytes.len() - 8];
        let stored_sum = read_u64(bytes, bytes.len() - 8);
        if fnv1a(body) != stored_sum {
            return Err(corrupt("FNV-1a checksum mismatch"));
        }
        let schema = u16::from_le_bytes([bytes[4], bytes[5]]);
        if schema > LAYER_SCHEMA {
            return Err(StoreError::SchemaVersion {
                found: schema as u64,
                supported: LAYER_SCHEMA as u64,
            });
        }
        let kind = LayerKind::from_code(bytes[6]).ok_or_else(|| corrupt("unknown layer kind"))?;
        let has_parent = match bytes[7] {
            0 => false,
            1 => true,
            _ => return Err(corrupt("bad parent flag")),
        };
        let epoch = read_u64(bytes, 8);
        let parent_raw = read_u64(bytes, 16);
        let count = read_u64(bytes, 24) as usize;
        let stride = match kind {
            LayerKind::Context => 24,
            _ => 16,
        };
        if body.len() != 32 + count * stride {
            return Err(corrupt("entry count disagrees with file length"));
        }
        let payload = match kind {
            LayerKind::Context => {
                let mut triples = Vec::with_capacity(count);
                for i in 0..count {
                    let at = 32 + i * 24;
                    triples.push((
                        read_u64(bytes, at),
                        read_u64(bytes, at + 8),
                        read_u64(bytes, at + 16),
                    ));
                }
                LayerPayload::Contexts(triples)
            }
            _ => {
                let mut pairs = Vec::with_capacity(count);
                for i in 0..count {
                    let at = 32 + i * 16;
                    pairs.push((read_u64(bytes, at), read_u64(bytes, at + 8)));
                }
                LayerPayload::Lines(pairs)
            }
        };
        Ok(Layer {
            kind,
            epoch,
            parent: has_parent.then_some(LayerId(parent_raw)),
            payload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Layer {
        Layer {
            kind: LayerKind::Delta,
            epoch: 7,
            parent: Some(LayerId(0xdead_beef)),
            payload: LayerPayload::Lines(vec![(1, 10), (2, 20), (9, 90)]),
        }
    }

    #[test]
    fn encode_decode_round_trips_all_kinds() {
        for layer in [
            sample(),
            Layer {
                kind: LayerKind::Master,
                epoch: 3,
                parent: None,
                payload: LayerPayload::Lines(vec![]),
            },
            Layer {
                kind: LayerKind::Context,
                epoch: 3,
                parent: None,
                payload: LayerPayload::Contexts(vec![(0, 1, 42), (1, 3, 43)]),
            },
        ] {
            let bytes = layer.encode();
            assert_eq!(Layer::decode(&bytes, "t").unwrap(), layer);
        }
    }

    #[test]
    fn id_is_the_trailing_checksum_and_content_addressed() {
        let a = sample();
        let b = sample();
        assert_eq!(a.id(), b.id());
        let mut c = sample();
        c.epoch += 1;
        assert_ne!(a.id(), c.id());
        let mut d = sample();
        d.parent = None;
        assert_ne!(a.id(), d.id());
    }

    #[test]
    fn any_single_bit_flip_is_detected() {
        let bytes = sample().encode();
        for bit in [0usize, 37, bytes.len() * 8 - 3] {
            let mut bad = bytes.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            assert!(
                matches!(
                    Layer::decode(&bad, "t"),
                    Err(StoreError::Checksum { .. } | StoreError::SchemaVersion { .. })
                ),
                "flip at bit {bit} went undetected"
            );
        }
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = sample().encode();
        for keep in [0, 10, 39, bytes.len() - 1] {
            assert!(Layer::decode(&bytes[..keep], "t").is_err());
        }
    }

    #[test]
    fn future_schema_is_rejected_as_schema_version() {
        let mut bytes = sample().encode();
        let future = (LAYER_SCHEMA + 1).to_le_bytes();
        bytes[4] = future[0];
        bytes[5] = future[1];
        // Re-seal so the schema check (not the checksum) fires.
        let sum = fnv1a(&bytes[..bytes.len() - 8]);
        let n = bytes.len();
        bytes[n - 8..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            Layer::decode(&bytes, "t"),
            Err(StoreError::SchemaVersion { found, supported })
                if found == (LAYER_SCHEMA + 1) as u64 && supported == LAYER_SCHEMA as u64
        ));
    }
}
