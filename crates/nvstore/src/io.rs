//! Store I/O backends.
//!
//! All store logic runs against the [`StoreIo`] trait so the same code
//! path serves three backends: the real filesystem ([`DiskIo`], used by
//! the CLI), a deterministic in-memory filesystem ([`MemIo`], used by
//! unit tests), and a *journaling* `MemIo` whose op log feeds the
//! [`crate::fault::StoreFaultPlane`] — the file-I/O analogue of the
//! NVM write journal `nvsim::fault` keeps for in-simulation crash
//! exploration.
//!
//! The crash model the store's commit protocol is proved against:
//! operations complete in program order (each write/rename/remove is
//! durable before the next begins — `DiskIo` fsyncs to approximate
//! this), a crash preserves an arbitrary *prefix* of completed
//! operations, and the operation at the crash boundary may additionally
//! be torn (a write persists only a byte prefix; renames and removes
//! are atomic and either happened or did not).

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

/// An I/O backend failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IoError {
    /// The path does not exist.
    NotFound {
        /// The missing path.
        path: String,
    },
    /// Any other backend failure.
    Other {
        /// The failing path.
        path: String,
        /// Backend detail.
        detail: String,
    },
}

impl IoError {
    /// The path the operation failed on.
    pub fn path(&self) -> &str {
        match self {
            IoError::NotFound { path } | IoError::Other { path, .. } => path,
        }
    }
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::NotFound { path } => write!(f, "{path}: not found"),
            IoError::Other { path, detail } => write!(f, "{path}: {detail}"),
        }
    }
}

/// The store's view of a filesystem. Paths are store-relative, use
/// `/` separators, and never contain `.` / `..` components.
pub trait StoreIo {
    /// Reads a whole file.
    fn read(&self, path: &str) -> Result<Vec<u8>, IoError>;
    /// Writes a whole file, creating parent directories as needed and
    /// truncating any previous content.
    fn write(&mut self, path: &str, data: &[u8]) -> Result<(), IoError>;
    /// Atomically renames `from` to `to` (same filesystem).
    fn rename(&mut self, from: &str, to: &str) -> Result<(), IoError>;
    /// Removes a file (succeeds if present, `NotFound` otherwise).
    fn remove(&mut self, path: &str) -> Result<(), IoError>;
    /// File names (not paths) directly inside `dir`, sorted. A missing
    /// directory lists as empty.
    fn list(&self, dir: &str) -> Result<Vec<String>, IoError>;
    /// Whether `path` exists as a file.
    fn exists(&self, path: &str) -> bool;
}

/// Real-filesystem backend rooted at a directory.
pub struct DiskIo {
    root: PathBuf,
}

impl DiskIo {
    /// Creates a backend rooted at `root` (created if absent).
    ///
    /// # Errors
    /// [`IoError::Other`] when the root cannot be created.
    pub fn create(root: impl Into<PathBuf>) -> Result<DiskIo, IoError> {
        let root = root.into();
        fs::create_dir_all(&root).map_err(|e| IoError::Other {
            path: root.display().to_string(),
            detail: e.to_string(),
        })?;
        Ok(DiskIo { root })
    }

    fn abs(&self, path: &str) -> PathBuf {
        let mut p = self.root.clone();
        for comp in path.split('/') {
            p.push(comp);
        }
        p
    }

    fn map_err(path: &str, e: std::io::Error) -> IoError {
        if e.kind() == std::io::ErrorKind::NotFound {
            IoError::NotFound {
                path: path.to_string(),
            }
        } else {
            IoError::Other {
                path: path.to_string(),
                detail: e.to_string(),
            }
        }
    }
}

impl StoreIo for DiskIo {
    fn read(&self, path: &str) -> Result<Vec<u8>, IoError> {
        fs::read(self.abs(path)).map_err(|e| Self::map_err(path, e))
    }

    fn write(&mut self, path: &str, data: &[u8]) -> Result<(), IoError> {
        let abs = self.abs(path);
        if let Some(parent) = abs.parent() {
            fs::create_dir_all(parent).map_err(|e| Self::map_err(path, e))?;
        }
        // Write + fsync so the program-order crash model the commit
        // protocol assumes holds on the real filesystem too.
        let mut f = fs::File::create(&abs).map_err(|e| Self::map_err(path, e))?;
        f.write_all(data).map_err(|e| Self::map_err(path, e))?;
        f.sync_all().map_err(|e| Self::map_err(path, e))?;
        Ok(())
    }

    fn rename(&mut self, from: &str, to: &str) -> Result<(), IoError> {
        let to_abs = self.abs(to);
        if let Some(parent) = to_abs.parent() {
            fs::create_dir_all(parent).map_err(|e| Self::map_err(to, e))?;
        }
        fs::rename(self.abs(from), &to_abs).map_err(|e| Self::map_err(from, e))?;
        // Persist the directory entry as well (best effort; some
        // filesystems do not support fsync on directories).
        if let Some(parent) = to_abs.parent() {
            if let Ok(d) = fs::File::open(parent) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    fn remove(&mut self, path: &str) -> Result<(), IoError> {
        fs::remove_file(self.abs(path)).map_err(|e| Self::map_err(path, e))
    }

    fn list(&self, dir: &str) -> Result<Vec<String>, IoError> {
        let abs = self.abs(dir);
        let mut names = Vec::new();
        match fs::read_dir(&abs) {
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(names),
            Err(e) => return Err(Self::map_err(dir, e)),
            Ok(entries) => {
                for entry in entries {
                    let entry = entry.map_err(|e| Self::map_err(dir, e))?;
                    if entry.path().is_file() {
                        names.push(entry.file_name().to_string_lossy().into_owned());
                    }
                }
            }
        }
        names.sort();
        Ok(names)
    }

    fn exists(&self, path: &str) -> bool {
        self.abs(path).is_file()
    }
}

/// One journaled mutation, in completion order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreOp {
    /// A whole-file write.
    Write {
        /// Target path.
        path: String,
        /// The bytes written.
        data: Vec<u8>,
    },
    /// An atomic rename.
    Rename {
        /// Source path.
        from: String,
        /// Destination path.
        to: String,
    },
    /// A file removal.
    Remove {
        /// Removed path.
        path: String,
    },
}

/// Deterministic in-memory filesystem. With [`MemIo::recording`], every
/// completed mutation is appended to an op journal that the fault plane
/// replays with injected crash cuts.
#[derive(Clone, Debug, Default)]
pub struct MemIo {
    files: BTreeMap<String, Vec<u8>>,
    journal: Option<Vec<StoreOp>>,
}

impl MemIo {
    /// An empty in-memory filesystem (no journaling).
    pub fn new() -> MemIo {
        MemIo::default()
    }

    /// An empty in-memory filesystem that journals every mutation.
    pub fn recording() -> MemIo {
        MemIo {
            files: BTreeMap::new(),
            journal: Some(Vec::new()),
        }
    }

    /// Takes the recorded journal (empty for a non-recording instance).
    pub fn take_journal(&mut self) -> Vec<StoreOp> {
        self.journal.take().unwrap_or_default()
    }

    /// Applies `op` without journaling — the fault plane's replay
    /// primitive.
    pub fn apply(&mut self, op: &StoreOp) {
        match op {
            StoreOp::Write { path, data } => {
                self.files.insert(path.clone(), data.clone());
            }
            StoreOp::Rename { from, to } => {
                if let Some(data) = self.files.remove(from) {
                    self.files.insert(to.clone(), data);
                }
            }
            StoreOp::Remove { path } => {
                self.files.remove(path);
            }
        }
    }

    /// Overwrites `path` with a byte prefix of `data` — a torn write at
    /// the crash boundary.
    pub fn apply_torn_write(&mut self, path: &str, data: &[u8], keep: usize) {
        let keep = keep.min(data.len());
        self.files.insert(path.to_string(), data[..keep].to_vec());
    }

    /// Paths of all files, sorted (deterministic flip-target choice).
    pub fn paths(&self) -> Vec<String> {
        self.files.keys().cloned().collect()
    }

    /// Flips one bit of the file at `path`; returns false when the path
    /// is absent or empty.
    pub fn flip_bit(&mut self, path: &str, bit: u64) -> bool {
        match self.files.get_mut(path) {
            Some(data) if !data.is_empty() => {
                let bit = (bit % (data.len() as u64 * 8)) as usize;
                data[bit / 8] ^= 1 << (bit % 8);
                true
            }
            _ => false,
        }
    }

    fn record(&mut self, op: StoreOp) {
        if let Some(j) = self.journal.as_mut() {
            j.push(op);
        }
    }
}

impl StoreIo for MemIo {
    fn read(&self, path: &str) -> Result<Vec<u8>, IoError> {
        self.files
            .get(path)
            .cloned()
            .ok_or_else(|| IoError::NotFound {
                path: path.to_string(),
            })
    }

    fn write(&mut self, path: &str, data: &[u8]) -> Result<(), IoError> {
        self.files.insert(path.to_string(), data.to_vec());
        self.record(StoreOp::Write {
            path: path.to_string(),
            data: data.to_vec(),
        });
        Ok(())
    }

    fn rename(&mut self, from: &str, to: &str) -> Result<(), IoError> {
        let data = self.files.remove(from).ok_or_else(|| IoError::NotFound {
            path: from.to_string(),
        })?;
        self.files.insert(to.to_string(), data);
        self.record(StoreOp::Rename {
            from: from.to_string(),
            to: to.to_string(),
        });
        Ok(())
    }

    fn remove(&mut self, path: &str) -> Result<(), IoError> {
        if self.files.remove(path).is_none() {
            return Err(IoError::NotFound {
                path: path.to_string(),
            });
        }
        self.record(StoreOp::Remove {
            path: path.to_string(),
        });
        Ok(())
    }

    fn list(&self, dir: &str) -> Result<Vec<String>, IoError> {
        let prefix = format!("{dir}/");
        let mut names: Vec<String> = self
            .files
            .keys()
            .filter_map(|p| p.strip_prefix(&prefix))
            .filter(|rest| !rest.contains('/'))
            .map(|rest| rest.to_string())
            .collect();
        names.sort();
        Ok(names)
    }

    fn exists(&self, path: &str) -> bool {
        self.files.contains_key(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memio_journals_mutations_in_order() {
        let mut io = MemIo::recording();
        io.write("tmp/a", b"one").unwrap();
        io.rename("tmp/a", "layers/a").unwrap();
        io.remove("layers/a").unwrap();
        let journal = io.take_journal();
        assert_eq!(journal.len(), 3);
        assert!(matches!(&journal[0], StoreOp::Write { path, .. } if path == "tmp/a"));
        assert!(matches!(&journal[1], StoreOp::Rename { to, .. } if to == "layers/a"));
        assert!(matches!(&journal[2], StoreOp::Remove { path } if path == "layers/a"));
    }

    #[test]
    fn memio_list_is_sorted_and_shallow() {
        let mut io = MemIo::new();
        io.write("layers/b", b"x").unwrap();
        io.write("layers/a", b"x").unwrap();
        io.write("layers/sub/c", b"x").unwrap();
        assert_eq!(io.list("layers").unwrap(), vec!["a", "b"]);
        assert_eq!(io.list("missing").unwrap(), Vec::<String>::new());
    }

    #[test]
    fn diskio_round_trips() {
        let dir = std::env::temp_dir().join(format!("nvstore-io-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut io = DiskIo::create(&dir).unwrap();
        io.write("tmp/m.json", b"hello").unwrap();
        io.rename("tmp/m.json", "manifests/00000001.json").unwrap();
        assert_eq!(io.read("manifests/00000001.json").unwrap(), b"hello");
        assert!(io.exists("manifests/00000001.json"));
        assert_eq!(io.list("manifests").unwrap(), vec!["00000001.json"]);
        assert!(matches!(io.read("nope"), Err(IoError::NotFound { .. })));
        io.remove("manifests/00000001.json").unwrap();
        assert!(!io.exists("manifests/00000001.json"));
        let _ = fs::remove_dir_all(&dir);
    }
}
