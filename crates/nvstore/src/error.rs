//! The typed error surface of the snapshot store.
//!
//! Robustness contract: every way the store can fail — I/O, torn
//! writes, bit flips, truncated files, stale manifests, hand-edited
//! refcounts, future schema versions — maps to exactly one
//! [`StoreError`] variant. The chaos explorer (`nvo chaos --store`)
//! asserts that seeded faults only ever surface as these values, never
//! as panics or silently wrong images, and the CLI assigns each variant
//! a documented exit code.

use std::fmt;

use crate::layer::LayerId;

/// Everything that can go wrong inside the store.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// The I/O backend failed (permission, disk full, unreadable file).
    Io {
        /// Store-relative path of the failing operation.
        path: String,
        /// Backend-specific detail.
        detail: String,
    },
    /// A layer or root cell failed its embedded FNV-1a checksum, or its
    /// framing (magic, entry counts, chain linkage) is inconsistent.
    Checksum {
        /// Store-relative path of the corrupt file.
        path: String,
        /// What exactly failed to verify.
        detail: String,
    },
    /// No fully valid (root cell, manifest) pair exists: both root
    /// cells are torn/missing while the store is non-empty, or every
    /// valid root points at a manifest whose length/checksum no longer
    /// matches.
    TornManifest {
        /// What exactly was torn.
        detail: String,
    },
    /// The manifest references a layer whose file exists neither in
    /// `layers/` nor in the GC quarantine.
    MissingLayer {
        /// The missing layer's content id.
        id: LayerId,
    },
    /// A layer's stored reference count disagrees with the number of
    /// backups that actually reference it. The stored count is purely
    /// redundant — this redundancy is what detects a manifest that
    /// would otherwise let GC reap a still-referenced layer.
    RefcountUnderflow {
        /// The inconsistent layer's id.
        id: LayerId,
        /// The refcount recorded in the manifest.
        stored: u64,
        /// The refcount recomputed from the backup list.
        actual: u64,
    },
    /// The manifest or a layer was written by a future schema version.
    SchemaVersion {
        /// The version found on disk.
        found: u64,
        /// The newest version this build understands.
        supported: u64,
    },
    /// No backup with the requested name exists.
    BackupNotFound {
        /// The requested backup name.
        name: String,
    },
    /// A backup with the requested name already exists (backups are
    /// immutable; pick a new name or `remove` first).
    BackupExists {
        /// The conflicting backup name.
        name: String,
    },
    /// An epoch's per-epoch tables were reclaimed or compacted in the
    /// live `Mnm`, so the snapshot cannot be exported exactly.
    UnreadableEpoch {
        /// The unreadable epoch.
        epoch: u64,
    },
    /// An OMC's battery-backed buffer still holds undrained versions;
    /// exporting now would silently miss them (same precondition as
    /// `nvserve::Mount`).
    BufferNotDrained {
        /// Index of the offending OMC.
        omc: usize,
        /// Number of versions still buffered there.
        buffered: usize,
    },
}

impl StoreError {
    /// The bare variant name (`"Checksum"`, `"TornManifest"`, ...),
    /// used by the CLI to print a stable, greppable error class next to
    /// the human message and to pick the documented exit code.
    pub fn name(&self) -> &'static str {
        match self {
            StoreError::Io { .. } => "Io",
            StoreError::Checksum { .. } => "Checksum",
            StoreError::TornManifest { .. } => "TornManifest",
            StoreError::MissingLayer { .. } => "MissingLayer",
            StoreError::RefcountUnderflow { .. } => "RefcountUnderflow",
            StoreError::SchemaVersion { .. } => "SchemaVersion",
            StoreError::BackupNotFound { .. } => "BackupNotFound",
            StoreError::BackupExists { .. } => "BackupExists",
            StoreError::UnreadableEpoch { .. } => "UnreadableEpoch",
            StoreError::BufferNotDrained { .. } => "BufferNotDrained",
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, detail } => write!(f, "I/O failure on {path}: {detail}"),
            StoreError::Checksum { path, detail } => {
                write!(f, "checksum/framing failure in {path}: {detail}")
            }
            StoreError::TornManifest { detail } => {
                write!(f, "no valid root-cell/manifest pair: {detail}")
            }
            StoreError::MissingLayer { id } => {
                write!(f, "layer {id} is referenced but absent from the store")
            }
            StoreError::RefcountUnderflow { id, stored, actual } => write!(
                f,
                "layer {id} refcount mismatch: manifest records {stored}, backups reference {actual}"
            ),
            StoreError::SchemaVersion { found, supported } => write!(
                f,
                "store schema {found} is newer than supported schema {supported}"
            ),
            StoreError::BackupNotFound { name } => write!(f, "no backup named {name:?}"),
            StoreError::BackupExists { name } => {
                write!(f, "backup {name:?} already exists (backups are immutable)")
            }
            StoreError::UnreadableEpoch { epoch } => write!(
                f,
                "epoch {epoch}'s tables were reclaimed or compacted; snapshot cannot be exported exactly"
            ),
            StoreError::BufferNotDrained { omc, buffered } => write!(
                f,
                "OMC {omc} write-back buffer holds {buffered} undrained version(s); finish the epoch before backing up"
            ),
        }
    }
}

impl std::error::Error for StoreError {}
