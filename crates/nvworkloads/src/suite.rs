//! The paper's 12-workload benchmark suite (§VI-C).
//!
//! Four instrumented data-structure benchmarks (insert-only, random keys,
//! all threads hammering one shared structure — "to mimic bulk insertion
//! into a database index") plus the eight STAMP applications as synthetic
//! kernels. [`generate`] turns a [`Workload`] into a multi-threaded
//! [`Trace`] ready for any `MemorySystem`.

use crate::art::Art;
use crate::btree::BPlusTree;
use crate::hashtable::HashTable;
use crate::rbtree::RbTree;
use crate::record::{Recorder, ShadowHeap};
use crate::stamp::{self, KernelParams};
use nvsim::addr::ThreadId;
use nvsim::rng::Rng64;
use nvsim::trace::Trace;
use std::fmt;

/// The twelve workloads of the paper's evaluation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Workload {
    /// Chained hash table (`std::unordered_map`).
    HashTable,
    /// Order-32 B+Tree (`BTreeOLC`).
    BTree,
    /// Adaptive radix tree (`ARTOLC`).
    Art,
    /// Red-black tree (`std::map`).
    RbTree,
    /// STAMP maze routing.
    Labyrinth,
    /// STAMP Bayesian learning.
    Bayes,
    /// STAMP Delaunay refinement.
    Yada,
    /// STAMP intrusion detection.
    Intruder,
    /// STAMP travel OLTP.
    Vacation,
    /// STAMP clustering.
    Kmeans,
    /// STAMP gene sequencing.
    Genome,
    /// STAMP graph kernel.
    Ssca2,
}

impl Workload {
    /// All workloads in the paper's figure order.
    pub const ALL: [Workload; 12] = [
        Workload::HashTable,
        Workload::BTree,
        Workload::Art,
        Workload::RbTree,
        Workload::Labyrinth,
        Workload::Bayes,
        Workload::Yada,
        Workload::Intruder,
        Workload::Vacation,
        Workload::Kmeans,
        Workload::Genome,
        Workload::Ssca2,
    ];

    /// The figure label.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::HashTable => "Hash Table",
            Workload::BTree => "B+Tree",
            Workload::Art => "ART",
            Workload::RbTree => "RBTree",
            Workload::Labyrinth => "labyrinth",
            Workload::Bayes => "bayes",
            Workload::Yada => "yada",
            Workload::Intruder => "intruder",
            Workload::Vacation => "vacation",
            Workload::Kmeans => "kmeans",
            Workload::Genome => "genome",
            Workload::Ssca2 => "ssca2",
        }
    }

    /// Parses a figure label or identifier.
    pub fn from_name(s: &str) -> Option<Workload> {
        let k = s.to_ascii_lowercase().replace(['+', ' ', '-', '_'], "");
        Workload::ALL.into_iter().find(|w| {
            w.name()
                .to_ascii_lowercase()
                .replace(['+', ' ', '-', '_'], "")
                == k
        })
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Operations each thread performs back-to-back before the next thread
/// proceeds. Threads on real hardware run streaks of operations, not
/// perfectly interleaved single ops; per-op interleaving would make every
/// hot structure node ping-pong between Versioned Domains at an
/// unrealistic rate.
pub const OP_BLOCK: u64 = 32;

/// Suite-wide generation parameters.
#[derive(Clone, Debug)]
pub struct SuiteParams {
    /// Worker threads (the paper uses 16).
    pub threads: usize,
    /// Scale: inserts for the data structures, abstract operations for
    /// the kernels.
    pub ops: u64,
    /// Unrecorded warm-up inserts for the data structures, run before the
    /// measured phase. The paper's 1.6 B-instruction runs operate on
    /// structures far larger than one epoch's insert volume; warming the
    /// structure reproduces that regime at a scaled-down trace size.
    pub warmup_ops: u64,
    /// RNG seed.
    pub seed: u64,
}

impl SuiteParams {
    /// The thread that performs operation `i` (block-wise round-robin).
    pub fn thread_of(&self, i: u64) -> ThreadId {
        ThreadId(((i / OP_BLOCK) % self.threads as u64) as u16)
    }
}

impl SuiteParams {
    /// Paper-shaped scale: 16 threads, a few million recorded accesses.
    pub fn standard() -> Self {
        Self {
            threads: 16,
            ops: 60_000,
            warmup_ops: 240_000,
            seed: 0xC0FFEE,
        }
    }

    /// Small scale for tests/CI.
    pub fn quick() -> Self {
        Self {
            threads: 4,
            ops: 3_000,
            warmup_ops: 12_000,
            seed: 0xC0FFEE,
        }
    }
}

impl Default for SuiteParams {
    fn default() -> Self {
        Self::standard()
    }
}

fn kernel_params(p: &SuiteParams) -> KernelParams {
    KernelParams {
        threads: p.threads,
        // Kernels interpret ops as total abstract operations; give them
        // the same order of magnitude of recorded accesses as the
        // structures (which do ~20–40 accesses per insert).
        ops: p.ops * 12,
        seed: p.seed,
    }
}

/// Generates the trace for one workload.
pub fn generate(w: Workload, p: &SuiteParams) -> Trace {
    let mut rec = Recorder::new(p.threads);
    let mut heap = ShadowHeap::new();
    let mut rng = Rng64::seed_from_u64(p.seed ^ w.name().len() as u64);
    match w {
        Workload::HashTable => {
            let mut t = HashTable::new(1024, &mut heap);
            rec.set_muted(true);
            for _ in 0..p.warmup_ops {
                t.insert(rng.gen_u64(), &mut rec, &mut heap);
            }
            rec.set_muted(false);
            for i in 0..p.ops {
                rec.set_thread(p.thread_of(i));
                t.insert(rng.gen_u64(), &mut rec, &mut heap);
            }
        }
        Workload::BTree => {
            let mut t = BPlusTree::new(&mut heap);
            rec.set_muted(true);
            for _ in 0..p.warmup_ops {
                t.insert(rng.gen_u64(), &mut rec, &mut heap);
            }
            rec.set_muted(false);
            for i in 0..p.ops {
                rec.set_thread(p.thread_of(i));
                t.insert(rng.gen_u64(), &mut rec, &mut heap);
            }
        }
        Workload::Art => {
            let mut t = Art::new();
            rec.set_muted(true);
            for _ in 0..p.warmup_ops {
                t.insert(rng.gen_u64(), &mut rec, &mut heap);
            }
            rec.set_muted(false);
            for i in 0..p.ops {
                rec.set_thread(p.thread_of(i));
                t.insert(rng.gen_u64(), &mut rec, &mut heap);
            }
        }
        Workload::RbTree => {
            let mut t = RbTree::new();
            rec.set_muted(true);
            for _ in 0..p.warmup_ops {
                t.insert(rng.gen_u64(), &mut rec, &mut heap);
            }
            rec.set_muted(false);
            for i in 0..p.ops {
                rec.set_thread(p.thread_of(i));
                t.insert(rng.gen_u64(), &mut rec, &mut heap);
            }
        }
        Workload::Labyrinth => stamp::labyrinth(&kernel_params(p), &mut rec, &mut heap),
        Workload::Bayes => stamp::bayes(&kernel_params(p), &mut rec, &mut heap),
        Workload::Yada => stamp::yada(&kernel_params(p), &mut rec, &mut heap),
        Workload::Intruder => stamp::intruder(&kernel_params(p), &mut rec, &mut heap),
        Workload::Vacation => stamp::vacation(&kernel_params(p), &mut rec, &mut heap),
        Workload::Kmeans => stamp::kmeans(&kernel_params(p), &mut rec, &mut heap),
        Workload::Genome => stamp::genome(&kernel_params(p), &mut rec, &mut heap),
        Workload::Ssca2 => stamp::ssca2(&kernel_params(p), &mut rec, &mut heap),
    }
    rec.into_trace()
}

/// A burst specification for [`generate_btree_bursty`]: within the window
/// `[start_frac, end_frac)` of the operation stream, an epoch mark is
/// issued every `stores_per_epoch` recorded stores.
#[derive(Clone, Copy, Debug)]
pub struct Burst {
    /// Window start as a fraction of total operations (0.0–1.0).
    pub start_frac: f64,
    /// Window end as a fraction of total operations.
    pub end_frac: f64,
    /// Stores per (tiny) epoch inside the window.
    pub stores_per_epoch: u64,
}

/// The Fig 17b workload: B+Tree insertion with user-initiated epoch
/// bursts — "programmers may manually start new epochs around suspicious
/// code segments" (time-travel debugging).
pub fn generate_btree_bursty(p: &SuiteParams, bursts: &[Burst]) -> Trace {
    let mut rec = Recorder::new(p.threads);
    let mut heap = ShadowHeap::new();
    let mut rng = Rng64::seed_from_u64(p.seed);
    let mut t = BPlusTree::new(&mut heap);
    rec.set_muted(true);
    for _ in 0..p.warmup_ops {
        t.insert(rng.gen_u64(), &mut rec, &mut heap);
    }
    rec.set_muted(false);
    let mut last_mark_stores = 0u64;
    for i in 0..p.ops {
        rec.set_thread(p.thread_of(i));
        t.insert(rng.gen_u64(), &mut rec, &mut heap);
        let frac = i as f64 / p.ops as f64;
        if let Some(b) = bursts
            .iter()
            .find(|b| frac >= b.start_frac && frac < b.end_frac)
        {
            if rec.stores() - last_mark_stores >= b.stores_per_epoch {
                rec.epoch_mark();
                last_mark_stores = rec.stores();
            }
        }
    }
    rec.into_trace()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_workload_generates_a_nonempty_trace() {
        let p = SuiteParams::quick();
        for w in Workload::ALL {
            let t = generate(w, &p);
            assert!(
                t.access_count() > 1000,
                "{w} too small: {}",
                t.access_count()
            );
            assert!(t.store_count() > 0, "{w} writes nothing");
            assert_eq!(t.thread_count(), p.threads);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let p = SuiteParams::quick();
        let a = generate(Workload::BTree, &p);
        let b = generate(Workload::BTree, &p);
        assert_eq!(a.access_count(), b.access_count());
        assert_eq!(a.write_footprint(), b.write_footprint());
    }

    #[test]
    fn names_round_trip() {
        for w in Workload::ALL {
            assert_eq!(Workload::from_name(w.name()), Some(w), "{w}");
        }
        assert_eq!(Workload::from_name("b+tree"), Some(Workload::BTree));
        assert_eq!(Workload::from_name("hash table"), Some(Workload::HashTable));
        assert_eq!(Workload::from_name("nope"), None);
    }

    #[test]
    fn bursty_btree_contains_epoch_marks() {
        let p = SuiteParams::quick();
        let t = generate_btree_bursty(
            &p,
            &[Burst {
                start_frac: 0.2,
                end_frac: 0.4,
                stores_per_epoch: 50,
            }],
        );
        let marks: usize = (0..t.thread_count())
            .map(|i| {
                t.thread(ThreadId(i as u16))
                    .iter()
                    .filter(|e| matches!(e, nvsim::trace::TraceEvent::EpochMark))
                    .count()
            })
            .sum();
        assert!(marks > 3, "bursty windows emit epoch marks: {marks}");
    }
}
