//! An instrumented chained hash table (the paper's
//! `std::unordered_map` workload).
//!
//! Bucket array of 8-byte heads plus 64-byte chain nodes, resizing at
//! load factor 1.0 with a full rehash — random single-line probes during
//! steady state punctuated by large read+write bursts at rehash, the
//! signature of unordered_map bulk insertion.

use crate::record::{Recorder, ShadowHeap};
use nvsim::addr::Addr;

#[derive(Debug)]
struct Entry {
    base: Addr,
    key: u64,
    next: Option<usize>,
}

/// The instrumented hash table.
#[derive(Debug)]
pub struct HashTable {
    buckets: Vec<Option<usize>>,
    bucket_base: Addr,
    entries: Vec<Entry>,
    len: u64,
    rehashes: u64,
}

fn hash(key: u64) -> u64 {
    key.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(31)
}

impl HashTable {
    /// An empty table with `initial_buckets` buckets (power of two).
    ///
    /// # Panics
    /// Panics if `initial_buckets` is not a power of two.
    pub fn new(initial_buckets: usize, heap: &mut ShadowHeap) -> Self {
        assert!(
            initial_buckets.is_power_of_two(),
            "bucket count must be a power of two"
        );
        Self {
            buckets: vec![None; initial_buckets],
            bucket_base: heap.alloc(initial_buckets as u64 * 8, 64),
            entries: Vec::new(),
            len: 0,
            rehashes: 0,
        }
    }

    /// Keys stored.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Rehash events so far.
    pub fn rehashes(&self) -> u64 {
        self.rehashes
    }

    fn bucket_addr(&self, b: usize) -> Addr {
        Addr::new(self.bucket_base.raw() + 8 * b as u64)
    }

    /// Looks a key up, recording bucket + chain probes.
    pub fn contains(&self, key: u64, rec: &mut Recorder) -> bool {
        let b = (hash(key) as usize) & (self.buckets.len() - 1);
        rec.load(self.bucket_addr(b));
        let mut cur = self.buckets[b];
        while let Some(i) = cur {
            rec.load(self.entries[i].base);
            if self.entries[i].key == key {
                return true;
            }
            cur = self.entries[i].next;
        }
        false
    }

    /// Inserts a key (duplicates ignored), recording all traffic
    /// including rehash bursts.
    pub fn insert(&mut self, key: u64, rec: &mut Recorder, heap: &mut ShadowHeap) {
        if self.len as usize >= self.buckets.len() {
            self.rehash(heap, rec);
        }
        let b = (hash(key) as usize) & (self.buckets.len() - 1);
        rec.load(self.bucket_addr(b));
        let mut cur = self.buckets[b];
        while let Some(i) = cur {
            rec.load(self.entries[i].base);
            if self.entries[i].key == key {
                return;
            }
            cur = self.entries[i].next;
        }
        // Head insertion: write the node, then the bucket head.
        let base = heap.alloc_line();
        let idx = self.entries.len();
        self.entries.push(Entry {
            base,
            key,
            next: self.buckets[b],
        });
        rec.store(base);
        rec.store(self.bucket_addr(b));
        self.buckets[b] = Some(idx);
        self.len += 1;
    }

    /// Doubles the bucket array and relinks every entry.
    fn rehash(&mut self, heap: &mut ShadowHeap, rec: &mut Recorder) {
        self.rehashes += 1;
        let new_count = self.buckets.len() * 2;
        let new_base = heap.alloc(new_count as u64 * 8, 64);
        let mut new_buckets: Vec<Option<usize>> = vec![None; new_count];
        // The new array is zero-initialized, then the old one is read.
        rec.store_range(new_base, new_count as u64 * 8);
        rec.load_range(self.bucket_base, self.buckets.len() as u64 * 8);
        for i in 0..self.entries.len() {
            // Each entry is read (key) and written (next pointer), and
            // its new bucket head is written.
            rec.load(self.entries[i].base);
            let b = (hash(self.entries[i].key) as usize) & (new_count - 1);
            self.entries[i].next = new_buckets[b];
            new_buckets[b] = Some(i);
            rec.store(self.entries[i].base);
            rec.store(Addr::new(new_base.raw() + 8 * b as u64));
        }
        self.buckets = new_buckets;
        self.bucket_base = new_base;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (HashTable, Recorder, ShadowHeap) {
        let mut heap = ShadowHeap::new();
        let t = HashTable::new(16, &mut heap);
        (t, Recorder::new(1), heap)
    }

    #[test]
    fn insert_lookup_roundtrip() {
        let (mut t, mut rec, mut heap) = setup();
        for k in 0..500u64 {
            t.insert(k * 3 + 1, &mut rec, &mut heap);
        }
        assert_eq!(t.len(), 500);
        for k in 0..500u64 {
            assert!(t.contains(k * 3 + 1, &mut rec));
        }
        assert!(!t.contains(2, &mut rec));
    }

    #[test]
    fn duplicates_are_ignored() {
        let (mut t, mut rec, mut heap) = setup();
        t.insert(7, &mut rec, &mut heap);
        t.insert(7, &mut rec, &mut heap);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn growth_triggers_rehashes_with_write_bursts() {
        let (mut t, mut rec, mut heap) = setup();
        for k in 0..1000u64 {
            t.insert(k, &mut rec, &mut heap);
        }
        assert!(t.rehashes() >= 6, "16 → 2048 buckets: {}", t.rehashes());
        // Rehash writes dominate: > 2 stores per insert on average.
        assert!(rec.stores() > 2 * 1000, "stores: {}", rec.stores());
    }
}
