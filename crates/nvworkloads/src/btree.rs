//! An instrumented B+Tree (the paper's `BTreeOLC` workload).
//!
//! A real order-32 B+Tree whose every node lives on the shadow heap.
//! Descents record the key-area loads a binary search touches; leaf
//! inserts record the element-shifting stores the paper calls out
//! ("shifting existing elements after locating a B+Tree leaf node" as a
//! burst-of-writes source, §VII-A); splits record the copy-out to the new
//! node and the parent update.

use crate::record::{Recorder, ShadowHeap};
use nvsim::addr::Addr;

/// Maximum keys per node.
const ORDER: usize = 32;
/// Bytes of header before the key area.
const HDR: u64 = 16;
/// Shadow bytes per node: header + keys + children pointers.
const NODE_BYTES: u64 = HDR + (ORDER as u64) * 8 + (ORDER as u64 + 1) * 8;

#[derive(Debug)]
struct Node {
    base: Addr,
    keys: Vec<u64>,
    /// Children (inner nodes) — empty for leaves.
    kids: Vec<usize>,
    leaf: bool,
}

impl Node {
    fn key_addr(&self, i: usize) -> Addr {
        Addr::new(self.base.raw() + HDR + 8 * i as u64)
    }

    fn kid_addr(&self, i: usize) -> Addr {
        Addr::new(self.base.raw() + HDR + 8 * ORDER as u64 + 8 * i as u64)
    }
}

/// The instrumented B+Tree.
#[derive(Debug)]
pub struct BPlusTree {
    nodes: Vec<Node>,
    root: usize,
    len: u64,
}

impl BPlusTree {
    /// An empty tree (allocates the root leaf).
    pub fn new(heap: &mut ShadowHeap) -> Self {
        let root = Node {
            base: heap.alloc(NODE_BYTES, 64),
            keys: Vec::new(),
            kids: Vec::new(),
            leaf: true,
        };
        Self {
            nodes: vec![root],
            root: 0,
            len: 0,
        }
    }

    /// Number of keys stored.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Binary search over a node's keys, recording the probed key loads.
    fn search(&self, n: usize, key: u64, rec: &mut Recorder) -> Result<usize, usize> {
        let node = &self.nodes[n];
        rec.load(node.base); // header
        let mut lo = 0usize;
        let mut hi = node.keys.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            rec.load(node.key_addr(mid));
            if node.keys[mid] < key {
                lo = mid + 1;
            } else if node.keys[mid] > key {
                hi = mid;
            } else {
                return Ok(mid);
            }
        }
        Err(lo)
    }

    /// Looks a key up, recording the descent.
    pub fn contains(&self, key: u64, rec: &mut Recorder) -> bool {
        let mut n = self.root;
        loop {
            match self.search(n, key, rec) {
                Ok(_) => {
                    return self.nodes[n].leaf || {
                        // Equal key in an inner node: continue right.
                        true
                    };
                }
                Err(pos) => {
                    if self.nodes[n].leaf {
                        return false;
                    }
                    rec.load(self.nodes[n].kid_addr(pos));
                    n = self.nodes[n].kids[pos];
                }
            }
        }
    }

    /// Inserts a key (duplicates ignored), recording all traffic.
    pub fn insert(&mut self, key: u64, rec: &mut Recorder, heap: &mut ShadowHeap) {
        // Descend, remembering the path.
        let mut path = Vec::new();
        let mut n = self.root;
        loop {
            match self.search(n, key, rec) {
                Ok(_) if self.nodes[n].leaf => return, // duplicate
                Ok(pos) => {
                    rec.load(self.nodes[n].kid_addr(pos + 1));
                    path.push((n, pos + 1));
                    n = self.nodes[n].kids[pos + 1];
                }
                Err(pos) => {
                    if self.nodes[n].leaf {
                        self.leaf_insert(n, pos, key, rec);
                        self.len += 1;
                        break;
                    }
                    rec.load(self.nodes[n].kid_addr(pos));
                    path.push((n, pos));
                    n = self.nodes[n].kids[pos];
                }
            }
        }
        // Split upward while overfull.
        let mut child = n;
        // (split() and the new-root path record the node-initialization
        // writes a real allocator + constructor would perform.)
        while self.nodes[child].keys.len() > ORDER {
            let (sep, right) = self.split(child, rec, heap);
            match path.pop() {
                Some((parent, pos)) => {
                    self.inner_insert(parent, pos, sep, right, rec);
                    child = parent;
                }
                None => {
                    // New root: allocation initializes the whole node.
                    let base = heap.alloc(NODE_BYTES, 64);
                    let root = Node {
                        base,
                        keys: vec![sep],
                        kids: vec![child, right],
                        leaf: false,
                    };
                    rec.store_range(base, NODE_BYTES);
                    self.nodes.push(root);
                    self.root = self.nodes.len() - 1;
                    break;
                }
            }
        }
    }

    /// Inserts into a leaf at `pos`, recording the element shift.
    fn leaf_insert(&mut self, n: usize, pos: usize, key: u64, rec: &mut Recorder) {
        let count = self.nodes[n].keys.len();
        // Shift keys [pos..count) right by one: a store per moved slot.
        for i in (pos..count).rev() {
            rec.load(self.nodes[n].key_addr(i));
            rec.store(self.nodes[n].key_addr(i + 1));
        }
        rec.store(self.nodes[n].key_addr(pos));
        rec.store(self.nodes[n].base); // count in header
        self.nodes[n].keys.insert(pos, key);
    }

    /// Inserts a separator + right child into an inner node.
    fn inner_insert(&mut self, n: usize, pos: usize, sep: u64, right: usize, rec: &mut Recorder) {
        let count = self.nodes[n].keys.len();
        for i in (pos..count).rev() {
            rec.load(self.nodes[n].key_addr(i));
            rec.store(self.nodes[n].key_addr(i + 1));
            rec.store(self.nodes[n].kid_addr(i + 2));
        }
        rec.store(self.nodes[n].key_addr(pos));
        rec.store(self.nodes[n].kid_addr(pos + 1));
        rec.store(self.nodes[n].base);
        self.nodes[n].keys.insert(pos, sep);
        self.nodes[n].kids.insert(pos + 1, right);
    }

    /// Splits an overfull node; returns (separator, new right node index).
    fn split(&mut self, n: usize, rec: &mut Recorder, heap: &mut ShadowHeap) -> (u64, usize) {
        let mid = self.nodes[n].keys.len() / 2;
        let base = heap.alloc(NODE_BYTES, 64);
        // Constructor/zeroing writes of the freshly allocated node.
        rec.store_range(base, NODE_BYTES);
        let leaf = self.nodes[n].leaf;
        let (sep, right_keys, right_kids) = if leaf {
            let right_keys = self.nodes[n].keys.split_off(mid);
            (right_keys[0], right_keys, Vec::new())
        } else {
            let mut right_keys = self.nodes[n].keys.split_off(mid);
            let sep = right_keys.remove(0);
            let right_kids = self.nodes[n].kids.split_off(mid + 1);
            (sep, right_keys, right_kids)
        };
        // Copy-out: read each moved slot from the old node, write it to
        // the new one.
        for i in 0..right_keys.len() {
            rec.load(self.nodes[n].key_addr(mid + i));
            rec.store(Addr::new(base.raw() + HDR + 8 * i as u64));
        }
        rec.store(base);
        rec.store(self.nodes[n].base); // shrunk count
        self.nodes.push(Node {
            base,
            keys: right_keys,
            kids: right_kids,
            leaf,
        });
        (sep, self.nodes.len() - 1)
    }

    /// Depth of the tree (testing aid).
    pub fn depth(&self) -> usize {
        let mut d = 1;
        let mut n = self.root;
        while !self.nodes[n].leaf {
            d += 1;
            n = self.nodes[n].kids[0];
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (BPlusTree, Recorder, ShadowHeap) {
        let mut heap = ShadowHeap::new();
        let tree = BPlusTree::new(&mut heap);
        (tree, Recorder::new(1), heap)
    }

    #[test]
    fn inserts_are_found_and_counted() {
        let (mut t, mut rec, mut heap) = setup();
        for k in [5u64, 1, 9, 3, 7] {
            t.insert(k, &mut rec, &mut heap);
        }
        assert_eq!(t.len(), 5);
        for k in [5u64, 1, 9, 3, 7] {
            assert!(t.contains(k, &mut rec), "key {k}");
        }
        assert!(!t.contains(4, &mut rec));
    }

    #[test]
    fn duplicates_are_ignored() {
        let (mut t, mut rec, mut heap) = setup();
        t.insert(5, &mut rec, &mut heap);
        t.insert(5, &mut rec, &mut heap);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn splits_grow_the_tree_and_keep_order() {
        let (mut t, mut rec, mut heap) = setup();
        for k in 0..2000u64 {
            t.insert(k * 7919 % 65_536, &mut rec, &mut heap);
        }
        assert!(t.depth() >= 2, "splits must have occurred");
        for k in 0..2000u64 {
            assert!(t.contains(k * 7919 % 65_536, &mut rec));
        }
    }

    #[test]
    fn inserts_record_both_loads_and_stores() {
        let (mut t, mut rec, mut heap) = setup();
        for k in 0..500u64 {
            t.insert(k, &mut rec, &mut heap);
        }
        assert!(rec.loads() > 500, "descent reads recorded");
        assert!(rec.stores() > 500, "insert/shift writes recorded");
    }

    #[test]
    fn sequential_vs_random_write_patterns_differ() {
        // Sequential inserts append (few shifts); random inserts shift.
        let (mut t1, mut r1, mut h1) = setup();
        for k in 0..1000u64 {
            t1.insert(k, &mut r1, &mut h1);
        }
        let (mut t2, mut r2, mut h2) = setup();
        for k in 0..1000u64 {
            t2.insert(k.wrapping_mul(0x9E37_79B9) % 100_000, &mut r2, &mut h2);
        }
        assert!(
            r2.stores() > r1.stores(),
            "random inserts shift more: {} vs {}",
            r2.stores(),
            r1.stores()
        );
    }
}
