//! # nvworkloads — the paper's 12-workload benchmark suite
//!
//! Traces for the NVOverlay evaluation (§VI-C): four *real* instrumented
//! data structures running on a shadow heap ([`btree`], [`art`],
//! [`rbtree`], [`hashtable`]) and eight STAMP applications as synthetic
//! kernels reproducing their documented memory-access shapes ([`stamp`]).
//!
//! ```
//! use nvworkloads::{generate, SuiteParams, Workload};
//!
//! let trace = generate(Workload::BTree, &SuiteParams::quick());
//! assert!(trace.store_count() > 0);
//! ```

#![warn(missing_docs)]

pub mod art;
pub mod btree;
pub mod hashtable;
pub mod rbtree;
pub mod record;
pub mod stamp;
pub mod suite;

pub use record::{Recorder, ShadowHeap};
pub use suite::{generate, generate_btree_bursty, Burst, SuiteParams, Workload};
