//! The shadow heap and access recorder.
//!
//! The paper instruments real binaries with Pin; we instrument real Rust
//! data structures with a *shadow heap*: every node the structure
//! allocates gets a simulated physical address, and every field access is
//! recorded as a load/store at that address into a per-thread trace. The
//! structures therefore produce genuine pointer-chasing, node-splitting
//! and shared-hot-node traffic (DESIGN.md §2).

use nvsim::addr::{Addr, ThreadId, LINE_BYTES, PAGE_BYTES};
use nvsim::trace::{Trace, TraceBuilder};

/// Base of the simulated heap (arbitrary, away from address 0).
pub const HEAP_BASE: u64 = 0x1000_0000;

/// A bump allocator handing out simulated physical addresses.
#[derive(Clone, Debug)]
pub struct ShadowHeap {
    next: u64,
}

impl Default for ShadowHeap {
    fn default() -> Self {
        Self::new()
    }
}

impl ShadowHeap {
    /// A heap starting at [`HEAP_BASE`].
    pub fn new() -> Self {
        Self { next: HEAP_BASE }
    }

    /// Allocates `bytes` bytes aligned to `align` (power of two).
    ///
    /// # Panics
    /// Panics if `align` is not a power of two or `bytes` is zero.
    pub fn alloc(&mut self, bytes: u64, align: u64) -> Addr {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        assert!(bytes > 0, "cannot allocate zero bytes");
        let base = (self.next + align - 1) & !(align - 1);
        self.next = base + bytes;
        Addr::new(base)
    }

    /// Allocates one 64-byte cache line.
    pub fn alloc_line(&mut self) -> Addr {
        self.alloc(LINE_BYTES, LINE_BYTES)
    }

    /// Allocates `bytes` at the start of a fresh 4-KiB page, then skips
    /// `skip_pages` pages — produces the sparsely-scattered layouts that
    /// stress mapping-table occupancy (the paper's `yada` behaviour,
    /// Fig 13).
    pub fn alloc_sparse(&mut self, bytes: u64, skip_pages: u64) -> Addr {
        let base = (self.next + PAGE_BYTES - 1) & !(PAGE_BYTES - 1);
        self.next = base + skip_pages.max(1) * PAGE_BYTES;
        let _ = bytes;
        Addr::new(base)
    }

    /// Bytes allocated so far.
    pub fn used(&self) -> u64 {
        self.next - HEAP_BASE
    }
}

/// Records the memory accesses of instrumented structures into a
/// multi-threaded trace.
#[derive(Clone, Debug)]
pub struct Recorder {
    tb: TraceBuilder,
    thread: ThreadId,
    loads: u64,
    stores: u64,
    muted: bool,
}

impl Recorder {
    /// A recorder producing a `threads`-way trace, starting on thread 0.
    pub fn new(threads: usize) -> Self {
        Self {
            tb: TraceBuilder::new(threads),
            thread: ThreadId(0),
            loads: 0,
            stores: 0,
            muted: false,
        }
    }

    /// Switches the issuing thread.
    pub fn set_thread(&mut self, t: ThreadId) {
        self.thread = t;
    }

    /// The currently issuing thread.
    pub fn thread(&self) -> ThreadId {
        self.thread
    }

    /// Mutes or unmutes recording. Muted accesses are dropped — used to
    /// pre-populate structures (warm-up) before the measured phase, so a
    /// scaled-down run sees the paper's "large structure, short epoch"
    /// regime (see EXPERIMENTS.md).
    pub fn set_muted(&mut self, muted: bool) {
        self.muted = muted;
    }

    /// Whether recording is muted.
    pub fn is_muted(&self) -> bool {
        self.muted
    }

    /// Records a load.
    pub fn load(&mut self, addr: Addr) {
        if self.muted {
            return;
        }
        self.loads += 1;
        self.tb.load(self.thread, addr);
    }

    /// Records a store.
    pub fn store(&mut self, addr: Addr) {
        if self.muted {
            return;
        }
        self.stores += 1;
        self.tb.store(self.thread, addr);
    }

    /// Records one load per cache line covering `[base, base+bytes)`.
    pub fn load_range(&mut self, base: Addr, bytes: u64) {
        let first = base.line().raw();
        let last = Addr::new(base.raw() + bytes.max(1) - 1).line().raw();
        for l in first..=last {
            self.load(Addr::new(l * LINE_BYTES));
        }
    }

    /// Records one store per cache line covering `[base, base+bytes)`.
    pub fn store_range(&mut self, base: Addr, bytes: u64) {
        let first = base.line().raw();
        let last = Addr::new(base.raw() + bytes.max(1) - 1).line().raw();
        for l in first..=last {
            self.store(Addr::new(l * LINE_BYTES));
        }
    }

    /// Records an explicit epoch boundary on the current thread.
    pub fn epoch_mark(&mut self) {
        self.tb.epoch_mark(self.thread);
    }

    /// Loads recorded so far.
    pub fn loads(&self) -> u64 {
        self.loads
    }

    /// Stores recorded so far.
    pub fn stores(&self) -> u64 {
        self.stores
    }

    /// Total accesses recorded.
    pub fn accesses(&self) -> u64 {
        self.loads + self.stores
    }

    /// Finalizes the trace.
    pub fn into_trace(self) -> Trace {
        self.tb.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_bump_allocates_aligned() {
        let mut h = ShadowHeap::new();
        let a = h.alloc(100, 64);
        assert_eq!(a.raw() % 64, 0);
        let b = h.alloc(8, 8);
        assert!(b.raw() >= a.raw() + 100);
        assert!(h.used() >= 108);
    }

    #[test]
    fn sparse_alloc_lands_on_fresh_pages() {
        let mut h = ShadowHeap::new();
        let a = h.alloc_sparse(64, 3);
        let b = h.alloc_sparse(64, 3);
        assert_eq!(a.raw() % PAGE_BYTES, 0);
        assert_eq!(b.raw() - a.raw(), 3 * PAGE_BYTES);
    }

    #[test]
    fn range_accesses_touch_each_line_once() {
        let mut r = Recorder::new(2);
        r.store_range(Addr::new(0), 130); // lines 0,1,2
        assert_eq!(r.stores(), 3);
        r.set_thread(ThreadId(1));
        r.load_range(Addr::new(64), 1);
        assert_eq!(r.loads(), 1);
        let t = r.into_trace();
        assert_eq!(t.thread(ThreadId(0)).len(), 3);
        assert_eq!(t.thread(ThreadId(1)).len(), 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_alignment_panics() {
        let mut h = ShadowHeap::new();
        let _ = h.alloc(8, 3);
    }
}
